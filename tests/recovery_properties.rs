//! Property-style tests over the crash-consistency invariants: any
//! application, any failure cycle, any seed — recovery must restore
//! exactly the committed state and the program must complete.
//!
//! Inputs are drawn from seeded [`ppa_prng::Prng`] loops for offline,
//! reproducible randomness.

use ppa::core::{Core, CoreConfig, PersistenceMode};
use ppa::mem::{MemConfig, MemorySystem};
use ppa::sim::{inject_failure, SystemConfig};
use ppa::workloads::registry;
use ppa_prng::Prng;

/// The headline invariant: replaying the checkpointed CSQ makes the
/// NVM image equal architectural memory at the last commit point, and
/// the resumed machine finishes the program consistently.
#[test]
fn recovery_restores_consistency() {
    let mut rng = Prng::seed_from_u64(0x4ec0_0001);
    for _ in 0..24 {
        let app = registry::all()[rng.random_below(41) as usize];
        let seed = rng.random_below(1_000);
        let fail_cycle = rng.random_below(5_000);
        let trace = app.generate(1_500, seed);
        let out = inject_failure(&SystemConfig::ppa(), &trace, fail_cycle);
        assert!(
            out.consistent_after_recovery,
            "{}@{} seed {}: inconsistent after recovery",
            app.name, fail_cycle, seed
        );
        assert!(
            out.completed_after_resume,
            "{}@{} seed {}: did not complete",
            app.name, fail_cycle, seed
        );
        assert!(out.checkpoint_bytes <= 1838);
    }
}

/// Recovery resumes exactly at the commit index the checkpoint
/// recorded — no committed instruction re-executes architecturally,
/// none is skipped.
#[test]
fn resume_point_is_exact() {
    let mut rng = Prng::seed_from_u64(0x4ec0_0002);
    for _ in 0..24 {
        let app = registry::all()[rng.random_below(41) as usize];
        let fail_cycle = 1 + rng.random_below(3_000);
        let trace = app.generate(1_200, 77);
        let cfg = CoreConfig::paper_default(PersistenceMode::Ppa);
        let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
        let mut core = Core::new(cfg, 0);
        for now in 0..fail_cycle {
            core.step(&trace, &mut mem, now);
            mem.tick(now);
        }
        let committed = core.committed();
        let image = core.jit_checkpoint();
        assert_eq!(image.committed, committed);
        let recovered = Core::recover(cfg, 0, &image);
        assert_eq!(recovered.committed(), committed);
        assert_eq!(recovered.lcpc(), core.lcpc());
    }
}

/// Simulation is a pure function of (app, len, seed, config).
#[test]
fn simulation_is_deterministic() {
    let mut rng = Prng::seed_from_u64(0x4ec0_0003);
    for _ in 0..24 {
        let app = registry::all()[rng.random_below(41) as usize];
        let seed = rng.random_below(100);
        let m = ppa::sim::Machine::new(SystemConfig::ppa());
        let r1 = m.run_app(&app, 1_000, seed);
        let r2 = m.run_app(&app, 1_000, seed);
        assert_eq!(r1.cycles, r2.cycles, "{} seed {}", app.name, seed);
        assert_eq!(r1.committed, r2.committed, "{} seed {}", app.name, seed);
    }
}

/// Every scheme commits the same architectural values — persistence
/// support must never change program semantics.
#[test]
fn schemes_agree_on_architectural_memory() {
    let mut rng = Prng::seed_from_u64(0x4ec0_0004);
    for _ in 0..24 {
        let app = registry::all()[rng.random_below(41) as usize];
        let seed = rng.random_below(50);
        let raw = app.generate(800, seed);
        let mut images = Vec::new();
        for cfg in [
            SystemConfig::baseline(),
            SystemConfig::ppa(),
            SystemConfig::replay_cache(),
            SystemConfig::capri(),
        ] {
            let machine = ppa::sim::Machine::new(cfg);
            let trace = machine.prepare_trace(&raw);
            let mut mem = MemorySystem::new(cfg.mem, 1);
            let mut core = Core::new(cfg.core, 0);
            core.run(&trace, &mut mem);
            let mut words: Vec<(u64, u64)> = mem.arch_mem().iter().collect();
            words.sort_unstable();
            images.push(words);
        }
        for w in &images[1..] {
            assert_eq!(w, &images[0], "{} seed {}", app.name, seed);
        }
    }
}
