//! End-to-end performance-shape tests: the orderings the paper's
//! evaluation establishes must hold in the reproduction.

use ppa::sim::{Machine, SystemConfig};
use ppa::stats::geomean;
use ppa::workloads::registry;

const LEN: usize = 15_000;
const APPS: &[&str] = &["gcc", "hmmer", "mcf", "x264", "omnetpp", "xz"];

fn cycles(cfg: SystemConfig, app: &str) -> u64 {
    let app = registry::by_name(app).expect("known app");
    Machine::new(cfg).run_app(&app, LEN, 1).cycles
}

/// Figure 8 + Figure 1's ordering: baseline <= PPA < Capri < ReplayCache.
#[test]
fn scheme_ordering_matches_the_paper() {
    let mut ppa_s = Vec::new();
    let mut cap_s = Vec::new();
    let mut rc_s = Vec::new();
    for app in APPS {
        let base = cycles(SystemConfig::baseline(), app) as f64;
        ppa_s.push(cycles(SystemConfig::ppa(), app) as f64 / base);
        cap_s.push(cycles(SystemConfig::capri(), app) as f64 / base);
        rc_s.push(cycles(SystemConfig::replay_cache(), app) as f64 / base);
    }
    let (ppa, cap, rc) = (geomean(ppa_s), geomean(cap_s), geomean(rc_s));
    assert!(ppa < 1.10, "PPA should be lightweight, got {ppa:.3}");
    assert!(ppa < cap, "PPA ({ppa:.3}) must beat Capri ({cap:.3})");
    assert!(cap < rc, "Capri ({cap:.3}) must beat ReplayCache ({rc:.3})");
    assert!(rc > 2.0, "ReplayCache must be painfully slow, got {rc:.3}");
}

/// §7.2: PPA + memory mode beats the ideal PSP for memory-hungry apps.
#[test]
fn wsp_with_dram_cache_beats_ideal_psp_on_missy_apps() {
    for app in ["libquantum", "mcf", "xsbench"] {
        let ppa = cycles(SystemConfig::ppa(), app);
        let psp = cycles(SystemConfig::eadr_bbb(), app);
        assert!(
            ppa < psp,
            "{app}: PPA ({ppa}) should beat app-direct PSP ({psp})"
        );
    }
}

/// Figure 9's framing: persistence costs less than what memory mode
/// already costs relative to a DRAM-only machine.
#[test]
fn ppa_premium_over_memory_mode_is_smaller_than_memory_modes_premium_over_dram() {
    let mut mm = Vec::new();
    let mut pp = Vec::new();
    for app in APPS {
        let dram = cycles(SystemConfig::dram_only(), app) as f64;
        let base = cycles(SystemConfig::baseline(), app) as f64;
        let ppa = cycles(SystemConfig::ppa(), app) as f64;
        mm.push(base / dram);
        pp.push(ppa / base);
    }
    let memory_mode_premium = geomean(mm);
    let ppa_premium = geomean(pp);
    assert!(
        ppa_premium < memory_mode_premium,
        "PPA's premium ({ppa_premium:.3}) should be below memory mode's ({memory_mode_premium:.3})"
    );
}

/// Every WSP scheme must end crash-consistent; the baseline must not.
#[test]
fn only_wsp_schemes_end_consistent() {
    let app = registry::by_name("tpcc").expect("tpcc exists");
    let base = Machine::new(SystemConfig::baseline()).run_app(&app, LEN, 1);
    assert!(!base.consistent, "baseline should leave dirty lines behind");
    for cfg in [
        SystemConfig::ppa(),
        SystemConfig::replay_cache(),
        SystemConfig::capri(),
    ] {
        let r = Machine::new(cfg).run_app(&app, LEN, 1);
        assert!(
            r.consistent,
            "{:?} must drain to a consistent NVM",
            cfg.core.mode
        );
    }
}

/// The Figure 14 claim: a deeper hierarchy does not break PPA.
#[test]
fn deep_hierarchy_keeps_ppa_cheap() {
    let mut slows = Vec::new();
    for app in APPS {
        let base = cycles(SystemConfig::baseline().with_deep_hierarchy(), app) as f64;
        let ppa = cycles(SystemConfig::ppa().with_deep_hierarchy(), app) as f64;
        slows.push(ppa / base);
    }
    let g = geomean(slows);
    assert!(g < 1.08, "deep-hierarchy PPA slowdown {g:.3} too high");
}
