//! Cross-crate crash-consistency tests: the central correctness claim of
//! the paper, exercised end-to-end through the facade crate.

use ppa::core::{replay_stores, Core, CoreConfig, PersistenceMode};
use ppa::mem::{MemConfig, MemorySystem};
use ppa::sim::{inject_failure, SystemConfig};
use ppa::workloads::registry;

/// Recovery works at every phase of execution, across very different
/// application behaviours.
#[test]
fn recovery_is_correct_across_apps_and_failure_points() {
    for name in ["bzip2", "lbm", "rb", "lulesh", "genome"] {
        let app = registry::by_name(name).expect("known app");
        let trace = app.generate(3_000, 13);
        for fail_cycle in [3, 170, 900, 2_400, 6_000] {
            let out = inject_failure(&SystemConfig::ppa(), &trace, fail_cycle);
            assert!(
                out.consistent_after_recovery,
                "{name}: inconsistent after recovery at {fail_cycle}"
            );
            assert!(
                out.completed_after_resume,
                "{name}: did not complete after resume at {fail_cycle}"
            );
        }
    }
}

/// The experiment is meaningful: without PPA's replay, some failure point
/// leaves the NVM inconsistent with committed state. The inconsistency
/// window is narrow (the write buffer drains within a few hundred
/// cycles), so scan store-heavy apps at a fine grain until one shows it.
#[test]
fn the_baseline_inconsistency_actually_exists() {
    let mut found = false;
    'apps: for name in ["tpcc", "pc", "sps"] {
        let app = registry::by_name(name).expect("known app");
        let trace = app.generate(4_000, 3);
        for i in 1..80 {
            let out = inject_failure(&SystemConfig::ppa(), &trace, i * 97);
            if !out.consistent_before_recovery {
                found = true;
                break 'apps;
            }
        }
    }
    assert!(found, "no failure point showed the crash inconsistency");
}

/// §4 footnote 8: stores are idempotent, so replaying twice is harmless.
#[test]
fn double_recovery_is_idempotent() {
    let app = registry::by_name("tatp").expect("tatp exists");
    let trace = app.generate(3_000, 5);
    let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
    let mut core = Core::new(CoreConfig::paper_default(PersistenceMode::Ppa), 0);
    for now in 0..1_500 {
        core.step(&trace, &mut mem, now);
        mem.tick(now);
    }
    let image = core.jit_checkpoint();
    mem.power_failure();
    replay_stores(&image, mem.nvm_image_mut());
    let first = mem.nvm_image().clone();
    replay_stores(&image, mem.nvm_image_mut());
    assert_eq!(*mem.nvm_image(), first);
    assert!(mem.nvm_image().diff(mem.arch_mem()).is_empty());
}

/// Power failure during the *recovered* run is also recoverable — crashes
/// can nest.
#[test]
fn nested_failures_recover() {
    let app = registry::by_name("gcc").expect("gcc exists");
    let trace = app.generate(4_000, 9);
    let cfg = CoreConfig::paper_default(PersistenceMode::Ppa);

    let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
    let mut core = Core::new(cfg, 0);
    for now in 0..800 {
        core.step(&trace, &mut mem, now);
        mem.tick(now);
    }
    // First failure + recovery.
    let image1 = core.jit_checkpoint();
    mem.power_failure();
    replay_stores(&image1, mem.nvm_image_mut());
    assert!(mem.nvm_image().diff(mem.arch_mem()).is_empty());
    let mut core = Core::recover(cfg, 0, &image1);

    // Run a bit more, then fail again.
    for now in 800..1_600 {
        core.step(&trace, &mut mem, now);
        mem.tick(now);
    }
    let image2 = core.jit_checkpoint();
    mem.power_failure();
    replay_stores(&image2, mem.nvm_image_mut());
    assert!(mem.nvm_image().diff(mem.arch_mem()).is_empty());
    assert!(
        image2.committed >= image1.committed,
        "progress is monotonic"
    );

    // Final resume completes.
    let mut core = Core::recover(cfg, 0, &image2);
    let mut now = 1_600;
    while !core.is_finished() {
        core.step(&trace, &mut mem, now);
        mem.tick(now);
        now += 1;
        assert!(now < 10_000_000, "deadlock after nested recovery");
    }
    assert_eq!(core.committed(), trace.len() as u64);
    assert!(mem.nvm_image().diff(mem.arch_mem()).is_empty());
}

/// The checkpoint never exceeds the paper's §7.13 worst case, at any
/// failure point of any app.
#[test]
fn checkpoint_size_bounded_by_paper_worst_case() {
    for name in ["hmmer", "rb", "lulesh"] {
        let app = registry::by_name(name).expect("known app");
        let trace = app.generate(3_000, 21);
        for fail_cycle in [100, 1_000, 3_000] {
            let out = inject_failure(&SystemConfig::ppa(), &trace, fail_cycle);
            assert!(
                out.checkpoint_bytes <= 1838,
                "{name}@{fail_cycle}: {} bytes",
                out.checkpoint_bytes
            );
        }
    }
}
