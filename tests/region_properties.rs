//! Property-style tests over PPA's dynamic region formation and the
//! software baselines' compiler-formed regions.
//!
//! Each test draws its inputs from a seeded [`ppa_prng::Prng`] loop —
//! deterministic, offline, and reproducible from the printed case on
//! failure.

use ppa::isa::transform::{region_lengths, CapriPass, ReplayCachePass, TracePass};
use ppa::isa::UopKind;
use ppa::sim::{Machine, SystemConfig};
use ppa::workloads::registry;
use ppa_prng::Prng;

/// A PPA region can never hold more stores than the CSQ (the full CSQ
/// is an implicit boundary, §4.2).
#[test]
fn region_stores_bounded_by_csq() {
    let mut rng = Prng::seed_from_u64(0x5e91_0001);
    for _ in 0..20 {
        let app = registry::all()[rng.random_below(41) as usize];
        let csq = rng.random_range(4usize..64);
        let mut cfg = SystemConfig::ppa();
        cfg.core = cfg.core.with_csq(csq);
        let r = Machine::new(cfg).run_app(&app, 1_500, 3);
        assert!(
            r.region_stores().max() <= csq as f64,
            "{}: {} stores in one region with a {}-entry CSQ",
            app.name,
            r.region_stores().max(),
            csq
        );
    }
}

/// Dynamic regions are at least an instruction long and contain their
/// stores.
#[test]
fn region_accounting_is_sane() {
    let mut rng = Prng::seed_from_u64(0x5e91_0002);
    for _ in 0..20 {
        let app = registry::all()[rng.random_below(41) as usize];
        let r = Machine::new(SystemConfig::ppa()).run_app(&app, 2_000, 9);
        if r.region_insts().count() > 0 {
            assert!(r.region_insts().min() >= 1.0, "{}", app.name);
            assert!(
                r.region_stores().mean() <= r.region_insts().mean(),
                "{}",
                app.name
            );
        }
    }
}

/// The central Figure 13 contrast: hardware-formed regions are an
/// order of magnitude longer than Capri's compiler-formed regions.
#[test]
fn ppa_regions_dwarf_capri_regions() {
    let mut rng = Prng::seed_from_u64(0x5e91_0003);
    for _ in 0..20 {
        let app = registry::all()[rng.random_below(41) as usize];
        let r = Machine::new(SystemConfig::ppa()).run_app(&app, 4_000, 5);
        let raw = app.generate(4_000, 5);
        let capri = CapriPass::new().apply(&raw);
        let lens = region_lengths(&capri);
        let capri_avg = lens.iter().sum::<usize>() as f64 / lens.len().max(1) as f64;
        if r.region_insts().count() > 0 {
            assert!(
                r.region_insts().mean() > 2.0 * capri_avg,
                "{}: PPA {:.0} vs Capri {:.0}",
                app.name,
                r.region_insts().mean(),
                capri_avg
            );
        }
    }
}

/// ReplayCache's pass preserves the program (same non-inserted ops in
/// order) and follows every store with a clwb to the same line.
#[test]
fn replaycache_pass_preserves_program() {
    let mut rng = Prng::seed_from_u64(0x5e91_0004);
    for _ in 0..20 {
        let app = registry::all()[rng.random_below(41) as usize];
        let seed = rng.random_below(100);
        let raw = app.generate(600, seed);
        let out = ReplayCachePass::new().apply(&raw);
        let filtered: Vec<_> = out
            .iter()
            .filter(|u| !matches!(u.kind, UopKind::Clwb | UopKind::PersistBarrier))
            .copied()
            .collect();
        assert_eq!(filtered.len(), raw.len(), "{} seed {seed}", app.name);
        for (a, b) in filtered.iter().zip(raw.iter()) {
            assert_eq!(a, b, "{} seed {seed}", app.name);
        }
        // Every store is immediately followed by a clwb to its line.
        for (i, u) in out.iter().enumerate() {
            if u.kind == UopKind::Store {
                let next = out.get(i + 1).expect("store is never last");
                assert_eq!(next.kind, UopKind::Clwb);
                assert_eq!(
                    ppa::isa::line_of(next.mem.unwrap().addr),
                    ppa::isa::line_of(u.mem.unwrap().addr)
                );
            }
        }
    }
}

/// Capri's pass bounds every region by its static instruction limit.
#[test]
fn capri_pass_respects_bounds() {
    let mut rng = Prng::seed_from_u64(0x5e91_0005);
    for _ in 0..20 {
        let app = registry::all()[rng.random_below(41) as usize];
        let bound = rng.random_range(8usize..64);
        let raw = app.generate(800, 11);
        let out = CapriPass::new().with_max_insts(bound).apply(&raw);
        for len in region_lengths(&out) {
            assert!(
                len <= bound,
                "{}: region {len} exceeds bound {bound}",
                app.name
            );
        }
    }
}
