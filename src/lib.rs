//! # ppa — Persistent Processor Architecture
//!
//! A from-scratch Rust reproduction of *Persistent Processor Architecture*
//! (Zeng, Jeong, Jung — MICRO 2023): lightweight microarchitectural support
//! for transparent **whole-system persistence** (WSP) on out-of-order
//! cores.
//!
//! This facade crate re-exports the workspace's sub-crates:
//!
//! * [`isa`] — micro-op ISA, traces, and the ReplayCache/Capri compiler
//!   passes;
//! * [`mem`] — SRAM caches, DRAM cache, PMEM with write-pending queue, and
//!   the persist-coalescing L1D write buffer;
//! * [`core`] — the cycle-level out-of-order core with PPA's MaskReg, CSQ,
//!   LCPC, dynamic region formation, and JIT checkpoint/recovery;
//! * [`workloads`] — the 41 application models of the paper's evaluation;
//! * [`sim`] — multi-core system assembly, power-failure injection, and the
//!   crash-consistency checker;
//! * [`energy`] — hardware cost and checkpoint-energy models;
//! * [`stats`] — CDFs, summaries, and table formatting.
//!
//! # Quickstart
//!
//! ```
//! use ppa::sim::{Machine, SystemConfig};
//! use ppa::workloads::registry;
//!
//! // Simulate one application under the paper's default configuration,
//! // both without persistence (memory-mode baseline) and with PPA.
//! let app = registry::by_name("mcf").expect("known app");
//! let trace = app.generate(20_000, 7);
//!
//! let base = Machine::new(SystemConfig::baseline()).run(&trace);
//! let ppa = Machine::new(SystemConfig::ppa()).run(&trace);
//!
//! let slowdown = ppa.cycles as f64 / base.cycles as f64;
//! assert!(slowdown < 1.25, "PPA should be lightweight, got {slowdown}");
//! ```

pub use ppa_core as core;
pub use ppa_energy as energy;
pub use ppa_isa as isa;
pub use ppa_mem as mem;
pub use ppa_sim as sim;
pub use ppa_stats as stats;
pub use ppa_workloads as workloads;
