//! End-to-end tests of the coordinator/worker stack over loopback TCP:
//! ordering, mid-lease worker death, retry exhaustion, executor panics,
//! and lease-timeout re-dispatch.

use ppa_grid::coord::{GridConfig, GridError, UnitSpec};
use ppa_grid::loopback;
use ppa_grid::worker::{Executor, WorkerOptions};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Echoes the payload back with the tag prepended.
struct EchoExecutor;

impl Executor for EchoExecutor {
    fn execute(&self, tag: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        let mut out = tag.as_bytes().to_vec();
        out.push(b'=');
        out.extend_from_slice(payload);
        Ok(out)
    }
}

fn units(n: usize) -> Vec<UnitSpec> {
    (0..n)
        .map(|i| UnitSpec {
            tag: format!("echo:{i}"),
            payload: vec![i as u8; i % 7],
        })
        .collect()
}

#[test]
fn results_come_back_in_submission_order() {
    let lb = loopback::start_uniform(3, 2, Arc::new(EchoExecutor), GridConfig::default())
        .expect("loopback grid starts");
    let batch = units(40);
    let results = lb.run_units(batch.clone());
    assert_eq!(results.len(), batch.len());
    for (unit, res) in batch.iter().zip(results) {
        let outcome = res.expect("echo units succeed");
        let mut expected = unit.tag.as_bytes().to_vec();
        expected.push(b'=');
        expected.extend_from_slice(&unit.payload);
        assert_eq!(outcome.payload, expected, "unit {} out of order", unit.tag);
    }
    let reports = lb.shutdown();
    assert_eq!(reports.len(), 3);
    assert_eq!(reports.iter().map(|r| r.executed).sum::<usize>(), 40);
}

#[test]
fn a_worker_dying_mid_lease_is_survivable() {
    // Worker 0 drops its socket after two units; its outstanding leases
    // must be re-dispatched to the survivor and every unit still
    // completes with the right payload.
    let opts = vec![
        WorkerOptions {
            die_after: Some(2),
            ..WorkerOptions::default()
        },
        WorkerOptions::default(),
    ];
    let lb = loopback::start(opts, Arc::new(EchoExecutor), GridConfig::default())
        .expect("loopback grid starts");
    let batch = units(12);
    let results = lb.run_units(batch.clone());
    for (unit, res) in batch.iter().zip(results) {
        let outcome = res.expect("all units complete despite the death");
        assert!(outcome.payload.starts_with(unit.tag.as_bytes()));
    }
    let stats = lb.coordinator().stats();
    assert!(stats.workers_lost >= 1, "stats: {stats:?}");
    assert!(stats.redispatched >= 1, "stats: {stats:?}");
    let reports = lb.shutdown();
    assert!(reports.iter().any(|r| r.died), "no worker reported dying");
}

/// Fails units whose tag starts with "bad:".
struct FlakyExecutor;

impl Executor for FlakyExecutor {
    fn execute(&self, tag: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        if tag.starts_with("bad:") {
            Err(format!("no such cell: {tag}"))
        } else {
            Ok(payload.to_vec())
        }
    }
}

#[test]
fn exhausted_retries_name_the_failing_unit() {
    let cfg = GridConfig {
        max_attempts: 3,
        retry_backoff: Duration::from_millis(5),
        ..GridConfig::default()
    };
    let lb =
        loopback::start_uniform(2, 1, Arc::new(FlakyExecutor), cfg).expect("loopback grid starts");
    let batch = vec![
        UnitSpec {
            tag: "good:1".into(),
            payload: vec![1],
        },
        UnitSpec {
            tag: "bad:fig8/gcc".into(),
            payload: vec![2],
        },
        UnitSpec {
            tag: "good:2".into(),
            payload: vec![3],
        },
    ];
    let results = lb.run_units(batch);
    assert!(results[0].is_ok() && results[2].is_ok());
    match &results[1] {
        Err(GridError::UnitFailed {
            tag,
            attempts,
            message,
        }) => {
            assert_eq!(tag, "bad:fig8/gcc");
            assert_eq!(*attempts, 3);
            assert!(message.contains("no such cell"), "message: {message}");
        }
        other => panic!("expected UnitFailed, got {other:?}"),
    }
    let stats = lb.coordinator().stats();
    assert_eq!(stats.unit_errors, 3, "one error per attempt: {stats:?}");
}

/// Panics on every unit; the worker must convert the panic into a
/// UnitError instead of crashing its pool.
struct PanickyExecutor;

impl Executor for PanickyExecutor {
    fn execute(&self, tag: &str, _payload: &[u8]) -> Result<Vec<u8>, String> {
        panic!("boom in {tag}");
    }
}

#[test]
fn executor_panics_surface_as_unit_errors() {
    let cfg = GridConfig {
        max_attempts: 2,
        retry_backoff: Duration::from_millis(5),
        ..GridConfig::default()
    };
    let lb = loopback::start_uniform(1, 2, Arc::new(PanickyExecutor), cfg)
        .expect("loopback grid starts");
    let results = lb.run_units(vec![UnitSpec {
        tag: "explode".into(),
        payload: vec![],
    }]);
    match &results[0] {
        Err(GridError::UnitFailed { message, .. }) => {
            assert!(message.contains("panicked"), "message: {message}");
        }
        other => panic!("expected UnitFailed, got {other:?}"),
    }
    // The worker survives its own panics: a follow-up batch on the same
    // connection still errors cleanly rather than hanging.
    let again = lb.run_units(vec![UnitSpec {
        tag: "explode-again".into(),
        payload: vec![],
    }]);
    assert!(again[0].is_err());
    lb.shutdown();
}

/// Sleeps long on the first call per unit tag, then answers instantly.
struct SlowOnceExecutor {
    calls: AtomicUsize,
}

impl Executor for SlowOnceExecutor {
    fn execute(&self, _tag: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        if self.calls.fetch_add(1, Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(900));
        }
        Ok(payload.to_vec())
    }
}

#[test]
fn expired_leases_are_redispatched_and_duplicates_suppressed() {
    let cfg = GridConfig {
        lease_timeout: Duration::from_millis(150),
        retry_backoff: Duration::from_millis(5),
        ..GridConfig::default()
    };
    let exec = Arc::new(SlowOnceExecutor {
        calls: AtomicUsize::new(0),
    });
    let lb = loopback::start_uniform(2, 1, Arc::clone(&exec) as Arc<dyn Executor>, cfg)
        .expect("loopback grid starts");
    let results = lb.run_units(vec![UnitSpec {
        tag: "slow".into(),
        payload: vec![42],
    }]);
    let outcome = results[0].as_ref().expect("the re-dispatched copy wins");
    assert_eq!(outcome.payload, vec![42]);
    assert!(outcome.attempts >= 2, "lease should have expired once");
    let stats = lb.coordinator().stats();
    assert!(stats.redispatched >= 1, "stats: {stats:?}");
    // Give the slow first execution time to land its late result, then
    // confirm it was counted as a duplicate, not delivered twice.
    std::thread::sleep(Duration::from_millis(1_200));
    let stats = lb.coordinator().stats();
    assert!(stats.duplicates >= 1, "stats: {stats:?}");
    assert_eq!(stats.completed, 1, "stats: {stats:?}");
    lb.shutdown();
}

/// The coordinator instruments its dispatch loop with `grid.coord.*`
/// metrics. Because the `ppa-obs` registry is process-global (and these
/// tests run concurrently), assert on the diff since a pre-run
/// snapshot with `>=` bounds rather than exact counts.
#[test]
fn loopback_run_populates_coordinator_metrics() {
    let before = ppa_obs::snapshot();
    let lb = loopback::start_uniform(2, 1, Arc::new(EchoExecutor), GridConfig::default())
        .expect("loopback grid starts");
    let batch = units(12);
    let results = lb.run_units(batch);
    assert!(results.iter().all(Result::is_ok));
    lb.shutdown();

    let delta = ppa_obs::snapshot().diff(&before);
    let counter = |name: &str| match delta.get(name) {
        Some(ppa_obs::registry::Value::Counter(v)) => *v,
        other => panic!("{name} missing or wrong kind: {other:?}"),
    };
    assert!(counter("grid.coord.units.dispatched") >= 12);
    assert!(counter("grid.coord.units.completed") >= 12);
    assert!(counter("grid.coord.worker.joined") >= 2);
    assert!(counter("grid.worker.units.executed") >= 12);
    let Some(ppa_obs::registry::Value::Summary(elapsed)) = delta.get("grid.coord.unit.elapsed_ns")
    else {
        panic!("unit latency summary missing");
    };
    assert!(elapsed.count() >= 12, "got {}", elapsed.count());
}
