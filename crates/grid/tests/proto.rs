//! Property tests for the grid wire protocol, driven by `ppa-prng`.
//!
//! The invariant under test: decoding is *total*. Whatever bytes arrive
//! — torn frames, truncated length prefixes, flipped bits, stale
//! versions, pure garbage — `decode` returns a typed [`ProtoError`] or
//! a faithfully round-tripped message. It never panics and never
//! accepts a corrupted frame as valid.

use ppa_grid::proto::{self, Msg, ProtoError};
use ppa_prng::Prng;

fn random_bytes(rng: &mut Prng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn random_string(rng: &mut Prng, max: usize) -> String {
    let len = rng.random_below(max as u64 + 1) as usize;
    (0..len)
        .map(|_| char::from(b'a' + (rng.random_below(26) as u8)))
        .collect()
}

fn random_msg(rng: &mut Prng) -> Msg {
    let payload_len = rng.random_below(256) as usize;
    match rng.random_below(11) {
        0 => Msg::Hello {
            jobs: rng.next_u64() as u32,
        },
        1 => Msg::Lease {
            seq: rng.next_u64(),
            attempt: rng.next_u64() as u32,
            tag: random_string(rng, 64),
            payload: random_bytes(rng, payload_len),
        },
        2 => Msg::UnitResult {
            seq: rng.next_u64(),
            attempt: rng.next_u64() as u32,
            elapsed_ns: rng.next_u64(),
            payload: random_bytes(rng, payload_len),
        },
        3 => Msg::UnitError {
            seq: rng.next_u64(),
            attempt: rng.next_u64() as u32,
            message: random_string(rng, 120),
        },
        4 => Msg::Heartbeat {
            inflight: rng.random_range(0u32..64),
            executed: rng.random_range(0u64..10_000),
        },
        5 => Msg::Shutdown,
        6 => Msg::Submit {
            client: rng.next_u64(),
            submission: rng.next_u64(),
            priority: rng.next_u64() as u8,
            units: (0..rng.random_below(8))
                .map(|_| {
                    let len = rng.random_below(64) as usize;
                    (random_string(rng, 48), random_bytes(rng, len))
                })
                .collect(),
        },
        7 => Msg::Query {
            what: rng.next_u64() as u8,
        },
        8 => Msg::Subscribe {
            client: rng.next_u64(),
            submission: rng.next_u64(),
            from_index: rng.next_u64() as u32,
        },
        9 => Msg::Result {
            submission: rng.next_u64(),
            index: rng.next_u64() as u32,
            ok: rng.random_below(2) == 0,
            cached: rng.random_below(2) == 0,
            attempts: rng.random_range(0u32..8),
            elapsed_ns: rng.next_u64(),
            payload: random_bytes(rng, payload_len),
        },
        _ => Msg::CacheStats {
            hits: rng.next_u64(),
            misses: rng.next_u64(),
            entries: rng.next_u64(),
            queue_depth: rng.next_u64(),
            inflight: rng.next_u64(),
            clients: rng.next_u64(),
            submissions: rng.next_u64(),
            workers: rng.next_u64(),
        },
    }
}

#[test]
fn random_messages_round_trip() {
    let mut rng = Prng::seed_from_u64(0xF0A0);
    for _ in 0..500 {
        let msg = random_msg(&mut rng);
        let frame = proto::encode(&msg);
        let (decoded, consumed) = proto::decode(&frame).expect("encoded frames decode");
        assert_eq!(decoded, msg);
        assert_eq!(consumed, frame.len());
    }
}

#[test]
fn concatenated_streams_decode_frame_by_frame() {
    let mut rng = Prng::seed_from_u64(0xF0A1);
    for _ in 0..50 {
        let msgs: Vec<Msg> = (0..rng.random_range(1..8usize))
            .map(|_| random_msg(&mut rng))
            .collect();
        let stream: Vec<u8> = msgs.iter().flat_map(proto::encode).collect();
        let mut off = 0;
        let mut decoded = Vec::new();
        while off < stream.len() {
            let (msg, consumed) = proto::decode(&stream[off..]).expect("stream frames decode");
            decoded.push(msg);
            off += consumed;
        }
        assert_eq!(decoded, msgs);
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    let mut rng = Prng::seed_from_u64(0xF0A2);
    for _ in 0..100 {
        let frame = proto::encode(&random_msg(&mut rng));
        // Every proper prefix must decode to Truncated (the length
        // prefix itself is intact until byte 12, after which the frame
        // is simply short).
        for cut in 0..frame.len() {
            match proto::decode(&frame[..cut]) {
                Err(ProtoError::Truncated) => {}
                other => panic!("truncation at {cut}/{} gave {other:?}", frame.len()),
            }
        }
    }
}

#[test]
fn single_bit_flips_never_decode_to_the_original() {
    let mut rng = Prng::seed_from_u64(0xF0A3);
    for _ in 0..200 {
        let msg = random_msg(&mut rng);
        let frame = proto::encode(&msg);
        let bit = rng.random_below(frame.len() as u64 * 8) as usize;
        let mut torn = frame.clone();
        torn[bit / 8] ^= 1 << (bit % 8);
        match proto::decode(&torn) {
            // A flip in the payload or checksum is caught by the
            // checksum; flips in the header surface as the header
            // errors; a flip in the length prefix may leave the frame
            // "short". All fine — the one unacceptable outcome is
            // decoding successfully to the original bytes' message
            // while the wire was corrupted.
            Err(_) => {}
            Ok((decoded, _)) => panic!("bit flip at {bit} still decoded to {decoded:?}"),
        }
    }
}

#[test]
fn stale_versions_are_rejected_by_version_not_checksum() {
    let mut rng = Prng::seed_from_u64(0xF0A4);
    for _ in 0..100 {
        let mut frame = proto::encode(&random_msg(&mut rng));
        // Any version past v3 is from the future; v2 and v3 are the
        // only vocabularies this build speaks.
        let bad_version = (proto::VERSION_V3 + 1 + rng.random_below(1000) as u16).to_le_bytes();
        frame[4..6].copy_from_slice(&bad_version);
        // Re-seal the frame so the *only* defect is the version: a
        // stale peer computes a valid checksum over its own frames.
        let end = frame.len() - 4;
        let ck = proto::checksum(&frame[..end]);
        frame[end..].copy_from_slice(&ck.to_le_bytes());
        match proto::decode(&frame) {
            Err(ProtoError::BadVersion(v)) => {
                assert_ne!(v, proto::VERSION);
                assert_ne!(v, proto::VERSION_V3);
            }
            other => panic!("stale version gave {other:?}"),
        }
    }
}

#[test]
fn cross_version_forgeries_are_rejected() {
    // Swapping the version stamp between the two live vocabularies
    // (worker v2 <-> service v3) must fail even with a re-sealed
    // checksum: each type belongs to exactly one version.
    let mut rng = Prng::seed_from_u64(0xF0A9);
    for _ in 0..200 {
        let msg = random_msg(&mut rng);
        let mut frame = proto::encode(&msg);
        let stamped = u16::from_le_bytes([frame[4], frame[5]]);
        let forged = if stamped == proto::VERSION {
            proto::VERSION_V3
        } else {
            proto::VERSION
        };
        frame[4..6].copy_from_slice(&forged.to_le_bytes());
        let end = frame.len() - 4;
        let ck = proto::checksum(&frame[..end]);
        frame[end..].copy_from_slice(&ck.to_le_bytes());
        match proto::decode(&frame) {
            Err(_) => {}
            Ok((decoded, _)) => panic!("cross-version forgery decoded to {decoded:?}"),
        }
    }
}

#[test]
fn corrupt_length_prefixes_cannot_oom_or_panic() {
    let mut rng = Prng::seed_from_u64(0xF0A5);
    for _ in 0..200 {
        let mut frame = proto::encode(&random_msg(&mut rng));
        let fake_len = (rng.next_u64() as u32).to_le_bytes();
        frame[8..12].copy_from_slice(&fake_len);
        // Any outcome but success-with-wrong-shape is acceptable:
        // Oversized for huge prefixes, Truncated for prefixes past the
        // buffer, BadChecksum when the resized frame happens to fit.
        let _ = proto::decode(&frame);
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = Prng::seed_from_u64(0xF0A6);
    for _ in 0..2_000 {
        let len = rng.random_below(96) as usize;
        let garbage = random_bytes(&mut rng, len);
        let _ = proto::decode(&garbage);
    }
    // Garbage that keeps the real magic/version so decoding reaches the
    // deeper validation layers.
    for _ in 0..2_000 {
        let len = rng.random_below(96) as usize;
        let mut garbage = random_bytes(&mut rng, len.max(12));
        garbage[0..4].copy_from_slice(&proto::MAGIC.to_le_bytes());
        garbage[4..6].copy_from_slice(&proto::VERSION.to_le_bytes());
        let _ = proto::decode(&garbage);
    }
}

#[test]
fn unknown_types_survive_a_valid_envelope() {
    let mut rng = Prng::seed_from_u64(0xF0A7);
    for _ in 0..100 {
        let mut frame = proto::encode(&Msg::Shutdown);
        // Types 1-6 are v2, 7-11 are v3; everything above is unknown.
        let ty = 12 + rng.random_below(244) as u8;
        frame[6] = ty;
        let end = frame.len() - 4;
        let ck = proto::checksum(&frame[..end]);
        frame[end..].copy_from_slice(&ck.to_le_bytes());
        assert_eq!(proto::decode(&frame), Err(ProtoError::UnknownType(ty)));
    }
}

#[test]
fn torn_payload_fields_are_malformed_not_panics() {
    let mut rng = Prng::seed_from_u64(0xF0A8);
    // Build syntactically valid envelopes whose payloads are garbage;
    // field parsing must fail with a typed error, not a panic, for
    // every payload-bearing type.
    for ty in [1u8, 2, 3, 4, 7, 8, 9, 10, 11] {
        for _ in 0..200 {
            let body_len = rng.random_below(64) as usize;
            let body = random_bytes(&mut rng, body_len);
            let mut frame = Vec::new();
            frame.extend_from_slice(&proto::MAGIC.to_le_bytes());
            frame.extend_from_slice(&proto::frame_version(ty).to_le_bytes());
            frame.push(ty);
            frame.push(0);
            frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
            frame.extend_from_slice(&body);
            let ck = proto::checksum(&frame);
            frame.extend_from_slice(&ck.to_le_bytes());
            let _ = proto::decode(&frame);
        }
    }
}

#[test]
fn huge_submit_counts_fail_without_allocating() {
    // A Submit frame whose unit count claims billions of entries must
    // fail at the per-element reads (Truncated), not preallocate first.
    let mut body = Vec::new();
    body.extend_from_slice(&1u64.to_le_bytes()); // client
    body.extend_from_slice(&2u64.to_le_bytes()); // submission
    body.push(128); // priority
    body.extend_from_slice(&u32::MAX.to_le_bytes()); // unit count
    let mut frame = Vec::new();
    frame.extend_from_slice(&proto::MAGIC.to_le_bytes());
    frame.extend_from_slice(&proto::VERSION_V3.to_le_bytes());
    frame.push(7); // Submit
    frame.push(0);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    let ck = proto::checksum(&frame);
    frame.extend_from_slice(&ck.to_le_bytes());
    assert_eq!(proto::decode(&frame), Err(ProtoError::Truncated));
}
