//! The grid coordinator: leases work units to connected workers and
//! survives their failures.
//!
//! Every submitted [`UnitSpec`] is leased to a worker with a deadline;
//! liveness is tracked from worker heartbeats. A unit whose lease
//! expires, whose worker disconnects, or whose execution fails is
//! re-queued with a short backoff and re-dispatched (to any worker, not
//! necessarily the original one) until [`GridConfig::max_attempts`] is
//! exhausted, at which point the unit — and only that unit — completes
//! as [`GridError::UnitFailed`] naming its tag. A late result from a
//! superseded lease is suppressed (first result wins), so a unit's
//! outcome is recorded exactly once no matter how many times it was
//! in flight.
//!
//! Determinism: [`Coordinator::run_units`] returns outcomes **in
//! submission order**, whatever the arrival order across workers, so
//! callers assemble byte-identical output at any worker count.

use crate::proto::{self, Msg};
use std::collections::{BTreeSet, HashMap};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Priority given to units submitted through the plain [`UnitRunner`]
/// path (`run_units`). Higher is sooner; 0..=255.
pub const DEFAULT_PRIORITY: u8 = 128;

/// Anything that can run a batch of work units and return their
/// outcomes in submission order. Implemented by [`Coordinator`] (the
/// one-shot / loopback path) and by the `ppa-serve` client (the daemon
/// path), so front-ends are written once against this trait.
pub trait UnitRunner: Send + Sync {
    fn run_units(&self, units: Vec<UnitSpec>) -> Vec<Result<UnitOutcome, GridError>>;
}

/// A hook for routing non-worker connections (v3 service frames) that
/// arrive on the coordinator's listening port. `ppa-serve` installs one
/// to serve client sessions on the same socket workers dial.
pub trait ConnDispatch: Send + Sync {
    /// Takes ownership of a connection whose first frame was a v3
    /// service frame. Runs the whole session; returns when it ends.
    fn handle(&self, first: Msg, stream: TcpStream);
}

/// Coordinator tuning knobs. The defaults suit real experiment units
/// (milliseconds to minutes each); tests shrink them to exercise the
/// timeout paths quickly.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// How long a leased unit may run before it is re-dispatched.
    pub lease_timeout: Duration,
    /// A worker silent for this long is declared dead and its leases
    /// re-queued. Workers beacon every [`super::WorkerOptions::heartbeat`].
    pub heartbeat_timeout: Duration,
    /// Total attempts (first dispatch included) before a unit fails.
    pub max_attempts: u32,
    /// Base re-queue delay; scaled by the attempt number.
    pub retry_backoff: Duration,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            lease_timeout: Duration::from_secs(600),
            heartbeat_timeout: Duration::from_secs(15),
            max_attempts: 4,
            retry_backoff: Duration::from_millis(100),
        }
    }
}

/// One serializable work unit: an application-level `tag` routing it to
/// the right executor, and an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitSpec {
    pub tag: String,
    pub payload: Vec<u8>,
}

/// A completed unit's result.
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    /// The executor's result bytes.
    pub payload: Vec<u8>,
    /// Worker-measured execution time (the winning attempt).
    pub elapsed_ns: u64,
    /// How many dispatches this unit needed.
    pub attempts: u32,
}

/// Why a unit (or run) did not produce a result.
#[derive(Debug, Clone)]
pub enum GridError {
    /// The unit failed on every attempt; `message` is the last error.
    UnitFailed {
        tag: String,
        attempts: u32,
        message: String,
    },
    /// The coordinator was shut down before the unit completed.
    Aborted,
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::UnitFailed {
                tag,
                attempts,
                message,
            } => write!(
                f,
                "unit '{tag}' failed after {attempts} attempts: {message}"
            ),
            GridError::Aborted => write!(f, "coordinator shut down before the unit completed"),
        }
    }
}

impl std::error::Error for GridError {}

/// Scheduler counters, mirrored on stderr by the CLI front-ends.
#[derive(Debug, Default, Clone)]
pub struct GridStats {
    pub dispatched: u64,
    pub completed: u64,
    pub redispatched: u64,
    pub duplicates: u64,
    pub unit_errors: u64,
    pub workers_joined: u64,
    pub workers_lost: u64,
}

struct WorkerState {
    stream: TcpStream,
    jobs: usize,
    outstanding: Vec<u64>,
    last_seen: Instant,
}

struct LeaseState {
    unit: u64,
    worker: u64,
    deadline: Instant,
}

struct UnitState {
    spec: UnitSpec,
    batch: u64,
    index: usize,
    priority: u8,
    attempts: u32,
    last_error: String,
    done: bool,
    /// Worker of the most recent lease. Re-dispatches avoid it when any
    /// other worker has capacity: a lease usually expires because its
    /// holder is wedged, and a single-slot worker would otherwise queue
    /// the retry behind the very execution that timed out.
    last_worker: Option<u64>,
}

/// Ordered key for the pending queue: higher priority first, then FIFO
/// by unit id within a priority band (uids are allocated in submission
/// order, so the band order is the submission order).
fn pending_key(priority: u8, uid: u64) -> (u8, u64) {
    (255 - priority, uid)
}

struct BatchState {
    results: Vec<Option<Result<UnitOutcome, GridError>>>,
    remaining: usize,
}

struct State {
    pending: BTreeSet<(u8, u64)>,
    delayed: Vec<(Instant, u64)>,
    units: HashMap<u64, UnitState>,
    leases: HashMap<u64, LeaseState>,
    workers: HashMap<u64, WorkerState>,
    batches: HashMap<u64, BatchState>,
    next_unit: u64,
    next_seq: u64,
    next_batch: u64,
    next_worker: u64,
    stats: GridStats,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    cfg: GridConfig,
    /// Client-session router for v3 service frames; set once by
    /// `ppa-serve`, absent in one-shot / loopback runs.
    dispatch: OnceLock<Arc<dyn ConnDispatch>>,
}

/// A listening coordinator. Clone-free: share it behind an `Arc` to
/// submit batches from several threads at once.
pub struct Coordinator {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    dispatch_thread: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Binds `addr` (e.g. `"0.0.0.0:7171"` or `"127.0.0.1:0"`) and
    /// starts accepting workers.
    pub fn bind(addr: impl ToSocketAddrs, cfg: GridConfig) -> std::io::Result<Coordinator> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending: BTreeSet::new(),
                delayed: Vec::new(),
                units: HashMap::new(),
                leases: HashMap::new(),
                workers: HashMap::new(),
                batches: HashMap::new(),
                next_unit: 0,
                next_seq: 0,
                next_batch: 0,
                next_worker: 0,
                stats: GridStats::default(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            cfg,
            dispatch: OnceLock::new(),
        });
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("grid-accept".into())
                .spawn(move || accept_loop(shared, listener))
                .expect("spawning the grid accept thread")
        };
        let dispatch_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("grid-dispatch".into())
                .spawn(move || dispatch_loop(shared))
                .expect("spawning the grid dispatch thread")
        };
        Ok(Coordinator {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            dispatch_thread: Some(dispatch_thread),
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until at least `n` workers have connected, up to
    /// `timeout`. Returns whether the quorum was reached.
    pub fn wait_for_workers(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.stats.workers_joined as usize >= n {
                return true;
            }
            let now = Instant::now();
            if now >= deadline || state.shutdown {
                return false;
            }
            let (s, _) = self.shared.cv.wait_timeout(state, deadline - now).unwrap();
            state = s;
        }
    }

    /// Number of currently connected workers.
    pub fn live_workers(&self) -> usize {
        self.shared.state.lock().unwrap().workers.len()
    }

    /// A snapshot of the scheduler counters.
    pub fn stats(&self) -> GridStats {
        self.shared.state.lock().unwrap().stats.clone()
    }

    /// Installs the v3 client-session router. May be called once; a
    /// second call is ignored (the first router wins).
    pub fn set_dispatch(&self, dispatch: Arc<dyn ConnDispatch>) {
        let _ = self.shared.dispatch.set(dispatch);
    }

    /// Enqueues a batch of units at `priority` (higher is sooner) and
    /// returns its batch id without blocking. Collect outcomes with
    /// [`Coordinator::wait_slot`]; release the batch's results with
    /// [`Coordinator::drop_batch`] when done with them.
    pub fn submit_batch(&self, units: Vec<UnitSpec>, priority: u8) -> u64 {
        let n = units.len();
        let mut state = self.shared.state.lock().unwrap();
        let batch = state.next_batch;
        state.next_batch += 1;
        state.batches.insert(
            batch,
            BatchState {
                results: (0..n).map(|_| None).collect(),
                remaining: n,
            },
        );
        for (index, spec) in units.into_iter().enumerate() {
            let uid = state.next_unit;
            state.next_unit += 1;
            state.units.insert(
                uid,
                UnitState {
                    spec,
                    batch,
                    index,
                    priority,
                    attempts: 0,
                    last_error: String::new(),
                    done: false,
                    last_worker: None,
                },
            );
            state.pending.insert(pending_key(priority, uid));
        }
        self.shared.cv.notify_all();
        batch
    }

    /// Blocks until slot `index` of `batch` has an outcome and returns a
    /// clone of it (the slot stays readable until [`drop_batch`], so a
    /// caller whose downstream write failed can read it again).
    ///
    /// [`drop_batch`]: Coordinator::drop_batch
    pub fn wait_slot(&self, batch: u64, index: usize) -> Result<UnitOutcome, GridError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            match state.batches.get(&batch) {
                None => return Err(GridError::Aborted),
                Some(b) => {
                    if let Some(slot) = b.results.get(index) {
                        if let Some(result) = slot {
                            return result.clone();
                        }
                    } else {
                        return Err(GridError::Aborted);
                    }
                }
            }
            if state.shutdown {
                return Err(GridError::Aborted);
            }
            state = self.shared.cv.wait(state).unwrap();
        }
    }

    /// Releases a batch: its stored results are dropped and any of its
    /// units still queued are cancelled (leased units finish on their
    /// worker; the late result is suppressed as a duplicate).
    pub fn drop_batch(&self, batch: u64) {
        let mut state = self.shared.state.lock().unwrap();
        state.batches.remove(&batch);
        let doomed: Vec<(u64, u8)> = state
            .units
            .iter()
            .filter(|(_, u)| u.batch == batch)
            .map(|(&uid, u)| (uid, u.priority))
            .collect();
        for (uid, priority) in doomed {
            state.units.remove(&uid);
            state.pending.remove(&pending_key(priority, uid));
            state.delayed.retain(|&(_, d)| d != uid);
        }
        self.shared.cv.notify_all();
    }

    /// (queued, leased) unit counts — the daemon's depth gauges.
    pub fn queue_depth(&self) -> (usize, usize) {
        let state = self.shared.state.lock().unwrap();
        (
            state.pending.len() + state.delayed.len(),
            state.leases.len(),
        )
    }
}

impl UnitRunner for Coordinator {
    /// Submits a batch of units and blocks until every one has either a
    /// result or a terminal error. Outcomes come back **in submission
    /// order**; a failed unit yields `Err` for its slot only.
    fn run_units(&self, units: Vec<UnitSpec>) -> Vec<Result<UnitOutcome, GridError>> {
        if units.is_empty() {
            return Vec::new();
        }
        let n = units.len();
        let batch = self.submit_batch(units, DEFAULT_PRIORITY);
        let out = (0..n).map(|i| self.wait_slot(batch, i)).collect();
        self.drop_batch(batch);
        out
    }
}

impl Coordinator {
    /// Signals shutdown: workers receive [`Msg::Shutdown`], in-flight
    /// batches complete as [`GridError::Aborted`], the accept loop
    /// stops. Threads are joined on drop.
    pub fn shutdown(&self) {
        let streams: Vec<TcpStream>;
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            streams = state
                .workers
                .values()
                .filter_map(|w| w.stream.try_clone().ok())
                .collect();
            self.shared.cv.notify_all();
        }
        for mut s in streams {
            let _ = proto::write_msg(&mut s, &Msg::Shutdown);
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatch_thread.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.state.lock().unwrap().shutdown {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(shared.cfg.heartbeat_timeout * 2));
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("grid-worker-conn".into())
                    .spawn(move || reader_loop(shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn reader_loop(shared: Arc<Shared>, mut stream: TcpStream) {
    // The handshake: a worker's first frame is Hello, announcing
    // capacity. A v3 service frame instead marks a client session,
    // which is handed to the installed dispatcher (if any) — workers
    // and clients share one listening port.
    let jobs = match proto::read_msg(&mut stream) {
        Ok(Msg::Hello { jobs }) => (jobs as usize).max(1),
        Ok(msg @ (Msg::Submit { .. } | Msg::Query { .. } | Msg::Subscribe { .. })) => {
            if let Some(dispatch) = shared.dispatch.get() {
                let dispatch = Arc::clone(dispatch);
                dispatch.handle(msg, stream);
            } else {
                let _ = stream.shutdown(Shutdown::Both);
            }
            return;
        }
        _ => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    let wid;
    {
        let mut state = shared.state.lock().unwrap();
        if state.shutdown {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        wid = state.next_worker;
        state.next_worker += 1;
        let writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        state.workers.insert(
            wid,
            WorkerState {
                stream: writer,
                jobs,
                outstanding: Vec::new(),
                last_seen: Instant::now(),
            },
        );
        state.stats.workers_joined += 1;
        ppa_obs::registry::counter("grid.coord.worker.joined").inc();
        ppa_obs::registry::gauge("grid.coord.workers.live").set(state.workers.len() as f64);
        ppa_obs::info!("grid.coord", "worker {wid} joined with {jobs} job slot(s)");
        shared.cv.notify_all();
    }
    while let Ok(msg) = proto::read_msg(&mut stream) {
        if !handle_worker_msg(&shared, wid, msg) {
            break;
        }
    }
    worker_gone(&shared, wid);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Returns whether the connection should stay open.
fn handle_worker_msg(shared: &Arc<Shared>, wid: u64, msg: Msg) -> bool {
    let mut state = shared.state.lock().unwrap();
    if let Some(w) = state.workers.get_mut(&wid) {
        w.last_seen = Instant::now();
    } else {
        return false; // already declared dead
    }
    match msg {
        Msg::Heartbeat { inflight, executed } => {
            // Per-worker load gauges, carried on the liveness beacon.
            ppa_obs::registry::gauge(&format!("grid.coord.worker.{wid}.inflight"))
                .set(f64::from(inflight));
            ppa_obs::registry::gauge(&format!("grid.coord.worker.{wid}.executed"))
                .set(executed as f64);
        }
        Msg::UnitResult {
            seq,
            payload,
            elapsed_ns,
            ..
        } => {
            if let Some(lease) = state.leases.remove(&seq) {
                if let Some(w) = state.workers.get_mut(&lease.worker) {
                    w.outstanding.retain(|&s| s != seq);
                }
                // A missing unit means its batch was dropped (cancelled)
                // while this lease was in flight: suppress the result.
                let slot = state.units.get_mut(&lease.unit).map(|u| {
                    u.done = true;
                    (u.batch, u.index, u.attempts)
                });
                let Some((batch, index, attempts)) = slot else {
                    state.stats.duplicates += 1;
                    ppa_obs::registry::counter("grid.coord.units.duplicate").inc();
                    return true;
                };
                state.stats.completed += 1;
                ppa_obs::registry::counter("grid.coord.units.completed").inc();
                ppa_obs::registry::summary("grid.coord.unit.elapsed_ns").record(elapsed_ns as f64);
                complete(
                    &mut state,
                    batch,
                    index,
                    Ok(UnitOutcome {
                        payload,
                        elapsed_ns,
                        attempts,
                    }),
                );
                shared.cv.notify_all();
            } else {
                // A superseded lease finished after re-dispatch: the
                // first recorded result won, drop this one.
                state.stats.duplicates += 1;
                ppa_obs::registry::counter("grid.coord.units.duplicate").inc();
            }
        }
        Msg::UnitError { seq, message, .. } => {
            if let Some(lease) = state.leases.remove(&seq) {
                if let Some(w) = state.workers.get_mut(&lease.worker) {
                    w.outstanding.retain(|&s| s != seq);
                }
                state.stats.unit_errors += 1;
                ppa_obs::registry::counter("grid.coord.units.failed").inc();
                ppa_obs::warn!(
                    "grid.coord",
                    "unit seq={seq} failed on worker {wid}: {message}"
                );
                requeue_or_fail(shared, &mut state, lease.unit, message);
            } else {
                state.stats.duplicates += 1;
                ppa_obs::registry::counter("grid.coord.units.duplicate").inc();
            }
        }
        Msg::Shutdown => return false,
        // Hello twice, coordinator-only frames, or v3 service frames on
        // an established worker connection: protocol misuse.
        Msg::Hello { .. }
        | Msg::Lease { .. }
        | Msg::Submit { .. }
        | Msg::Query { .. }
        | Msg::Subscribe { .. }
        | Msg::Result { .. }
        | Msg::CacheStats { .. } => return false,
    }
    true
}

fn worker_gone(shared: &Arc<Shared>, wid: u64) {
    let mut state = shared.state.lock().unwrap();
    let Some(w) = state.workers.remove(&wid) else {
        return;
    };
    state.stats.workers_lost += 1;
    ppa_obs::registry::counter("grid.coord.worker.lost").inc();
    ppa_obs::registry::gauge("grid.coord.workers.live").set(state.workers.len() as f64);
    ppa_obs::warn!(
        "grid.coord",
        "worker {wid} disconnected with {} unit(s) in flight",
        w.outstanding.len()
    );
    let _ = w.stream.shutdown(Shutdown::Both);
    for seq in w.outstanding {
        if let Some(lease) = state.leases.remove(&seq) {
            state.stats.redispatched += 1;
            ppa_obs::registry::counter("grid.coord.units.redispatched").inc();
            requeue_or_fail(
                shared,
                &mut state,
                lease.unit,
                "worker connection lost".into(),
            );
        }
    }
    shared.cv.notify_all();
}

/// A unit's current attempt ended without a recorded result: either
/// schedule another dispatch (after a backoff) or give up.
fn requeue_or_fail(shared: &Arc<Shared>, state: &mut State, uid: u64, message: String) {
    let (batch, index, give_up, tag, attempts) = {
        // A missing unit means its batch was dropped while the attempt
        // was in flight; there is nothing left to retry or fail.
        let Some(u) = state.units.get_mut(&uid) else {
            return;
        };
        if u.done {
            return;
        }
        u.last_error = message;
        (
            u.batch,
            u.index,
            u.attempts >= shared.cfg.max_attempts,
            u.spec.tag.clone(),
            u.attempts,
        )
    };
    if give_up {
        let message = {
            let u = state.units.get_mut(&uid).expect("unit exists");
            u.done = true;
            u.last_error.clone()
        };
        ppa_obs::registry::counter("grid.coord.units.exhausted").inc();
        ppa_obs::error!(
            "grid.coord",
            "unit '{tag}' failed after {attempts} attempts: {message}"
        );
        complete(
            state,
            batch,
            index,
            Err(GridError::UnitFailed {
                tag,
                attempts,
                message,
            }),
        );
        shared.cv.notify_all();
    } else {
        ppa_obs::registry::counter("grid.coord.units.retried").inc();
        let delay = shared.cfg.retry_backoff * attempts.max(1);
        state.delayed.push((Instant::now() + delay, uid));
    }
}

fn complete(state: &mut State, batch: u64, index: usize, result: Result<UnitOutcome, GridError>) {
    if let Some(b) = state.batches.get_mut(&batch) {
        if b.results[index].is_none() {
            b.results[index] = Some(result);
            b.remaining -= 1;
        }
    }
}

fn dispatch_loop(shared: Arc<Shared>) {
    loop {
        let mut outbox: Vec<(u64, TcpStream, Msg)> = Vec::new();
        {
            let mut state = shared.state.lock().unwrap();
            if state.shutdown {
                return;
            }
            let now = Instant::now();

            // Backed-off units whose delay has elapsed become pending
            // again, oldest first.
            let mut due: Vec<u64> = Vec::new();
            state.delayed.retain(|&(ready, uid)| {
                if ready <= now {
                    due.push(uid);
                    false
                } else {
                    true
                }
            });
            for uid in due {
                // The unit may have been cancelled while backing off.
                if let Some(priority) = state.units.get(&uid).map(|u| u.priority) {
                    state.pending.insert(pending_key(priority, uid));
                }
            }

            // Expired leases are re-dispatched elsewhere.
            let expired: Vec<u64> = state
                .leases
                .iter()
                .filter(|(_, l)| l.deadline <= now)
                .map(|(&seq, _)| seq)
                .collect();
            for seq in expired {
                if let Some(lease) = state.leases.remove(&seq) {
                    if let Some(w) = state.workers.get_mut(&lease.worker) {
                        w.outstanding.retain(|&s| s != seq);
                    }
                    state.stats.redispatched += 1;
                    ppa_obs::registry::counter("grid.coord.lease.expired").inc();
                    ppa_obs::registry::counter("grid.coord.units.redispatched").inc();
                    ppa_obs::warn!(
                        "grid.coord",
                        "lease seq={seq} expired on worker {}; re-dispatching",
                        lease.worker
                    );
                    requeue_or_fail(
                        &shared,
                        &mut state,
                        lease.unit,
                        "lease deadline expired".into(),
                    );
                }
            }

            // Workers that stopped heartbeating are dead; their leases
            // move on. (An EOF on the connection catches most failures
            // faster — this is the backstop for wedged-but-open pipes.)
            let stale: Vec<u64> = state
                .workers
                .iter()
                .filter(|(_, w)| now.duration_since(w.last_seen) > shared.cfg.heartbeat_timeout)
                .map(|(&wid, _)| wid)
                .collect();
            for wid in stale {
                if let Some(w) = state.workers.remove(&wid) {
                    state.stats.workers_lost += 1;
                    ppa_obs::registry::counter("grid.coord.worker.lost").inc();
                    ppa_obs::registry::counter("grid.coord.worker.heartbeat_lost").inc();
                    ppa_obs::registry::gauge("grid.coord.workers.live")
                        .set(state.workers.len() as f64);
                    ppa_obs::warn!(
                        "grid.coord",
                        "worker {wid} stopped heartbeating; declared dead"
                    );
                    let _ = w.stream.shutdown(Shutdown::Both);
                    for seq in w.outstanding {
                        if let Some(lease) = state.leases.remove(&seq) {
                            state.stats.redispatched += 1;
                            ppa_obs::registry::counter("grid.coord.units.redispatched").inc();
                            requeue_or_fail(
                                &shared,
                                &mut state,
                                lease.unit,
                                "worker stopped heartbeating".into(),
                            );
                        }
                    }
                }
            }

            // Lease pending units (highest priority first, FIFO within
            // a band) to the least-loaded workers with spare capacity.
            while let Some(&key) = state.pending.iter().next() {
                let uid = key.1;
                let avoid = state.units.get(&uid).and_then(|u| u.last_worker);
                let target = state
                    .workers
                    .iter()
                    .filter(|(_, w)| w.outstanding.len() < w.jobs)
                    .min_by_key(|(&wid, w)| (Some(wid) == avoid, w.outstanding.len(), wid))
                    .map(|(&wid, _)| wid);
                let Some(wid) = target else { break };
                state.pending.remove(&key);
                let seq = state.next_seq;
                state.next_seq += 1;
                let (tag, payload, attempt) = {
                    let u = state.units.get_mut(&uid).expect("pending unit exists");
                    u.attempts += 1;
                    u.last_worker = Some(wid);
                    (u.spec.tag.clone(), u.spec.payload.clone(), u.attempts)
                };
                state.leases.insert(
                    seq,
                    LeaseState {
                        unit: uid,
                        worker: wid,
                        deadline: now + shared.cfg.lease_timeout,
                    },
                );
                state.stats.dispatched += 1;
                ppa_obs::registry::counter("grid.coord.units.dispatched").inc();
                let w = state.workers.get_mut(&wid).expect("target worker exists");
                w.outstanding.push(seq);
                if let Ok(stream) = w.stream.try_clone() {
                    outbox.push((
                        wid,
                        stream,
                        Msg::Lease {
                            seq,
                            attempt,
                            tag,
                            payload,
                        },
                    ));
                }
            }
        }

        // Socket writes happen outside the state lock; a failed write
        // means the worker is gone and its leases re-queue.
        let mut failed: Vec<u64> = Vec::new();
        for (wid, mut stream, msg) in outbox {
            if proto::write_msg(&mut stream, &msg).is_err() {
                failed.push(wid);
            }
        }
        for wid in failed {
            worker_gone(&shared, wid);
        }

        let state = shared.state.lock().unwrap();
        if state.shutdown {
            return;
        }
        let _ = shared
            .cv
            .wait_timeout(state, Duration::from_millis(25))
            .unwrap();
    }
}
