//! The loopback self-test mode: a coordinator plus N in-process worker
//! threads talking over `127.0.0.1`, exercising the full wire protocol,
//! lease bookkeeping, and failure recovery without a second host.

use crate::coord::{Coordinator, GridConfig, GridError, UnitOutcome, UnitRunner, UnitSpec};
use crate::worker::{run_worker, Executor, WorkerOptions, WorkerReport};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running loopback grid. Dropping it shuts the coordinator down and
/// reaps the worker threads.
pub struct Loopback {
    coordinator: Arc<Coordinator>,
    workers: Vec<JoinHandle<Result<WorkerReport, crate::proto::ProtoError>>>,
}

/// Starts a coordinator on an OS-assigned loopback port plus one worker
/// thread per entry of `workers`, all sharing `exec`. Returns once
/// every worker has completed its handshake.
pub fn start(
    workers: Vec<WorkerOptions>,
    exec: Arc<dyn Executor>,
    cfg: GridConfig,
) -> std::io::Result<Loopback> {
    let n = workers.len();
    let coordinator = Arc::new(Coordinator::bind("127.0.0.1:0", cfg)?);
    let addr = coordinator.local_addr();
    let handles = workers
        .into_iter()
        .enumerate()
        .map(|(i, opts)| {
            let exec = Arc::clone(&exec);
            std::thread::Builder::new()
                .name(format!("grid-loopback-worker-{i}"))
                .spawn(move || run_worker(addr, opts, exec))
                .expect("spawning a loopback worker thread")
        })
        .collect();
    if !coordinator.wait_for_workers(n, Duration::from_secs(10)) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "loopback workers did not all connect",
        ));
    }
    Ok(Loopback {
        coordinator,
        workers: handles,
    })
}

/// `start` with `n` identical default workers, each running `jobs`
/// units concurrently.
pub fn start_uniform(
    n: usize,
    jobs: usize,
    exec: Arc<dyn Executor>,
    cfg: GridConfig,
) -> std::io::Result<Loopback> {
    let opts = WorkerOptions {
        jobs,
        ..WorkerOptions::default()
    };
    start(vec![opts; n.max(1)], exec, cfg)
}

impl Loopback {
    /// The embedded coordinator, shareable across submitting threads.
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coordinator
    }

    /// Submits a batch through the embedded coordinator.
    pub fn run_units(&self, units: Vec<UnitSpec>) -> Vec<Result<UnitOutcome, GridError>> {
        self.coordinator.run_units(units)
    }

    /// Shuts down and returns each worker's report (connection-level
    /// failures are dropped).
    pub fn shutdown(mut self) -> Vec<WorkerReport> {
        self.coordinator.shutdown();
        self.workers
            .drain(..)
            .filter_map(|h| h.join().ok().and_then(Result::ok))
            .collect()
    }
}

impl Drop for Loopback {
    fn drop(&mut self) {
        self.coordinator.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}
