//! `ppa-grid` — a multi-host distributed experiment runner for the PPA
//! harnesses, built (per the offline dependency policy in ROADMAP.md)
//! from `std::net` alone.
//!
//! The scale-out story so far stopped at one machine: `ppa-pool` fans
//! per-app simulations and oracle cells across local cores. This crate
//! adds the cross-host axis:
//!
//! * [`proto`] — a length-prefixed binary wire protocol with a
//!   version/magic header and a per-frame checksum; every malformed
//!   frame decodes to a typed [`proto::ProtoError`], never a panic.
//! * [`Coordinator`] — leases serialized work units to workers with
//!   deadlines, tracks liveness via heartbeats, re-dispatches units on
//!   timeout, error, or connection loss (bounded retries with backoff),
//!   and suppresses duplicate results so each unit completes exactly
//!   once. Results return in submission order, which is what makes
//!   distributed runs byte-identical to local ones.
//! * [`run_worker`] — connects to a coordinator and executes units on a
//!   local `ppa-pool`, streaming results and timings back; its
//!   [`WorkerOptions::die_after`] hook injects mid-lease crashes for
//!   the robustness tests.
//! * [`loopback`] — coordinator + N in-process workers over
//!   `127.0.0.1`, the self-test mode `ci.sh` smokes.
//!
//! The unit vocabulary (tags and payload layouts) belongs to the
//! callers: `ppa-bench` serializes per-app experiment cells, and
//! `ppa-verify` serializes (app × failure-point) oracle cells. The
//! `ppa-grid` binary (`crates/gridcli`) wires both into `serve` /
//! `work` / `selftest` subcommands, and `repro` / `ppa-verify` accept
//! `--grid` (or `PPA_GRID`) to distribute their own runs.

pub mod coord;
pub mod loopback;
pub mod proto;
pub mod worker;

pub use coord::{
    ConnDispatch, Coordinator, GridConfig, GridError, GridStats, UnitOutcome, UnitRunner, UnitSpec,
};
pub use proto::ProtoError;
pub use worker::{run_worker, Executor, WorkerOptions, WorkerReport};

/// How a harness run uses the grid, parsed from `--grid` / `PPA_GRID`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridMode {
    /// No grid: everything runs in-process (the default).
    Off,
    /// Self-test mode: spawn this many in-process workers over
    /// `127.0.0.1` and distribute to them.
    Loopback(usize),
    /// Bind this address and distribute to externally connected
    /// `ppa-grid work` processes.
    Serve(String),
}

/// Parses a `--grid` value: `off`, `loopback:N`, or `serve:HOST:PORT`.
pub fn parse_grid_mode(s: &str) -> Result<GridMode, String> {
    if s.is_empty() || s == "off" {
        return Ok(GridMode::Off);
    }
    if let Some(n) = s.strip_prefix("loopback:") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("bad loopback worker count in --grid value '{s}'"))?;
        if n == 0 {
            return Err("loopback mode needs at least one worker".into());
        }
        return Ok(GridMode::Loopback(n));
    }
    if let Some(addr) = s.strip_prefix("serve:") {
        if addr.is_empty() {
            return Err("serve mode needs a listen address, e.g. serve:0.0.0.0:7171".into());
        }
        return Ok(GridMode::Serve(addr.to_string()));
    }
    Err(format!(
        "bad --grid value '{s}' (expected off, loopback:N, or serve:HOST:PORT)"
    ))
}

/// Reads [`GridMode`] from the `PPA_GRID` environment variable; unset
/// means [`GridMode::Off`].
pub fn grid_mode_from_env() -> Result<GridMode, String> {
    match std::env::var("PPA_GRID") {
        Ok(v) => parse_grid_mode(&v),
        Err(_) => Ok(GridMode::Off),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_mode_parses() {
        assert_eq!(parse_grid_mode("off"), Ok(GridMode::Off));
        assert_eq!(parse_grid_mode(""), Ok(GridMode::Off));
        assert_eq!(parse_grid_mode("loopback:4"), Ok(GridMode::Loopback(4)));
        assert_eq!(
            parse_grid_mode("serve:0.0.0.0:7171"),
            Ok(GridMode::Serve("0.0.0.0:7171".into()))
        );
        assert!(parse_grid_mode("loopback:0").is_err());
        assert!(parse_grid_mode("loopback:x").is_err());
        assert!(parse_grid_mode("serve:").is_err());
        assert!(parse_grid_mode("cluster").is_err());
    }
}
