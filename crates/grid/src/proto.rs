//! The grid wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is
//!
//! ```text
//! [magic u32][version u16][type u8][flags u8][payload len u32]
//! [payload ...][checksum u32]
//! ```
//!
//! all little-endian, with the checksum (FNV-1a over header + payload)
//! trailing so a torn write is always detectable. Decoding is total:
//! every malformed input — wrong magic, stale version, oversized or
//! truncated frame, flipped payload bits, unknown message type, garbage
//! inside a payload — maps to a typed [`ProtoError`], never a panic and
//! never a silently accepted frame. The property tests in
//! `tests/proto.rs` fuzz exactly these cases with `ppa-prng`.
//!
//! Payload contents use the same primitive encoding ([`ByteWriter`] /
//! [`ByteReader`]), which `ppa-bench` and `ppa-verify` reuse for their
//! work-unit payloads so the whole stack shares one set of typed decode
//! errors.

use std::io::{Read, Write};

/// Frame magic: `"PPAG"` as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"PPAG");

/// Current protocol version. A coordinator and worker must match
/// exactly; there is no negotiation. Bumped to 2 when [`Msg::Heartbeat`]
/// grew the `inflight`/`executed` telemetry fields.
pub const VERSION: u16 = 2;

/// Upper bound on a frame payload. Larger lengths are rejected before
/// any allocation, so a corrupt length prefix cannot OOM the peer.
pub const MAX_PAYLOAD: u32 = 64 << 20;

const HEADER_LEN: usize = 12;

/// Why a frame (or payload) failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The frame does not start with [`MAGIC`].
    BadMagic(u32),
    /// The peer speaks a different protocol version.
    BadVersion(u16),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The input ends before the frame does.
    Truncated,
    /// The trailing checksum does not match the frame contents.
    BadChecksum { expected: u32, found: u32 },
    /// The frame is intact but its message type is unknown.
    UnknownType(u8),
    /// A payload field failed to parse (bad UTF-8, trailing bytes, ...).
    Malformed(&'static str),
    /// The underlying socket failed.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::Oversized(n) => write!(f, "frame payload of {n} bytes exceeds the cap"),
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "frame checksum mismatch: expected {expected:#010x}, found {found:#010x}"
                )
            }
            ProtoError::UnknownType(t) => write!(f, "unknown message type {t}"),
            ProtoError::Malformed(what) => write!(f, "malformed payload: {what}"),
            ProtoError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// FNV-1a over `bytes`; the per-frame checksum.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Worker -> coordinator, first frame on a connection: how many
    /// units the worker wants in flight at once.
    Hello { jobs: u32 },
    /// Coordinator -> worker: run one work unit. `seq` identifies this
    /// lease (not the unit — a re-dispatched unit gets a fresh `seq`).
    Lease {
        seq: u64,
        attempt: u32,
        tag: String,
        payload: Vec<u8>,
    },
    /// Worker -> coordinator: the unit finished, result attached.
    UnitResult {
        seq: u64,
        attempt: u32,
        elapsed_ns: u64,
        payload: Vec<u8>,
    },
    /// Worker -> coordinator: the unit failed (execution error or
    /// panic); the coordinator decides whether to retry.
    UnitError {
        seq: u64,
        attempt: u32,
        message: String,
    },
    /// Worker -> coordinator liveness beacon, carrying a telemetry
    /// snapshot: units currently leased to the worker and units it has
    /// finished since connecting. The coordinator mirrors these into
    /// the `grid.coord.worker.<id>.*` gauges.
    Heartbeat { inflight: u32, executed: u64 },
    /// Coordinator -> worker: drain and disconnect.
    Shutdown,
}

const TY_HELLO: u8 = 1;
const TY_LEASE: u8 = 2;
const TY_RESULT: u8 = 3;
const TY_ERROR: u8 = 4;
const TY_HEARTBEAT: u8 = 5;
const TY_SHUTDOWN: u8 = 6;

/// Encodes one message as a complete frame.
pub fn encode(msg: &Msg) -> Vec<u8> {
    let mut body = ByteWriter::new();
    let ty = match msg {
        Msg::Hello { jobs } => {
            body.put_u32(*jobs);
            TY_HELLO
        }
        Msg::Lease {
            seq,
            attempt,
            tag,
            payload,
        } => {
            body.put_u64(*seq);
            body.put_u32(*attempt);
            body.put_str(tag);
            body.put_bytes(payload);
            TY_LEASE
        }
        Msg::UnitResult {
            seq,
            attempt,
            elapsed_ns,
            payload,
        } => {
            body.put_u64(*seq);
            body.put_u32(*attempt);
            body.put_u64(*elapsed_ns);
            body.put_bytes(payload);
            TY_RESULT
        }
        Msg::UnitError {
            seq,
            attempt,
            message,
        } => {
            body.put_u64(*seq);
            body.put_u32(*attempt);
            body.put_str(message);
            TY_ERROR
        }
        Msg::Heartbeat { inflight, executed } => {
            body.put_u32(*inflight);
            body.put_u64(*executed);
            TY_HEARTBEAT
        }
        Msg::Shutdown => TY_SHUTDOWN,
    };
    let body = body.into_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + 4);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(ty);
    out.push(0); // flags, reserved
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    let ck = checksum(&out);
    out.extend_from_slice(&ck.to_le_bytes());
    out
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Decodes one frame from the front of `buf`, returning the message and
/// the number of bytes consumed. Validation order: magic, version,
/// length bounds, completeness, checksum, message type, payload fields.
pub fn decode(buf: &[u8]) -> Result<(Msg, usize), ProtoError> {
    if buf.len() < HEADER_LEN {
        return Err(ProtoError::Truncated);
    }
    let magic = le_u32(&buf[0..4]);
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let version = le_u16(&buf[4..6]);
    if version != VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let ty = buf[6];
    let len = le_u32(&buf[8..12]);
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized(len));
    }
    let total = HEADER_LEN + len as usize + 4;
    if buf.len() < total {
        return Err(ProtoError::Truncated);
    }
    let found = le_u32(&buf[total - 4..total]);
    let expected = checksum(&buf[..total - 4]);
    if found != expected {
        return Err(ProtoError::BadChecksum { expected, found });
    }
    let mut r = ByteReader::new(&buf[HEADER_LEN..total - 4]);
    let msg = match ty {
        TY_HELLO => Msg::Hello { jobs: r.u32()? },
        TY_LEASE => Msg::Lease {
            seq: r.u64()?,
            attempt: r.u32()?,
            tag: r.str()?,
            payload: r.bytes()?.to_vec(),
        },
        TY_RESULT => Msg::UnitResult {
            seq: r.u64()?,
            attempt: r.u32()?,
            elapsed_ns: r.u64()?,
            payload: r.bytes()?.to_vec(),
        },
        TY_ERROR => Msg::UnitError {
            seq: r.u64()?,
            attempt: r.u32()?,
            message: r.str()?,
        },
        TY_HEARTBEAT => Msg::Heartbeat {
            inflight: r.u32()?,
            executed: r.u64()?,
        },
        TY_SHUTDOWN => Msg::Shutdown,
        other => return Err(ProtoError::UnknownType(other)),
    };
    r.finish()?;
    Ok((msg, total))
}

/// Reads exactly one frame from a stream. A clean EOF (or any socket
/// failure) surfaces as [`ProtoError::Io`].
pub fn read_msg(r: &mut impl Read) -> Result<Msg, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)
        .map_err(|e| ProtoError::Io(e.kind()))?;
    // Validate the header before trusting the length prefix.
    let magic = le_u32(&header[0..4]);
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let version = le_u16(&header[4..6]);
    if version != VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let len = le_u32(&header[8..12]);
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized(len));
    }
    let mut frame = vec![0u8; HEADER_LEN + len as usize + 4];
    frame[..HEADER_LEN].copy_from_slice(&header);
    r.read_exact(&mut frame[HEADER_LEN..])
        .map_err(|e| ProtoError::Io(e.kind()))?;
    let (msg, consumed) = decode(&frame)?;
    debug_assert_eq!(consumed, frame.len());
    Ok(msg)
}

/// Writes one frame to a stream.
pub fn write_msg(w: &mut impl Write, msg: &Msg) -> Result<(), ProtoError> {
    let frame = encode(msg);
    w.write_all(&frame).map_err(|e| ProtoError::Io(e.kind()))?;
    w.flush().map_err(|e| ProtoError::Io(e.kind()))
}

/// Little-endian primitive writer for frame and work-unit payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        ByteWriter::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Stores the exact bit pattern, so results round-trip bit-for-bit.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian primitive reader; every method fails typed, never
/// panics, on short or garbage input.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(le_u32(self.take(4)?))
    }

    pub fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], ProtoError> {
        let n = self.u32()? as usize;
        if n > MAX_PAYLOAD as usize {
            return Err(ProtoError::Oversized(n as u32));
        }
        self.take(n)
    }

    pub fn str(&mut self) -> Result<String, ProtoError> {
        let b = self.bytes()?;
        std::str::from_utf8(b)
            .map(str::to_owned)
            .map_err(|_| ProtoError::Malformed("invalid utf-8 in string field"))
    }

    /// Rejects trailing garbage: a valid payload is consumed exactly.
    pub fn finish(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes after payload"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Msg {
        Msg::Lease {
            seq: 7,
            attempt: 2,
            tag: "repro.app".into(),
            payload: vec![1, 2, 3, 250],
        }
    }

    #[test]
    fn frames_round_trip() {
        for msg in [
            Msg::Hello { jobs: 8 },
            sample(),
            Msg::UnitResult {
                seq: 7,
                attempt: 2,
                elapsed_ns: 123,
                payload: vec![9; 100],
            },
            Msg::UnitError {
                seq: 1,
                attempt: 4,
                message: "sim panicked".into(),
            },
            Msg::Heartbeat {
                inflight: 3,
                executed: 41,
            },
            Msg::Shutdown,
        ] {
            let frame = encode(&msg);
            let (back, used) = decode(&frame).expect("round trip");
            assert_eq!(back, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn stale_version_is_rejected() {
        let mut frame = encode(&Msg::Shutdown);
        frame[4] = VERSION as u8 + 1;
        assert_eq!(decode(&frame), Err(ProtoError::BadVersion(VERSION + 1)));
    }

    #[test]
    fn flipped_payload_bit_is_rejected() {
        let frame = encode(&sample());
        let mut bad = frame.clone();
        bad[HEADER_LEN + 3] ^= 0x40;
        assert!(matches!(decode(&bad), Err(ProtoError::BadChecksum { .. })));
    }

    #[test]
    fn truncation_is_rejected() {
        let frame = encode(&sample());
        for cut in [0, 3, HEADER_LEN, frame.len() - 1] {
            assert_eq!(decode(&frame[..cut]), Err(ProtoError::Truncated));
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut frame = encode(&Msg::Shutdown);
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&frame), Err(ProtoError::Oversized(u32::MAX)));
    }

    #[test]
    fn streamed_read_matches_buffer_decode() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode(&Msg::Hello { jobs: 3 }));
        stream.extend_from_slice(&encode(&Msg::Shutdown));
        let mut cursor = &stream[..];
        assert_eq!(read_msg(&mut cursor).unwrap(), Msg::Hello { jobs: 3 });
        assert_eq!(read_msg(&mut cursor).unwrap(), Msg::Shutdown);
        assert!(matches!(read_msg(&mut cursor), Err(ProtoError::Io(_))));
    }
}
