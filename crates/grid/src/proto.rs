//! The grid wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is
//!
//! ```text
//! [magic u32][version u16][type u8][flags u8][payload len u32]
//! [payload ...][checksum u32]
//! ```
//!
//! all little-endian, with the checksum (FNV-1a over header + payload)
//! trailing so a torn write is always detectable. Decoding is total:
//! every malformed input — wrong magic, stale version, oversized or
//! truncated frame, flipped payload bits, unknown message type, garbage
//! inside a payload — maps to a typed [`ProtoError`], never a panic and
//! never a silently accepted frame. The property tests in
//! `tests/proto.rs` fuzz exactly these cases with `ppa-prng`.
//!
//! Versioning is negotiated per frame: every message type has a fixed
//! minimum protocol version ([`frame_version`]), frames are stamped with
//! exactly that version, and a decoder accepts any version it knows.
//! The worker vocabulary (`Hello`..`Shutdown`) is v2, so v2 workers keep
//! inter-operating with a v3 `ppa-serve` coordinator untouched; the
//! service vocabulary ([`Msg::Submit`], [`Msg::Query`],
//! [`Msg::Subscribe`], [`Msg::Result`], [`Msg::CacheStats`]) is v3, so a
//! v2-only peer rejects it with [`ProtoError::BadVersion`] instead of
//! mis-parsing it.
//!
//! Payload contents use the same primitive encoding ([`ByteWriter`] /
//! [`ByteReader`]), which `ppa-bench` and `ppa-verify` reuse for their
//! work-unit payloads so the whole stack shares one set of typed decode
//! errors.

use std::io::{Read, Write};

/// Frame magic: `"PPAG"` as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"PPAG");

/// Protocol version of the worker vocabulary. Bumped to 2 when
/// [`Msg::Heartbeat`] grew the `inflight`/`executed` telemetry fields.
pub const VERSION: u16 = 2;

/// Protocol version of the service vocabulary (`ppa-serve` client
/// frames: submit/query/subscribe/result/cache-stats).
pub const VERSION_V3: u16 = 3;

/// In a [`Msg::Result`] frame, this `index` marks a service-level
/// rejection (e.g. a subscription to a submission the daemon does not
/// know) rather than a unit outcome; the payload carries the reason.
pub const RESULT_NO_SUCH_SUBMISSION: u32 = u32::MAX;

/// `Msg::Query` kinds: a cache/queue statistics probe, and a graceful
/// checkpoint-and-exit request.
pub const QUERY_STATS: u8 = 0;
pub const QUERY_STOP: u8 = 1;

/// Upper bound on a frame payload. Larger lengths are rejected before
/// any allocation, so a corrupt length prefix cannot OOM the peer.
pub const MAX_PAYLOAD: u32 = 64 << 20;

const HEADER_LEN: usize = 12;

/// Why a frame (or payload) failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The frame does not start with [`MAGIC`].
    BadMagic(u32),
    /// The peer speaks a different protocol version.
    BadVersion(u16),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The input ends before the frame does.
    Truncated,
    /// The trailing checksum does not match the frame contents.
    BadChecksum { expected: u32, found: u32 },
    /// The frame is intact but its message type is unknown.
    UnknownType(u8),
    /// A payload field failed to parse (bad UTF-8, trailing bytes, ...).
    Malformed(&'static str),
    /// The underlying socket failed.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::Oversized(n) => write!(f, "frame payload of {n} bytes exceeds the cap"),
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "frame checksum mismatch: expected {expected:#010x}, found {found:#010x}"
                )
            }
            ProtoError::UnknownType(t) => write!(f, "unknown message type {t}"),
            ProtoError::Malformed(what) => write!(f, "malformed payload: {what}"),
            ProtoError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// FNV-1a over `bytes`; the per-frame checksum.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Worker -> coordinator, first frame on a connection: how many
    /// units the worker wants in flight at once.
    Hello { jobs: u32 },
    /// Coordinator -> worker: run one work unit. `seq` identifies this
    /// lease (not the unit — a re-dispatched unit gets a fresh `seq`).
    Lease {
        seq: u64,
        attempt: u32,
        tag: String,
        payload: Vec<u8>,
    },
    /// Worker -> coordinator: the unit finished, result attached.
    UnitResult {
        seq: u64,
        attempt: u32,
        elapsed_ns: u64,
        payload: Vec<u8>,
    },
    /// Worker -> coordinator: the unit failed (execution error or
    /// panic); the coordinator decides whether to retry.
    UnitError {
        seq: u64,
        attempt: u32,
        message: String,
    },
    /// Worker -> coordinator liveness beacon, carrying a telemetry
    /// snapshot: units currently leased to the worker and units it has
    /// finished since connecting. The coordinator mirrors these into
    /// the `grid.coord.worker.<id>.*` gauges.
    Heartbeat { inflight: u32, executed: u64 },
    /// Coordinator -> worker: drain and disconnect.
    Shutdown,
    /// Client -> daemon (v3): submit a batch of work units. `client` is
    /// a caller-chosen stable identity and `submission` a per-client
    /// monotonic id; together they name the batch across reconnects.
    /// Higher `priority` dispatches sooner.
    Submit {
        client: u64,
        submission: u64,
        priority: u8,
        units: Vec<(String, Vec<u8>)>,
    },
    /// Client -> daemon (v3): request [`Msg::CacheStats`]
    /// ([`QUERY_STATS`]) or ask the daemon to checkpoint and exit
    /// ([`QUERY_STOP`]).
    Query { what: u8 },
    /// Client -> daemon (v3): re-attach to an earlier submission after a
    /// reconnect and stream its results from `from_index` on.
    Subscribe {
        client: u64,
        submission: u64,
        from_index: u32,
    },
    /// Daemon -> client (v3): one unit's outcome, streamed strictly in
    /// submission-index order. `ok == false` makes the payload a UTF-8
    /// error message (or, with `index == RESULT_NO_SUCH_SUBMISSION`, a
    /// service-level rejection). `cached` records a content-addressed
    /// cache hit — invisible on stdout, visible in telemetry.
    Result {
        submission: u64,
        index: u32,
        ok: bool,
        cached: bool,
        attempts: u32,
        elapsed_ns: u64,
        payload: Vec<u8>,
    },
    /// Daemon -> client (v3): the service counters, answering
    /// [`Msg::Query`].
    CacheStats {
        hits: u64,
        misses: u64,
        entries: u64,
        queue_depth: u64,
        inflight: u64,
        clients: u64,
        submissions: u64,
        workers: u64,
    },
}

const TY_HELLO: u8 = 1;
const TY_LEASE: u8 = 2;
const TY_RESULT: u8 = 3;
const TY_ERROR: u8 = 4;
const TY_HEARTBEAT: u8 = 5;
const TY_SHUTDOWN: u8 = 6;
const TY_SUBMIT: u8 = 7;
const TY_QUERY: u8 = 8;
const TY_SUBSCRIBE: u8 = 9;
const TY_SERVE_RESULT: u8 = 10;
const TY_CACHE_STATS: u8 = 11;

/// The minimum (and stamped) protocol version of each message type:
/// worker frames are v2, service frames v3.
pub fn frame_version(ty: u8) -> u16 {
    if ty >= TY_SUBMIT {
        VERSION_V3
    } else {
        VERSION
    }
}

/// Encodes one message as a complete frame.
pub fn encode(msg: &Msg) -> Vec<u8> {
    let mut body = ByteWriter::new();
    let ty = match msg {
        Msg::Hello { jobs } => {
            body.put_u32(*jobs);
            TY_HELLO
        }
        Msg::Lease {
            seq,
            attempt,
            tag,
            payload,
        } => {
            body.put_u64(*seq);
            body.put_u32(*attempt);
            body.put_str(tag);
            body.put_bytes(payload);
            TY_LEASE
        }
        Msg::UnitResult {
            seq,
            attempt,
            elapsed_ns,
            payload,
        } => {
            body.put_u64(*seq);
            body.put_u32(*attempt);
            body.put_u64(*elapsed_ns);
            body.put_bytes(payload);
            TY_RESULT
        }
        Msg::UnitError {
            seq,
            attempt,
            message,
        } => {
            body.put_u64(*seq);
            body.put_u32(*attempt);
            body.put_str(message);
            TY_ERROR
        }
        Msg::Heartbeat { inflight, executed } => {
            body.put_u32(*inflight);
            body.put_u64(*executed);
            TY_HEARTBEAT
        }
        Msg::Shutdown => TY_SHUTDOWN,
        Msg::Submit {
            client,
            submission,
            priority,
            units,
        } => {
            body.put_u64(*client);
            body.put_u64(*submission);
            body.put_u8(*priority);
            body.put_u32(units.len() as u32);
            for (tag, payload) in units {
                body.put_str(tag);
                body.put_bytes(payload);
            }
            TY_SUBMIT
        }
        Msg::Query { what } => {
            body.put_u8(*what);
            TY_QUERY
        }
        Msg::Subscribe {
            client,
            submission,
            from_index,
        } => {
            body.put_u64(*client);
            body.put_u64(*submission);
            body.put_u32(*from_index);
            TY_SUBSCRIBE
        }
        Msg::Result {
            submission,
            index,
            ok,
            cached,
            attempts,
            elapsed_ns,
            payload,
        } => {
            body.put_u64(*submission);
            body.put_u32(*index);
            body.put_u8(*ok as u8);
            body.put_u8(*cached as u8);
            body.put_u32(*attempts);
            body.put_u64(*elapsed_ns);
            body.put_bytes(payload);
            TY_SERVE_RESULT
        }
        Msg::CacheStats {
            hits,
            misses,
            entries,
            queue_depth,
            inflight,
            clients,
            submissions,
            workers,
        } => {
            for v in [
                hits,
                misses,
                entries,
                queue_depth,
                inflight,
                clients,
                submissions,
                workers,
            ] {
                body.put_u64(*v);
            }
            TY_CACHE_STATS
        }
    };
    let body = body.into_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + 4);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&frame_version(ty).to_le_bytes());
    out.push(ty);
    out.push(0); // flags, reserved
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    let ck = checksum(&out);
    out.extend_from_slice(&ck.to_le_bytes());
    out
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Decodes one frame from the front of `buf`, returning the message and
/// the number of bytes consumed. Validation order: magic, version,
/// length bounds, completeness, checksum, message type (including the
/// type/version pairing), payload fields.
pub fn decode(buf: &[u8]) -> Result<(Msg, usize), ProtoError> {
    if buf.len() < HEADER_LEN {
        return Err(ProtoError::Truncated);
    }
    let magic = le_u32(&buf[0..4]);
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let version = le_u16(&buf[4..6]);
    if version != VERSION && version != VERSION_V3 {
        return Err(ProtoError::BadVersion(version));
    }
    let ty = buf[6];
    let len = le_u32(&buf[8..12]);
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized(len));
    }
    let total = HEADER_LEN + len as usize + 4;
    if buf.len() < total {
        return Err(ProtoError::Truncated);
    }
    let found = le_u32(&buf[total - 4..total]);
    let expected = checksum(&buf[..total - 4]);
    if found != expected {
        return Err(ProtoError::BadChecksum { expected, found });
    }
    let mut r = ByteReader::new(&buf[HEADER_LEN..total - 4]);
    let msg = match ty {
        TY_HELLO => Msg::Hello { jobs: r.u32()? },
        TY_LEASE => Msg::Lease {
            seq: r.u64()?,
            attempt: r.u32()?,
            tag: r.str()?,
            payload: r.bytes()?.to_vec(),
        },
        TY_RESULT => Msg::UnitResult {
            seq: r.u64()?,
            attempt: r.u32()?,
            elapsed_ns: r.u64()?,
            payload: r.bytes()?.to_vec(),
        },
        TY_ERROR => Msg::UnitError {
            seq: r.u64()?,
            attempt: r.u32()?,
            message: r.str()?,
        },
        TY_HEARTBEAT => Msg::Heartbeat {
            inflight: r.u32()?,
            executed: r.u64()?,
        },
        TY_SHUTDOWN => Msg::Shutdown,
        TY_SUBMIT => {
            let client = r.u64()?;
            let submission = r.u64()?;
            let priority = r.u8()?;
            let n = r.u32()?;
            // The unit count comes off the wire unvalidated; push without
            // preallocating so a corrupt count fails at the per-unit
            // reads instead of requesting a huge buffer up front.
            let mut units = Vec::new();
            for _ in 0..n {
                let tag = r.str()?;
                let payload = r.bytes()?.to_vec();
                units.push((tag, payload));
            }
            Msg::Submit {
                client,
                submission,
                priority,
                units,
            }
        }
        TY_QUERY => Msg::Query { what: r.u8()? },
        TY_SUBSCRIBE => Msg::Subscribe {
            client: r.u64()?,
            submission: r.u64()?,
            from_index: r.u32()?,
        },
        TY_SERVE_RESULT => Msg::Result {
            submission: r.u64()?,
            index: r.u32()?,
            ok: r.u8()? != 0,
            cached: r.u8()? != 0,
            attempts: r.u32()?,
            elapsed_ns: r.u64()?,
            payload: r.bytes()?.to_vec(),
        },
        TY_CACHE_STATS => Msg::CacheStats {
            hits: r.u64()?,
            misses: r.u64()?,
            entries: r.u64()?,
            queue_depth: r.u64()?,
            inflight: r.u64()?,
            clients: r.u64()?,
            submissions: r.u64()?,
            workers: r.u64()?,
        },
        other => return Err(ProtoError::UnknownType(other)),
    };
    // A frame must be stamped with its type's exact version: a v3-only
    // message claiming to be v2 (or vice versa) is a forgery a v2 peer
    // would mis-handle, so reject it outright.
    if version != frame_version(ty) {
        return Err(ProtoError::BadVersion(version));
    }
    r.finish()?;
    Ok((msg, total))
}

/// Reads exactly one frame from a stream. A clean EOF (or any socket
/// failure) surfaces as [`ProtoError::Io`].
pub fn read_msg(r: &mut impl Read) -> Result<Msg, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)
        .map_err(|e| ProtoError::Io(e.kind()))?;
    // Validate the header before trusting the length prefix.
    let magic = le_u32(&header[0..4]);
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let version = le_u16(&header[4..6]);
    if version != VERSION && version != VERSION_V3 {
        return Err(ProtoError::BadVersion(version));
    }
    let len = le_u32(&header[8..12]);
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized(len));
    }
    let mut frame = vec![0u8; HEADER_LEN + len as usize + 4];
    frame[..HEADER_LEN].copy_from_slice(&header);
    r.read_exact(&mut frame[HEADER_LEN..])
        .map_err(|e| ProtoError::Io(e.kind()))?;
    let (msg, consumed) = decode(&frame)?;
    debug_assert_eq!(consumed, frame.len());
    Ok(msg)
}

/// Writes one frame to a stream.
pub fn write_msg(w: &mut impl Write, msg: &Msg) -> Result<(), ProtoError> {
    let frame = encode(msg);
    w.write_all(&frame).map_err(|e| ProtoError::Io(e.kind()))?;
    w.flush().map_err(|e| ProtoError::Io(e.kind()))
}

/// Little-endian primitive writer for frame and work-unit payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        ByteWriter::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Stores the exact bit pattern, so results round-trip bit-for-bit.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian primitive reader; every method fails typed, never
/// panics, on short or garbage input.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(le_u32(self.take(4)?))
    }

    pub fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], ProtoError> {
        let n = self.u32()? as usize;
        if n > MAX_PAYLOAD as usize {
            return Err(ProtoError::Oversized(n as u32));
        }
        self.take(n)
    }

    pub fn str(&mut self) -> Result<String, ProtoError> {
        let b = self.bytes()?;
        std::str::from_utf8(b)
            .map(str::to_owned)
            .map_err(|_| ProtoError::Malformed("invalid utf-8 in string field"))
    }

    /// Rejects trailing garbage: a valid payload is consumed exactly.
    pub fn finish(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes after payload"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Msg {
        Msg::Lease {
            seq: 7,
            attempt: 2,
            tag: "repro.app".into(),
            payload: vec![1, 2, 3, 250],
        }
    }

    fn sample_v3() -> Msg {
        Msg::Submit {
            client: 0xC11E,
            submission: 4,
            priority: 200,
            units: vec![
                ("oracle.plan:mcf".into(), vec![1, 2, 3]),
                ("repro.app:fig1/gcc".into(), vec![]),
            ],
        }
    }

    #[test]
    fn frames_round_trip() {
        for msg in [
            Msg::Hello { jobs: 8 },
            sample(),
            Msg::UnitResult {
                seq: 7,
                attempt: 2,
                elapsed_ns: 123,
                payload: vec![9; 100],
            },
            Msg::UnitError {
                seq: 1,
                attempt: 4,
                message: "sim panicked".into(),
            },
            Msg::Heartbeat {
                inflight: 3,
                executed: 41,
            },
            Msg::Shutdown,
            sample_v3(),
            Msg::Query { what: QUERY_STATS },
            Msg::Subscribe {
                client: 1,
                submission: 2,
                from_index: 3,
            },
            Msg::Result {
                submission: 2,
                index: 9,
                ok: true,
                cached: true,
                attempts: 1,
                elapsed_ns: 77,
                payload: vec![5; 12],
            },
            Msg::CacheStats {
                hits: 1,
                misses: 2,
                entries: 3,
                queue_depth: 4,
                inflight: 5,
                clients: 6,
                submissions: 7,
                workers: 8,
            },
        ] {
            let frame = encode(&msg);
            let (back, used) = decode(&frame).expect("round trip");
            assert_eq!(back, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn worker_frames_stay_v2_and_service_frames_are_v3() {
        assert_eq!(le_u16(&encode(&Msg::Shutdown)[4..6]), VERSION);
        assert_eq!(le_u16(&encode(&sample())[4..6]), VERSION);
        assert_eq!(le_u16(&encode(&sample_v3())[4..6]), VERSION_V3);
        assert_eq!(
            le_u16(&encode(&Msg::Query { what: QUERY_STOP })[4..6]),
            VERSION_V3
        );
    }

    #[test]
    fn stale_version_is_rejected() {
        let mut frame = encode(&Msg::Shutdown);
        frame[4] = VERSION_V3 as u8 + 1;
        assert_eq!(decode(&frame), Err(ProtoError::BadVersion(VERSION_V3 + 1)));
    }

    #[test]
    fn version_type_mismatch_is_rejected() {
        // A v3 service frame forged to claim v2 (checksum refreshed so
        // only the version/type pairing can object) must not decode: a
        // real v2 peer would reject it, so we must too.
        let mut frame = encode(&sample_v3());
        frame[4..6].copy_from_slice(&VERSION.to_le_bytes());
        let body = frame.len() - 4;
        let ck = checksum(&frame[..body]);
        frame[body..].copy_from_slice(&ck.to_le_bytes());
        assert_eq!(decode(&frame), Err(ProtoError::BadVersion(VERSION)));
    }

    #[test]
    fn flipped_payload_bit_is_rejected() {
        let frame = encode(&sample());
        let mut bad = frame.clone();
        bad[HEADER_LEN + 3] ^= 0x40;
        assert!(matches!(decode(&bad), Err(ProtoError::BadChecksum { .. })));
    }

    #[test]
    fn truncation_is_rejected() {
        let frame = encode(&sample());
        for cut in [0, 3, HEADER_LEN, frame.len() - 1] {
            assert_eq!(decode(&frame[..cut]), Err(ProtoError::Truncated));
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut frame = encode(&Msg::Shutdown);
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&frame), Err(ProtoError::Oversized(u32::MAX)));
    }

    #[test]
    fn streamed_read_matches_buffer_decode() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode(&Msg::Hello { jobs: 3 }));
        stream.extend_from_slice(&encode(&Msg::Shutdown));
        let mut cursor = &stream[..];
        assert_eq!(read_msg(&mut cursor).unwrap(), Msg::Hello { jobs: 3 });
        assert_eq!(read_msg(&mut cursor).unwrap(), Msg::Shutdown);
        assert!(matches!(read_msg(&mut cursor), Err(ProtoError::Io(_))));
    }
}
