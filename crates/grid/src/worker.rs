//! The grid worker: connects to a coordinator, executes leased units on
//! a local `ppa-pool`, and streams results (with timing) back.
//!
//! The read loop runs inside a pool scope: each incoming lease is
//! spawned as a pool job, so up to [`WorkerOptions::jobs`] units execute
//! concurrently (the coordinator throttles dispatch to the advertised
//! capacity) while the socket keeps draining. A heartbeat thread beacons
//! liveness every [`WorkerOptions::heartbeat`]. A unit that panics is
//! confined by the pool and reported as a [`Msg::UnitError`] carrying
//! the panic message, so the coordinator can retry it — or fail the run
//! naming the unit — instead of waiting out the lease.
//!
//! [`WorkerOptions::die_after`] is the fault-injection hook the
//! loopback self-tests use: after accepting that many leases the worker
//! drops its connection cold, mid-lease, exactly like a crashed host.

use crate::proto::{self, Msg, ProtoError};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// An application-level unit executor: maps a `(tag, payload)` work
/// unit to result bytes. Implementations dispatch on the tag prefix
/// (`"repro."`, `"oracle."`, ...).
pub trait Executor: Send + Sync {
    fn execute(&self, tag: &str, payload: &[u8]) -> Result<Vec<u8>, String>;
}

/// Worker tuning and fault-injection knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Units to run concurrently (advertised to the coordinator).
    pub jobs: usize,
    /// Liveness beacon interval; must be well under the coordinator's
    /// heartbeat timeout.
    pub heartbeat: Duration,
    /// Fault injection: accept this many leases, then drop the
    /// connection without completing the next one.
    pub die_after: Option<usize>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            jobs: 1,
            heartbeat: Duration::from_secs(2),
            die_after: None,
        }
    }
}

/// What a worker did before disconnecting.
#[derive(Debug)]
pub struct WorkerReport {
    /// Units executed to a successful result.
    pub executed: usize,
    /// Whether the worker died via [`WorkerOptions::die_after`].
    pub died: bool,
}

/// Runs one worker until the coordinator shuts it down (or the
/// connection drops). Blocks the calling thread.
pub fn run_worker(
    addr: impl ToSocketAddrs,
    opts: WorkerOptions,
    exec: Arc<dyn Executor>,
) -> Result<WorkerReport, ProtoError> {
    let stream = TcpStream::connect(addr).map_err(|e| ProtoError::Io(e.kind()))?;
    let _ = stream.set_nodelay(true);
    let mut reader = stream.try_clone().map_err(|e| ProtoError::Io(e.kind()))?;
    let writer = Arc::new(Mutex::new(
        stream.try_clone().map_err(|e| ProtoError::Io(e.kind()))?,
    ));
    proto::write_msg(
        &mut *writer.lock().unwrap(),
        &Msg::Hello {
            jobs: opts.jobs.max(1) as u32,
        },
    )?;

    let stop = Arc::new(AtomicBool::new(false));
    // Telemetry the heartbeat beacons to the coordinator: units leased
    // but not yet answered, and units executed to a successful result.
    let inflight = Arc::new(AtomicU32::new(0));
    let executed = Arc::new(AtomicU64::new(0));
    let heartbeat_thread = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        let inflight = Arc::clone(&inflight);
        let executed = Arc::clone(&executed);
        let interval = opts.heartbeat;
        std::thread::Builder::new()
            .name("grid-heartbeat".into())
            .spawn(move || {
                let mut last = Instant::now();
                while !stop.load(Ordering::SeqCst) {
                    if last.elapsed() >= interval {
                        let beat = Msg::Heartbeat {
                            inflight: inflight.load(Ordering::SeqCst),
                            executed: executed.load(Ordering::SeqCst),
                        };
                        let ok = proto::write_msg(&mut *writer.lock().unwrap(), &beat);
                        if ok.is_err() {
                            return;
                        }
                        last = Instant::now();
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            })
            .expect("spawning the worker heartbeat thread")
    };

    let pool = ppa_pool::ThreadPool::new(opts.jobs.max(1));
    let mut received = 0usize;
    let mut died = false;
    pool.scope(|s| {
        loop {
            match proto::read_msg(&mut reader) {
                Ok(Msg::Lease {
                    seq,
                    attempt,
                    tag,
                    payload,
                }) => {
                    received += 1;
                    ppa_obs::debug!("grid.worker", "lease seq={seq} attempt={attempt} tag={tag}");
                    if opts.die_after.is_some_and(|n| received > n) {
                        // Crash injection: vanish mid-lease, no result,
                        // no goodbye — the coordinator must recover.
                        died = true;
                        let _ = stream.shutdown(Shutdown::Both);
                        break;
                    }
                    inflight.fetch_add(1, Ordering::SeqCst);
                    let writer = Arc::clone(&writer);
                    let exec = Arc::clone(&exec);
                    let executed = Arc::clone(&executed);
                    let inflight = Arc::clone(&inflight);
                    s.spawn(move |_ctx| {
                        let t0 = Instant::now();
                        let result =
                            catch_unwind(AssertUnwindSafe(|| exec.execute(&tag, &payload)))
                                .unwrap_or_else(|payload| {
                                    let msg =
                                        if let Some(s) = payload.downcast_ref::<&'static str>() {
                                            (*s).to_string()
                                        } else if let Some(s) = payload.downcast_ref::<String>() {
                                            s.clone()
                                        } else {
                                            "opaque panic payload".to_string()
                                        };
                                    Err(format!("unit panicked: {msg}"))
                                });
                        let msg = match result {
                            Ok(bytes) => {
                                executed.fetch_add(1, Ordering::SeqCst);
                                ppa_obs::registry::counter("grid.worker.units.executed").inc();
                                Msg::UnitResult {
                                    seq,
                                    attempt,
                                    elapsed_ns: t0.elapsed().as_nanos() as u64,
                                    payload: bytes,
                                }
                            }
                            Err(message) => {
                                ppa_obs::registry::counter("grid.worker.units.failed").inc();
                                ppa_obs::warn!(
                                    "grid.worker",
                                    "unit seq={seq} attempt={attempt} failed: {message}"
                                );
                                Msg::UnitError {
                                    seq,
                                    attempt,
                                    message,
                                }
                            }
                        };
                        inflight.fetch_sub(1, Ordering::SeqCst);
                        let _ = proto::write_msg(&mut *writer.lock().unwrap(), &msg);
                    });
                }
                Ok(Msg::Shutdown) => break,
                Ok(_) => {}      // tolerate unexpected-but-valid frames
                Err(_) => break, // disconnect or protocol violation
            }
        }
    });
    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat_thread.join();
    let _ = stream.shutdown(Shutdown::Both);
    Ok(WorkerReport {
        executed: executed.load(Ordering::SeqCst) as usize,
        died,
    })
}
