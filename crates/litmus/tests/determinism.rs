//! `ppa-litmus run` output must be byte-identical at any job count and
//! across a loopback grid with an injected mid-lease worker death —
//! mirroring `crates/bench/tests/grid_determinism.rs`.

use ppa_grid::coord::GridConfig;
use ppa_grid::loopback;
use ppa_grid::worker::WorkerOptions;
use ppa_litmus::generator::{self, GenConfig};
use ppa_litmus::gridwork::{self, LitmusExecutor};
use ppa_litmus::run::{render_batch, run_batch_local, RunConfig};
use ppa_pool::ThreadPool;
use std::sync::Arc;

fn rendered_with_workers(workers: usize) -> String {
    let pool = ThreadPool::new(workers);
    pool.par_map([()], |()| {
        let tests = generator::generate(&GenConfig { seed: 1, tests: 24 });
        let cfg = RunConfig::default();
        let rows = run_batch_local(&tests, &cfg);
        render_batch(&rows, 24, 1, &cfg)
    })
    .pop()
    .expect("one job")
    .expect("litmus batch does not panic")
}

#[test]
fn rendered_batch_is_byte_identical_at_any_job_count() {
    let serial = rendered_with_workers(1);
    let parallel = rendered_with_workers(8);
    assert!(serial.contains("machine-unsound=0"), "{serial}");
    assert_eq!(serial, parallel, "parallel fan-out changed rendered output");
}

#[test]
fn transported_tests_match_local_execution_despite_worker_death() {
    let tests = generator::generate(&GenConfig { seed: 1, tests: 12 });
    let cfg = RunConfig::default();
    let units: Vec<_> = tests
        .iter()
        .enumerate()
        .map(|(i, t)| gridwork::test_unit(i, t, &cfg))
        .collect();
    let expected: Vec<Vec<u8>> = units
        .iter()
        .map(|u| gridwork::execute(&u.tag, &u.payload).expect("units execute locally"))
        .collect();

    let opts = vec![
        WorkerOptions {
            die_after: Some(2),
            ..WorkerOptions::default()
        },
        WorkerOptions::default(),
        WorkerOptions::default(),
    ];
    let lb = loopback::start(opts, Arc::new(LitmusExecutor), GridConfig::default())
        .expect("loopback grid starts");
    let results = lb.run_units(units.clone());
    for ((unit, exp), res) in units.iter().zip(&expected).zip(results) {
        let outcome = res.expect("every unit completes despite the death");
        assert_eq!(
            outcome.payload, *exp,
            "unit {} diverged from local execution",
            unit.tag
        );
    }
    let stats = lb.coordinator().stats();
    assert!(stats.workers_lost >= 1, "stats: {stats:?}");
    assert!(stats.redispatched >= 1, "stats: {stats:?}");
    assert!(lb.shutdown().iter().any(|r| r.died));
}
