//! Conformance-engine integration tests: the pinned clean batch is green,
//! the waiver table is exercised, and injected machine/runner bugs are
//! flagged as machine-unsound by a named test.

use ppa_litmus::generator::{self, GenConfig};
use ppa_litmus::run::{run_batch_local, run_test, RunConfig, RunnerFault};
use ppa_smp::ArbiterFault;

#[test]
fn pinned_clean_batch_is_conformant_and_exercises_the_waiver() {
    let tests = generator::generate(&GenConfig { seed: 1, tests: 64 });
    let rows = run_batch_local(&tests, &RunConfig::default());
    for r in &rows {
        assert!(r.passed(), "{} machine-unsound: {:?}", r.name, r.unsound);
        assert!(r.reached >= 1 && r.reached <= r.allowed);
        assert!(r.torn > 0, "{} never ran the tearing probe", r.name);
    }
    let exercised = rows
        .iter()
        .filter(|r| r.exercised.iter().any(|e| e == "ppa-prefix-strength"))
        .count();
    assert!(
        exercised > rows.len() / 2,
        "prefix-strength waiver exercised by only {exercised}/{} tests",
        rows.len()
    );
}

#[test]
fn a_biased_arbiter_port_is_flagged_machine_unsound() {
    let cfg = RunConfig {
        tear_stride: 7,
        fault: Some(RunnerFault::Arbiter(ArbiterFault::BiasedPort)),
    };
    let test = generator::contention(8);
    let row = run_test(&test, &cfg);
    assert!(
        !row.passed(),
        "BiasedPort went undetected on {} (reached={}/{})",
        row.name,
        row.reached,
        row.allowed
    );
    assert!(
        row.unsound.iter().any(|d| d.contains("validator")),
        "expected an arbiter validator finding, got {:?}",
        row.unsound
    );
}

#[test]
fn a_dropped_replay_entry_is_flagged_machine_unsound() {
    let cfg = RunConfig {
        tear_stride: 7,
        fault: Some(RunnerFault::DropReplayEntry),
    };
    let test = generator::sealed_pair();
    let row = run_test(&test, &cfg);
    assert!(
        !row.passed(),
        "DropReplayEntry went undetected on {} (reached={}/{})",
        row.name,
        row.reached,
        row.allowed
    );
    assert!(
        row.unsound.iter().any(|d| d.contains("outside the model")),
        "expected a reachable-outside-model finding, got {:?}",
        row.unsound
    );
}

#[test]
fn clean_contention_and_sealed_probes_pass() {
    // The fault probes above must owe their failures to the fault, not to
    // the handcrafted tests themselves.
    let cfg = RunConfig::default();
    for test in [generator::contention(8), generator::sealed_pair()] {
        let row = run_test(&test, &cfg);
        assert!(row.passed(), "{} unsound: {:?}", row.name, row.unsound);
    }
}
