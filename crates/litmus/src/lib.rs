//! ppa-litmus — persistency-model conformance engine.
//!
//! The crash oracle in `ppa-verify` checks 41 fixed workloads. This crate
//! turns that into an unbounded scenario space: a deterministic **litmus
//! generator** samples small multi-core persist-ordering programs
//! (store/clwb/sfence/sync over a handful of shared words), an in-tree
//! **executable axiomatic model** enumerates every post-crash memory state a
//! conforming Px86-style machine may expose, and a **conformance runner**
//! executes each test on the real `ppa-smp` machine across exhaustive
//! failure points (every cycle, plus mid-checkpoint-flush tearing) and diffs
//! machine-reachable states against model-allowed ones.
//!
//! Divergence taxonomy:
//!
//! - **machine-unsound** — the machine reached a state the model forbids, a
//!   torn checkpoint prefix was accepted by recovery, or a whole-machine
//!   validator (`SmpSystem::validate`) flagged a violation. These fail the
//!   run unless covered by a [`Waiver`].
//! - **model-incomplete** — the model allows states the machine never
//!   exposes. Reported as a coverage gap (`reached/allowed`), not a failure:
//!   a machine may always be *stronger* than its model. For PPA this gap is
//!   structural (see [`waivers`]): recovery replays exactly each core's
//!   committed-store prefix, so Px86-allowed non-prefix states (a later
//!   sealed store durable while an earlier unsealed store is lost) are never
//!   reachable.
//! - **documented deviation** — a divergence matched by the in-tree waiver
//!   table below. CI asserts every waiver is still exercised, so stale
//!   entries rot loudly.

pub mod generator;
pub mod gridwork;
pub mod model;
pub mod run;

/// Which side of the conformance diff a waiver excuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Machine reached a state outside the model (or failed a machine-side
    /// check). Waiving one of these documents a known machine bug.
    MachineUnsound,
    /// Model allows states the machine never reaches (coverage gap).
    ModelIncomplete,
}

impl DivergenceKind {
    pub fn label(self) -> &'static str {
        match self {
            DivergenceKind::MachineUnsound => "machine-unsound",
            DivergenceKind::ModelIncomplete => "model-incomplete",
        }
    }
}

/// The failure class of one machine-unsound detail. Machine-unsound
/// waivers are scoped to exactly one class, so a waiver documenting (say)
/// a known torn-prefix acceptance can never silently mask a model-state
/// violation or a validator finding on the same test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsoundClass {
    /// The machine exposed a post-crash state the model forbids.
    ModelState,
    /// Recovery accepted a torn checkpoint-flush prefix.
    TornPrefix,
    /// An intact checkpoint stream failed to deserialize.
    Recovery,
    /// A whole-machine validator (`SmpSystem::validate`) flagged a
    /// violation.
    Validator,
}

impl UnsoundClass {
    /// Every class, in report order.
    pub const ALL: [UnsoundClass; 4] = [
        UnsoundClass::ModelState,
        UnsoundClass::TornPrefix,
        UnsoundClass::Recovery,
        UnsoundClass::Validator,
    ];

    pub fn label(self) -> &'static str {
        match self {
            UnsoundClass::ModelState => "model-state",
            UnsoundClass::TornPrefix => "torn-prefix",
            UnsoundClass::Recovery => "recovery",
            UnsoundClass::Validator => "validator",
        }
    }
}

/// One documented deviation between the machine and the axiomatic model.
#[derive(Debug, Clone, Copy)]
pub struct Waiver {
    /// Stable name, referenced in reports and grepped by CI.
    pub name: &'static str,
    pub kind: DivergenceKind,
    /// Canonical test name this waiver applies to, or `"*"` for all tests.
    pub test: &'static str,
    /// For machine-unsound waivers: the single failure class excused.
    /// `None` for model-incomplete waivers (a coverage gap has no class).
    pub class: Option<UnsoundClass>,
    /// Why the deviation is expected and acceptable.
    pub reason: &'static str,
}

impl Waiver {
    pub fn applies_to(&self, test_name: &str) -> bool {
        self.test == "*" || self.test == test_name
    }

    /// Whether this waiver excuses a machine-unsound detail of `class` on
    /// `test_name`. A waiver with no class (or the wrong kind) excuses
    /// nothing — one entry can never blanket-waive every failure class.
    pub fn covers(&self, test_name: &str, class: UnsoundClass) -> bool {
        self.kind == DivergenceKind::MachineUnsound
            && self.class == Some(class)
            && self.applies_to(test_name)
    }
}

/// The in-tree waiver table. Machine-unsound waivers are empty by design:
/// the machine is expected to be conformant, and any future entry here is a
/// documented bug with a paper trail.
pub fn waivers() -> &'static [Waiver] {
    &[Waiver {
        name: "ppa-prefix-strength",
        kind: DivergenceKind::ModelIncomplete,
        test: "*",
        class: None,
        reason: "PPA recovery replays exactly each core's committed-store \
                 prefix (natural NVM drain + value-carrying CSQ), so \
                 Px86-allowed non-prefix states — a later store durable while \
                 an earlier same-core store to another word is lost — are \
                 never reachable. This is the paper's crash-consistency-for- \
                 free claim: the machine is strictly stronger than the model.",
    }]
}

pub use generator::{generate, word_addr, GenConfig, LitmusOp, LitmusTest, LITMUS_BASE};
pub use model::{allowed_states, AllowedStates};
pub use run::{run_batch_local, run_test, RunConfig, RunnerFault, TestRow};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_prefix_strength_waiver_is_model_side_and_global() {
        let table = waivers();
        assert_eq!(table.len(), 1, "new waivers need review + a CI grep");
        let w = &table[0];
        assert_eq!(w.name, "ppa-prefix-strength");
        assert_eq!(w.kind, DivergenceKind::ModelIncomplete);
        assert!(w.applies_to("lit[s0s1y.s2c2f]"));
        // A model-incomplete waiver has no unsound class and therefore
        // covers no machine-unsound detail of any class.
        assert!(w.class.is_none());
        for class in UnsoundClass::ALL {
            assert!(!w.covers("lit[s0s1y.s2c2f]", class));
        }
    }

    #[test]
    fn machine_unsound_waivers_are_scoped_to_one_class() {
        // A hypothetical machine-unsound waiver excuses exactly the class
        // it names — never the other failure classes on the same test, and
        // a wildcard test never widens the class scope.
        let w = Waiver {
            name: "hypothetical-torn-prefix-bug",
            kind: DivergenceKind::MachineUnsound,
            test: "*",
            class: Some(UnsoundClass::TornPrefix),
            reason: "self-test only",
        };
        assert!(w.covers("lit[s0s1y.f]", UnsoundClass::TornPrefix));
        assert!(!w.covers("lit[s0s1y.f]", UnsoundClass::ModelState));
        assert!(!w.covers("lit[s0s1y.f]", UnsoundClass::Validator));
        assert!(!w.covers("lit[s0s1y.f]", UnsoundClass::Recovery));
        // And a class-less machine-unsound entry is inert by construction.
        let inert = Waiver { class: None, ..w };
        for class in UnsoundClass::ALL {
            assert!(!inert.covers("lit[s0s1y.f]", class));
        }
    }

    #[test]
    fn no_machine_unsound_waivers_exist() {
        assert!(
            !waivers()
                .iter()
                .any(|w| w.kind == DivergenceKind::MachineUnsound),
            "a machine-unsound waiver documents a known machine bug; \
             removing this assertion must be a deliberate act"
        );
    }
}
