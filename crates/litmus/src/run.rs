//! Conformance runner: every litmus test × every failure point, on the real
//! machine.
//!
//! For each cycle of an [`SmpSystem`] run the runner takes the JIT
//! checkpoint, round-trips it through the serialized word stream, replays
//! the recovered CSQs into a clone of the live NVM image (power failure
//! never touches NVM, so the clone *is* the post-crash image), and checks
//! the resulting memory state against the axiomatic model. A strided subset
//! of cells additionally tears the checkpoint flush mid-stream through the
//! controller FSM and requires recovery to reject the torn prefix. After
//! the run the whole-machine validators (`SmpSystem::validate`) get the
//! final word — an arbiter that mis-orders grants is machine-unsound even
//! if every reachable state happens to be model-allowed.

use crate::generator::{word_addr, LitmusTest};
use crate::model::allowed_states;
use crate::{waivers, DivergenceKind, UnsoundClass};
use ppa_core::{replay_stores, CheckpointController};
use ppa_sim::SystemConfig;
use ppa_smp::{ArbiterFault, MachineCheckpoint, SmpSystem};
use std::collections::BTreeSet;

/// Runner-side fault injections for the mutation self-tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunnerFault {
    /// Inject an arbiter fault into the machine under test.
    Arbiter(ArbiterFault),
    /// Drop the first CSQ entry of core 0's recovered image before replay —
    /// models a recovery controller that loses a committed store. Dropping
    /// the *first* entry matters: it forges a non-prefix state (an early
    /// sealed store lost while a later store survives), which the model
    /// forbids; dropping the last entry would merely rewind one word to an
    /// earlier value the model allows at an earlier crash cut.
    DropReplayEntry,
}

/// Conformance-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Tear the checkpoint flush on every `tear_stride`-th cycle.
    pub tear_stride: u64,
    /// Optional fault injection (self-tests only; never shipped to grid).
    pub fault: Option<RunnerFault>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            tear_stride: 7,
            fault: None,
        }
    }
}

/// Per-test conformance result. All fields are deterministic functions of
/// (test, config), so rows survive grid round-trips byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRow {
    pub name: String,
    /// Failure points examined (one per cycle, plus the final state).
    pub cells: u64,
    /// Cells that additionally ran the mid-flush tearing probe.
    pub torn: u64,
    /// Distinct post-crash states the machine exposed.
    pub reached: u64,
    /// States the axiomatic model allows.
    pub allowed: u64,
    /// Unwaived machine-unsound cells/violations (count; details capped).
    pub unsound_cells: u64,
    /// Capped human-readable unsound details.
    pub unsound: Vec<String>,
    /// Waived divergences, rendered as `waiver-name: detail`.
    pub waived: Vec<String>,
    /// Waiver names this test exercised.
    pub exercised: Vec<String>,
}

impl TestRow {
    pub fn passed(&self) -> bool {
        self.unsound_cells == 0
    }
}

const MAX_UNSOUND_DETAILS: usize = 4;

fn render_state(state: &[u64]) -> String {
    let cells: Vec<String> = state
        .iter()
        .enumerate()
        .map(|(w, v)| format!("w{w}={v:#x}"))
        .collect();
    format!("({})", cells.join(","))
}

/// Run one litmus test across exhaustive failure points.
pub fn run_test(test: &LitmusTest, cfg: &RunConfig) -> TestRow {
    let model = allowed_states(test);
    let (traces, _) = test.traces();
    let n_cores = traces.len();
    let total_uops: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let sys_cfg = SystemConfig::ppa().with_threads(n_cores);
    let mut sys = SmpSystem::new(sys_cfg, traces);
    if let Some(RunnerFault::Arbiter(f)) = cfg.fault {
        sys.inject_arbiter_fault(f);
    }

    let limit = 100_000 + total_uops * 2_000;
    let mut reached: BTreeSet<Vec<u64>> = BTreeSet::new();
    // Unsound details carry their failure class so waivers can be scoped:
    // a waiver for one class never masks the others. Details are capped
    // per class; counts are exact.
    let mut raw_unsound: Vec<(UnsoundClass, String)> = Vec::new();
    let mut class_counts = [0u64; UnsoundClass::ALL.len()];
    let mut cells = 0u64;
    let mut torn = 0u64;

    let record = |details: &mut Vec<(UnsoundClass, String)>,
                  counts: &mut [u64; UnsoundClass::ALL.len()],
                  class: UnsoundClass,
                  msg: String| {
        counts[class as usize] += 1;
        if details.iter().filter(|(c, _)| *c == class).count() < MAX_UNSOUND_DETAILS {
            details.push((class, msg));
        }
    };

    loop {
        let cycle = sys.now();
        cells += 1;
        let ckpt = sys.jit_checkpoint();
        let stream = ckpt.serialize();

        // Mid-flush tearing probe on a strided subset of cells: interrupt
        // the controller FSM at a cell-dependent word count and require the
        // torn prefix to be rejected (the completion marker lands last).
        if cycle.is_multiple_of(cfg.tear_stride) && !stream.is_empty() {
            torn += 1;
            let mut fsm = CheckpointController::new();
            fsm.power_fail(stream.len() as u64 * 8);
            let interrupt = (cycle / cfg.tear_stride) % stream.len() as u64;
            for _ in 0..interrupt {
                if !fsm.step() {
                    break;
                }
            }
            let words = fsm.words_done().min(stream.len() as u64 - 1);
            if MachineCheckpoint::deserialize(&stream[..words as usize]).is_some() {
                record(
                    &mut raw_unsound,
                    &mut class_counts,
                    UnsoundClass::TornPrefix,
                    format!(
                        "cycle {cycle}: torn checkpoint prefix ({words}/{} words) accepted",
                        stream.len()
                    ),
                );
            }
        }

        // Full round-trip recovery into a clone of the live NVM image.
        match MachineCheckpoint::deserialize(&stream) {
            None => record(
                &mut raw_unsound,
                &mut class_counts,
                UnsoundClass::Recovery,
                format!("cycle {cycle}: intact checkpoint stream failed to deserialize"),
            ),
            Some(mut recovered) => {
                if cfg.fault == Some(RunnerFault::DropReplayEntry)
                    && !recovered.images[0].csq.is_empty()
                {
                    recovered.images[0].csq.remove(0);
                }
                let mut nvm = sys.mem().nvm_image().clone();
                for image in &recovered.images {
                    replay_stores(image, &mut nvm);
                }
                let state: Vec<u64> = (0..model.words)
                    .map(|w| nvm.read(word_addr(w)).unwrap_or(0))
                    .collect();
                // Only model-admitted states count toward coverage:
                // `reached` must stay a subset of `allowed` so coverage
                // can never exceed 100% on a failing run. Inadmissible
                // states are reported as unsound instead.
                if model.admits(&state) {
                    reached.insert(state);
                } else {
                    record(
                        &mut raw_unsound,
                        &mut class_counts,
                        UnsoundClass::ModelState,
                        format!(
                            "cycle {cycle}: reachable state {} is outside the model",
                            render_state(&state)
                        ),
                    );
                }
            }
        }

        if sys.is_finished() {
            break;
        }
        assert!(
            cycle < limit,
            "litmus test {} wedged the machine",
            test.name
        );
        sys.step();
    }

    // Whole-machine validators get the final word.
    for v in sys.validate() {
        record(
            &mut raw_unsound,
            &mut class_counts,
            UnsoundClass::Validator,
            format!("validator: {v}"),
        );
    }

    // Apply the waiver table. Machine-unsound waivers are scoped per
    // failure class: a waiver covering (test, class) excuses only that
    // class's details, so a documented torn-prefix bug can never mask a
    // model-state violation or validator finding on the same test. The
    // model-incomplete waiver is exercised by a coverage gap instead.
    let mut unsound = Vec::new();
    let mut waived = Vec::new();
    let mut exercised = Vec::new();
    let mut unsound_cells = 0u64;
    for class in UnsoundClass::ALL {
        if class_counts[class as usize] == 0 {
            continue;
        }
        match waivers().iter().find(|w| w.covers(&test.name, class)) {
            Some(w) => {
                if !exercised.iter().any(|e| e == w.name) {
                    exercised.push(w.name.to_string());
                }
            }
            None => unsound_cells += class_counts[class as usize],
        }
    }
    for (class, detail) in raw_unsound {
        match waivers().iter().find(|w| w.covers(&test.name, class)) {
            Some(w) => waived.push(format!("{}: {detail}", w.name)),
            None => unsound.push(detail),
        }
    }
    let allowed = model.count();
    if (reached.len() as u64) < allowed {
        for w in waivers() {
            if w.kind == DivergenceKind::ModelIncomplete && w.applies_to(&test.name) {
                exercised.push(w.name.to_string());
            }
        }
    }

    TestRow {
        name: test.name.clone(),
        cells,
        torn,
        reached: reached.len() as u64,
        allowed,
        unsound_cells,
        unsound,
        waived,
        exercised,
    }
}

/// Run a batch on the local pool (ordered, so output is deterministic).
pub fn run_batch_local(tests: &[LitmusTest], cfg: &RunConfig) -> Vec<TestRow> {
    let cfg = *cfg;
    ppa_pool::par_map_ordered(tests.to_vec(), move |t| run_test(&t, &cfg))
}

/// Aggregate counters for a batch.
#[derive(Debug, Default, Clone, Copy)]
pub struct BatchTotals {
    pub tests: u64,
    pub cells: u64,
    pub torn: u64,
    pub reached: u64,
    pub allowed: u64,
    pub unsound: u64,
    pub waived: u64,
}

impl BatchTotals {
    pub fn from_rows(rows: &[TestRow]) -> Self {
        let mut t = BatchTotals {
            tests: rows.len() as u64,
            ..Default::default()
        };
        for r in rows {
            t.cells += r.cells;
            t.torn += r.torn;
            t.reached += r.reached;
            t.allowed = t.allowed.saturating_add(r.allowed);
            t.unsound += r.unsound_cells;
            t.waived += r.waived.len() as u64;
        }
        t
    }

    pub fn coverage(&self) -> f64 {
        if self.allowed == 0 {
            100.0
        } else {
            self.reached as f64 / self.allowed as f64 * 100.0
        }
    }
}

/// Render the batch report (stdout-stable: byte-identical at any jobs /
/// worker / fault configuration).
pub fn render_batch(rows: &[TestRow], tests: usize, seed: u64, cfg: &RunConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== litmus: conformance, {tests} tests, seed={seed}, exhaustive fail points (tear stride {})\n",
        cfg.tear_stride
    ));
    for r in rows {
        let status = if r.passed() { "ok  " } else { "FAIL" };
        out.push_str(&format!(
            "  {status} {:<44} cells={:<6} torn={:<5} reached={}/{}\n",
            r.name, r.cells, r.torn, r.reached, r.allowed
        ));
        for d in &r.unsound {
            out.push_str(&format!("       unsound: {d}\n"));
        }
        if r.unsound_cells as usize > r.unsound.len() {
            out.push_str(&format!(
                "       ... and {} more unsound cells\n",
                r.unsound_cells as usize - r.unsound.len()
            ));
        }
        for d in &r.waived {
            out.push_str(&format!("       waived: {d}\n"));
        }
    }
    let t = BatchTotals::from_rows(rows);
    out.push_str(&format!(
        "  summary: tests={} cells={} torn={} reached={} allowed={} coverage={:.1}% machine-unsound={} waived={}\n",
        t.tests,
        t.cells,
        t.torn,
        t.reached,
        t.allowed,
        t.coverage(),
        t.unsound,
        t.waived
    ));
    for w in waivers() {
        let hits = rows
            .iter()
            .filter(|r| r.exercised.iter().any(|e| e == w.name))
            .count();
        out.push_str(&format!(
            "  waivers: {} ({}): exercised by {hits}/{} tests\n",
            w.name,
            w.kind.label(),
            rows.len()
        ));
    }
    out
}

/// Publish `litmus.*` metrics for a batch (stderr/file surfaces only).
pub fn publish_metrics(rows: &[TestRow]) {
    use ppa_obs::registry;
    let t = BatchTotals::from_rows(rows);
    registry::counter("litmus.tests").set(t.tests);
    registry::counter("litmus.cells").set(t.cells);
    registry::counter("litmus.cells.torn").set(t.torn);
    registry::counter("litmus.states.reached").set(t.reached);
    registry::counter("litmus.states.allowed").set(t.allowed);
    registry::counter("litmus.unsound").set(t.unsound);
    registry::counter("litmus.waived").set(t.waived);
    registry::gauge("litmus.coverage").set(t.coverage());
}
