//! Grid integration: the `litmus.*` work-unit kind.
//!
//! One unit per litmus test — the (test × failure-point) cells stay local
//! to the unit, so the wire carries programs and summaries, not cells.
//! Results return in submission order and every [`TestRow`] field is a
//! deterministic function of (test, config), so `ppa-litmus run` stdout is
//! byte-identical at any jobs/worker/fault configuration.

use crate::generator::{LitmusOp, LitmusTest};
use crate::run::{run_test, RunConfig, TestRow};
use ppa_grid::coord::{Coordinator, GridConfig, UnitRunner, UnitSpec};
use ppa_grid::loopback::{self, Loopback};
use ppa_grid::proto::{ByteReader, ByteWriter};
use ppa_grid::{Executor, GridMode};
use ppa_serve::ServeClient;
use std::sync::Arc;

fn op_code(op: LitmusOp) -> (u8, u8) {
    match op {
        LitmusOp::Store(w) => (0, w),
        LitmusOp::Clwb(w) => (1, w),
        LitmusOp::SFence => (2, 0),
        LitmusOp::Sync => (3, 0),
    }
}

fn op_decode(code: u8, w: u8) -> Result<LitmusOp, String> {
    Ok(match code {
        0 => LitmusOp::Store(w),
        1 => LitmusOp::Clwb(w),
        2 => LitmusOp::SFence,
        3 => LitmusOp::Sync,
        other => return Err(format!("unknown litmus opcode {other}")),
    })
}

/// Build the work unit for one litmus test. Runner faults are a local
/// self-test affair and are never shipped to the grid.
pub fn test_unit(idx: usize, test: &LitmusTest, cfg: &RunConfig) -> UnitSpec {
    assert!(
        cfg.fault.is_none(),
        "runner faults are local-only; the grid runs clean configurations"
    );
    let mut w = ByteWriter::new();
    w.put_u64(cfg.tear_stride);
    w.put_u32(test.cores.len() as u32);
    for ops in &test.cores {
        w.put_u32(ops.len() as u32);
        for &op in ops {
            let (code, word) = op_code(op);
            w.put_u8(code);
            w.put_u8(word);
        }
    }
    UnitSpec {
        tag: format!("litmus.test:{}#{idx}", test.name),
        payload: w.into_bytes(),
    }
}

fn encode_row(row: &TestRow) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(&row.name);
    w.put_u64(row.cells);
    w.put_u64(row.torn);
    w.put_u64(row.reached);
    w.put_u64(row.allowed);
    w.put_u64(row.unsound_cells);
    for list in [&row.unsound, &row.waived, &row.exercised] {
        w.put_u32(list.len() as u32);
        for s in list {
            w.put_str(s);
        }
    }
    w.into_bytes()
}

fn decode_row(payload: &[u8]) -> Result<TestRow, String> {
    let e = |e: ppa_grid::proto::ProtoError| e.to_string();
    let mut r = ByteReader::new(payload);
    let name = r.str().map_err(e)?;
    let cells = r.u64().map_err(e)?;
    let torn = r.u64().map_err(e)?;
    let reached = r.u64().map_err(e)?;
    let allowed = r.u64().map_err(e)?;
    let unsound_cells = r.u64().map_err(e)?;
    let mut lists: Vec<Vec<String>> = Vec::with_capacity(3);
    for _ in 0..3 {
        let n = r.u32().map_err(e)?;
        // No preallocation from the wire-supplied count: a corrupt length
        // field must fail at the per-element reads, not OOM first.
        let mut list = Vec::new();
        for _ in 0..n {
            list.push(r.str().map_err(e)?);
        }
        lists.push(list);
    }
    r.finish().map_err(e)?;
    let exercised = lists.pop().unwrap();
    let waived = lists.pop().unwrap();
    let unsound = lists.pop().unwrap();
    Ok(TestRow {
        name,
        cells,
        torn,
        reached,
        allowed,
        unsound_cells,
        unsound,
        waived,
        exercised,
    })
}

/// Worker-side dispatcher for `litmus.*` unit tags.
pub fn execute(tag: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
    if !tag.starts_with("litmus.test:") {
        return Err(format!("unknown unit tag '{tag}'"));
    }
    let e = |e: ppa_grid::proto::ProtoError| e.to_string();
    let mut r = ByteReader::new(payload);
    let tear_stride = r.u64().map_err(e)?;
    let n_cores = r.u32().map_err(e)?;
    // Counts come off the wire unvalidated; push without preallocating so
    // a corrupt or truncated payload fails at the per-element reads
    // instead of requesting a multi-gigabyte buffer up front.
    let mut cores = Vec::new();
    for _ in 0..n_cores {
        let n_ops = r.u32().map_err(e)?;
        let mut ops = Vec::new();
        for _ in 0..n_ops {
            let code = r.u8().map_err(e)?;
            let w = r.u8().map_err(e)?;
            ops.push(op_decode(code, w)?);
        }
        cores.push(ops);
    }
    r.finish().map_err(e)?;
    // Canonicalization is deterministic, so rebuilding from canonical cores
    // reproduces the exact test (and its name) the coordinator shipped.
    let test = LitmusTest::from_cores(cores);
    let cfg = RunConfig {
        tear_stride,
        fault: None,
    };
    Ok(encode_row(&run_test(&test, &cfg)))
}

/// [`Executor`] over the litmus unit vocabulary.
pub struct LitmusExecutor;

impl Executor for LitmusExecutor {
    fn execute(&self, tag: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        execute(tag, payload)
    }
}

/// A small representative batch for `ppa-grid selftest`.
pub fn selftest_units() -> Vec<UnitSpec> {
    let cfg = RunConfig::default();
    crate::generator::generate(&crate::generator::GenConfig { seed: 1, tests: 4 })
        .iter()
        .enumerate()
        .map(|(i, t)| test_unit(i, t, &cfg))
        .collect()
}

/// A live grid attachment owned by the `ppa-litmus` binary.
pub enum GridHandle {
    Loopback(Loopback),
    Serve(Arc<Coordinator>),
    Remote(ServeClient),
}

impl GridHandle {
    /// The runner work units are submitted through.
    pub fn runner(&self) -> &dyn UnitRunner {
        match self {
            GridHandle::Loopback(l) => l.coordinator().as_ref(),
            GridHandle::Serve(c) => c.as_ref(),
            GridHandle::Remote(client) => client,
        }
    }

    /// The locally owned coordinator, when the attachment has one
    /// (`Remote` submits to a daemon-owned coordinator instead).
    pub fn coordinator(&self) -> Option<&Arc<Coordinator>> {
        match self {
            GridHandle::Loopback(l) => Some(l.coordinator()),
            GridHandle::Serve(c) => Some(c),
            GridHandle::Remote(_) => None,
        }
    }
}

/// Attaches to the requested grid mode with `exec` serving loopback
/// workers; `Ok(None)` for [`GridMode::Off`].
pub fn attach(mode: GridMode, exec: Arc<dyn Executor>) -> Result<Option<GridHandle>, String> {
    match mode {
        GridMode::Off => Ok(None),
        GridMode::Loopback(n) => {
            let jobs = ppa_pool::configured_jobs();
            let mut workers = vec![
                ppa_grid::WorkerOptions {
                    jobs,
                    ..Default::default()
                };
                n
            ];
            // Fault injection for the determinism checks: the first
            // loopback worker drops its connection mid-lease after N
            // units, and the output must still be byte-identical.
            if let Some(k) = std::env::var("PPA_GRID_DIE_AFTER")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
            {
                workers[0].die_after = Some(k);
            }
            let lb = loopback::start(workers, exec, GridConfig::default())
                .map_err(|e| format!("failed to start loopback grid: {e}"))?;
            ppa_obs::info!(
                "grid",
                "loopback with {n} workers on {}",
                lb.coordinator().local_addr()
            );
            Ok(Some(GridHandle::Loopback(lb)))
        }
        GridMode::Serve(addr) => {
            let client = ServeClient::connect(addr.as_str())?;
            ppa_obs::info!("grid", "submitting to ppa-serve daemon at {addr}");
            Ok(Some(GridHandle::Remote(client)))
        }
    }
}

/// Run a batch either on the attached grid or the local pool; row order is
/// submission order either way.
pub fn run_batch(
    tests: &[LitmusTest],
    cfg: &RunConfig,
    grid: Option<&GridHandle>,
) -> Result<Vec<TestRow>, String> {
    match grid {
        None => Ok(crate::run::run_batch_local(tests, cfg)),
        Some(handle) => {
            let units = tests
                .iter()
                .enumerate()
                .map(|(i, t)| test_unit(i, t, cfg))
                .collect();
            let mut rows = Vec::with_capacity(tests.len());
            for res in handle.runner().run_units(units) {
                let outcome = res.map_err(|e| e.to_string())?;
                rows.push(decode_row(&outcome.payload)?);
            }
            Ok(rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_round_trip_the_wire_encoding() {
        let row = TestRow {
            name: "lit[s0s1y.f]".into(),
            cells: 420,
            torn: 60,
            reached: 3,
            allowed: 4,
            unsound_cells: 2,
            unsound: vec!["cycle 9: bad".into()],
            waived: vec!["ppa-x: cycle 2".into()],
            exercised: vec!["ppa-prefix-strength".into()],
        };
        let decoded = decode_row(&encode_row(&row)).unwrap();
        assert_eq!(decoded, row);
    }

    #[test]
    fn grid_unit_reproduces_the_local_row() {
        let tests = crate::generator::generate(&crate::generator::GenConfig { seed: 3, tests: 2 });
        let cfg = RunConfig::default();
        for (i, t) in tests.iter().enumerate() {
            let unit = test_unit(i, t, &cfg);
            let payload = execute(&unit.tag, &unit.payload).unwrap();
            let row = decode_row(&payload).unwrap();
            assert_eq!(row, run_test(t, &cfg));
        }
    }
}
