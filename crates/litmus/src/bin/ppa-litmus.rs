//! `ppa-litmus` — persistency-model conformance CLI.
//!
//! Subcommands:
//!
//! - `gen`   — list the generated canonical litmus tests
//! - `model` — print each test's model-allowed post-crash state counts
//! - `run`   — execute the conformance batch on the real machine across
//!   exhaustive failure points and diff against the model
//!
//! Stdout is byte-identical at any `--jobs`, grid worker count, or injected
//! worker death; telemetry goes to stderr / `--metrics-json` only.

use ppa_litmus::generator::{self, GenConfig};
use ppa_litmus::gridwork::{self, GridHandle, LitmusExecutor};
use ppa_litmus::run::{publish_metrics, render_batch, RunConfig};
use ppa_litmus::{allowed_states, waivers};
use std::sync::Arc;

struct Options {
    cmd: String,
    tests: usize,
    seed: u64,
    tear_stride: u64,
    grid: Option<String>,
    metrics_json: Option<(std::path::PathBuf, bool)>,
}

fn usage() -> ! {
    eprintln!("usage: ppa-litmus <gen|model|run> [--tests N] [--seed N] [--tear-stride N] [--jobs N] [--grid MODE] [--metrics-json FILE]");
    eprintln!();
    eprintln!("options:");
    eprintln!("  --tests N        number of generated litmus tests (default 256)");
    eprintln!("  --seed N         generator seed (default 1)");
    eprintln!("  --tear-stride N  run the mid-flush tearing probe every N cycles (default 7)");
    eprintln!("  --jobs N         worker threads (0 = serial)");
    eprintln!("  --grid MODE      off (default), loopback:N, or serve:HOST:PORT");
    eprintln!("                   (serve: submit to a running `ppa-serve daemon`)");
    eprintln!("  --metrics-json FILE        write the litmus.* metrics snapshot");
    eprintln!("  --metrics-json-merge FILE  same, merging into an existing file");
    eprintln!();
    eprintln!("environment:");
    eprintln!("  PPA_JOBS=N            same as --jobs (the flag wins)");
    eprintln!("  PPA_GRID=MODE         same as --grid (the flag wins)");
    eprintln!("  PPA_GRID_DIE_AFTER=N  loopback fault injection: worker 0 drops");
    eprintln!("                        its connection after N units (testing)");
    eprintln!("  PPA_LOG=LEVEL         stderr log level: error|warn|info|debug");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let cmd = match args.next() {
        Some(c) if ["gen", "model", "run"].contains(&c.as_str()) => c,
        _ => usage(),
    };
    let mut opts = Options {
        cmd,
        tests: 256,
        seed: 1,
        tear_stride: 7,
        grid: None,
        metrics_json: None,
    };
    while let Some(flag) = args.next() {
        let value = match args.next() {
            Some(v) => v,
            None => usage(),
        };
        match flag.as_str() {
            "--tests" => opts.tests = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value.parse().unwrap_or_else(|_| usage()),
            "--tear-stride" => {
                opts.tear_stride = value.parse().unwrap_or_else(|_| usage());
                if opts.tear_stride == 0 {
                    usage()
                }
            }
            "--jobs" => ppa_pool::set_jobs(value.parse().unwrap_or_else(|_| usage())),
            "--grid" => opts.grid = Some(value),
            "--metrics-json" => opts.metrics_json = Some((value.into(), false)),
            "--metrics-json-merge" => opts.metrics_json = Some((value.into(), true)),
            _ => usage(),
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let gen_cfg = GenConfig {
        seed: opts.seed,
        tests: opts.tests,
    };
    let run_cfg = RunConfig {
        tear_stride: opts.tear_stride,
        fault: None,
    };
    let tests = generator::generate(&gen_cfg);

    let ok = match opts.cmd.as_str() {
        "gen" => {
            println!(
                "== litmus: generator, {} tests, seed={}",
                opts.tests, opts.seed
            );
            for t in &tests {
                println!(
                    "  {:<44} cores={} words={} ops={}",
                    t.name,
                    t.cores.len(),
                    t.words(),
                    t.ops()
                );
                for (c, ops) in t.cores.iter().enumerate() {
                    let pretty: Vec<String> = ops.iter().map(|op| op.pretty()).collect();
                    println!("    c{c}: {}", pretty.join("; "));
                }
            }
            true
        }
        "model" => {
            println!(
                "== litmus: axiomatic model, {} tests, seed={}",
                opts.tests, opts.seed
            );
            let mut total = 0u64;
            for t in &tests {
                let m = allowed_states(t);
                let per_core: Vec<String> =
                    m.core_states.iter().map(|s| s.len().to_string()).collect();
                total = total.saturating_add(m.count());
                println!(
                    "  {:<44} allowed={:<6} per-core=[{}]",
                    t.name,
                    m.count(),
                    per_core.join(",")
                );
            }
            println!("  summary: tests={} allowed={total}", tests.len());
            true
        }
        "run" => {
            let mode = match &opts.grid {
                Some(v) => ppa_grid::parse_grid_mode(v),
                None => ppa_grid::grid_mode_from_env(),
            }
            .unwrap_or_else(|e| {
                eprintln!("ppa-litmus: {e}");
                std::process::exit(2);
            });
            let handle: Option<GridHandle> = match gridwork::attach(mode, Arc::new(LitmusExecutor))
            {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("ppa-litmus: {e}");
                    std::process::exit(1);
                }
            };
            match gridwork::run_batch(&tests, &run_cfg, handle.as_ref()) {
                Ok(rows) => {
                    print!("{}", render_batch(&rows, opts.tests, opts.seed, &run_cfg));
                    publish_metrics(&rows);
                    let unexercised: Vec<&str> = waivers()
                        .iter()
                        .filter(|w| !rows.iter().any(|r| r.exercised.iter().any(|e| e == w.name)))
                        .map(|w| w.name)
                        .collect();
                    if !unexercised.is_empty() {
                        println!("  stale waivers: {}", unexercised.join(", "));
                    }
                    if let Some(GridHandle::Loopback(lb)) = handle {
                        lb.shutdown();
                    }
                    rows.iter().all(|r| r.passed()) && unexercised.is_empty()
                }
                Err(e) => {
                    println!("  grid: {e}");
                    false
                }
            }
        }
        _ => unreachable!(),
    };

    if let Some((path, merge)) = &opts.metrics_json {
        if let Err(e) = ppa_obs::snapshot().write_json_file(path, *merge) {
            eprintln!("ppa-litmus: failed to write {}: {e}", path.display());
        }
    }
    std::process::exit(if ok { 0 } else { 1 });
}
