//! Deterministic litmus-test generator.
//!
//! A litmus test is 2–4 cores × 2–8 litmus ops per core drawn from
//! {store, clwb, sfence, sync} over 2–4 shared words. Words are partitioned
//! among cores (single writer per word — the machine's DRF contract), so
//! cores that own no word contribute only fences and syncs. Tests are
//! emitted in the existing `ppa_isa` uop vocabulary and named canonically:
//! symmetric tests (core renumberings and the word renumberings they induce)
//! collapse to one representative, so the generator never counts the same
//! scenario twice.
//!
//! Grammar of the canonical name (`lit[...]`, cores joined by `.`):
//!
//! ```text
//! s<w>   store the next value to word w      c<w>   clwb the line of word w
//! f      sfence (persist barrier)            y      sync (region boundary)
//! ```

use ppa_isa::{ArchReg, MemRef, SyncKind, Trace, TraceBuilder, Uop, UopKind};
use ppa_prng::Prng;
use std::collections::HashSet;

/// Litmus words live in their own address region, one word per cache line so
/// word-granularity clwb/seal reasoning matches line-granularity hardware.
pub const LITMUS_BASE: u64 = 0x3000_0000_0000;

/// Scratch register used to define each store's data operand (same register
/// the shared workloads use, so the pipeline idiom is identical).
const DATA: ArchReg = ArchReg::int(7);

/// Address of litmus word `w` (line-aligned).
pub fn word_addr(w: usize) -> u64 {
    LITMUS_BASE + (w as u64) * 64
}

/// Value written by the `k`-th (0-based) store to word `w`. Nonzero and
/// unique per (word, rank), so any recovered state is attributable.
pub fn store_value(w: usize, k: usize) -> u64 {
    (((w as u64) + 1) << 8) | ((k as u64) + 1)
}

/// One litmus-level operation. Word indices are test-local (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LitmusOp {
    /// Store the next value in this word's sequence.
    Store(u8),
    /// Write back the cache line holding this word.
    Clwb(u8),
    /// Persist barrier (sfence): orders earlier clwbs before later stores.
    SFence,
    /// Sync: region boundary. The core may not commit it until every prior
    /// store in the region is durable (arbiter-certified publishing barrier).
    Sync,
}

impl LitmusOp {
    fn mnemonic(self) -> String {
        match self {
            LitmusOp::Store(w) => format!("s{w}"),
            LitmusOp::Clwb(w) => format!("c{w}"),
            LitmusOp::SFence => "f".to_string(),
            LitmusOp::Sync => "y".to_string(),
        }
    }

    /// Human-readable form for `ppa-litmus gen` listings.
    pub fn pretty(self) -> String {
        match self {
            LitmusOp::Store(w) => format!("st w{w}"),
            LitmusOp::Clwb(w) => format!("clwb w{w}"),
            LitmusOp::SFence => "sfence".to_string(),
            LitmusOp::Sync => "sync".to_string(),
        }
    }
}

/// A canonicalized litmus test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusTest {
    /// Canonical name, e.g. `lit[s0s1y.s2c2f]`.
    pub name: String,
    /// Per-core litmus programs, in canonical core order.
    pub cores: Vec<Vec<LitmusOp>>,
}

impl LitmusTest {
    /// Build a test from raw per-core programs, canonicalizing core order
    /// and word numbering. Panics if two cores store to the same word (the
    /// generator never produces that; handcrafted tests must not either).
    pub fn from_cores(cores: Vec<Vec<LitmusOp>>) -> Self {
        let cores = canonicalize(cores);
        let name = format!("lit[{}]", serialize(&cores));
        let t = LitmusTest { name, cores };
        t.assert_single_writer();
        t
    }

    fn assert_single_writer(&self) {
        let mut owner: Vec<Option<usize>> = vec![None; self.words()];
        for (c, ops) in self.cores.iter().enumerate() {
            for op in ops {
                if let LitmusOp::Store(w) = op {
                    let slot = &mut owner[*w as usize];
                    match slot {
                        Some(prev) if *prev != c => {
                            panic!("litmus test {} has two writers for w{w}", self.name)
                        }
                        _ => *slot = Some(c),
                    }
                }
            }
        }
    }

    /// Number of distinct words the test touches (max index + 1).
    pub fn words(&self) -> usize {
        self.cores
            .iter()
            .flatten()
            .filter_map(|op| match op {
                LitmusOp::Store(w) | LitmusOp::Clwb(w) => Some(*w as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Total litmus ops across all cores.
    pub fn ops(&self) -> usize {
        self.cores.iter().map(Vec::len).sum()
    }

    /// Emit the test as `ppa_isa` traces, one per core, plus a map from
    /// litmus-op index to the trace position of its effective uop (the
    /// store/clwb/barrier/sync itself, not the data-defining ALU op).
    pub fn traces(&self) -> (Vec<Trace>, Vec<Vec<usize>>) {
        let mut traces = Vec::with_capacity(self.cores.len());
        let mut op_pos = Vec::with_capacity(self.cores.len());
        for (c, ops) in self.cores.iter().enumerate() {
            let mut b = TraceBuilder::new(format!("{}#c{c}", self.name));
            let mut positions = Vec::with_capacity(ops.len());
            let mut rank = vec![0usize; self.words()];
            for op in ops {
                match op {
                    LitmusOp::Store(w) => {
                        let w = *w as usize;
                        b.alu(DATA, &[]);
                        positions.push(b.len());
                        b.store(DATA, word_addr(w), store_value(w, rank[w]));
                        rank[w] += 1;
                    }
                    LitmusOp::Clwb(w) => {
                        positions.push(b.len());
                        b.push(Uop::new(0, UopKind::Clwb).with_mem(MemRef::new(
                            word_addr(*w as usize),
                            8,
                            0,
                        )));
                    }
                    LitmusOp::SFence => {
                        positions.push(b.len());
                        b.push(Uop::new(0, UopKind::PersistBarrier));
                    }
                    LitmusOp::Sync => {
                        positions.push(b.len());
                        b.sync(SyncKind::Fence);
                    }
                }
            }
            // A trailing nop keeps the final litmus op from being the very
            // last uop, which makes "committed the whole program" visible.
            b.nop();
            traces.push(b.build());
            op_pos.push(positions);
        }
        (traces, op_pos)
    }
}

/// Serialize per-core programs with words renumbered by first appearance.
fn serialize(cores: &[Vec<LitmusOp>]) -> String {
    let mut rename: Vec<Option<u8>> = Vec::new();
    let mut next = 0u8;
    let mut out = String::new();
    for (c, ops) in cores.iter().enumerate() {
        if c > 0 {
            out.push('.');
        }
        for op in ops {
            let op = match op {
                LitmusOp::Store(w) | LitmusOp::Clwb(w) => {
                    let w = *w as usize;
                    if rename.len() <= w {
                        rename.resize(w + 1, None);
                    }
                    let r = *rename[w].get_or_insert_with(|| {
                        let r = next;
                        next += 1;
                        r
                    });
                    match op {
                        LitmusOp::Store(_) => LitmusOp::Store(r),
                        _ => LitmusOp::Clwb(r),
                    }
                }
                other => *other,
            };
            out.push_str(&op.mnemonic());
        }
    }
    out
}

/// Canonical form: over all core-order permutations (identity only above 5
/// cores — handcrafted wide tests keep their order), pick the
/// lexicographically smallest serialization with words renumbered by first
/// appearance, then apply that renumbering so names and programs agree.
fn canonicalize(cores: Vec<Vec<LitmusOp>>) -> Vec<Vec<LitmusOp>> {
    let n = cores.len();
    if n > 5 {
        return renumber(cores);
    }
    let mut best: Option<(String, Vec<usize>)> = None;
    let mut order: Vec<usize> = (0..n).collect();
    permute(&mut order, 0, &mut |perm| {
        let arranged: Vec<Vec<LitmusOp>> = perm.iter().map(|&i| cores[i].clone()).collect();
        let key = serialize(&arranged);
        if best.as_ref().map(|(k, _)| key < *k).unwrap_or(true) {
            best = Some((key, perm.to_vec()));
        }
    });
    let (_, perm) = best.expect("at least one permutation");
    renumber(perm.into_iter().map(|i| cores[i].clone()).collect())
}

/// Rewrite word indices to first-appearance order.
fn renumber(cores: Vec<Vec<LitmusOp>>) -> Vec<Vec<LitmusOp>> {
    let mut rename: Vec<Option<u8>> = Vec::new();
    let mut next = 0u8;
    cores
        .into_iter()
        .map(|ops| {
            ops.into_iter()
                .map(|op| match op {
                    LitmusOp::Store(w) | LitmusOp::Clwb(w) => {
                        let w = w as usize;
                        if rename.len() <= w {
                            rename.resize(w + 1, None);
                        }
                        let r = *rename[w].get_or_insert_with(|| {
                            let r = next;
                            next += 1;
                            r
                        });
                        match op {
                            LitmusOp::Store(_) => LitmusOp::Store(r),
                            _ => LitmusOp::Clwb(r),
                        }
                    }
                    other => other,
                })
                .collect()
        })
        .collect()
}

fn permute(order: &mut Vec<usize>, k: usize, visit: &mut dyn FnMut(&[usize])) {
    if k == order.len() {
        visit(order);
        return;
    }
    for i in k..order.len() {
        order.swap(k, i);
        permute(order, k + 1, visit);
        order.swap(k, i);
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    pub seed: u64,
    /// Number of distinct canonical tests to produce.
    pub tests: usize,
}

/// Sample `cfg.tests` distinct canonical litmus tests. Deterministic in the
/// seed; symmetric duplicates are discarded, so the sampler draws until it
/// has enough unique tests (with a generous attempt cap).
pub fn generate(cfg: &GenConfig) -> Vec<LitmusTest> {
    let mut rng = Prng::seed_from_u64(cfg.seed ^ 0x0011_7135_0011_7135);
    let mut seen: HashSet<String> = HashSet::new();
    let mut out = Vec::with_capacity(cfg.tests);
    let mut attempts = 0usize;
    let cap = cfg.tests.saturating_mul(400).max(4000);
    while out.len() < cfg.tests && attempts < cap {
        attempts += 1;
        let t = sample_one(&mut rng);
        if !t
            .cores
            .iter()
            .flatten()
            .any(|op| matches!(op, LitmusOp::Store(_)))
        {
            continue; // storeless tests are vacuous
        }
        if seen.insert(t.name.clone()) {
            out.push(t);
        }
    }
    assert_eq!(
        out.len(),
        cfg.tests,
        "litmus generator exhausted {cap} attempts before reaching {} unique tests",
        cfg.tests
    );
    out
}

fn sample_one(rng: &mut Prng) -> LitmusTest {
    let n_cores = rng.random_range(2..5usize);
    let n_words = rng.random_range(2..5usize);
    // Partition words among cores: each word gets exactly one owner.
    let owner: Vec<usize> = (0..n_words).map(|_| rng.random_range(0..n_cores)).collect();
    let cores: Vec<Vec<LitmusOp>> = (0..n_cores)
        .map(|c| {
            let owned: Vec<u8> = owner
                .iter()
                .enumerate()
                .filter(|&(_, &o)| o == c)
                .map(|(w, _)| w as u8)
                .collect();
            let n_ops = rng.random_range(2..9usize);
            (0..n_ops)
                .map(|_| {
                    if owned.is_empty() {
                        if rng.random_bool(0.5) {
                            LitmusOp::SFence
                        } else {
                            LitmusOp::Sync
                        }
                    } else {
                        match rng.random_below(8) {
                            0..=3 => LitmusOp::Store(*rng.choose(&owned).unwrap()),
                            4..=5 => LitmusOp::Clwb(*rng.choose(&owned).unwrap()),
                            6 => LitmusOp::SFence,
                            _ => LitmusOp::Sync,
                        }
                    }
                })
                .collect()
        })
        .collect();
    LitmusTest::from_cores(cores)
}

/// Handcrafted contention test for arbiter-fairness probing: cores with
/// staggered region lengths re-request drain certificates while others still
/// wait, which is exactly the pattern a biased grant port starves. The
/// generator's 2–4-core samples rarely stress rotation this hard.
pub fn contention(cores: usize) -> LitmusTest {
    let programs: Vec<Vec<LitmusOp>> = (0..cores)
        .map(|c| {
            let mut ops = Vec::new();
            // Core c runs (c % 3 + 1) short store+sync regions, then a tail
            // region, so low cores finish regions early and re-pend while
            // high cores are still waiting on their first grant.
            for _ in 0..(c % 3) + 1 {
                ops.push(LitmusOp::Store(c as u8));
                ops.push(LitmusOp::Sync);
            }
            ops.push(LitmusOp::Store(c as u8));
            ops.push(LitmusOp::Sync);
            ops
        })
        .collect();
    LitmusTest::from_cores(programs)
}

/// Handcrafted sealed-store test: store w0, clwb w0, sfence, store w1. Once
/// the sfence commits, any state exposing w1's store must also expose w0's
/// (the seal raised w0's floor), so a recovery that loses the w0 store while
/// keeping the w1 store is machine-unsound — the window the
/// `DropReplayEntry` runner fault must violate.
pub fn sealed_pair() -> LitmusTest {
    LitmusTest::from_cores(vec![
        vec![
            LitmusOp::Store(0),
            LitmusOp::Clwb(0),
            LitmusOp::SFence,
            LitmusOp::Store(1),
        ],
        vec![LitmusOp::Store(2), LitmusOp::Sync],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_tests_collapse_to_one_canonical_name() {
        let a = LitmusTest::from_cores(vec![
            vec![LitmusOp::Store(0), LitmusOp::Sync],
            vec![LitmusOp::Store(1), LitmusOp::Clwb(1), LitmusOp::SFence],
        ]);
        // Same test with cores swapped and words renamed.
        let b = LitmusTest::from_cores(vec![
            vec![LitmusOp::Store(1), LitmusOp::Clwb(1), LitmusOp::SFence],
            vec![LitmusOp::Store(0), LitmusOp::Sync],
        ]);
        assert_eq!(a.name, b.name);
        assert_eq!(a.cores, b.cores);
    }

    #[test]
    fn generation_is_deterministic_and_unique() {
        let cfg = GenConfig { seed: 7, tests: 64 };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        let names: HashSet<_> = a.iter().map(|t| t.name.clone()).collect();
        assert_eq!(names.len(), 64);
        for t in &a {
            assert!((2..=4).contains(&t.cores.len()));
            for ops in &t.cores {
                assert!((2..=8).contains(&ops.len()));
            }
            assert!(t.words() <= 4);
        }
    }

    #[test]
    fn traces_map_litmus_ops_to_effective_uops() {
        let t = LitmusTest::from_cores(vec![
            vec![LitmusOp::Store(0), LitmusOp::Clwb(0), LitmusOp::SFence],
            vec![LitmusOp::Store(1), LitmusOp::Sync],
        ]);
        let (traces, op_pos) = t.traces();
        assert_eq!(traces.len(), 2);
        for (c, ops) in t.cores.iter().enumerate() {
            assert_eq!(op_pos[c].len(), ops.len());
            for (i, op) in ops.iter().enumerate() {
                let uop = traces[c].get(op_pos[c][i]).unwrap();
                match op {
                    LitmusOp::Store(w) => {
                        assert_eq!(uop.kind, UopKind::Store);
                        assert_eq!(uop.mem.unwrap().addr, word_addr(*w as usize));
                    }
                    LitmusOp::Clwb(_) => assert_eq!(uop.kind, UopKind::Clwb),
                    LitmusOp::SFence => assert_eq!(uop.kind, UopKind::PersistBarrier),
                    LitmusOp::Sync => assert!(matches!(uop.kind, UopKind::Sync(_))),
                }
            }
        }
    }

    #[test]
    fn two_writers_panic() {
        let r = std::panic::catch_unwind(|| {
            LitmusTest::from_cores(vec![vec![LitmusOp::Store(0)], vec![LitmusOp::Store(0)]])
        });
        assert!(r.is_err());
    }
}
