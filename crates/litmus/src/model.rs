//! Executable axiomatic persistency model.
//!
//! Built from first principles in the Px86 style, specialized to the PPA
//! machine's vocabulary:
//!
//! - **Per-location persist order** — stores to one word persist in program
//!   order (the value-carrying CSQ and the write-back hierarchy never
//!   reorder same-word stores), so a post-crash word holds the value of some
//!   program-order prefix of its stores: value of store `j` means stores
//!   `0..=j` reached persistence and `j+1..` did not.
//! - **Epoch seals** — a store is *forced durable* once its seal commits:
//!   the first clwb of its line strictly after it, followed by the first
//!   persist barrier strictly after that clwb (exactly `depgraph`'s
//!   `store_seals`, which this module calls on the emitted trace rather than
//!   re-deriving the rule).
//! - **Sync as publishing barrier** — a core cannot commit a sync until
//!   every prior store of the region is durable (the arbiter certifies the
//!   drain), so a committed sync forces all program-order-earlier stores.
//! - **Crash cut** — a crash observes each core at some commit prefix
//!   `0..k`. Stores beyond the cut never executed; stores inside the cut are
//!   individually optional *except* those forced by a committed seal or
//!   sync, which (with per-location order) raise that word's floor.
//!
//! Litmus programs contain no loads, so cores interact only through the
//! single-writer-per-word footprint: the joint allowed-state set is the
//! product of per-core allowed sets, and membership is checked per core.

use crate::generator::{store_value, LitmusOp, LitmusTest};
use ppa_isa::depgraph;
use std::collections::{BTreeSet, HashMap};

/// The set of post-crash memory states the model allows for one test.
#[derive(Debug, Clone)]
pub struct AllowedStates {
    /// Total words in the test (state vectors use this length).
    pub words: usize,
    /// Per core: the words it stores to, in ascending order.
    pub core_words: Vec<Vec<usize>>,
    /// Per core: allowed value tuples over `core_words[c]`, as the union
    /// over all crash cuts of the per-cut value products.
    pub core_states: Vec<BTreeSet<Vec<u64>>>,
}

impl AllowedStates {
    /// Number of joint allowed states (product of per-core set sizes;
    /// words written by nobody contribute exactly one choice: zero).
    pub fn count(&self) -> u64 {
        self.core_states
            .iter()
            .map(|s| s.len() as u64)
            .fold(1u64, |a, b| a.saturating_mul(b))
    }

    /// Does the model admit this joint state (one value per word)?
    pub fn admits(&self, state: &[u64]) -> bool {
        if state.len() != self.words {
            return false;
        }
        let mut owned = vec![false; self.words];
        for (c, words) in self.core_words.iter().enumerate() {
            for &w in words {
                owned[w] = true;
            }
            let tuple: Vec<u64> = words.iter().map(|&w| state[w]).collect();
            if !self.core_states[c].contains(&tuple) {
                return false;
            }
        }
        // Words no core stores to must still be zero after any crash.
        state
            .iter()
            .zip(owned)
            .all(|(&v, is_owned)| is_owned || v == 0)
    }
}

/// Enumerate the allowed post-crash states for a litmus test.
pub fn allowed_states(test: &LitmusTest) -> AllowedStates {
    let words = test.words();
    let (traces, op_pos) = test.traces();
    let mut core_words = Vec::with_capacity(test.cores.len());
    let mut core_states = Vec::with_capacity(test.cores.len());

    for (c, ops) in test.cores.iter().enumerate() {
        // Map trace position -> litmus op index for this core.
        let pos_to_op: HashMap<usize, usize> =
            op_pos[c].iter().enumerate().map(|(i, &p)| (p, i)).collect();

        // Stores per word, in program order: (op index, value).
        let mut stores: HashMap<usize, Vec<(usize, u64)>> = HashMap::new();
        let mut rank: HashMap<usize, usize> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            if let LitmusOp::Store(w) = op {
                let w = *w as usize;
                let k = rank.entry(w).or_insert(0);
                stores.entry(w).or_default().push((i, store_value(w, *k)));
                *k += 1;
            }
        }

        // Seal table from the emitted trace (the litmus model deliberately
        // reuses depgraph's rule rather than restating it): for each store
        // op index, the op index of the barrier that seals it, if any.
        let mut seal_barrier: HashMap<usize, usize> = HashMap::new();
        for seal in depgraph::store_seals(&traces[c]) {
            if let (Some(&s), Some(bpos)) = (pos_to_op.get(&seal.pos), seal.barrier_pos) {
                if let Some(&b) = pos_to_op.get(&bpos) {
                    seal_barrier.insert(s, b);
                }
            }
        }

        let syncs: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, LitmusOp::Sync))
            .map(|(i, _)| i)
            .collect();

        let mut my_words: Vec<usize> = stores.keys().copied().collect();
        my_words.sort_unstable();

        // Union over all crash cuts k (ops 0..k committed) of the product
        // over this core's words of each word's allowed value list.
        let mut states: BTreeSet<Vec<u64>> = BTreeSet::new();
        for k in 0..=ops.len() {
            let mut per_word: Vec<Vec<u64>> = Vec::with_capacity(my_words.len());
            for &w in &my_words {
                let ws = &stores[&w];
                let visible: Vec<&(usize, u64)> = ws.iter().filter(|(i, _)| *i < k).collect();
                // Floor: latest visible store forced durable at this cut —
                // sealed with a committed barrier, or published by a
                // committed sync after it.
                let mut floor: Option<usize> = None;
                for (idx, (i, _)) in visible.iter().enumerate() {
                    let sealed = seal_barrier.get(i).map(|&b| b < k).unwrap_or(false);
                    let published = syncs.iter().any(|&s| *i < s && s < k);
                    if sealed || published {
                        floor = Some(idx);
                    }
                }
                let mut vals: Vec<u64> = Vec::new();
                if floor.is_none() {
                    vals.push(0);
                }
                let lo = floor.unwrap_or(0);
                vals.extend(visible[lo..].iter().map(|(_, v)| *v));
                per_word.push(vals);
            }
            // Cartesian product of per-word choices for this cut.
            let mut acc: Vec<Vec<u64>> = vec![Vec::new()];
            for vals in &per_word {
                let mut next = Vec::with_capacity(acc.len() * vals.len());
                for prefix in &acc {
                    for &v in vals {
                        let mut s = prefix.clone();
                        s.push(v);
                        next.push(s);
                    }
                }
                acc = next;
            }
            states.extend(acc);
        }
        core_words.push(my_words);
        core_states.push(states);
    }

    AllowedStates {
        words,
        core_words,
        core_states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::LitmusTest;

    fn t(cores: Vec<Vec<LitmusOp>>) -> LitmusTest {
        LitmusTest::from_cores(cores)
    }

    #[test]
    fn single_unsealed_store_allows_lost_or_durable() {
        let m = allowed_states(&t(vec![
            vec![LitmusOp::Store(0), LitmusOp::Store(0)],
            vec![LitmusOp::Sync, LitmusOp::SFence],
        ]));
        // One core, one word, two stores: {0, v1, v2}.
        assert_eq!(m.count(), 3);
        assert!(m.admits(&[0]));
        assert!(m.admits(&[store_value(0, 0)]));
        assert!(m.admits(&[store_value(0, 1)]));
        assert!(!m.admits(&[999]));
    }

    #[test]
    fn two_words_one_core_allow_px86_reordering() {
        // st w0; st w1 with no seals: Px86 allows w1 durable while w0 lost.
        let m = allowed_states(&t(vec![
            vec![LitmusOp::Store(0), LitmusOp::Store(1)],
            vec![LitmusOp::Sync],
        ]));
        let v0 = store_value(0, 0);
        let v1 = store_value(1, 0);
        assert_eq!(m.count(), 4);
        assert!(m.admits(&[0, 0]));
        assert!(m.admits(&[v0, 0]));
        assert!(m.admits(&[v0, v1]));
        assert!(m.admits(&[0, v1]), "non-prefix state must be model-allowed");
    }

    #[test]
    fn a_committed_seal_raises_the_floor() {
        // st w0; clwb w0; sfence; st w1 — once the sfence commits (any cut
        // past it), w0 can no longer be 0.
        let m = allowed_states(&t(vec![
            vec![
                LitmusOp::Store(0),
                LitmusOp::Clwb(0),
                LitmusOp::SFence,
                LitmusOp::Store(1),
            ],
            vec![LitmusOp::Sync],
        ]));
        let v0 = store_value(0, 0);
        let v1 = store_value(1, 0);
        assert!(m.admits(&[0, 0]), "crash before the sfence commits");
        assert!(m.admits(&[v0, 0]));
        assert!(m.admits(&[v0, v1]));
        assert!(
            !m.admits(&[0, v1]),
            "w1's store only exists at cuts where the seal already forced w0"
        );
    }

    #[test]
    fn a_committed_sync_publishes_prior_stores() {
        // st w0; sync; st w1 — at any cut past the sync, w0 is durable.
        let m = allowed_states(&t(vec![
            vec![LitmusOp::Store(0), LitmusOp::Sync, LitmusOp::Store(1)],
            vec![LitmusOp::SFence],
        ]));
        let v0 = store_value(0, 0);
        let v1 = store_value(1, 0);
        assert!(m.admits(&[0, 0]));
        assert!(m.admits(&[v0, v1]));
        assert!(!m.admits(&[0, v1]), "sync is a publishing barrier");
    }

    #[test]
    fn cores_are_independent_products() {
        let m = allowed_states(&t(vec![vec![LitmusOp::Store(0)], vec![LitmusOp::Store(1)]]));
        // {0,v} × {0,v} = 4 joint states.
        assert_eq!(m.count(), 4);
        assert!(m.admits(&[store_value(0, 0), 0]));
        assert!(m.admits(&[0, store_value(1, 0)]));
    }
}
