//! `ppa-pool` — an in-tree work-stealing thread pool for the PPA
//! harnesses.
//!
//! The simulator itself is single-threaded by design; the natural
//! parallel axis is *across* independent [`Machine`]s — per-app fan-out
//! in `repro` and `ppa-verify`, and the crash oracle's (app × failure
//! point) grid. Those jobs are coarse (milliseconds to seconds each), so
//! this pool optimises for simplicity and determinism rather than
//! nanosecond dispatch: per-worker deques protected by mutexes, with
//! LIFO pops on the owner's queue (locality for nested spawns) and FIFO
//! steals from everyone else's (fairness for the oldest work). Per the
//! offline dependency policy (see ROADMAP.md) no external crates —
//! `rayon` included — are available, so the executor is built from `std`
//! alone, like `ppa-prng` before it.
//!
//! Three properties the consumers rely on:
//!
//! - **Order-preserving results.** [`ThreadPool::par_map`] and
//!   [`par_map_ordered`] return results in input order regardless of
//!   completion order, so harness output is byte-identical at any worker
//!   count (the simulations themselves are deterministic).
//! - **Panic isolation.** A panicking job is caught and surfaced as
//!   `Err(JobError::Panicked(_))` for that job only; the worker survives
//!   and the pool stays usable.
//! - **Deadlock-free nesting.** A job may fan out again into the same
//!   pool (`repro all` parallelises across experiments *and* across apps
//!   within each experiment). Waiting — scope exit or
//!   [`JobHandle::join`] — *helps*: the waiting thread executes queued
//!   jobs until its condition holds, so even a one-worker pool drains
//!   nested scopes.
//!
//! Jobs also get soft cancellation: a [`Scope`] can be cancelled and a
//! job can carry a soft timeout ([`JobOpts::timeout`]); queued jobs that
//! are cancelled before starting complete as `Err(JobError::Cancelled)`
//! without running, and running jobs can poll [`JobCtx::should_stop`].
//!
//! The shared pool is sized by the `PPA_JOBS` environment variable
//! (absent or `1` = serial, `0` = auto-detect cores, `N` = N workers) or
//! a [`set_jobs`] override (e.g. a `--jobs` CLI flag), and exposes
//! scheduler counters — jobs run, steals, idle time — as a
//! [`ppa_stats::TextTable`] via [`PoolStats::table`].
//!
//! [`Machine`]: ../ppa_sim/struct.Machine.html
//!
//! # Examples
//!
//! ```
//! use ppa_pool::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.par_map(0..100u64, |i| i * i);
//! assert_eq!(squares[7], Ok(49));
//!
//! // Scoped spawns may borrow from the enclosing frame.
//! let data = vec![1u64, 2, 3];
//! let sum = pool.scope(|s| {
//!     let h = s.spawn(|_ctx| data.iter().sum::<u64>());
//!     h.join().unwrap()
//! });
//! assert_eq!(sum, 6);
//! ```

mod stats;

pub use stats::PoolStats;

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

/// Why a job did not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job's closure panicked; the payload, rendered as text. The
    /// panic is confined to the job — the worker and pool stay usable.
    Panicked(String),
    /// The job was cancelled (scope cancellation, or its soft deadline
    /// passed) before it started running.
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Cancelled => write!(f, "job cancelled before it ran"),
        }
    }
}

impl std::error::Error for JobError {}

type Task = Box<dyn FnOnce() + Send + 'static>;

#[derive(Debug, Default)]
struct StatCells {
    jobs_run: AtomicU64,
    local_pops: AtomicU64,
    steals: AtomicU64,
    panics: AtomicU64,
    cancelled: AtomicU64,
    idle_ns: AtomicU64,
}

/// Shared pool state: one deque per worker plus the sleep/wake gate.
struct Inner {
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks currently enqueued. Incremented *before* the push and
    /// decremented on a successful pop, so a zero reliably means "safe
    /// to sleep" (a transient over-count only costs one extra scan).
    queued: AtomicUsize,
    /// Gate mutex for the condvar; pushes and job completions notify
    /// under it so sleepers cannot miss a wakeup.
    gate: Mutex<()>,
    cond: Condvar,
    shutdown: AtomicBool,
    /// Round-robin cursor for pushes from non-worker threads.
    next: AtomicUsize,
    stats: StatCells,
}

thread_local! {
    /// Set by worker threads: which pool they belong to and their queue
    /// index, so nested spawns go to the local deque and nested
    /// [`par_map_ordered`] calls reuse the enclosing pool.
    static CURRENT: std::cell::RefCell<Option<(Weak<Inner>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn current_inner() -> Option<Arc<Inner>> {
    CURRENT.with(|c| c.borrow().as_ref().and_then(|(w, _)| w.upgrade()))
}

/// This thread's worker index, if it is a worker of exactly this pool.
fn worker_index_in(inner: &Arc<Inner>) -> Option<usize> {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .and_then(|(w, i)| w.upgrade().filter(|a| Arc::ptr_eq(a, inner)).map(|_| *i))
    })
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl Inner {
    fn push(self: &Arc<Self>, task: Task) {
        let n = self.queues.len();
        let idx =
            worker_index_in(self).unwrap_or_else(|| self.next.fetch_add(1, Ordering::Relaxed) % n);
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.queues[idx].lock().unwrap().push_back(task);
        let _gate = self.gate.lock().unwrap();
        self.cond.notify_all();
    }

    /// LIFO pop from the caller's own deque, then FIFO steal from the
    /// others. `me == None` is an external helper (steal-only).
    fn pop(&self, me: Option<usize>) -> Option<Task> {
        if self.queued.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let n = self.queues.len();
        if let Some(i) = me {
            if let Some(t) = self.queues[i].lock().unwrap().pop_back() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.stats.local_pops.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let j = (start + k) % n;
            if me == Some(j) {
                continue;
            }
            if let Some(t) = self.queues[j].lock().unwrap().pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.stats.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Runs queued tasks until `done` holds. This is what scope exits and
    /// [`JobHandle::join`] block on, and it is why nested fan-out cannot
    /// deadlock: a waiter is itself a worker.
    fn help_until(self: &Arc<Self>, mut done: impl FnMut() -> bool) {
        let me = worker_index_in(self);
        loop {
            if done() {
                return;
            }
            if let Some(task) = self.pop(me) {
                task();
                continue;
            }
            let gate = self.gate.lock().unwrap();
            if done() {
                return;
            }
            if self.queued.load(Ordering::SeqCst) == 0 {
                // The timeout is only a backstop; completions notify.
                drop(
                    self.cond
                        .wait_timeout(gate, Duration::from_millis(1))
                        .unwrap(),
                );
            }
        }
    }

    fn snapshot_stats(&self) -> PoolStats {
        PoolStats {
            workers: self.queues.len(),
            jobs_run: self.stats.jobs_run.load(Ordering::Relaxed),
            local_pops: self.stats.local_pops.load(Ordering::Relaxed),
            steals: self.stats.steals.load(Ordering::Relaxed),
            panics: self.stats.panics.load(Ordering::Relaxed),
            cancelled: self.stats.cancelled.load(Ordering::Relaxed),
            idle: Duration::from_nanos(self.stats.idle_ns.load(Ordering::Relaxed)),
        }
    }
}

fn worker_loop(inner: Arc<Inner>, index: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::downgrade(&inner), index)));
    while !inner.shutdown.load(Ordering::SeqCst) {
        if let Some(task) = inner.pop(Some(index)) {
            task();
            continue;
        }
        let t0 = Instant::now();
        let gate = inner.gate.lock().unwrap();
        if inner.queued.load(Ordering::SeqCst) == 0 && !inner.shutdown.load(Ordering::SeqCst) {
            drop(
                inner
                    .cond
                    .wait_timeout(gate, Duration::from_millis(50))
                    .unwrap(),
            );
        } else {
            drop(gate);
        }
        inner
            .stats
            .idle_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// A fixed-size work-stealing thread pool. See the crate docs for the
/// scheduling discipline and the determinism/panic/nesting contract.
pub struct ThreadPool {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `workers` threads; `0` auto-detects the core
    /// count.
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            auto_parallelism()
        } else {
            workers
        };
        let inner = Arc::new(Inner {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            gate: Mutex::new(()),
            cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next: AtomicUsize::new(0),
            stats: StatCells::default(),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ppa-pool-{i}"))
                    .spawn(move || worker_loop(inner, i))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        ThreadPool {
            inner,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.queues.len()
    }

    /// A snapshot of the scheduler counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.snapshot_stats()
    }

    /// Runs `f` with a [`Scope`] that can spawn jobs borrowing from the
    /// enclosing frame. Does not return until every spawned job has
    /// completed (the calling thread helps run them while it waits); a
    /// panic in `f` itself still waits before resuming the unwind.
    pub fn scope<'env, F, R>(&'env self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        scope_on(&self.inner, f)
    }

    /// Applies `f` to every item in parallel, returning per-job results
    /// **in input order**. A panicking job yields `Err` for its slot
    /// only.
    pub fn par_map<'env, T, U, F, I>(&'env self, items: I, f: F) -> Vec<Result<U, JobError>>
    where
        I: IntoIterator<Item = T>,
        T: Send + 'env,
        U: Send + 'env,
        F: Fn(T) -> U + Sync + 'env,
    {
        par_map_on(&self.inner, items, f)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            let _gate = self.inner.gate.lock().unwrap();
            self.inner.cond.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        for queue in &self.inner.queues {
            queue.lock().unwrap().clear();
        }
    }
}

/// Per-scope bookkeeping: outstanding jobs and the cancellation flag.
#[derive(Debug, Default)]
struct ScopeState {
    pending: AtomicUsize,
    cancelled: AtomicBool,
}

/// Spawn handle passed to [`ThreadPool::scope`] closures.
pub struct Scope<'env> {
    inner: &'env Arc<Inner>,
    state: Arc<ScopeState>,
    /// Invariance over `'env`, the crossbeam-style scoped-spawn guard.
    _env: PhantomData<&'env mut &'env ()>,
}

/// Per-job options for [`Scope::spawn_opts`].
#[derive(Debug, Clone, Copy, Default)]
pub struct JobOpts {
    /// Soft deadline, measured from spawn time. A job whose deadline has
    /// passed before it starts completes as `Err(JobError::Cancelled)`
    /// without running; a running job observes it via
    /// [`JobCtx::should_stop`].
    pub timeout: Option<Duration>,
}

/// Cooperative cancellation context handed to every job.
#[derive(Debug)]
pub struct JobCtx {
    state: Arc<ScopeState>,
    deadline: Option<Instant>,
}

impl JobCtx {
    /// Whether the enclosing scope was cancelled.
    pub fn cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::SeqCst)
    }

    /// Whether this job's soft deadline has passed.
    pub fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether the job should wind down (cancellation or deadline). Long
    /// jobs poll this at convenient boundaries; nothing is preempted.
    pub fn should_stop(&self) -> bool {
        self.cancelled() || self.deadline_passed()
    }
}

fn scope_on<'env, F, R>(inner: &'env Arc<Inner>, f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let scope = Scope {
        inner,
        state: Arc::new(ScopeState::default()),
        _env: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    inner.help_until(|| scope.state.pending.load(Ordering::SeqCst) == 0);
    match result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    }
}

impl<'env> Scope<'env> {
    /// Spawns a job with default options. The closure may borrow
    /// anything that outlives the scope.
    pub fn spawn<T, F>(&self, f: F) -> JobHandle<T>
    where
        T: Send + 'env,
        F: FnOnce(&JobCtx) -> T + Send + 'env,
    {
        self.spawn_opts(JobOpts::default(), f)
    }

    /// Spawns a job with explicit [`JobOpts`].
    pub fn spawn_opts<T, F>(&self, opts: JobOpts, f: F) -> JobHandle<T>
    where
        T: Send + 'env,
        F: FnOnce(&JobCtx) -> T + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::new(JobShared {
            slot: Mutex::new(None),
            done: AtomicBool::new(false),
        });
        let ctx = JobCtx {
            state: Arc::clone(&self.state),
            deadline: opts.timeout.map(|t| Instant::now() + t),
        };
        let weak = Arc::downgrade(self.inner);
        let state = Arc::clone(&self.state);
        let out = Arc::clone(&shared);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let pool = weak.upgrade();
            let bump = |pick: fn(&StatCells) -> &AtomicU64| {
                if let Some(inner) = &pool {
                    pick(&inner.stats).fetch_add(1, Ordering::Relaxed);
                }
            };
            let result = if ctx.should_stop() {
                bump(|s| &s.cancelled);
                Err(JobError::Cancelled)
            } else {
                bump(|s| &s.jobs_run);
                match catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
                    Ok(value) => Ok(value),
                    Err(payload) => {
                        bump(|s| &s.panics);
                        Err(JobError::Panicked(panic_message(payload.as_ref())))
                    }
                }
            };
            *out.slot.lock().unwrap() = Some(result);
            out.done.store(true, Ordering::SeqCst);
            state.pending.fetch_sub(1, Ordering::SeqCst);
            if let Some(inner) = pool {
                let _gate = inner.gate.lock().unwrap();
                inner.cond.notify_all();
            }
        });
        // SAFETY: `scope_on` does not return — normally or by unwind —
        // until `pending` reaches zero, i.e. until this closure has run
        // (or been skipped as cancelled) and dropped its captures. Every
        // capture outlives `'env`, and `'env` outlives the `scope_on`
        // call, so erasing the lifetime cannot let the job observe freed
        // data. This is the standard scoped-pool construction.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(job) };
        self.inner.push(task);
        JobHandle {
            inner: Arc::clone(self.inner),
            shared,
        }
    }

    /// Cancels the scope: running jobs observe [`JobCtx::should_stop`],
    /// and queued jobs that have not started complete as
    /// `Err(JobError::Cancelled)` without running.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::SeqCst);
    }
}

struct JobShared<T> {
    slot: Mutex<Option<Result<T, JobError>>>,
    done: AtomicBool,
}

/// Handle to one spawned job's result.
pub struct JobHandle<T> {
    inner: Arc<Inner>,
    shared: Arc<JobShared<T>>,
}

impl<T> JobHandle<T> {
    /// Whether the job has finished (in any way).
    pub fn is_done(&self) -> bool {
        self.shared.done.load(Ordering::SeqCst)
    }

    /// Waits for the job, helping run queued work in the meantime.
    pub fn join(self) -> Result<T, JobError> {
        self.inner
            .help_until(|| self.shared.done.load(Ordering::SeqCst));
        self.shared
            .slot
            .lock()
            .unwrap()
            .take()
            .expect("a completed job always stores a result")
    }
}

fn par_map_on<'env, T, U, F, I>(inner: &'env Arc<Inner>, items: I, f: F) -> Vec<Result<U, JobError>>
where
    I: IntoIterator<Item = T>,
    T: Send + 'env,
    U: Send + 'env,
    F: Fn(T) -> U + Sync + 'env,
{
    let f = &f;
    scope_on(inner, |s| {
        let handles: Vec<JobHandle<U>> = items
            .into_iter()
            .map(|item| s.spawn(move |_ctx| f(item)))
            .collect();
        handles.into_iter().map(JobHandle::join).collect()
    })
}

// ---------------------------------------------------------------------
// The shared pool and its environment knobs.

static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);
static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

fn auto_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Overrides `PPA_JOBS` (e.g. from a `--jobs` CLI flag). `0` means
/// auto-detect cores. Must be called before the first [`global`] use to
/// affect the shared pool's size.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The effective job count: the [`set_jobs`] override if present, else
/// the `PPA_JOBS` environment variable, else `1` (serial). `0` resolves
/// to the detected core count.
pub fn configured_jobs() -> usize {
    let raw = match JOBS_OVERRIDE.load(Ordering::SeqCst) {
        usize::MAX => std::env::var("PPA_JOBS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1),
        n => n,
    };
    if raw == 0 {
        auto_parallelism()
    } else {
        raw
    }
}

/// The process-wide shared pool, created on first use with
/// [`configured_jobs`] workers.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(configured_jobs()))
}

/// Stats for the shared pool, if it has been created (it never is in
/// serial runs).
pub fn global_stats() -> Option<PoolStats> {
    GLOBAL.get().map(ThreadPool::stats)
}

/// Mirrors [`global_stats`] into the `ppa-obs` registry as `pool.*`
/// metrics (counters overwritten with the cumulative totals, `idle`
/// in nanoseconds). Harness front-ends call this right before
/// snapshotting so `--metrics-json` always reflects the final pool
/// state. Serial runs, where the shared pool never spins up, export
/// an all-zero family so the JSON shape is stable across job counts.
pub fn export_metrics() {
    let stats = global_stats().unwrap_or_default();
    ppa_obs::registry::gauge("pool.workers").set(stats.workers as f64);
    ppa_obs::registry::counter("pool.jobs_run").set(stats.jobs_run);
    ppa_obs::registry::counter("pool.local_pops").set(stats.local_pops);
    ppa_obs::registry::counter("pool.steals").set(stats.steals);
    ppa_obs::registry::counter("pool.panics").set(stats.panics);
    ppa_obs::registry::counter("pool.cancelled").set(stats.cancelled);
    ppa_obs::registry::counter("pool.idle_ns").set(stats.idle.as_nanos() as u64);
}

/// Order-preserving parallel map over the ambient pool: the enclosing
/// worker's pool when called from inside a job (nested fan-out), the
/// shared [`global`] pool otherwise — or a plain serial loop when
/// [`configured_jobs`] is 1, so default runs spawn no threads at all.
///
/// A panicking job re-panics here with its message, matching what the
/// serial loop would do; use [`ThreadPool::par_map`] directly to handle
/// per-job errors.
pub fn par_map_ordered<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    if let Some(inner) = current_inner() {
        return collect_ok(par_map_on(&inner, items, f));
    }
    if configured_jobs() <= 1 {
        return items.into_iter().map(f).collect();
    }
    collect_ok(par_map_on(&global().inner, items, f))
}

fn collect_ok<U>(results: Vec<Result<U, JobError>>) -> Vec<U> {
    results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("parallel job failed: {e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let pool = ThreadPool::new(4);
        let out = pool.par_map(0..64u64, |i| i * 3);
        let expect: Vec<Result<u64, JobError>> = (0..64).map(|i| Ok(i * 3)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn zero_workers_means_auto_detect() {
        let pool = ThreadPool::new(0);
        assert!(pool.workers() >= 1);
    }

    #[test]
    fn configured_jobs_defaults_to_serial() {
        // Neither the env var nor the override is set under `cargo test`.
        if std::env::var("PPA_JOBS").is_err() && JOBS_OVERRIDE.load(Ordering::SeqCst) == usize::MAX
        {
            assert_eq!(configured_jobs(), 1);
        }
    }

    #[test]
    fn serial_par_map_ordered_needs_no_pool() {
        let out = par_map_ordered(vec![1u32, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn job_error_displays() {
        assert!(JobError::Panicked("boom".into())
            .to_string()
            .contains("boom"));
        assert!(JobError::Cancelled.to_string().contains("cancelled"));
    }
}
