//! Scheduler counters, reported through `ppa-stats` like every other
//! harness metric.

use ppa_stats::{fmt_duration, TextTable};
use std::time::Duration;

/// A point-in-time snapshot of a pool's scheduler counters.
///
/// `local_pops + steals` is the number of dequeues; `steals` counts
/// tasks taken from another worker's deque (including by threads helping
/// while they wait). `idle` is summed across workers, so it can exceed
/// wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs whose closure actually ran (cancelled jobs excluded).
    pub jobs_run: u64,
    /// Dequeues from the running worker's own deque (LIFO end).
    pub local_pops: u64,
    /// Dequeues from another worker's deque (FIFO end).
    pub steals: u64,
    /// Jobs that panicked (each surfaced as a per-job error).
    pub panics: u64,
    /// Jobs cancelled before they started.
    pub cancelled: u64,
    /// Total time workers spent waiting for work, summed across workers.
    pub idle: Duration,
}

impl PoolStats {
    /// Renders the counters as an aligned two-column table.
    ///
    /// # Examples
    ///
    /// ```
    /// let stats = ppa_pool::PoolStats::default();
    /// assert!(stats.table().to_string().contains("steals"));
    /// ```
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["pool metric", "value"]);
        t.row(["workers", &self.workers.to_string()]);
        t.row(["jobs run", &self.jobs_run.to_string()]);
        t.row(["local pops", &self.local_pops.to_string()]);
        t.row(["steals", &self.steals.to_string()]);
        t.row(["panics", &self.panics.to_string()]);
        t.row(["cancelled", &self.cancelled.to_string()]);
        t.row(["idle (summed)", &fmt_duration(self.idle)]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_every_counter() {
        let stats = PoolStats {
            workers: 8,
            jobs_run: 100,
            local_pops: 60,
            steals: 40,
            panics: 1,
            cancelled: 2,
            idle: Duration::from_millis(1500),
        };
        let s = stats.table().to_string();
        for needle in ["workers", "jobs run", "steals", "idle", "1.50s"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}
