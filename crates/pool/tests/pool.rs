//! Integration tests for the work-stealing executor: seeded stress
//! loops, forced steals, panic isolation, nested fan-out, and
//! cancellation. These stand in for the property tests an external
//! framework would provide (offline dependency policy — see ROADMAP.md).

use ppa_pool::{JobError, JobOpts, ThreadPool};
use ppa_prng::Prng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// A tiny deterministic CPU-bound job whose cost scales with `spin`.
fn spin_hash(seed: u64, spin: u64) -> u64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for i in 0..spin {
        h = h.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ (h >> 31) ^ i;
    }
    h
}

#[test]
fn seeded_stress_thousands_of_jobs_match_serial() {
    for seed in 1..=3u64 {
        for workers in [1usize, 2, 4, 8] {
            let mut rng = Prng::seed_from_u64(seed);
            // Skewed job costs: a few heavy jobs amid thousands of light
            // ones, which is exactly the shape that forces steals.
            let jobs: Vec<(u64, u64)> = (0..2_000u64)
                .map(|i| {
                    let spin = if rng.random_bool(0.02) {
                        rng.random_range(20_000..60_000u64)
                    } else {
                        rng.random_range(0..200u64)
                    };
                    (i, spin)
                })
                .collect();
            let expect: Vec<u64> = jobs.iter().map(|&(i, s)| spin_hash(i, s)).collect();

            let pool = ThreadPool::new(workers);
            let got = pool.par_map(jobs, |(i, s)| spin_hash(i, s));
            let got: Vec<u64> = got.into_iter().map(Result::unwrap).collect();
            assert_eq!(got, expect, "seed={seed} workers={workers}");
            let stats = pool.stats();
            assert_eq!(stats.jobs_run, 2_000);
            assert_eq!(stats.local_pops + stats.steals, 2_000);
        }
    }
}

#[test]
fn skewed_costs_force_steals() {
    let pool = ThreadPool::new(2);
    let started = std::sync::Arc::new(AtomicBool::new(false));
    let started2 = std::sync::Arc::clone(&started);
    // One long job occupies a worker while the rest of its deque is
    // picked clean by the other worker (and the helping main thread).
    let mut jobs: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(move || {
        started2.store(true, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(100));
    })];
    for _ in 0..200 {
        jobs.push(Box::new(|| std::thread::sleep(Duration::from_micros(50))));
    }
    let results = pool.par_map(jobs, |job| job());
    assert_eq!(results.len(), 201);
    assert!(results.iter().all(Result::is_ok));
    assert!(started.load(Ordering::SeqCst));
    let stats = pool.stats();
    assert!(
        stats.steals > 0,
        "a blocked worker's deque must be stolen from: {stats:?}"
    );
}

#[test]
fn one_panicking_job_leaves_the_other_99_intact_and_the_pool_reusable() {
    let pool = ThreadPool::new(4);
    let results = pool.par_map(0..100u32, |i| {
        if i == 37 {
            panic!("job 37 exploded");
        }
        i * 2
    });
    for (i, r) in results.iter().enumerate() {
        if i == 37 {
            match r {
                Err(JobError::Panicked(msg)) => assert!(msg.contains("exploded"), "{msg}"),
                other => panic!("expected a panic error, got {other:?}"),
            }
        } else {
            assert_eq!(*r, Ok(i as u32 * 2));
        }
    }
    assert_eq!(pool.stats().panics, 1);

    // The pool is not poisoned: a second batch runs clean.
    let again = pool.par_map(0..50u32, |i| i + 1);
    assert!(again.iter().all(Result::is_ok));
    assert_eq!(pool.stats().jobs_run, 150);
}

#[test]
fn nested_fan_out_does_not_deadlock_even_on_one_worker() {
    for workers in [1usize, 4] {
        let pool = ThreadPool::new(workers);
        // Each outer job fans out again into the same pool; the outer
        // job's wait must help drain the inner jobs.
        let totals = pool.par_map(0..8u64, |i| {
            let inner: u64 = ppa_pool::par_map_ordered((0..16u64).collect(), |j| i * 100 + j)
                .into_iter()
                .sum();
            inner
        });
        for (i, t) in totals.into_iter().enumerate() {
            let i = i as u64;
            assert_eq!(t, Ok(16 * i * 100 + (0..16).sum::<u64>()));
        }
    }
}

#[test]
fn scope_handles_return_values_and_help_join() {
    let pool = ThreadPool::new(2);
    let data = [10u64, 20, 30];
    let sum = pool.scope(|s| {
        let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * x)).collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
    });
    assert_eq!(sum, 100 + 400 + 900);
}

#[test]
fn cancelled_scope_skips_queued_jobs() {
    let pool = ThreadPool::new(1);
    let (tx, rx) = mpsc::channel();
    let ran = AtomicU64::new(0);
    let mut tail = Vec::new();
    pool.scope(|s| {
        // The blocker occupies the only worker until the scope is
        // cancelled; it polls its ctx cooperatively.
        let blocker = s.spawn(|ctx| {
            tx.send(()).unwrap();
            while !ctx.should_stop() {
                std::thread::sleep(Duration::from_millis(1));
            }
            "stopped early"
        });
        rx.recv().unwrap(); // the blocker is running, the worker is busy
        for _ in 0..10 {
            tail.push(s.spawn(|_| ran.fetch_add(1, Ordering::SeqCst)));
        }
        s.cancel();
        assert_eq!(blocker.join(), Ok("stopped early"));
    });
    let outcomes: Vec<_> = tail.into_iter().map(|h| h.join()).collect();
    assert!(
        outcomes.iter().all(|o| *o == Err(JobError::Cancelled)),
        "queued jobs must be skipped after cancel: {outcomes:?}"
    );
    assert_eq!(ran.load(Ordering::SeqCst), 0);
    assert_eq!(pool.stats().cancelled, 10);
}

#[test]
fn expired_soft_timeout_cancels_before_the_job_runs() {
    let pool = ThreadPool::new(1);
    let outcome = pool.scope(|s| {
        s.spawn_opts(
            JobOpts {
                timeout: Some(Duration::ZERO),
            },
            |_| "ran",
        )
        .join()
    });
    assert_eq!(outcome, Err(JobError::Cancelled));
}

#[test]
fn running_jobs_observe_their_deadline() {
    let pool = ThreadPool::new(1);
    let outcome = pool.scope(|s| {
        s.spawn_opts(
            JobOpts {
                timeout: Some(Duration::from_millis(20)),
            },
            |ctx| {
                let mut polls = 0u64;
                while !ctx.should_stop() {
                    std::thread::sleep(Duration::from_millis(1));
                    polls += 1;
                    assert!(polls < 10_000, "deadline never observed");
                }
                polls
            },
        )
        .join()
    });
    assert!(outcome.is_ok(), "{outcome:?}");
}

#[test]
fn scope_waits_for_all_jobs_even_when_the_closure_panics() {
    let pool = ThreadPool::new(2);
    let finished = AtomicU64::new(0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    std::thread::sleep(Duration::from_millis(5));
                    finished.fetch_add(1, Ordering::SeqCst);
                });
            }
            panic!("scope body panics after spawning");
        })
    }));
    assert!(result.is_err());
    // The unwind was delayed until every spawned job completed.
    assert_eq!(finished.load(Ordering::SeqCst), 8);
}
