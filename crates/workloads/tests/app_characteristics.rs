//! Conformance tests: every one of the 41 application models generates
//! traces whose measured characteristics match its descriptor.

use ppa_isa::{SyncKind, UopKind};
use ppa_workloads::registry;

const LEN: usize = 30_000;

#[test]
fn instruction_mixes_match_descriptors() {
    for app in registry::all() {
        let t = app.generate(LEN, 7);
        let m = t.mix();
        let total = m.total as f64;
        let sf = m.stores as f64 / total;
        let lf = m.loads as f64 / total;
        let bf = m.branches as f64 / total;
        assert!(
            (sf - app.store_frac).abs() < 0.012,
            "{}: store fraction {sf:.3} vs {:.3}",
            app.name,
            app.store_frac
        );
        assert!(
            (lf - app.load_frac).abs() < 0.015,
            "{}: load fraction {lf:.3} vs {:.3}",
            app.name,
            app.load_frac
        );
        assert!(
            (bf - app.branch_frac).abs() < 0.015,
            "{}: branch fraction {bf:.3} vs {:.3}",
            app.name,
            app.branch_frac
        );
    }
}

#[test]
fn register_defining_fraction_leaves_the_prf_idle() {
    // §1: only a minority-to-half of instructions define registers (the
    // paper reports ~30%; our models sit near 0.45-0.50 across both
    // classes — see EXPERIMENTS.md deviation 2). What matters for the
    // mechanism is that well under one register is consumed per
    // instruction, leaving the PRF underutilised.
    let mut total_defs = 0u64;
    let mut total = 0u64;
    for app in registry::all() {
        let m = app.generate(10_000, 3).mix();
        total_defs += m.reg_defs;
        total += m.total;
    }
    let frac = total_defs as f64 / total as f64;
    assert!(
        (0.25..0.60).contains(&frac),
        "aggregate defining fraction {frac:.3} out of range"
    );
}

#[test]
fn sync_rates_match_descriptors() {
    for app in registry::multi_threaded() {
        let t = app.generate(50_000, 9);
        let syncs = t.mix().syncs as f64;
        let expected = app.sync_per_kilo * 50.0;
        assert!(
            (syncs - expected).abs() < expected.mul_add(0.35, 8.0),
            "{}: {} syncs vs ~{expected:.0}",
            app.name,
            syncs
        );
    }
}

#[test]
fn store_footprints_track_hot_and_cold_sets() {
    for app in registry::all() {
        let t = app.generate(20_000, 5);
        let stores = t.mix().stores;
        if stores == 0 {
            continue;
        }
        let mut lines: Vec<u64> = t
            .iter()
            .filter(|u| u.kind == UopKind::Store)
            .map(|u| ppa_isa::line_of(u.mem.unwrap().addr))
            .collect();
        lines.sort_unstable();
        lines.dedup();
        // Store runs mean far fewer distinct lines than stores; the hot
        // set plus sampled cold lines bounds the footprint.
        assert!(
            (lines.len() as u64) < stores,
            "{}: no store-run locality",
            app.name
        );
        let bound =
            app.store_hot_lines as usize + (stores as f64 * app.store_cold_frac) as usize + 16;
        assert!(
            lines.len() <= bound,
            "{}: {} distinct store lines exceeds bound {bound}",
            app.name,
            lines.len()
        );
    }
}

#[test]
fn lock_discipline_holds_for_every_app() {
    for app in registry::multi_threaded() {
        for tid in 0..2 {
            let t = app.generate_thread(30_000, 1, tid);
            let mut held = false;
            for u in &t {
                match u.kind {
                    UopKind::Sync(SyncKind::LockAcquire) => {
                        assert!(!held, "{}: nested acquire", app.name);
                        held = true;
                    }
                    UopKind::Sync(SyncKind::LockRelease) => {
                        assert!(held, "{}: stray release", app.name);
                        held = false;
                    }
                    _ => {}
                }
            }
        }
    }
}

#[test]
fn every_store_names_a_data_register_and_a_value_rule_holds() {
    use std::collections::HashMap;
    for app in registry::all() {
        let t = app.generate(15_000, 11);
        let mut current: HashMap<ppa_isa::ArchReg, u64> = HashMap::new();
        for u in &t {
            if let Some(d) = u.dst {
                current.remove(&d);
            }
            if u.kind == UopKind::Store {
                let data = u
                    .store_data_reg()
                    .unwrap_or_else(|| panic!("{}: store without data register", app.name));
                let v = u.mem.unwrap().value;
                match current.get(&data) {
                    Some(&prev) => assert_eq!(
                        prev, v,
                        "{}: store value changed without redefinition",
                        app.name
                    ),
                    None => {
                        current.insert(data, v);
                    }
                }
            }
        }
    }
}

#[test]
fn footprints_scale_with_trace_length() {
    let app = registry::by_name("mcf").unwrap();
    let short = app.generate(2_000, 1).footprint_lines();
    let long = app.generate(20_000, 1).footprint_lines();
    assert!(long > short, "longer runs touch more lines");
}
