use crate::generator::TraceGenerator;
use ppa_isa::Trace;
use std::fmt;

/// The benchmark suite an application belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Suite {
    /// SPEC CPU2006 (single-threaded, reference inputs).
    Cpu2006,
    /// SPEC CPU2017 (single-threaded, reference inputs).
    Cpu2017,
    /// SPLASH-3 shared-memory parallel kernels (8 threads).
    Splash3,
    /// STAMP transactional applications (8 threads).
    Stamp,
    /// WHISPER persistent-memory applications (8 threads).
    Whisper,
    /// DOE Mini-apps (LULESH, XSBench).
    MiniApps,
}

impl Suite {
    /// All suites, in the order the paper's figures present them.
    pub const ALL: [Suite; 6] = [
        Suite::Cpu2006,
        Suite::Cpu2017,
        Suite::Splash3,
        Suite::Stamp,
        Suite::Whisper,
        Suite::MiniApps,
    ];
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::Cpu2006 => "CPU2006",
            Suite::Cpu2017 => "CPU2017",
            Suite::Splash3 => "SPLASH3",
            Suite::Stamp => "STAMP",
            Suite::Whisper => "WHISPER",
            Suite::MiniApps => "Mini-apps",
        };
        f.write_str(s)
    }
}

/// Behavioural model of one benchmark application.
///
/// All fractions are of total micro-ops unless noted. See the crate docs
/// for how each field maps to an experiment in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppDescriptor {
    /// Application name as the paper's figures label it.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Default thread count (1 for SPEC, 8 for the parallel suites).
    pub threads: usize,
    /// Fraction of micro-ops that are loads.
    pub load_frac: f64,
    /// Fraction of micro-ops that are stores.
    pub store_frac: f64,
    /// Fraction of micro-ops that are branches.
    pub branch_frac: f64,
    /// Of branches, the fraction that are calls/returns (ends the
    /// compiler-formed regions of ReplayCache/Capri).
    pub call_frac: f64,
    /// Of non-memory, non-branch compute ops, the fraction executed on
    /// the FP pipes (and defining FP registers).
    pub fp_frac: f64,
    /// Of compute ops, the fraction that define a register (the rest are
    /// compares/tests writing only flags). Tuned so ~30% of all
    /// micro-ops define a register, as the paper reports.
    pub alu_def_frac: f64,
    /// Synchronisation micro-ops per 1000 instructions (0 for SPEC).
    pub sync_per_kilo: f64,
    /// Distinct integer architectural registers the code cycles through.
    pub int_regs: u8,
    /// Distinct FP architectural registers cycled.
    pub fp_regs: u8,
    /// Hot load working set in cache lines (hits in L1/L2).
    pub load_hot_lines: u64,
    /// Cold load footprint in cache lines (spills past the L2, possibly
    /// past the DRAM cache).
    pub load_cold_lines: u64,
    /// Fraction of loads that go to the cold set (drives the L2/DRAM
    /// cache miss rates).
    pub load_cold_frac: f64,
    /// Hot store working set in cache lines (coalescing-friendly).
    pub store_hot_lines: u64,
    /// Cold store footprint in cache lines.
    pub store_cold_lines: u64,
    /// Fraction of stores going to the cold set (write-traffic spread:
    /// high for `rb`'s random tree updates, low for stack-like writers).
    pub store_cold_frac: f64,
    /// Mean number of consecutive stores that land in the same cache
    /// line before the store stream moves to another line. Real code
    /// writes lines in runs (struct updates, buffer fills); this is what
    /// keeps the asynchronous per-store write-backs within the NVM's
    /// write bandwidth after persist coalescing (§4.3).
    pub store_run_len: f64,
    /// Fraction of the application's footprint that is resident in the
    /// DRAM cache at measurement time (the paper fast-forwards 5 billion
    /// instructions before measuring, so working sets with reuse are
    /// warm). Streaming applications (`lbm`, `pc`, `xsbench`) stay low —
    /// that is what makes them the Figure 9 outliers.
    pub dram_resident_frac: f64,
    /// Micro-ops between kernel entries (context switches / system
    /// calls); `0` disables them. §5 argues PPA needs no special handling
    /// for OS activity — enabling this models a timer-tick style kernel
    /// burst (trap, register-heavy scheduler work on per-CPU data,
    /// return) so that claim can be tested.
    pub context_switch_every: u64,
    /// Memory footprint reported in Table 3 (MB), for documentation.
    pub footprint_mb: u64,
    /// Data-input label (Table 3), for documentation.
    pub input: &'static str,
    /// One-line description (Table 3 style).
    pub description: &'static str,
}

impl AppDescriptor {
    /// A single-threaded SPEC-like template; per-app tables override the
    /// distinguishing fields.
    pub(crate) const fn spec_base(name: &'static str, suite: Suite) -> Self {
        AppDescriptor {
            name,
            suite,
            threads: 1,
            load_frac: 0.22,
            store_frac: 0.08,
            branch_frac: 0.16,
            call_frac: 0.08,
            fp_frac: 0.05,
            alu_def_frac: 0.40,
            sync_per_kilo: 0.0,
            int_regs: 10,
            fp_regs: 8,
            load_hot_lines: 512,
            load_cold_lines: 1 << 20,
            load_cold_frac: 0.01,
            store_hot_lines: 48,
            store_cold_lines: 1 << 18,
            store_cold_frac: 0.05,
            store_run_len: 10.0,
            dram_resident_frac: 0.9,
            context_switch_every: 0,
            footprint_mb: 400,
            input: "ref",
            description: "SPEC CPU reference workload",
        }
    }

    /// An 8-thread parallel template.
    pub(crate) const fn parallel_base(name: &'static str, suite: Suite) -> Self {
        AppDescriptor {
            threads: 8,
            sync_per_kilo: 2.0,
            ..AppDescriptor::spec_base(name, suite)
        }
    }

    /// Generates the application's committed-path trace for one thread.
    ///
    /// `len` is the number of micro-ops; `seed` selects the deterministic
    /// random stream. Thread 0 of the default seed is what single-core
    /// experiments run.
    pub fn generate(&self, len: usize, seed: u64) -> Trace {
        self.generate_thread(len, seed, 0)
    }

    /// Generates the trace for thread `tid` (distinct store address
    /// spaces keep the program data-race-free, as §6 requires).
    pub fn generate_thread(&self, len: usize, seed: u64, tid: usize) -> Trace {
        TraceGenerator::new(self, seed, tid).generate(len)
    }

    /// Whether the application is multi-threaded by default.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Same application with a kernel entry (context switch/system call)
    /// every `n` micro-ops — the §5 OS-interaction model.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (use the default descriptor to disable).
    pub fn with_context_switches(mut self, n: u64) -> Self {
        assert!(n > 0, "context-switch interval must be positive");
        self.context_switch_every = n;
        self
    }

    /// Whether `line_addr` belongs to one of the application's *hot*
    /// working sets (load or store). Hot lines are SRAM-resident in steady
    /// state — the paper fast-forwards 5 billion instructions before
    /// measuring — so the system layer warms them into the L2 and DRAM
    /// cache before a run to avoid first-touch artefacts that the real
    /// evaluation never sees.
    pub fn is_hot_line(&self, line_addr: u64) -> bool {
        use crate::generator::{LOAD_BASE, STORE_BASE, STORE_STRIDE};
        if line_addr >= LOAD_BASE && line_addr < LOAD_BASE + self.load_hot_lines * 64 {
            return true;
        }
        if line_addr >= STORE_BASE {
            let off = (line_addr - STORE_BASE) % STORE_STRIDE;
            return off < self.store_hot_lines * 64;
        }
        false
    }

    /// Sanity-checks that the fractions form a valid distribution.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or the mix exceeds 1.
    pub fn validate(&self) {
        let mix = self.load_frac + self.store_frac + self.branch_frac;
        assert!(
            self.load_frac >= 0.0
                && self.store_frac >= 0.0
                && self.branch_frac >= 0.0
                && mix <= 1.0,
            "{}: invalid instruction mix",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.call_frac)
                && (0.0..=1.0).contains(&self.fp_frac)
                && (0.0..=1.0).contains(&self.alu_def_frac)
                && (0.0..=1.0).contains(&self.load_cold_frac)
                && (0.0..=1.0).contains(&self.store_cold_frac)
                && (0.0..=1.0).contains(&self.dram_resident_frac),
            "{}: fractions must be within [0, 1]",
            self.name
        );
        assert!(
            self.threads >= 1,
            "{}: needs at least one thread",
            self.name
        );
        assert!(
            self.store_run_len >= 1.0,
            "{}: store runs must average at least one store",
            self.name
        );
        assert!(
            self.int_regs >= 2 && (self.int_regs as usize) <= ppa_isa::NUM_INT_ARCH_REGS,
            "{}: integer register pressure out of range",
            self.name
        );
        assert!(
            (self.fp_regs as usize) <= ppa_isa::NUM_FP_ARCH_REGS,
            "{}: FP register pressure out of range",
            self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_base_is_single_threaded() {
        let a = AppDescriptor::spec_base("x", Suite::Cpu2006);
        assert_eq!(a.threads, 1);
        assert!(!a.is_parallel());
        a.validate();
    }

    #[test]
    fn parallel_base_has_sync_and_threads() {
        let a = AppDescriptor::parallel_base("y", Suite::Splash3);
        assert_eq!(a.threads, 8);
        assert!(a.sync_per_kilo > 0.0);
        assert!(a.is_parallel());
        a.validate();
    }

    #[test]
    #[should_panic(expected = "invalid instruction mix")]
    fn over_unit_mix_fails_validation() {
        let a = AppDescriptor {
            load_frac: 0.9,
            store_frac: 0.9,
            ..AppDescriptor::spec_base("bad", Suite::Cpu2006)
        };
        a.validate();
    }

    #[test]
    fn suite_display_names() {
        assert_eq!(Suite::Cpu2006.to_string(), "CPU2006");
        assert_eq!(Suite::MiniApps.to_string(), "Mini-apps");
        assert_eq!(Suite::ALL.len(), 6);
    }
}
