use crate::app::AppDescriptor;
use ppa_isa::{ArchReg, BranchKind, MemRef, RegClass, SyncKind, Trace, Uop, UopKind};
use ppa_prng::Prng;

/// Read-only region shared by all threads (load traffic).
pub const LOAD_BASE: u64 = 0x0001_0000_0000;
/// Base of per-thread store regions; thread `t` writes at
/// `STORE_BASE + t * STORE_STRIDE` so the program is data-race-free (§6).
pub const STORE_BASE: u64 = 0x0100_0000_0000;
/// Address-space stride between threads' store regions.
pub const STORE_STRIDE: u64 = 0x0010_0000_0000;
/// Kernel per-CPU data region (context-switch bursts write here).
pub const KERNEL_BASE: u64 = 0x1000_0000_0000;
/// Micro-ops in one kernel burst (trap + scheduler work + return).
pub const KERNEL_BURST_LEN: u32 = 48;

/// Deterministic trace generator for one [`AppDescriptor`] thread.
///
/// Produces a committed-path micro-op stream matching the descriptor's
/// instruction mix, register pressure, and locality model. Stores carry
/// explicit values chosen so that every store reading the same register
/// definition stores the same value — the property PPA's register-based
/// replay relies on.
///
/// # Examples
///
/// ```
/// use ppa_workloads::registry;
///
/// let app = registry::by_name("lbm").unwrap();
/// let t = app.generate(5_000, 1);
/// let mix = t.mix();
/// // lbm is memory-intensive: plenty of loads and stores.
/// assert!(mix.loads > 500);
/// assert!(mix.stores > 200);
/// ```
#[derive(Debug)]
pub struct TraceGenerator<'a> {
    app: &'a AppDescriptor,
    rng: Prng,
    tid: usize,
    int_cursor: u8,
    fp_cursor: u8,
    value_counter: u64,
    /// Value each architectural register's current definition would store;
    /// `None` until first used by a store after a (re)definition.
    reg_store_value: [Option<u64>; ppa_isa::ArchReg::flat_count()],
    call_depth: u32,
    lock_held: bool,
    cur_store_line: Option<u64>,
    /// Remaining micro-ops of an in-progress kernel burst.
    kernel_remaining: u32,
    /// Micro-ops since the last kernel entry.
    since_kernel: u64,
}

impl<'a> TraceGenerator<'a> {
    /// Creates a generator for thread `tid` of the application.
    pub fn new(app: &'a AppDescriptor, seed: u64, tid: usize) -> Self {
        // Distinct, deterministic stream per (app, seed, thread).
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in app
            .name
            .bytes()
            .chain(seed.to_le_bytes())
            .chain((tid as u64).to_le_bytes())
        {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TraceGenerator {
            app,
            rng: Prng::seed_from_u64(hash),
            tid,
            int_cursor: 0,
            fp_cursor: 0,
            value_counter: (tid as u64) << 48,
            reg_store_value: [None; ppa_isa::ArchReg::flat_count()],
            call_depth: 0,
            lock_held: false,
            cur_store_line: None,
            kernel_remaining: 0,
            since_kernel: 0,
        }
    }

    // Register index 0 of each class is a *stable* register (a base
    // pointer / loop-invariant value): never redefined, so reading it
    // creates no dependency chain. Definitions cycle through 1..N. This
    // is what gives the synthetic code realistic instruction- and
    // memory-level parallelism — without it every micro-op would chain on
    // the previous few and the core could never overlap cache misses.
    fn next_int_def(&mut self) -> ArchReg {
        self.int_cursor = 1 + (self.int_cursor % (self.app.int_regs - 1).max(1));
        ArchReg::int(self.int_cursor)
    }

    fn next_fp_def(&mut self) -> ArchReg {
        if self.app.fp_regs < 2 {
            return self.next_int_def();
        }
        self.fp_cursor = 1 + (self.fp_cursor % (self.app.fp_regs - 1));
        ArchReg::fp(self.fp_cursor)
    }

    /// A value-carrying source: mostly recent pool registers (dataflow),
    /// sometimes the stable register.
    fn random_reg(&mut self, class: RegClass) -> ArchReg {
        if self.rng.random_f64() < 0.6 {
            return self.stable_reg(class);
        }
        match class {
            RegClass::Int => ArchReg::int(self.rng.random_range(0..self.app.int_regs)),
            RegClass::Fp => {
                if self.app.fp_regs == 0 {
                    self.random_reg(RegClass::Int)
                } else {
                    ArchReg::fp(self.rng.random_range(0..self.app.fp_regs))
                }
            }
        }
    }

    fn stable_reg(&mut self, class: RegClass) -> ArchReg {
        match class {
            RegClass::Int => ArchReg::int(0),
            RegClass::Fp => {
                if self.app.fp_regs == 0 {
                    ArchReg::int(0)
                } else {
                    ArchReg::fp(0)
                }
            }
        }
    }

    /// An address-generation source: almost always a stable base register,
    /// so loads expose memory-level parallelism.
    fn addr_reg(&mut self) -> ArchReg {
        if self.rng.random_f64() < 0.9 {
            ArchReg::int(0)
        } else {
            ArchReg::int(self.rng.random_range(0..self.app.int_regs))
        }
    }

    fn define(&mut self, reg: ArchReg) {
        // A fresh definition gets a fresh store value when first stored.
        self.reg_store_value[reg.flat_index()] = None;
    }

    fn store_value_for(&mut self, reg: ArchReg) -> u64 {
        // Every store of the same definition must carry the same value so
        // that register-based replay (one value per physical register)
        // reproduces architectural memory exactly.
        *self.reg_store_value[reg.flat_index()].get_or_insert_with(|| {
            self.value_counter += 1;
            self.value_counter
        })
    }

    fn load_addr(&mut self) -> u64 {
        if self.rng.random_f64() < self.app.load_cold_frac {
            LOAD_BASE + self.rng.random_range(0..self.app.load_cold_lines.max(1)) * 64
        } else {
            LOAD_BASE + self.rng.random_range(0..self.app.load_hot_lines.max(1)) * 64
        }
    }

    fn store_addr(&mut self) -> u64 {
        // Stores arrive in line-sized runs: stay in the current line with
        // probability 1 - 1/run_len, otherwise pick a new (hot or cold)
        // line.
        let switch = 1.0 / self.app.store_run_len;
        let line = match self.cur_store_line {
            Some(line) if self.rng.random_f64() >= switch => line,
            _ => {
                let idx = if self.rng.random_f64() < self.app.store_cold_frac {
                    // Past the hot region so cold stores never alias hot
                    // ones.
                    self.app.store_hot_lines
                        + self.rng.random_range(0..self.app.store_cold_lines.max(1))
                } else {
                    self.rng.random_range(0..self.app.store_hot_lines.max(1))
                };
                let line = STORE_BASE + self.tid as u64 * STORE_STRIDE + idx * 64;
                self.cur_store_line = Some(line);
                line
            }
        };
        line + self.rng.random_range(0..8u64) * 8
    }

    fn gen_store(&mut self, pc: u64) -> Uop {
        let fp_data = self.rng.random_f64() < self.app.fp_frac;
        let class = if fp_data { RegClass::Fp } else { RegClass::Int };
        let data = match class {
            RegClass::Int => ArchReg::int(self.rng.random_range(0..self.app.int_regs)),
            RegClass::Fp if self.app.fp_regs > 0 => {
                ArchReg::fp(self.rng.random_range(0..self.app.fp_regs))
            }
            RegClass::Fp => ArchReg::int(self.rng.random_range(0..self.app.int_regs)),
        };
        let addr_reg = self.addr_reg();
        let addr = self.store_addr();
        let value = self.store_value_for(data);
        Uop::new(pc, UopKind::Store)
            .with_srcs(&[data, addr_reg])
            .with_mem(MemRef::new(addr, 8, value))
    }

    fn gen_load(&mut self, pc: u64) -> Uop {
        let fp = self.rng.random_f64() < self.app.fp_frac;
        let dst = if fp {
            self.next_fp_def()
        } else {
            self.next_int_def()
        };
        self.define(dst);
        let addr_reg = self.addr_reg();
        let addr = self.load_addr();
        Uop::new(pc, UopKind::Load)
            .with_dst(dst)
            .with_srcs(&[addr_reg])
            .with_mem(MemRef::new(addr, 8, 0))
    }

    fn gen_branch(&mut self, pc: u64) -> Uop {
        let r = self.rng.random_f64();
        let kind = if self.call_depth > 0 && r < self.app.call_frac / 2.0 {
            self.call_depth -= 1;
            BranchKind::Ret
        } else if r < self.app.call_frac {
            self.call_depth += 1;
            BranchKind::Call
        } else {
            BranchKind::Jump
        };
        let cond = self.random_reg(RegClass::Int);
        Uop::new(pc, UopKind::Branch(kind)).with_srcs(&[cond])
    }

    fn gen_sync(&mut self, pc: u64) -> Uop {
        let kind = if self.lock_held {
            self.lock_held = false;
            SyncKind::LockRelease
        } else {
            match self.rng.random_range(0..4u32) {
                0 => SyncKind::Fence,
                1 => SyncKind::AtomicRmw,
                _ => {
                    self.lock_held = true;
                    SyncKind::LockAcquire
                }
            }
        };
        Uop::new(pc, UopKind::Sync(kind))
    }

    fn gen_compute(&mut self, pc: u64) -> Uop {
        let fp = self.rng.random_f64() < self.app.fp_frac;
        let class = if fp { RegClass::Fp } else { RegClass::Int };
        let kind = match (fp, self.rng.random_range(0..100u32)) {
            (false, 0..=89) => UopKind::IntAlu,
            (false, 90..=97) => UopKind::IntMul,
            (false, _) => UopKind::IntDiv,
            (true, 0..=84) => UopKind::FpAlu,
            (true, 85..=96) => UopKind::FpMul,
            (true, _) => UopKind::FpDiv,
        };
        let s1 = self.random_reg(class);
        let mut u = Uop::new(pc, kind).with_srcs(&[s1]);
        if self.rng.random_f64() < 0.6 {
            let s2 = self.random_reg(class);
            u = u.with_srcs(&[s2]);
        }
        if self.rng.random_f64() < self.app.alu_def_frac {
            let dst = if fp {
                self.next_fp_def()
            } else {
                self.next_int_def()
            };
            self.define(dst);
            u = u.with_dst(dst);
        }
        u
    }

    /// One micro-op of a kernel burst: register-heavy scheduler work over
    /// per-CPU data, bracketed by a trap (Call) and a return. Kernel code
    /// is just code to PPA (§5: "PPA does not differentiate between
    /// kernel code and user program").
    fn gen_kernel(&mut self, pc: u64) -> Uop {
        let step = KERNEL_BURST_LEN - self.kernel_remaining;
        self.kernel_remaining -= 1;
        if step == 0 {
            self.call_depth += 1;
            return Uop::new(pc, UopKind::Branch(BranchKind::Call));
        }
        if self.kernel_remaining == 0 {
            self.call_depth = self.call_depth.saturating_sub(1);
            return Uop::new(pc, UopKind::Branch(BranchKind::Ret));
        }
        let base = KERNEL_BASE + self.tid as u64 * STORE_STRIDE;
        match step % 12 {
            // Save/restore architectural state: stores and loads on the
            // per-CPU kernel stack.
            1 => {
                let data = ArchReg::int(self.rng.random_range(0..self.app.int_regs));
                // Per-CPU scratch line: the handler's save area is one
                // hot cache line, so its persists coalesce.
                let addr = base + u64::from(step % 8) * 8;
                let value = self.store_value_for(data);
                Uop::new(pc, UopKind::Store)
                    .with_srcs(&[data, ArchReg::int(0)])
                    .with_mem(MemRef::new(addr, 8, value))
            }
            2 => {
                let dst = self.next_int_def();
                self.define(dst);
                Uop::new(pc, UopKind::Load)
                    .with_dst(dst)
                    .with_srcs(&[ArchReg::int(0)])
                    .with_mem(MemRef::new(base + 64 + u64::from(step) * 8, 8, 0))
            }
            // Scheduler bookkeeping: register-dense integer work.
            _ => {
                let dst = self.next_int_def();
                self.define(dst);
                let s1 = self.random_reg(RegClass::Int);
                Uop::new(pc, UopKind::IntAlu).with_dst(dst).with_srcs(&[s1])
            }
        }
    }

    /// Generates a trace of exactly `len` micro-ops.
    pub fn generate(&mut self, len: usize) -> Trace {
        let mut uops = Vec::with_capacity(len);
        let sync_p = self.app.sync_per_kilo / 1000.0;
        for i in 0..len {
            let pc = 0x40_0000 + i as u64 * 4;
            if self.kernel_remaining > 0 {
                uops.push(self.gen_kernel(pc));
                continue;
            }
            if self.app.context_switch_every > 0 {
                if self.since_kernel == 0 {
                    // Stagger the first kernel entry per thread — timer
                    // ticks are not synchronised across CPUs.
                    self.since_kernel = self
                        .rng
                        .random_range(0..self.app.context_switch_every.max(1));
                }
                self.since_kernel += 1;
                if self.since_kernel >= self.app.context_switch_every {
                    self.since_kernel = 1;
                    self.kernel_remaining = KERNEL_BURST_LEN;
                    uops.push(self.gen_kernel(pc));
                    continue;
                }
            }
            let mut r = self.rng.random_f64();
            let uop = if r < sync_p {
                self.gen_sync(pc)
            } else {
                r = self.rng.random_f64();
                if r < self.app.store_frac {
                    self.gen_store(pc)
                } else if r < self.app.store_frac + self.app.load_frac {
                    self.gen_load(pc)
                } else if r < self.app.store_frac + self.app.load_frac + self.app.branch_frac {
                    self.gen_branch(pc)
                } else {
                    self.gen_compute(pc)
                }
            };
            uops.push(uop);
        }
        Trace::from_uops(format!("{}#{}", self.app.name, self.tid), uops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Suite;
    use std::collections::HashMap;

    fn app() -> AppDescriptor {
        AppDescriptor::spec_base("test", Suite::Cpu2006)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = app();
        let t1 = TraceGenerator::new(&a, 7, 0).generate(2_000);
        let t2 = TraceGenerator::new(&a, 7, 0).generate(2_000);
        assert_eq!(t1, t2);
    }

    #[test]
    fn different_seeds_differ() {
        let a = app();
        let t1 = TraceGenerator::new(&a, 7, 0).generate(2_000);
        let t2 = TraceGenerator::new(&a, 8, 0).generate(2_000);
        assert_ne!(t1, t2);
    }

    #[test]
    fn mix_tracks_descriptor_fractions() {
        let a = app();
        let t = TraceGenerator::new(&a, 1, 0).generate(50_000);
        let mix = t.mix();
        let store_f = mix.stores as f64 / mix.total as f64;
        let load_f = mix.loads as f64 / mix.total as f64;
        assert!((store_f - a.store_frac).abs() < 0.01, "stores {store_f}");
        assert!((load_f - a.load_frac).abs() < 0.01, "loads {load_f}");
        // Register-defining fraction in the paper's ballpark (~30%).
        let defs = mix.def_fraction();
        assert!((0.2..0.55).contains(&defs), "def fraction {defs}");
    }

    #[test]
    fn stores_sharing_a_definition_share_a_value() {
        let a = AppDescriptor {
            store_frac: 0.4,
            alu_def_frac: 0.2,
            ..app()
        };
        let t = TraceGenerator::new(&a, 3, 0).generate(20_000);
        // Walk the trace tracking definitions; all stores between two
        // definitions of a register must carry one value.
        let mut current: HashMap<ArchReg, u64> = HashMap::new();
        for u in &t {
            if let Some(d) = u.dst {
                current.remove(&d);
            }
            if u.kind == UopKind::Store {
                let data = u.store_data_reg().expect("store has data reg");
                let v = u.mem.unwrap().value;
                if let Some(&prev) = current.get(&data) {
                    assert_eq!(prev, v, "store value changed without redefinition");
                } else {
                    current.insert(data, v);
                }
            }
        }
    }

    #[test]
    fn threads_write_disjoint_addresses() {
        let a = AppDescriptor::parallel_base("p", Suite::Splash3);
        let t0 = TraceGenerator::new(&a, 1, 0).generate(10_000);
        let t1 = TraceGenerator::new(&a, 1, 1).generate(10_000);
        let stores = |t: &Trace| -> std::collections::HashSet<u64> {
            t.iter()
                .filter(|u| u.kind == UopKind::Store)
                .map(|u| u.mem.unwrap().addr & !63)
                .collect()
        };
        assert!(stores(&t0).is_disjoint(&stores(&t1)));
    }

    #[test]
    fn parallel_apps_emit_syncs_and_pair_locks() {
        let a = AppDescriptor {
            sync_per_kilo: 20.0,
            ..AppDescriptor::parallel_base("p", Suite::Stamp)
        };
        let t = TraceGenerator::new(&a, 1, 0).generate(50_000);
        let mut held = false;
        let mut acquires = 0;
        for u in &t {
            match u.kind {
                UopKind::Sync(SyncKind::LockAcquire) => {
                    assert!(!held, "nested acquire");
                    held = true;
                    acquires += 1;
                }
                UopKind::Sync(SyncKind::LockRelease) => {
                    assert!(held, "release without acquire");
                    held = false;
                }
                _ => {}
            }
        }
        assert!(acquires > 100, "expected plenty of lock activity");
    }

    #[test]
    fn calls_and_returns_balance() {
        let a = AppDescriptor {
            branch_frac: 0.3,
            call_frac: 0.3,
            ..app()
        };
        let t = TraceGenerator::new(&a, 5, 0).generate(30_000);
        let mut depth: i64 = 0;
        for u in &t {
            match u.kind {
                UopKind::Branch(BranchKind::Call) => depth += 1,
                UopKind::Branch(BranchKind::Ret) => {
                    depth -= 1;
                    assert!(depth >= 0, "return below the initial frame");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn kernel_bursts_appear_at_the_configured_interval() {
        let a = app().with_context_switches(500);
        let t = TraceGenerator::new(&a, 1, 0).generate(10_000);
        // Each burst is bracketed by a Call and a Ret and stores to the
        // kernel region.
        let kernel_stores = t
            .iter()
            .filter(|u| u.kind == UopKind::Store && u.mem.unwrap().addr >= super::KERNEL_BASE)
            .count();
        assert!(kernel_stores > 0, "kernel bursts must store per-CPU state");
        // ~10_000 / (500 + 48) bursts expected.
        let calls = t
            .iter()
            .filter(|u| u.kind == UopKind::Branch(BranchKind::Call))
            .count();
        assert!(calls >= 15, "expected kernel entries, got {calls} calls");
    }

    #[test]
    fn kernel_bursts_do_not_break_store_value_consistency() {
        let a = AppDescriptor {
            store_frac: 0.2,
            ..app().with_context_switches(200)
        };
        let t = TraceGenerator::new(&a, 3, 0).generate(20_000);
        let mut current: HashMap<ArchReg, u64> = HashMap::new();
        for u in &t {
            if let Some(d) = u.dst {
                current.remove(&d);
            }
            if u.kind == UopKind::Store {
                let data = u.store_data_reg().unwrap();
                let v = u.mem.unwrap().value;
                if let Some(&prev) = current.get(&data) {
                    assert_eq!(prev, v);
                } else {
                    current.insert(data, v);
                }
            }
        }
    }

    #[test]
    fn cold_fraction_spreads_addresses() {
        let cold = AppDescriptor {
            load_cold_frac: 0.9,
            ..app()
        };
        let hot = AppDescriptor {
            load_cold_frac: 0.0,
            ..app()
        };
        let distinct = |a: &AppDescriptor| {
            let t = TraceGenerator::new(a, 1, 0).generate(20_000);
            t.iter()
                .filter(|u| u.kind == UopKind::Load)
                .map(|u| u.mem.unwrap().addr & !63)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        assert!(distinct(&cold) > 4 * distinct(&hot));
    }
}
