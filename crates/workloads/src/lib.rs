//! Workload models for the 41 applications of the PPA evaluation.
//!
//! The paper evaluates PPA with SPEC CPU2006/2017, SPLASH3, STAMP,
//! WHISPER, and DOE Mini-apps running under gem5 full-system mode. Real
//! benchmark binaries cannot run on this simulator, so each application is
//! modelled as a **parameterised synthetic trace generator** calibrated to
//! the behavioural characteristics that drive every experiment in the
//! paper:
//!
//! * instruction mix (load/store/FP/branch fractions) and the fraction of
//!   register-defining instructions (~30%, §1) — these set PRF pressure
//!   and therefore PPA's dynamic region length;
//! * architectural register pressure (`bzip2`/`libquantum` cycle many
//!   registers → short regions, Figure 13);
//! * load/store working sets and locality (`lbm`/`pc` thrash the DRAM
//!   cache, Figure 9; `rb` has high locality but heavy write traffic,
//!   Figures 15/18);
//! * call/return density (bounds the compiler-formed regions of
//!   ReplayCache and Capri);
//! * synchronisation rate and thread count for the multi-threaded suites
//!   (SPLASH3, STAMP, WHISPER; §6, Figure 19).
//!
//! Generation is fully deterministic: the same `(app, length, seed)`
//! triple always produces the same trace.
//!
//! # Examples
//!
//! ```
//! use ppa_workloads::registry;
//!
//! let app = registry::by_name("mcf").expect("mcf is in CPU2006");
//! let trace = app.generate(10_000, 42);
//! assert_eq!(trace.len(), 10_000);
//! // Deterministic:
//! assert_eq!(trace, app.generate(10_000, 42));
//! assert_eq!(registry::all().len(), 41);
//! ```

mod app;
mod generator;
pub mod registry;
pub mod shared;

pub use app::{AppDescriptor, Suite};
pub use generator::TraceGenerator;
