//! Shared-memory DRF workload generators for the §6 multi-core machine.
//!
//! The per-app generators in [`crate::TraceGenerator`] keep every
//! thread's store footprint disjoint (`STORE_BASE + tid * STORE_STRIDE`),
//! so a "multi-threaded" run never actually communicates. The workloads
//! here do: threads read words other threads write, with the conflicting
//! accesses separated by synchronisation micro-ops — the data-race-free
//! discipline §6 assumes.
//!
//! All four patterns keep **writes single-owner per word** (and, because
//! slots are line-aligned, per cache line): thread `t` is the only writer
//! of the words it stores to, while reads range over every thread's data.
//! That discipline is what makes multi-core recovery well-defined — the
//! union of per-core committed-store prefixes is conflict-free, so replay
//! order across cores cannot change the recovered image — and the
//! `recovery-image-overlap` validator in `ppa-smp` checks it holds.
//!
//! Generation is deterministic: the same `(workload, len, seed, threads)`
//! quadruple always yields the same per-thread traces, and every store
//! carries a thread-tagged unique value so replayed data is attributable.
//!
//! # Examples
//!
//! ```
//! use ppa_workloads::shared;
//!
//! let app = shared::by_name("counters").expect("known workload");
//! let traces = app.generate_threads(2_000, 1, 4);
//! assert_eq!(traces.len(), 4);
//! assert_eq!(traces[0].len(), 2_000);
//! // Deterministic:
//! assert_eq!(traces, app.generate_threads(2_000, 1, 4));
//! ```

use ppa_isa::{ArchReg, SyncKind, Trace, TraceBuilder, Uop};
use ppa_prng::Prng;

/// Base of the shared-data segment, clear of the private per-thread
/// load/store regions and the kernel text used by [`crate::TraceGenerator`].
pub const SHARED_BASE: u64 = 0x2000_0000_0000;

const COUNTERS_BASE: u64 = SHARED_BASE;
const RING_BASE: u64 = SHARED_BASE + 0x10_0000;
const ACCUM_BASE: u64 = SHARED_BASE + 0x11_0000;
const PHASE_BASE: u64 = SHARED_BASE + 0x20_0000;
const STRIPE_BASE: u64 = SHARED_BASE + 0x30_0000;

/// Bytes per phase block (one cache line, so the owner's eight-word
/// publish coalesces into a single media write).
const PHASE_BLOCK_BYTES: u64 = 64;
/// Words of a halo stripe (eight cache lines, all owned by one thread).
const STRIPE_WORDS: u64 = 64;

/// The communication pattern a shared workload exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedKind {
    /// Striped shared counters (LongAdder style): each thread increments
    /// its own line-padded slot; atomic snapshot sweeps read every slot.
    Counters,
    /// Single producer filling a shared ring; consumers read slots under
    /// lock handoff and fold into private accumulators.
    ProducerConsumer,
    /// Bulk-synchronous phases: one owner writes the phase block, everyone
    /// reads the previous phase's block after the barrier.
    BarrierPhases,
    /// Stencil halo exchange: each thread updates its own stripe and reads
    /// its neighbours' edge words between barriers.
    HaloExchange,
}

/// A shared-memory DRF workload: a named pattern that generates one trace
/// per thread over genuinely shared addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedApp {
    /// Registry key (`counters`, `prodcons`, `barrier`, `halo`).
    pub name: &'static str,
    /// Which communication pattern the generator emits.
    pub kind: SharedKind,
    /// One-line description for reports.
    pub description: &'static str,
}

/// All shared workloads, in registry order.
pub fn all() -> Vec<SharedApp> {
    vec![
        SharedApp {
            name: "counters",
            kind: SharedKind::Counters,
            description: "striped shared counters with atomic snapshot sweeps",
        },
        SharedApp {
            name: "prodcons",
            kind: SharedKind::ProducerConsumer,
            description: "single producer, lock-handoff consumers over a shared ring",
        },
        SharedApp {
            name: "barrier",
            kind: SharedKind::BarrierPhases,
            description: "bulk-synchronous phases with a rotating block owner",
        },
        SharedApp {
            name: "halo",
            kind: SharedKind::HaloExchange,
            description: "stencil stripes exchanging halo words between barriers",
        },
    ]
}

/// Looks a shared workload up by name.
pub fn by_name(name: &str) -> Option<SharedApp> {
    all().into_iter().find(|a| a.name == name)
}

impl SharedApp {
    /// Generates one trace per thread, each exactly `len` micro-ops.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn generate_threads(&self, len: usize, seed: u64, threads: usize) -> Vec<Trace> {
        assert!(threads > 0, "a shared workload needs at least one thread");
        (0..threads)
            .map(|tid| self.generate_thread(len, seed, tid, threads))
            .collect()
    }

    /// Generates the trace of one thread of an `threads`-thread run.
    pub fn generate_thread(&self, len: usize, seed: u64, tid: usize, threads: usize) -> Trace {
        let mut g = Gen::new(self.name, len, seed, tid, threads);
        match self.kind {
            SharedKind::Counters => g.counters(),
            SharedKind::ProducerConsumer => g.producer_consumer(),
            SharedKind::BarrierPhases => g.barrier_phases(),
            SharedKind::HaloExchange => g.halo_exchange(),
        }
        g.finish(self.name)
    }

    /// Exports the workload's per-thread traces bundled with their
    /// generation parameters, for whole-program static analyses (the
    /// `ppa-verify` race detector consumes this).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// let set = ppa_workloads::shared::by_name("halo")
    ///     .unwrap()
    ///     .export(1_000, 1, 4);
    /// assert_eq!(set.traces.len(), 4);
    /// assert!(set.written_words() > 0);
    /// assert!(set.remote_reads() > 0, "threads read each other's words");
    /// ```
    pub fn export(&self, len: usize, seed: u64, threads: usize) -> SharedTraceSet {
        SharedTraceSet {
            app: *self,
            len,
            seed,
            traces: self.generate_threads(len, seed, threads),
        }
    }
}

/// The per-thread traces of one shared workload run, bundled with the
/// parameters that produced them so analysis reports stay attributable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedTraceSet {
    /// The workload that generated the traces.
    pub app: SharedApp,
    /// Per-thread trace length the run was generated with.
    pub len: usize,
    /// Deterministic seed the run was generated with.
    pub seed: u64,
    /// One trace per thread, indexed by thread id.
    pub traces: Vec<Trace>,
}

impl SharedTraceSet {
    /// Number of threads in the run.
    pub fn threads(&self) -> usize {
        self.traces.len()
    }

    /// Distinct 8-byte words stored across all threads.
    pub fn written_words(&self) -> usize {
        let mut words: Vec<u64> = self
            .traces
            .iter()
            .flat_map(|t| t.iter())
            .filter(|u| u.kind.is_store())
            .filter_map(|u| u.mem.map(|m| m.addr & !7))
            .collect();
        words.sort_unstable();
        words.dedup();
        words.len()
    }

    /// Loads of words some *other* thread wrote — the cross-thread
    /// communication the race detector has to prove synchronised.
    pub fn remote_reads(&self) -> usize {
        use std::collections::HashMap;
        let mut owner: HashMap<u64, usize> = HashMap::new();
        for (tid, t) in self.traces.iter().enumerate() {
            for u in t.iter().filter(|u| u.kind.is_store()) {
                if let Some(m) = u.mem {
                    owner.entry(m.addr & !7).or_insert(tid);
                }
            }
        }
        self.traces
            .iter()
            .enumerate()
            .flat_map(|(tid, t)| t.iter().map(move |u| (tid, u)))
            .filter(|(tid, u)| {
                u.kind == ppa_isa::UopKind::Load
                    && u.mem
                        .is_some_and(|m| owner.get(&(m.addr & !7)).is_some_and(|&o| o != *tid))
            })
            .count()
    }
}

/// Per-thread emitter: a [`TraceBuilder`] plus the bookkeeping that keeps
/// the store-value invariant (every store reads a fresh definition, so one
/// definition never feeds two differently-valued stores — the property
/// register-based CSQ replay depends on).
struct Gen {
    b: TraceBuilder,
    rng: Prng,
    len: usize,
    tid: usize,
    threads: usize,
    next_value: u64,
}

/// Integer register dedicated to store data (always freshly defined
/// immediately before each store).
const DATA: ArchReg = ArchReg::int(7);
/// Integer register receiving shared loads.
const LOADED: ArchReg = ArchReg::int(6);

impl Gen {
    fn new(name: &str, len: usize, seed: u64, tid: usize, threads: usize) -> Self {
        // The same FNV-1a stream-splitting scheme as `TraceGenerator`,
        // with the workload name prefixed so shared and private apps never
        // share a stream.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in "shared:".bytes().chain(name.bytes()) {
            mix(b);
        }
        for b in seed.to_le_bytes() {
            mix(b);
        }
        for b in (tid as u64).to_le_bytes() {
            mix(b);
        }
        Gen {
            b: TraceBuilder::new(format!("{name}#{tid}")),
            rng: Prng::seed_from_u64(hash),
            len,
            tid,
            threads,
            next_value: (tid as u64) << 48,
        }
    }

    fn done(&self) -> bool {
        self.b.len() >= self.len
    }

    /// A few pad ops modelling the compute between communication events.
    /// Every other op is register-silent (a nop standing in for branches,
    /// compares, stores of spilled temporaries and address checks — the
    /// large fraction of a real mix that defines no integer register).
    /// All-defining pads would overstate PRF pressure: a full ROB of them
    /// outruns the free list, and with it the forced-region-end rate.
    fn pads(&mut self, n: usize) {
        for i in 0..n {
            if i % 2 == 1 {
                self.b.nop();
            } else {
                // Independent ops (no self-dependence): pad timing should
                // come from width and register pressure, not from the
                // accidental length of a serial chain.
                let r = ArchReg::int(self.rng.random_range(0..6u32) as u8);
                self.b.alu(r, &[]);
            }
        }
    }

    /// Defines the data register fresh and stores a unique value to `addr`.
    fn fresh_store(&mut self, addr: u64) {
        self.next_value += 1;
        let v = self.next_value;
        self.b.alu(DATA, &[]);
        self.b.store(DATA, addr, v);
    }

    /// The compute tail every real DRF program has between its last store
    /// and the synchronisation that publishes it (argument reduction,
    /// loop bookkeeping, the next iteration's address math). Persists
    /// drain in its shadow, so the sync boundary's drain wait models the
    /// residue, not the whole write burst.
    fn drain_shadow(&mut self) {
        self.pads(24);
    }

    fn counters(&mut self) {
        let slot = |t: usize| COUNTERS_BASE + t as u64 * 64;
        // Snapshots get rarer as the machine grows: the sync's cross-core
        // cost rises with the thread count, so a scalable reader amortises
        // it over more increments (weak scaling).
        let interval = 16 * (self.threads as u64 / 8).max(1);
        let mut i = 0u64;
        while !self.done() {
            self.pads(4);
            self.fresh_store(slot(self.tid));
            i += 1;
            if i.is_multiple_of(interval) {
                // Atomic snapshot: sweep a bounded, rotating window of
                // slots. Reading all N slots back-to-back would issue an
                // N-wide load burst whose register demand grows with the
                // thread count — scalable readers chunk the sweep, and the
                // rotating start still visits every peer's slot over time.
                self.drain_shadow();
                self.b.sync(SyncKind::AtomicRmw);
                let window = self.threads.min(8);
                let start = (i / interval) as usize * window;
                for k in 0..window {
                    self.b.load(LOADED, slot((start + k) % self.threads));
                    self.pads(1);
                }
            }
        }
    }

    fn producer_consumer(&mut self) {
        // Slots are word-sized and packed: the ring is the classic
        // cache-friendly SPSC layout where a batch of eight slots spans
        // one or two lines, so the write buffer and WPQ coalesce the
        // batch instead of opening eight media writes.
        let cap = (2 * self.threads) as u64;
        let ring = |k: u64| RING_BASE + (k % cap) * 8;
        if self.tid == 0 {
            // Producer: fill ring slots in batches, publishing each batch
            // with a release, then poll a consumer's accumulator for
            // backpressure.
            let mut k = 0u64;
            while !self.done() {
                for _ in 0..8 {
                    self.pads(2);
                    self.fresh_store(ring(k));
                    k += 1;
                }
                self.drain_shadow();
                self.b.sync(SyncKind::LockRelease);
                if self.threads > 1 {
                    let peer = 1 + (k as usize % (self.threads - 1));
                    self.b.load(LOADED, ACCUM_BASE + peer as u64 * 64);
                }
            }
        } else {
            // Consumer: acquire, read a batch of slots, fold into a
            // private line-padded accumulator. The batch grows with the
            // thread count — at scale, consumers amortise the lock
            // handoff over more slots, or the machine-wide sync rate
            // (and with it the persist-arbiter port) saturates.
            let acc = ACCUM_BASE + self.tid as u64 * 64;
            let batch = 4.max(self.threads).min(32);
            let mut j = self.tid as u64;
            while !self.done() {
                self.b.sync(SyncKind::LockAcquire);
                for _ in 0..batch {
                    self.b.load(LOADED, ring(j));
                    j += self.threads as u64 - 1;
                    self.pads(3);
                }
                self.fresh_store(acc);
                self.drain_shadow();
            }
        }
    }

    fn barrier_phases(&mut self) {
        // One phase block per thread: phase `p` is published by thread
        // `p % threads` into its own block and read by everyone after the
        // next barrier. A thread's publishes always target the same line
        // (its publish buffer), so — like the counter stripes — the write
        // set is fixed and hot rather than cycling through cold lines.
        let n = self.threads as u64;
        let block = |p: u64| PHASE_BASE + (p % n) * PHASE_BLOCK_BYTES;
        let mut phase = 1u64;
        while !self.done() {
            let owner = (phase % n) as usize;
            if owner == self.tid {
                // The owner publishes this phase's eight words.
                for w in 0..8u64 {
                    self.fresh_store(block(phase) + w * 8);
                    self.pads(1);
                }
            } else {
                self.pads(24);
            }
            // The bulk of the phase's compute happens before the barrier;
            // after it, threads only pick up the freshly published block.
            // Keeping the post-barrier window short matters for the PPA
            // machine: those loads miss (another core just wrote the
            // line), and every register allocated in their shadow pushes
            // the free list towards a forced region end.
            self.pads(18);
            self.drain_shadow();
            self.b.sync(SyncKind::Fence);
            for w in 0..2u64 {
                self.b.load(LOADED, block(phase - 1) + w * 8);
            }
            self.pads(12);
            phase += 1;
        }
    }

    fn halo_exchange(&mut self) {
        let stripe = |t: usize| STRIPE_BASE + t as u64 * STRIPE_WORDS * 8;
        let left = (self.tid + self.threads - 1) % self.threads;
        let right = (self.tid + 1) % self.threads;
        let mut iter = 0u64;
        while !self.done() {
            // Read the neighbours' edge words (the halo).
            self.b.load(LOADED, stripe(left) + (STRIPE_WORDS - 1) * 8);
            self.b.load(LOADED, stripe(right));
            self.pads(12);
            // Update four words of the owned stripe. The sweep is blocked
            // the way a real stencil's inner loop is: updates stay within
            // one owned line for sixteen iterations before advancing, so
            // the line is hot in the write path instead of every
            // iteration opening a fresh media write.
            let line = (iter / 32) % (STRIPE_WORDS / 8);
            let base = stripe(self.tid) + line * 64;
            for w in 0..4u64 {
                self.fresh_store(base + ((iter * 4 + w) % 8) * 8);
                self.pads(2);
            }
            // BSP step boundary.
            self.drain_shadow();
            self.b.sync(SyncKind::Fence);
            iter += 1;
        }
    }

    /// Truncates to exactly `len` micro-ops and builds the trace.
    fn finish(self, name: &str) -> Trace {
        let (tid, len) = (self.tid, self.len);
        let uops: Vec<Uop> = self.b.build().into_uops().into_iter().take(len).collect();
        Trace::from_uops(format!("{name}#{tid}"), uops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_isa::UopKind;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn four_workloads_are_registered() {
        let names: Vec<_> = all().iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["counters", "prodcons", "barrier", "halo"]);
        assert!(by_name("halo").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn traces_have_the_requested_length_and_are_deterministic() {
        for app in all() {
            let a = app.generate_threads(1_500, 7, 3);
            let b = app.generate_threads(1_500, 7, 3);
            assert_eq!(a, b, "{} must be deterministic", app.name);
            for t in &a {
                assert_eq!(t.len(), 1_500);
            }
        }
    }

    /// The single-writer discipline: across all threads, every stored word
    /// has exactly one writing thread.
    #[test]
    fn written_words_are_single_owner() {
        for app in all() {
            let traces = app.generate_threads(3_000, 1, 4);
            let mut owner: HashMap<u64, usize> = HashMap::new();
            for (tid, t) in traces.iter().enumerate() {
                for u in t.iter().filter(|u| u.kind.is_store()) {
                    let addr = u.mem.expect("stores carry a ref").addr & !7;
                    let prev = owner.insert(addr, tid);
                    assert!(
                        prev.is_none() || prev == Some(tid),
                        "{}: word {addr:#x} written by threads {:?} and {tid}",
                        app.name,
                        prev
                    );
                }
            }
        }
    }

    /// The workloads actually share state: every thread loads words that
    /// some *other* thread wrote.
    #[test]
    fn every_thread_reads_remotely_written_words() {
        for app in all() {
            let traces = app.generate_threads(3_000, 1, 4);
            let mut written_by: HashMap<u64, usize> = HashMap::new();
            for (tid, t) in traces.iter().enumerate() {
                for u in t.iter().filter(|u| u.kind.is_store()) {
                    written_by.insert(u.mem.expect("ref").addr & !7, tid);
                }
            }
            for (tid, t) in traces.iter().enumerate() {
                let reads_remote = t
                    .iter()
                    .filter(|u| u.kind == UopKind::Load)
                    .filter_map(|u| u.mem)
                    .any(|m| written_by.get(&(m.addr & !7)).is_some_and(|&w| w != tid));
                assert!(
                    reads_remote,
                    "{} thread {tid} never reads another thread's data",
                    app.name
                );
            }
        }
    }

    /// Sync micro-ops are present in every thread (the DRF discipline
    /// needs conflicting accesses separated by synchronisation).
    #[test]
    fn every_thread_synchronises() {
        for app in all() {
            for t in app.generate_threads(2_000, 1, 4) {
                assert!(
                    t.iter().any(|u| matches!(u.kind, UopKind::Sync(_))),
                    "{}: {} has no sync ops",
                    app.name,
                    t.name()
                );
            }
        }
    }

    /// The store-value invariant register-based replay relies on: no two
    /// stores share one definition of the data register with different
    /// values (each store is preceded by a fresh define).
    #[test]
    fn stores_never_share_a_definition() {
        for app in all() {
            for t in app.generate_threads(3_000, 1, 2) {
                let mut defined_since_store = true;
                for u in t.iter() {
                    if u.dst == Some(DATA) {
                        defined_since_store = true;
                    }
                    if u.kind.is_store() {
                        assert!(
                            defined_since_store,
                            "{}: store at pc {:#x} reuses a definition",
                            app.name, u.pc
                        );
                        defined_since_store = false;
                    }
                }
            }
        }
    }

    /// Store values are unique per thread (thread-tagged), so a replayed
    /// word is attributable to the store that produced it.
    #[test]
    fn store_values_are_unique() {
        for app in all() {
            let mut seen = HashSet::new();
            for t in app.generate_threads(2_000, 1, 3) {
                for u in t.iter().filter(|u| u.kind.is_store()) {
                    let v = u.mem.expect("ref").value;
                    assert!(seen.insert(v), "{}: value {v} stored twice", app.name);
                }
            }
        }
    }

    #[test]
    fn thread_count_scales_the_footprint() {
        let app = by_name("counters").unwrap();
        for threads in [2, 8, 64] {
            let traces = app.generate_threads(1_000, 1, threads);
            assert_eq!(traces.len(), threads);
        }
    }
}
