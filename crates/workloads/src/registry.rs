//! The 41-application registry of the paper's evaluation (Table 3 and the
//! figure x-axes), grouped by suite.

use crate::app::{AppDescriptor, Suite};

mod cpu2006;
mod cpu2017;
mod miniapps;
mod splash3;
mod stamp;
mod whisper;

/// Every application, in suite order (CPU2006, CPU2017, SPLASH3, STAMP,
/// WHISPER, Mini-apps), exactly 41 entries.
///
/// # Examples
///
/// ```
/// let apps = ppa_workloads::registry::all();
/// assert_eq!(apps.len(), 41);
/// ```
pub fn all() -> Vec<AppDescriptor> {
    let mut v = Vec::with_capacity(41);
    v.extend(cpu2006::apps());
    v.extend(cpu2017::apps());
    v.extend(splash3::apps());
    v.extend(stamp::apps());
    v.extend(whisper::apps());
    v.extend(miniapps::apps());
    v
}

/// Applications of one suite.
pub fn by_suite(suite: Suite) -> Vec<AppDescriptor> {
    all().into_iter().filter(|a| a.suite == suite).collect()
}

/// Looks an application up by name.
///
/// # Examples
///
/// ```
/// use ppa_workloads::registry;
/// assert!(registry::by_name("lulesh").is_some());
/// assert!(registry::by_name("doom").is_none());
/// ```
pub fn by_name(name: &str) -> Option<AppDescriptor> {
    all().into_iter().find(|a| a.name == name)
}

/// The memory-intensive subset used by Figures 10, 15, and 18: high L2
/// miss rates (the paper quotes 18%–100%) plus the multi-threaded apps the
/// WPQ studies include. `load_cold_frac` here is the *unprefetchable*
/// below-L2 traffic, so even small values mark a memory-hungry app.
pub fn memory_intensive() -> Vec<AppDescriptor> {
    all()
        .into_iter()
        .filter(|a| {
            a.load_cold_frac >= 0.004
                || a.dram_resident_frac <= 0.92
                || a.suite == Suite::Whisper
                || a.suite == Suite::Splash3
                || a.suite == Suite::MiniApps
        })
        .collect()
}

/// The multi-threaded applications (SPLASH3, STAMP, WHISPER) used by the
/// thread-count study (Figure 19).
pub fn multi_threaded() -> Vec<AppDescriptor> {
    all().into_iter().filter(|a| a.threads > 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_41_applications() {
        assert_eq!(all().len(), 41);
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<&str> = all().iter().map(|a| a.name).collect();
        assert_eq!(names.len(), 41);
    }

    #[test]
    fn every_descriptor_validates() {
        for a in all() {
            a.validate();
        }
    }

    #[test]
    fn suite_sizes_match_the_paper() {
        assert_eq!(by_suite(Suite::Cpu2006).len(), 10);
        assert_eq!(by_suite(Suite::Cpu2017).len(), 8);
        assert_eq!(by_suite(Suite::Splash3).len(), 8);
        assert_eq!(by_suite(Suite::Stamp).len(), 6);
        assert_eq!(by_suite(Suite::Whisper).len(), 7);
        assert_eq!(by_suite(Suite::MiniApps).len(), 2);
    }

    #[test]
    fn spec_is_single_threaded_parallel_suites_are_not() {
        for a in by_suite(Suite::Cpu2006)
            .iter()
            .chain(&by_suite(Suite::Cpu2017))
        {
            assert_eq!(a.threads, 1, "{}", a.name);
        }
        for a in multi_threaded() {
            assert_eq!(a.threads, 8, "{}", a.name);
            assert!(a.sync_per_kilo > 0.0, "{} needs sync traffic", a.name);
        }
    }

    #[test]
    fn paper_outliers_have_their_characteristics() {
        // lbm and pc have poor DRAM-cache locality (Figure 9 outliers).
        assert!(by_name("lbm").unwrap().dram_resident_frac <= 0.85);
        assert!(by_name("pc").unwrap().dram_resident_frac <= 0.95);
        // rb has high locality (4% L2 miss) but heavy write traffic.
        let rb = by_name("rb").unwrap();
        assert!(rb.load_cold_frac <= 0.01);
        assert!(
            rb.store_cold_frac >= 0.3,
            "rb scatters writes across the tree"
        );
        // libquantum tops the Figure 10 PSP comparison (2.4x): by far the
        // largest unprefetchable below-L2 load traffic.
        assert!(by_name("libquantum").unwrap().load_cold_frac >= 0.02);
        // bzip2 and libquantum burn registers (short regions, Figure 13).
        assert!(by_name("bzip2").unwrap().alu_def_frac >= 0.5);
    }

    #[test]
    fn memory_intensive_subset_is_nonempty_and_contains_the_expected() {
        let names: HashSet<&str> = memory_intensive().iter().map(|a| a.name).collect();
        for expected in ["libquantum", "lbm", "mcf", "rb", "sps", "lulesh", "xsbench"] {
            assert!(names.contains(expected), "missing {expected}");
        }
    }

    #[test]
    fn whisper_footprints_match_table3() {
        let mb = |n: &str| by_name(n).unwrap().footprint_mb;
        assert_eq!(mb("lulesh"), 664);
        assert_eq!(mb("xsbench"), 241);
        assert_eq!(mb("pc"), 196);
        assert_eq!(mb("rb"), 166);
        assert_eq!(mb("sps"), 264);
        assert_eq!(mb("tatp"), 287);
        assert_eq!(mb("tpcc"), 110);
        assert_eq!(mb("r20w80"), 189);
        assert_eq!(mb("r50w50"), 189);
    }
}
