//! SPEC CPU2006 application models (10 apps, reference inputs).

use crate::app::{AppDescriptor, Suite};

fn base(name: &'static str) -> AppDescriptor {
    AppDescriptor::spec_base(name, Suite::Cpu2006)
}

pub(crate) fn apps() -> Vec<AppDescriptor> {
    vec![
        AppDescriptor {
            // Compression: integer-heavy, burns registers — one of the
            // paper's short-region outliers (Figure 13).
            alu_def_frac: 0.55,
            int_regs: 16,
            store_frac: 0.1100,
            load_frac: 0.26,
            load_hot_lines: 4096,
            load_cold_frac: 0.0037,
            dram_resident_frac: 0.8599,
            store_run_len: 40.5,
            footprint_mb: 870,
            description: "compression, register-hungry integer code",
            ..base("bzip2")
        },
        AppDescriptor {
            branch_frac: 0.22,
            call_frac: 0.14,
            load_hot_lines: 8192,
            load_cold_frac: 0.0047,
            dram_resident_frac: 0.8503,
            store_run_len: 25.0,
            store_frac: 0.0800,
            footprint_mb: 940,
            description: "compiler, branchy pointer-chasing",
            ..base("gcc")
        },
        AppDescriptor {
            load_frac: 0.30,
            load_cold_frac: 0.0045,
            load_cold_lines: 1 << 21,
            store_frac: 0.0600,
            dram_resident_frac: 0.8974,
            store_run_len: 25.0,
            footprint_mb: 1700,
            description: "single-source shortest path, cache-hostile",
            ..base("mcf")
        },
        AppDescriptor {
            branch_frac: 0.20,
            call_frac: 0.12,
            load_hot_lines: 2048,
            load_cold_frac: 0.0036,
            dram_resident_frac: 0.8738,
            store_run_len: 25.0,
            store_frac: 0.0800,
            footprint_mb: 30,
            description: "Go playing, branchy search",
            ..base("gobmk")
        },
        AppDescriptor {
            // §7.8: hmmer needs many live registers; hurts at PRF 80/80.
            alu_def_frac: 0.58,
            int_regs: 16,
            fp_regs: 16,
            load_frac: 0.28,
            store_frac: 0.1200,
            load_hot_lines: 1024,
            load_cold_frac: 0.0021,
            dram_resident_frac: 0.8327,
            store_run_len: 58.5,
            footprint_mb: 60,
            description: "profile HMM search, register-dense inner loop",
            ..base("hmmer")
        },
        AppDescriptor {
            branch_frac: 0.21,
            call_frac: 0.10,
            load_hot_lines: 1500,
            load_cold_frac: 0.0027,
            dram_resident_frac: 0.9279,
            store_run_len: 39.5,
            store_frac: 0.0800,
            footprint_mb: 180,
            description: "chess, deep branchy search",
            ..base("sjeng")
        },
        AppDescriptor {
            // Streaming over a large vector; the Figure 10 worst case for
            // PSP (2.4x) and a short-region outlier.
            load_frac: 0.33,
            store_frac: 0.1000,
            alu_def_frac: 0.52,
            int_regs: 16,
            load_cold_frac: 0.0224,
            load_cold_lines: 1 << 21,
            store_cold_frac: 0.30,
            store_cold_lines: 1 << 19,
            dram_resident_frac: 0.9652,
            store_run_len: 40.5,
            footprint_mb: 100,
            description: "quantum simulation, streaming vector sweeps",
            ..base("libquantum")
        },
        AppDescriptor {
            fp_frac: 0.12,
            load_frac: 0.28,
            store_frac: 0.1000,
            load_hot_lines: 3000,
            load_cold_frac: 0.0019,
            dram_resident_frac: 0.7995,
            store_run_len: 25.0,
            footprint_mb: 65,
            description: "H.264 encoding, hot macroblock kernels",
            ..base("h264ref")
        },
        AppDescriptor {
            branch_frac: 0.19,
            call_frac: 0.16,
            load_frac: 0.27,
            load_cold_frac: 0.0023,
            dram_resident_frac: 0.8651,
            store_run_len: 39.5,
            store_frac: 0.0800,
            footprint_mb: 175,
            description: "discrete event simulation, pointer-heavy",
            ..base("omnetpp")
        },
        AppDescriptor {
            // Lattice-Boltzmann: FP streaming with poor locality; one of
            // the Figure 9 outliers (44% over DRAM-only).
            fp_frac: 0.45,
            fp_regs: 28,
            load_frac: 0.30,
            store_frac: 0.1300,
            load_cold_frac: 0.0064,
            load_cold_lines: 1 << 21,
            store_cold_frac: 0.35,
            store_cold_lines: 1 << 20,
            dram_resident_frac: 0.7803,
            store_run_len: 64.0,
            footprint_mb: 410,
            description: "lattice-Boltzmann fluid dynamics, streaming FP",
            ..base("lbm")
        },
    ]
}
