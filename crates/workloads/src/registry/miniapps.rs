//! DOE Mini-app models (LULESH, XSBench), single-socket runs with the
//! Table 3 inputs.

use crate::app::{AppDescriptor, Suite};

pub(crate) fn apps() -> Vec<AppDescriptor> {
    vec![
        AppDescriptor {
            // "High instruction and memory-level parallelism" (Table 3).
            fp_frac: 0.45,
            fp_regs: 28,
            load_frac: 0.30,
            store_frac: 0.0210,
            load_cold_frac: 0.0014,
            load_cold_lines: 1 << 21,
            store_cold_frac: 0.18,
            store_cold_lines: 1 << 20,
            sync_per_kilo: 1.0,
            dram_resident_frac: 0.8932,
            store_run_len: 64.0,
            footprint_mb: 664,
            input: "-s 100",
            description: "high instruction and memory-level parallelism",
            ..AppDescriptor::parallel_base("lulesh", Suite::MiniApps)
        },
        AppDescriptor {
            // "Stress memory system with little computations" (Table 3).
            load_frac: 0.38,
            store_frac: 0.0210,
            load_cold_frac: 0.0084,
            load_cold_lines: 1 << 21,
            branch_frac: 0.14,
            sync_per_kilo: 0.5,
            dram_resident_frac: 0.9681,
            store_run_len: 40.0,
            footprint_mb: 241,
            input: "-s small",
            description: "stress memory system with little computation",
            ..AppDescriptor::parallel_base("xsbench", Suite::MiniApps)
        },
    ]
}
