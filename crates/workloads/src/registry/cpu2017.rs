//! SPEC CPU2017 application models (8 apps, reference inputs).

use crate::app::{AppDescriptor, Suite};

fn base(name: &'static str) -> AppDescriptor {
    AppDescriptor::spec_base(name, Suite::Cpu2017)
}

pub(crate) fn apps() -> Vec<AppDescriptor> {
    vec![
        AppDescriptor {
            branch_frac: 0.21,
            call_frac: 0.15,
            load_frac: 0.26,
            load_hot_lines: 4096,
            load_cold_frac: 0.0025,
            dram_resident_frac: 0.8855,
            store_run_len: 25.0,
            store_frac: 0.0800,
            footprint_mb: 202,
            description: "Perl interpreter, branchy dispatch",
            ..base("perlbench")
        },
        AppDescriptor {
            fp_frac: 0.10,
            load_frac: 0.29,
            store_frac: 0.1000,
            load_hot_lines: 3000,
            load_cold_frac: 0.0033,
            dram_resident_frac: 0.8423,
            store_run_len: 38.2,
            footprint_mb: 120,
            description: "video encoding (x264), hot SIMD-ish kernels",
            ..base("x264")
        },
        AppDescriptor {
            branch_frac: 0.20,
            call_frac: 0.11,
            alu_def_frac: 0.50,
            int_regs: 14,
            load_cold_frac: 0.0018,
            dram_resident_frac: 0.8309,
            store_run_len: 40.5,
            store_frac: 0.0800,
            footprint_mb: 700,
            description: "chess engine, register-dense search",
            ..base("deepsjeng")
        },
        AppDescriptor {
            branch_frac: 0.18,
            call_frac: 0.13,
            load_hot_lines: 2048,
            load_cold_frac: 0.0027,
            dram_resident_frac: 0.7741,
            store_run_len: 31.2,
            store_frac: 0.0800,
            footprint_mb: 25,
            description: "Go engine (MCTS), pointer-chasing tree",
            ..base("leela")
        },
        AppDescriptor {
            alu_def_frac: 0.48,
            branch_frac: 0.12,
            load_frac: 0.14,
            store_frac: 0.0500,
            load_cold_frac: 0.0027,
            dram_resident_frac: 0.9158,
            store_run_len: 25.0,
            footprint_mb: 1,
            description: "sudoku-style integer puzzle, compute-bound",
            ..base("exchange2")
        },
        AppDescriptor {
            load_frac: 0.27,
            store_frac: 0.1100,
            load_cold_frac: 0.0012,
            load_cold_lines: 1 << 21,
            dram_resident_frac: 0.8358,
            store_run_len: 40.5,
            footprint_mb: 1150,
            description: "LZMA de/compression over large buffers",
            ..base("xz")
        },
        AppDescriptor {
            fp_frac: 0.50,
            fp_regs: 30,
            load_frac: 0.30,
            store_frac: 0.1100,
            load_cold_frac: 0.0014,
            load_cold_lines: 1 << 21,
            store_cold_frac: 0.20,
            dram_resident_frac: 0.8709,
            store_run_len: 60.0,
            footprint_mb: 1300,
            description: "numerical relativity stencils, FP streaming",
            ..base("cactuBSSN")
        },
        AppDescriptor {
            fp_frac: 0.45,
            fp_regs: 26,
            load_frac: 0.31,
            store_frac: 0.1000,
            load_cold_frac: 0.0021,
            load_cold_lines: 1 << 21,
            dram_resident_frac: 0.8525,
            store_run_len: 40.5,
            footprint_mb: 850,
            description: "regional ocean model, FP stencils",
            ..base("roms")
        },
    ]
}
