//! SPLASH-3 application models (8 apps, 8 threads).

use crate::app::{AppDescriptor, Suite};

fn base(name: &'static str) -> AppDescriptor {
    AppDescriptor::parallel_base(name, Suite::Splash3)
}

pub(crate) fn apps() -> Vec<AppDescriptor> {
    vec![
        AppDescriptor {
            fp_frac: 0.35,
            fp_regs: 20,
            load_frac: 0.28,
            load_cold_frac: 0.0010,
            sync_per_kilo: 1.5,
            dram_resident_frac: 0.9867,
            store_run_len: 51.3,
            store_frac: 0.0280,
            footprint_mb: 160,
            description: "Barnes-Hut N-body, octree walks",
            ..base("barnes")
        },
        AppDescriptor {
            fp_frac: 0.40,
            fp_regs: 24,
            load_frac: 0.27,
            sync_per_kilo: 1.0,
            load_cold_frac: 0.0016,
            dram_resident_frac: 0.9040,
            store_run_len: 64.0,
            store_frac: 0.0198,
            footprint_mb: 120,
            description: "fast multipole method",
            ..base("fmm")
        },
        AppDescriptor {
            fp_frac: 0.42,
            fp_regs: 24,
            load_frac: 0.30,
            store_frac: 0.0272,
            load_cold_frac: 0.0016,
            load_cold_lines: 1 << 20,
            sync_per_kilo: 2.0,
            dram_resident_frac: 0.9183,
            store_run_len: 64.0,
            footprint_mb: 890,
            description: "ocean current simulation, grid sweeps",
            ..base("ocean")
        },
        AppDescriptor {
            load_frac: 0.30,
            store_frac: 0.0346,
            load_cold_frac: 0.0027,
            load_cold_lines: 1 << 20,
            store_cold_frac: 0.25,
            sync_per_kilo: 3.0,
            dram_resident_frac: 0.8331,
            store_run_len: 64.0,
            footprint_mb: 256,
            description: "radix sort, all-to-all key exchange",
            ..base("radix")
        },
        AppDescriptor {
            // §7.8 calls out lu-cg at small PRFs: dense register tiles.
            fp_frac: 0.48,
            fp_regs: 30,
            alu_def_frac: 0.55,
            load_frac: 0.28,
            store_frac: 0.0297,
            sync_per_kilo: 1.2,
            load_cold_frac: 0.0013,
            dram_resident_frac: 0.8643,
            store_run_len: 64.0,
            footprint_mb: 130,
            description: "LU factorisation (contiguous), register tiles",
            ..base("lu-cg")
        },
        AppDescriptor {
            fp_frac: 0.30,
            load_frac: 0.25,
            load_cold_frac: 0.0014,
            sync_per_kilo: 1.0,
            dram_resident_frac: 0.9709,
            store_run_len: 64.0,
            store_frac: 0.0198,
            footprint_mb: 64,
            description: "ray tracing, read-mostly scene data",
            ..base("raytrace")
        },
        AppDescriptor {
            // water-ns/water-sp: more stores and shorter regions than the
            // suite average — the Figure 11 stall outliers (6.1%/8.1%).
            fp_frac: 0.40,
            fp_regs: 26,
            store_frac: 0.0328,
            load_frac: 0.28,
            alu_def_frac: 0.52,
            store_cold_frac: 0.12,
            store_hot_lines: 24,
            sync_per_kilo: 4.0,
            store_run_len: 48.0,
            load_cold_frac: 0.0013,
            dram_resident_frac: 0.9920,
            footprint_mb: 90,
            description: "water molecules (n-squared), store-dense updates",
            ..base("water-ns")
        },
        AppDescriptor {
            fp_frac: 0.40,
            fp_regs: 26,
            store_frac: 0.0297,
            load_frac: 0.27,
            alu_def_frac: 0.54,
            store_cold_frac: 0.14,
            store_hot_lines: 20,
            sync_per_kilo: 4.5,
            store_run_len: 47.0,
            load_cold_frac: 0.0012,
            dram_resident_frac: 0.9144,
            footprint_mb: 85,
            description: "water molecules (spatial), store-dense updates",
            ..base("water-sp")
        },
    ]
}
