//! STAMP transactional application models (6 apps, 8 threads).

use crate::app::{AppDescriptor, Suite};

fn base(name: &'static str) -> AppDescriptor {
    AppDescriptor {
        // Transactions bracket work with atomics, so STAMP applications
        // synchronise more than SPLASH3 kernels.
        sync_per_kilo: 5.0,
        ..AppDescriptor::parallel_base(name, Suite::Stamp)
    }
}

pub(crate) fn apps() -> Vec<AppDescriptor> {
    vec![
        AppDescriptor {
            load_frac: 0.28,
            load_cold_frac: 0.0014,
            branch_frac: 0.18,
            dram_resident_frac: 0.9233,
            store_run_len: 64.0,
            store_frac: 0.0198,
            footprint_mb: 2,
            description: "gene sequencing by segment matching",
            ..base("genome")
        },
        AppDescriptor {
            branch_frac: 0.20,
            call_frac: 0.12,
            load_frac: 0.27,
            load_cold_frac: 0.0018,
            dram_resident_frac: 0.9649,
            store_run_len: 64.0,
            store_frac: 0.0198,
            footprint_mb: 64,
            description: "network intrusion detection, packet dissection",
            ..base("intruder")
        },
        AppDescriptor {
            fp_frac: 0.30,
            load_frac: 0.30,
            store_frac: 0.0247,
            load_cold_frac: 0.0010,
            load_cold_lines: 1 << 20,
            sync_per_kilo: 3.0,
            dram_resident_frac: 0.7349,
            store_run_len: 64.0,
            footprint_mb: 128,
            description: "k-means clustering over large point sets",
            ..base("kmeans")
        },
        AppDescriptor {
            load_frac: 0.29,
            store_frac: 0.0297,
            load_cold_frac: 0.0012,
            store_cold_frac: 0.20,
            dram_resident_frac: 0.8778,
            store_run_len: 64.0,
            footprint_mb: 32,
            description: "maze routing with speculative path claims",
            ..base("labyrinth")
        },
        AppDescriptor {
            load_frac: 0.28,
            store_frac: 0.0247,
            branch_frac: 0.18,
            call_frac: 0.12,
            load_cold_frac: 0.0010,
            dram_resident_frac: 0.9048,
            store_run_len: 64.0,
            footprint_mb: 256,
            description: "travel reservation system, tree indices",
            ..base("vacation")
        },
        AppDescriptor {
            load_frac: 0.31,
            store_frac: 0.0223,
            load_cold_frac: 0.0013,
            load_cold_lines: 1 << 20,
            sync_per_kilo: 4.0,
            dram_resident_frac: 0.9192,
            store_run_len: 64.0,
            footprint_mb: 512,
            description: "graph kernels over sparse arrays (SSCA#2)",
            ..base("ssca2")
        },
    ]
}
