//! WHISPER persistent-memory application models (7 apps, 8 threads),
//! with the Table 3 inputs and footprints.

use crate::app::{AppDescriptor, Suite};

fn base(name: &'static str) -> AppDescriptor {
    AppDescriptor::parallel_base(name, Suite::Whisper)
}

pub(crate) fn apps() -> Vec<AppDescriptor> {
    vec![
        AppDescriptor {
            // Hash-table updates: scattered writes over a big table.
            load_frac: 0.28,
            store_frac: 0.0262,
            load_cold_frac: 0.0034,
            load_cold_lines: 1 << 20,
            store_cold_frac: 0.45,
            store_cold_lines: 1 << 19,
            sync_per_kilo: 3.0,
            dram_resident_frac: 0.7295,
            store_run_len: 64.0,
            footprint_mb: 196,
            input: "8 100000",
            description: "update in hash-table",
            ..base("pc")
        },
        AppDescriptor {
            // Red-black tree: high locality (4% L2 miss) but write-heavy
            // random node updates — the WPQ/bandwidth-sensitivity outlier
            // (Figures 8, 15, 18).
            load_frac: 0.30,
            store_frac: 0.0500,
            load_cold_frac: 0.0010,
            load_hot_lines: 6000,
            store_cold_frac: 0.50,
            store_cold_lines: 1 << 16,
            store_hot_lines: 64,
            sync_per_kilo: 3.0,
            store_run_len: 52.0,
            dram_resident_frac: 0.9634,
            footprint_mb: 166,
            input: "8 100000",
            description: "insert/delete nodes in a red-black tree",
            ..base("rb")
        },
        AppDescriptor {
            // Swap random array entries: scattered reads and writes.
            load_frac: 0.30,
            store_frac: 0.0396,
            load_cold_frac: 0.0015,
            load_cold_lines: 1 << 20,
            store_cold_frac: 0.40,
            store_cold_lines: 1 << 20,
            sync_per_kilo: 2.0,
            dram_resident_frac: 0.9160,
            store_run_len: 64.0,
            footprint_mb: 264,
            input: "8 200000",
            description: "swap random entries of an array",
            ..base("sps")
        },
        AppDescriptor {
            load_frac: 0.27,
            store_frac: 0.0297,
            load_cold_frac: 0.0013,
            store_cold_frac: 0.25,
            branch_frac: 0.18,
            call_frac: 0.12,
            sync_per_kilo: 4.0,
            dram_resident_frac: 0.9074,
            store_run_len: 64.0,
            footprint_mb: 287,
            input: "8 100000",
            description: "update_location transaction (TATP)",
            ..base("tatp")
        },
        AppDescriptor {
            // §7.8 lists tpcc among the PRF-pressure outliers.
            load_frac: 0.28,
            store_frac: 0.0322,
            alu_def_frac: 0.52,
            int_regs: 16,
            load_cold_frac: 0.0014,
            store_cold_frac: 0.22,
            branch_frac: 0.18,
            call_frac: 0.14,
            sync_per_kilo: 4.0,
            dram_resident_frac: 0.8287,
            store_run_len: 64.0,
            footprint_mb: 110,
            input: "8 100000",
            description: "add_new_order transaction (TPC-C)",
            ..base("tpcc")
        },
        AppDescriptor {
            // Memcached, 20% reads / 80% writes, 64 B keys and 1 KB values.
            load_frac: 0.22,
            store_frac: 0.0380,
            load_cold_frac: 0.0024,
            store_cold_frac: 0.18,
            store_cold_lines: 1 << 19,
            branch_frac: 0.18,
            call_frac: 0.12,
            sync_per_kilo: 5.0,
            store_run_len: 62.0,
            dram_resident_frac: 0.9808,
            footprint_mb: 189,
            input: "-m 1000 -t 8",
            description: "Memcached with 20% reads and 80% writes",
            ..base("r20w80")
        },
        AppDescriptor {
            load_frac: 0.28,
            store_frac: 0.0322,
            load_cold_frac: 0.0014,
            store_cold_frac: 0.25,
            store_cold_lines: 1 << 19,
            branch_frac: 0.18,
            call_frac: 0.12,
            sync_per_kilo: 5.0,
            dram_resident_frac: 0.9187,
            store_run_len: 64.0,
            footprint_mb: 189,
            input: "-m 1000 -t 8",
            description: "Memcached with 50% reads and 50% writes",
            ..base("r50w50")
        },
    ]
}
