//! A small, deterministic pseudo-random number generator for the PPA
//! simulator.
//!
//! The workload generators, the randomized property tests, and the
//! crash-consistency oracle all need reproducible random streams. This
//! crate provides one: xoshiro256** seeded through SplitMix64, the
//! textbook construction (Blackman & Vigna). It is not cryptographic and
//! does not try to be — determinism across platforms and zero external
//! dependencies are the only requirements (the build runs with no
//! registry access, so `rand` is not an option).
//!
//! # Examples
//!
//! ```
//! use ppa_prng::Prng;
//!
//! let mut a = Prng::seed_from_u64(7);
//! let mut b = Prng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.random_range(0..10u32);
//! assert!(x < 10);
//! let f = a.random_f64();
//! assert!((0.0..1.0).contains(&f));
//! ```

use std::ops::Range;

/// xoshiro256** generator with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Prng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform value in `[0, bound)` via Lemire's multiply-shift
    /// rejection; `bound` of zero returns zero.
    pub fn random_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Rejection sampling on the low product keeps the distribution
        // exactly uniform; the loop terminates quickly for any bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let hi = ((u128::from(x) * u128::from(bound)) >> 64) as u64;
            let lo = x.wrapping_mul(bound);
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// A uniform value in `range` (half-open, like `rand`'s
    /// `random_range`). An empty range returns `range.start`.
    pub fn random_range<T: RangeInt>(&mut self, range: Range<T>) -> T {
        let start = range.start.into_u64();
        let end = range.end.into_u64();
        if end <= start {
            return range.start;
        }
        T::from_u64(start + self.random_below(end - start))
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.random_below(slice.len() as u64) as usize])
        }
    }
}

/// Integer types [`Prng::random_range`] can produce. The trait is an
/// implementation detail; all unsigned primitive widths up to `u64` are
/// covered.
pub trait RangeInt: Copy {
    /// Widens to `u64`.
    fn into_u64(self) -> u64;
    /// Narrows from `u64`; the value is guaranteed to fit by construction.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn into_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = Prng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = rng.random_f64();
            assert!((0.0..1.0).contains(&f), "{f} out of [0,1)");
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = Prng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_respects_bounds_and_hits_all_values() {
        let mut rng = Prng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.random_range(0..7u8);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range appear"
        );
    }

    #[test]
    fn range_with_nonzero_start() {
        let mut rng = Prng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = rng.random_range(10..20u64);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn empty_range_returns_start() {
        let mut rng = Prng::seed_from_u64(5);
        assert_eq!(rng.random_range(3..3u32), 3);
        assert_eq!(rng.random_below(0), 0);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Prng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "a 32-element shuffle is almost surely not identity"
        );
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = Prng::seed_from_u64(13);
        let items = [1, 2, 3];
        assert!(rng.choose::<u32>(&[]).is_none());
        for _ in 0..100 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
    }
}
