//! Shared-memory multi-core assembly for the PPA simulator (§6).
//!
//! [`ppa_sim::Machine`] locksteps cores whose store footprints are
//! disjoint, so nothing machine-wide ever needs coordinating. This crate
//! builds the real thing:
//!
//! * [`SmpSystem`] — N [`ppa_core::Core`]s sharing one
//!   [`ppa_mem::MemorySystem`] through a deterministic round-robin
//!   interconnect (the per-cycle service order rotates with the cycle
//!   number, mirroring the memory side's write-back arbitration);
//! * [`PersistArbiter`] — per-core committed-store queues drain into a
//!   shared arbiter that certifies sync-region drains one at a time in
//!   round-robin order, enforcing §6's cross-core persist ordering;
//!   synchronisation operations are region boundaries, and a core stalls
//!   at one until its drain certificate issues;
//! * whole-machine **JIT checkpoint and recovery** —
//!   [`SmpSystem::jit_checkpoint`] images every core atomically;
//!   [`SmpSystem::recover`] replays all cores' committed stores (any
//!   replay order is correct under data-race-freedom) and restarts every
//!   core after its LCPC;
//! * **cross-core validators** — [`check_drain_log`] (drain-order and
//!   persist-before-dependence), [`check_arbiter_fairness`] (round-robin
//!   rotation and starvation-freedom, judged from the request lines each
//!   certificate records rather than asserted by construction) and
//!   [`check_images`] (recovery-image coherence), with [`ArbiterFault`]
//!   mutations to prove they catch a deliberately broken arbiter.
//!
//! Baseline (non-PPA) machines never end sync regions, so the arbiter
//! naturally no-ops and the interconnect is the only difference from the
//! lockstep runner.

mod arbiter;
mod system;

pub use arbiter::{
    check_arbiter_fairness, check_drain_log, ArbiterFault, DrainGrant, PersistArbiter,
};
pub use system::{check_images, MachineCheckpoint, SmpReport, SmpSystem};
