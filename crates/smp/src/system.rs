//! The shared-memory multi-core machine: N cores, one memory hierarchy,
//! a deterministic interconnect, and whole-machine checkpoint/recovery.

use crate::arbiter::{
    check_arbiter_fairness, check_drain_log, ArbiterFault, DrainGrant, PersistArbiter,
};
use ppa_core::verify::{InvariantKind, Violation};
use ppa_core::{
    deserialize_images, replay_stores, serialize_images, CheckpointImage, Core, CoreStats,
};
use ppa_isa::Trace;
use ppa_mem::{MemStats, MemorySystem};
use ppa_sim::SystemConfig;

/// The whole machine's JIT checkpoint: one [`CheckpointImage`] per core,
/// taken atomically at the failure cycle (the paper's residual-energy
/// window covers all cores — each flushes its own 1838-byte worst case in
/// parallel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineCheckpoint {
    /// Per-core images, indexed by core id.
    pub images: Vec<CheckpointImage>,
}

impl MachineCheckpoint {
    /// Serializes all images into the single word stream the checkpoint
    /// controllers write to NVM.
    pub fn serialize(&self) -> Vec<u64> {
        serialize_images(&self.images)
    }

    /// Rebuilds a machine checkpoint from a word stream; `None` if the
    /// stream is torn or corrupted.
    pub fn deserialize(words: &[u64]) -> Option<Self> {
        deserialize_images(words).map(|images| MachineCheckpoint { images })
    }

    /// Total bytes the machine's checkpoint controllers move to NVM.
    pub fn checkpoint_bytes(&self, total_prf: usize) -> u64 {
        self.images
            .iter()
            .map(|i| i.checkpoint_bytes(total_prf))
            .sum()
    }
}

/// Validates that the per-core recovery images are coherent: under DRF
/// single-writer discipline no word may appear in two cores' CSQs, since
/// §6 replays the images in arbitrary core order and an overlap would make
/// the recovered value order-dependent
/// ([`InvariantKind::RecoveryImageOverlap`]).
pub fn check_images(images: &[CheckpointImage]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut owner: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (core, image) in images.iter().enumerate() {
        for entry in &image.csq {
            let word = entry.addr & !7;
            match owner.insert(word, core) {
                Some(prev) if prev != core => out.push(Violation {
                    kind: InvariantKind::RecoveryImageOverlap,
                    check: "machine-checkpoint",
                    cycle: 0,
                    core,
                    detail: format!(
                        "word {word:#x} appears in core {prev}'s and core {core}'s images"
                    ),
                }),
                _ => {}
            }
        }
    }
    out
}

/// Final report of an [`SmpSystem`] run.
#[derive(Debug, Clone)]
pub struct SmpReport {
    /// Wall-clock cycles until the last core finished.
    pub cycles: u64,
    /// Micro-ops committed across all cores.
    pub committed: u64,
    /// Whether the NVM image matched architectural memory at completion.
    pub consistent: bool,
    /// Drain certificates the persist arbiter issued.
    pub drain_grants: usize,
    /// Per-core execution statistics.
    pub core_stats: Vec<CoreStats>,
    /// Memory-system statistics.
    pub mem_stats: MemStats,
}

/// A live shared-memory multi-core PPA machine.
///
/// Unlike [`ppa_sim::Machine`] (a stateless runner that locksteps
/// independent cores), `SmpSystem` is a stepped object: cores are serviced
/// in rotating interconnect order, sync-region drains are serialized
/// through the [`PersistArbiter`], and the whole machine can be
/// checkpointed, power-failed, and recovered at any cycle.
///
/// # Examples
///
/// ```
/// use ppa_sim::SystemConfig;
/// use ppa_smp::SmpSystem;
/// use ppa_workloads::shared;
///
/// let app = shared::by_name("counters").unwrap();
/// let cfg = SystemConfig::ppa().with_threads(2);
/// let traces = app.generate_threads(1_000, 1, 2);
/// let report = SmpSystem::new(cfg, traces).run();
/// assert_eq!(report.committed, 2_000);
/// assert!(report.consistent);
/// ```
#[derive(Debug)]
pub struct SmpSystem {
    cfg: SystemConfig,
    cores: Vec<Core>,
    traces: Vec<Trace>,
    mem: MemorySystem,
    arbiter: PersistArbiter,
    duplicate_image_fault: bool,
    now: u64,
    limit: u64,
}

impl SmpSystem {
    /// Builds a machine with one core per trace. The machine starts cold
    /// (no prewarm): multi-core runs compare configurations against each
    /// other, so steady-state warmth cancels out.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn new(cfg: SystemConfig, traces: Vec<Trace>) -> Self {
        assert!(!traces.is_empty(), "need at least one trace");
        let n = traces.len();
        let total_uops: u64 = traces.iter().map(|t| t.len() as u64).sum();
        SmpSystem {
            cores: (0..n).map(|i| Core::new(cfg.core, i)).collect(),
            mem: MemorySystem::new(cfg.mem, n),
            arbiter: PersistArbiter::new(n),
            duplicate_image_fault: false,
            now: 0,
            limit: 1_000_000 + total_uops * 2_000,
            cfg,
            traces,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The cores, indexed by id.
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// The shared memory hierarchy.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// The persist arbiter's grant log.
    pub fn drain_log(&self) -> &[DrainGrant] {
        self.arbiter.log()
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether every core has committed its whole trace.
    pub fn is_finished(&self) -> bool {
        self.cores.iter().all(Core::is_finished)
    }

    /// Injects a deliberate defect for mutation self-tests.
    pub fn inject_arbiter_fault(&mut self, fault: ArbiterFault) {
        if fault == ArbiterFault::DuplicateImageEntry {
            self.duplicate_image_fault = true;
        } else {
            self.arbiter.inject_fault(fault);
        }
    }

    /// Advances the machine one cycle: cores step in rotating interconnect
    /// order (skipping cores stalled on an uncertified drain), the arbiter
    /// observes and grants, and the memory system ticks.
    pub fn step(&mut self) {
        let n = self.cores.len();
        for k in 0..n {
            let c = (self.now as usize + k) % n;
            if self.arbiter.is_stalled(c) {
                continue;
            }
            self.cores[c].step(&self.traces[c], &mut self.mem, self.now);
        }
        self.arbiter.tick(self.now, &self.cores, &self.mem);
        self.mem.tick(self.now);
        self.now += 1;
    }

    /// Runs until `cycle` (useful for positioning a power failure).
    pub fn run_to(&mut self, cycle: u64) {
        while self.now < cycle {
            self.step();
        }
    }

    /// Runs to completion (all cores finished, all drains certified).
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (2000 cycles per micro-op bound).
    pub fn run(mut self) -> SmpReport {
        self.run_in_place()
    }

    /// Like [`run`](Self::run), but keeps the machine alive so the final
    /// NVM image and grant log stay inspectable (the crash oracle diffs
    /// them against its independent golden model).
    pub fn run_in_place(&mut self) -> SmpReport {
        while !self.is_finished() || self.arbiter.has_pending() {
            assert!(
                self.now < self.limit,
                "smp machine deadlocked after {} cycles",
                self.now
            );
            self.step();
        }
        let cycles = self
            .cores
            .iter()
            .map(|c| c.finished_at().expect("all cores finished"))
            .max()
            .unwrap_or(0);
        let committed: u64 = self.cores.iter().map(Core::committed).sum();
        // Once-per-run telemetry, mirroring the single-core machine's
        // sim.* counters for the multi-core path.
        ppa_obs::registry::counter("smp.machine.runs").inc();
        ppa_obs::registry::counter("smp.cycles.total").add(cycles);
        ppa_obs::registry::counter("smp.uops.committed").add(committed);
        ppa_obs::registry::counter("smp.drain.grants").add(self.arbiter.log().len() as u64);
        SmpReport {
            cycles,
            committed,
            consistent: self.consistent(),
            drain_grants: self.arbiter.log().len(),
            core_stats: self.cores.iter().map(|c| c.stats().clone()).collect(),
            mem_stats: self.mem.stats(),
        }
    }

    /// Whether the NVM image currently matches architectural memory.
    pub fn consistent(&self) -> bool {
        self.mem.nvm_image().diff(self.mem.arch_mem()).is_empty()
    }

    /// Takes the whole machine's JIT checkpoint (every core, atomically).
    pub fn jit_checkpoint(&self) -> MachineCheckpoint {
        let mut images: Vec<CheckpointImage> =
            self.cores.iter().map(Core::jit_checkpoint).collect();
        if self.duplicate_image_fault && images.len() >= 2 {
            if let Some(entry) = images[0].csq.first().copied() {
                let value = images[0].reg_value(entry.src).unwrap_or(0);
                images[1].csq.push(entry);
                if images[1].reg_value(entry.src).is_none() {
                    images[1].prf_values.push((entry.src, value));
                }
            }
        }
        MachineCheckpoint { images }
    }

    /// Cuts power: all volatile state (caches, DRAM, write buffers) dies.
    /// The NVM image and WPQ-accepted writes survive.
    pub fn power_failure(&mut self) {
        self.mem.power_failure();
    }

    /// Recovers the machine from a checkpoint per §4.6/§6: every core's
    /// CSQ is replayed into NVM (order across cores is immaterial under
    /// DRF — [`check_images`] validates that), then each core restarts
    /// after its LCPC. Returns the number of replayed stores.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's core count differs from the machine's.
    pub fn recover(&mut self, ckpt: &MachineCheckpoint) -> usize {
        assert_eq!(
            ckpt.images.len(),
            self.cores.len(),
            "checkpoint core count must match the machine"
        );
        let mut replayed = 0;
        for image in &ckpt.images {
            replayed += replay_stores(image, self.mem.nvm_image_mut()).replayed_stores;
        }
        self.cores = ckpt
            .images
            .iter()
            .enumerate()
            .map(|(i, image)| Core::recover(self.cfg.core, i, image))
            .collect();
        self.arbiter.reset(&self.cores);
        self.limit += self.now;
        replayed
    }

    /// Runs the machine-level validators: the drain-log total-order and
    /// persist-before-dependence checks, the grant port's observed
    /// round-robin fairness, plus recovery-image coherence on a
    /// checkpoint taken now. Empty on a correct machine.
    pub fn validate(&self) -> Vec<Violation> {
        let mut v = check_drain_log(
            self.arbiter.log(),
            self.cores.len(),
            self.arbiter.grants_per_cycle(),
        );
        v.extend(check_arbiter_fairness(self.arbiter.log(), self.cores.len()));
        v.extend(check_images(&self.jit_checkpoint().images));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_core::{CsqEntry, PhysReg};
    use ppa_isa::RegClass;

    fn image(entries: &[(u64, u64)]) -> CheckpointImage {
        let csq = entries
            .iter()
            .enumerate()
            .map(|(i, &(addr, _))| CsqEntry {
                src: PhysReg::new(RegClass::Int, i as u16),
                addr,
                size: 8,
            })
            .collect();
        let prf_values = entries
            .iter()
            .enumerate()
            .map(|(i, &(_, v))| (PhysReg::new(RegClass::Int, i as u16), v))
            .collect();
        CheckpointImage {
            csq,
            crt: vec![],
            masked: vec![],
            prf_values,
            lcpc: 0x1000,
            committed: entries.len() as u64,
        }
    }

    #[test]
    fn disjoint_images_are_coherent() {
        let images = [image(&[(0x100, 1), (0x108, 2)]), image(&[(0x200, 3)])];
        assert!(check_images(&images).is_empty());
    }

    #[test]
    fn same_core_rewrite_is_fine() {
        // One core storing the same word twice is ordered by its own CSQ.
        let images = [image(&[(0x100, 1), (0x100, 2)])];
        assert!(check_images(&images).is_empty());
    }

    #[test]
    fn cross_core_overlap_is_flagged() {
        let images = [image(&[(0x100, 1)]), image(&[(0x104, 2)])]; // same word
        let v = check_images(&images);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, InvariantKind::RecoveryImageOverlap);
    }
}
