//! The shared persist arbiter: cross-core persist ordering at
//! synchronisation boundaries (§6).
//!
//! Under data-race-free software, the only points where one core's
//! persists must be ordered against another's are synchronisation
//! operations: a release must be durably ordered after the stores it
//! publishes before any acquirer's dependent persists. PPA already makes
//! every sync op a region boundary that waits for the core's own persists
//! to drain; the arbiter adds the *machine-level* half of the contract —
//! sync-region drains are certified one at a time, in a deterministic
//! round-robin order, so the cross-core drain history is a total order
//! that recovery can rely on.
//!
//! The arbiter is intentionally simple hardware: per-core last-seen
//! sync-region counters, at most one pending certificate per core (the
//! core stalls until granted), and a grant port whose bandwidth scales
//! with the core count like the paper's other shared resources (§7.11).

use ppa_core::verify::{InvariantKind, Violation};
use ppa_core::Core;
use ppa_mem::MemorySystem;

/// One drain certificate issued by the [`PersistArbiter`]: core `core`'s
/// `region`-th sync region was durably drained at `cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainGrant {
    /// Global issue sequence number (dense, starting at 0).
    pub seq: u64,
    /// Core whose sync-region drain is certified.
    pub core: usize,
    /// The core's cumulative sync-region count at the certified boundary
    /// (1-based, strictly increasing per core).
    pub region: u64,
    /// Cycle the certificate was issued.
    pub cycle: u64,
    /// The core's persists still in flight when the certificate was
    /// issued. A correct arbiter only certifies fully-drained regions, so
    /// this is always zero in a clean run.
    pub outstanding_at_grant: u64,
    /// The request lines as observed immediately before this grant
    /// issued: bit `c` set means core `c` had an uncertified sync-region
    /// drain pending. Recorded from the interconnect, not derived from
    /// the arbiter's choice, so [`check_arbiter_fairness`] can judge the
    /// grant port against what it *saw* rather than what it claims.
    pub pending_mask: u64,
}

/// Deliberate arbiter defects for mutation self-tests: each breaks one of
/// the cross-core persist-ordering invariants so the validators in
/// [`check_drain_log`] and [`crate::check_images`] can be shown to catch
/// real corruption (and to stay silent on clean runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterFault {
    /// Emit grants pairwise-swapped, so the published log is no longer a
    /// total order consistent with the issue sequence.
    UnorderedGrants,
    /// Periodically certify a drain for a core that is mid-region, with
    /// committed-but-uncertified stores still in flight.
    PhantomGrant,
    /// Corrupt the whole-machine checkpoint: duplicate one core's CSQ
    /// entry into another core's image, making the per-core recovery
    /// images overlap. Handled at [`crate::SmpSystem::jit_checkpoint`].
    DuplicateImageEntry,
    /// Replace the rotating grant port with a fixed-priority one that
    /// always scans from core 0, so low-numbered cores win every
    /// contended cycle. Round-robin rotation is broken (and high cores
    /// can starve) whenever two or more cores are pending.
    BiasedPort,
}

/// The machine-level persist arbiter. Observes sync-region completions in
/// rotating interconnect order and certifies their drains round-robin;
/// cores with an uncertified completion are stalled by the
/// [`crate::SmpSystem`] until their grant issues.
#[derive(Debug)]
pub struct PersistArbiter {
    n: usize,
    capacity: usize,
    /// Last observed `region_ends_sync` per core.
    last_sync: Vec<u64>,
    /// The sync-region count awaiting a drain certificate, per core (at
    /// most one — the core is stalled while pending).
    pending: Vec<Option<u64>>,
    next_rr: usize,
    seq: u64,
    log: Vec<DrainGrant>,
    /// Held-back grant under [`ArbiterFault::UnorderedGrants`].
    swap_hold: Option<DrainGrant>,
    grants_since_phantom: u64,
    fault: Option<ArbiterFault>,
}

impl PersistArbiter {
    /// Creates an arbiter for `n` cores. Grant bandwidth scales with the
    /// core count like the paper's other shared structures (§7.11): one
    /// certificate per cycle per 8 cores, minimum one.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "an arbiter needs at least one core");
        PersistArbiter {
            n,
            capacity: (n / 8).max(1),
            last_sync: vec![0; n],
            pending: vec![None; n],
            next_rr: 0,
            seq: 0,
            log: Vec::new(),
            swap_hold: None,
            grants_since_phantom: 0,
            fault: None,
        }
    }

    /// Certificates the arbiter can issue per cycle.
    pub fn grants_per_cycle(&self) -> usize {
        self.capacity
    }

    /// Injects a deliberate defect (mutation self-tests only).
    pub fn inject_fault(&mut self, fault: ArbiterFault) {
        self.fault = Some(fault);
    }

    /// The grant log, in emission order.
    pub fn log(&self) -> &[DrainGrant] {
        &self.log
    }

    /// Whether `core` has an uncertified sync-region drain (and must not
    /// be stepped).
    pub fn is_stalled(&self, core: usize) -> bool {
        self.pending[core].is_some()
    }

    /// Whether any core is awaiting a certificate.
    pub fn has_pending(&self) -> bool {
        self.pending.iter().any(Option::is_some)
    }

    /// Resets the arbiter for a recovered machine: a fresh drain epoch
    /// whose counters match the recovered cores (whose statistics restart
    /// from zero). The injected fault, if any, is kept.
    pub fn reset(&mut self, cores: &[Core]) {
        assert_eq!(cores.len(), self.n);
        for (last, core) in self.last_sync.iter_mut().zip(cores) {
            *last = core.stats().region_ends_sync;
        }
        self.pending = vec![None; self.n];
        self.next_rr = 0;
        self.seq = 0;
        self.log.clear();
        self.swap_hold = None;
        self.grants_since_phantom = 0;
    }

    /// One arbiter cycle: observe newly completed sync regions (in the
    /// interconnect's rotating service order) and issue up to
    /// [`grants_per_cycle`](Self::grants_per_cycle) certificates to
    /// pending cores whose persists have drained, round-robin.
    pub fn tick(&mut self, now: u64, cores: &[Core], mem: &MemorySystem) {
        for k in 0..self.n {
            let c = (now as usize + k) % self.n;
            let seen = cores[c].stats().region_ends_sync;
            if seen > self.last_sync[c] {
                debug_assert!(
                    self.pending[c].is_none(),
                    "core {c} completed a sync region while stalled"
                );
                self.last_sync[c] = seen;
                self.pending[c] = Some(seen);
            }
        }
        // The scan base is latched once per tick: reading the live
        // `next_rr` inside the scan made a multi-grant cycle skip the
        // requester right after each granted core (each grant advanced
        // the cursor *and* the scan offset), which the fairness
        // validator flags as broken rotation at 16+ cores. A biased
        // port ignores the cursor and rescans from core 0 every tick —
        // exactly the defect the validator exists to catch.
        let scan_base = if self.fault == Some(ArbiterFault::BiasedPort) {
            0
        } else {
            self.next_rr
        };
        let mut granted = 0;
        for k in 0..self.n {
            if granted == self.capacity {
                break;
            }
            let c = (scan_base + k) % self.n;
            let Some(region) = self.pending[c] else {
                continue;
            };
            let pending_mask = self.pending_mask();
            // The pipeline's own sync gate already held commit until the
            // region's persists drained (`region_ends_sync` only advances
            // past a drained boundary), so the certificate can issue as
            // soon as the port has bandwidth — the round-robin wait is the
            // cross-core ordering cost, not a re-drain.
            self.pending[c] = None;
            self.next_rr = (c + 1) % self.n;
            granted += 1;
            self.emit(DrainGrant {
                seq: self.seq,
                core: c,
                region,
                cycle: now,
                outstanding_at_grant: 0,
                pending_mask,
            });
            self.seq += 1;
            if self.fault == Some(ArbiterFault::PhantomGrant) {
                self.grants_since_phantom += 1;
                if self.grants_since_phantom >= 4 {
                    self.grants_since_phantom = 0;
                    self.emit_phantom(now, cores, mem);
                }
            }
        }
    }

    /// Fabricates a certificate for a core that is mid-region: its next
    /// sync region has not completed and its committed stores may still be
    /// in flight. This is exactly the defect the `persist-before-
    /// dependence` validator exists to catch.
    fn emit_phantom(&mut self, now: u64, cores: &[Core], mem: &MemorySystem) {
        for k in 0..self.n {
            let c = (self.next_rr + k) % self.n;
            if self.pending[c].is_some() || cores[c].is_finished() {
                continue;
            }
            self.emit(DrainGrant {
                seq: self.seq,
                core: c,
                region: self.last_sync[c] + 1,
                cycle: now,
                outstanding_at_grant: mem.persist_outstanding(c) as u64 + cores[c].csq_len() as u64,
                pending_mask: self.pending_mask(),
            });
            self.seq += 1;
            return;
        }
    }

    /// The request lines right now: bit `c` set iff core `c` has an
    /// uncertified sync-region drain pending.
    fn pending_mask(&self) -> u64 {
        self.pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .fold(0u64, |m, (c, _)| m | (1u64 << (c % 64)))
    }

    fn emit(&mut self, grant: DrainGrant) {
        if self.fault == Some(ArbiterFault::UnorderedGrants) {
            // Publish pairwise-swapped: hold every other grant back and
            // emit it *after* its successor.
            match self.swap_hold.take() {
                None => self.swap_hold = Some(grant),
                Some(held) => {
                    self.log.push(grant);
                    self.log.push(held);
                }
            }
        } else {
            self.log.push(grant);
        }
    }
}

/// Validates a drain-grant log against the §6 cross-core persist-ordering
/// contract:
///
/// * the log is a total order — sequence numbers dense and increasing,
///   cycles non-decreasing, at most `grants_per_cycle` certificates per
///   cycle ([`InvariantKind::CrossCoreDrainOrder`]);
/// * per core, certified region counts are strictly increasing
///   ([`InvariantKind::CrossCoreDrainOrder`]);
/// * no certificate was issued while the core still had persists in
///   flight ([`InvariantKind::PersistBeforeDependence`]).
pub fn check_drain_log(
    log: &[DrainGrant],
    num_cores: usize,
    grants_per_cycle: usize,
) -> Vec<Violation> {
    const CHECK: &str = "persist-arbiter";
    let mut out = Vec::new();
    let mut last_region = vec![0u64; num_cores];
    let mut in_cycle = 0usize;
    for (i, g) in log.iter().enumerate() {
        if g.core >= num_cores {
            out.push(Violation {
                kind: InvariantKind::CrossCoreDrainOrder,
                check: CHECK,
                cycle: g.cycle,
                core: g.core,
                detail: format!("grant names core {} of a {num_cores}-core machine", g.core),
            });
            continue;
        }
        if g.seq != i as u64 {
            out.push(Violation {
                kind: InvariantKind::CrossCoreDrainOrder,
                check: CHECK,
                cycle: g.cycle,
                core: g.core,
                detail: format!("grant {i} carries seq {} — log is not a total order", g.seq),
            });
        }
        if i > 0 {
            let prev = &log[i - 1];
            if g.cycle < prev.cycle {
                out.push(Violation {
                    kind: InvariantKind::CrossCoreDrainOrder,
                    check: CHECK,
                    cycle: g.cycle,
                    core: g.core,
                    detail: format!("grant cycle {} after cycle {}", g.cycle, prev.cycle),
                });
            }
            in_cycle = if g.cycle == prev.cycle {
                in_cycle + 1
            } else {
                1
            };
        } else {
            in_cycle = 1;
        }
        if in_cycle > grants_per_cycle {
            out.push(Violation {
                kind: InvariantKind::CrossCoreDrainOrder,
                check: CHECK,
                cycle: g.cycle,
                core: g.core,
                detail: format!(
                    "{in_cycle} grants in cycle {} exceed the port width {grants_per_cycle}",
                    g.cycle
                ),
            });
        }
        if g.region <= last_region[g.core] {
            out.push(Violation {
                kind: InvariantKind::CrossCoreDrainOrder,
                check: CHECK,
                cycle: g.cycle,
                core: g.core,
                detail: format!(
                    "core {} region {} certified after region {}",
                    g.core, g.region, last_region[g.core]
                ),
            });
        }
        last_region[g.core] = last_region[g.core].max(g.region);
        if g.outstanding_at_grant > 0 {
            out.push(Violation {
                kind: InvariantKind::PersistBeforeDependence,
                check: CHECK,
                cycle: g.cycle,
                core: g.core,
                detail: format!(
                    "region {} certified with {} stores in flight",
                    g.region, g.outstanding_at_grant
                ),
            });
        }
    }
    out
}

/// Validates the grant port's fairness from observed drain certificates
/// (ROADMAP's "interconnect not observed" gap: rotation used to be
/// asserted by construction, never checked). Each grant records the
/// request lines seen immediately before it issued
/// ([`DrainGrant::pending_mask`]); from those observations alone the
/// validator demands, with [`InvariantKind::ArbiterUnfair`] on failure:
///
/// * **grants serve requesters** — the granted core's request line was
///   asserted;
/// * **round-robin rotation** — each certificate goes to the first
///   pending core at or after the rotation cursor (the core after the
///   previous grant; core 0 initially), so a contended port cycles
///   through requesters instead of replaying favourites;
/// * **starvation-freedom** — independently of the rotation rule, no
///   core's request line stays asserted across more than `num_cores`
///   consecutive grants to other cores (the bound rotation implies).
///
/// Machines wider than the 64 recorded request lines are not judged.
pub fn check_arbiter_fairness(log: &[DrainGrant], num_cores: usize) -> Vec<Violation> {
    const CHECK: &str = "arbiter-fairness";
    let mut out = Vec::new();
    if num_cores > 64 {
        return out;
    }
    let mut cursor = 0usize; // rotation position: first core eligible next
    let mut waiting = vec![0usize; num_cores];
    for g in log {
        if g.core >= num_cores {
            continue; // already flagged by `check_drain_log`
        }
        if g.pending_mask & (1 << g.core) == 0 {
            out.push(Violation {
                kind: InvariantKind::ArbiterUnfair,
                check: CHECK,
                cycle: g.cycle,
                core: g.core,
                detail: format!(
                    "core {} granted without a pending request (lines {:#x})",
                    g.core, g.pending_mask
                ),
            });
            // A fabricated grant says nothing about rotation; keep the
            // cursor where the port should have been.
            continue;
        }
        let expected = (0..num_cores)
            .map(|k| (cursor + k) % num_cores)
            .find(|&c| g.pending_mask & (1 << c) != 0)
            .expect("the granted core's own line is pending");
        if g.core != expected {
            out.push(Violation {
                kind: InvariantKind::ArbiterUnfair,
                check: CHECK,
                cycle: g.cycle,
                core: g.core,
                detail: format!(
                    "rotation broken: core {} granted while core {expected} was \
                     round-robin-first among pending lines {:#x}",
                    g.core, g.pending_mask
                ),
            });
        }
        for (c, wait) in waiting.iter_mut().enumerate().take(num_cores) {
            if c == g.core {
                *wait = 0;
            } else if g.pending_mask & (1 << c) != 0 {
                *wait += 1;
                if *wait == num_cores + 1 {
                    out.push(Violation {
                        kind: InvariantKind::ArbiterUnfair,
                        check: CHECK,
                        cycle: g.cycle,
                        core: c,
                        detail: format!(
                            "core {c} starved: pending across {} consecutive grants \
                             on a {num_cores}-core machine",
                            *wait
                        ),
                    });
                }
            } else {
                *wait = 0;
            }
        }
        cursor = (g.core + 1) % num_cores;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(seq: u64, core: usize, region: u64, cycle: u64) -> DrainGrant {
        DrainGrant {
            seq,
            core,
            region,
            cycle,
            outstanding_at_grant: 0,
            pending_mask: 1 << core,
        }
    }

    fn granted(core: usize, pending: &[usize]) -> DrainGrant {
        DrainGrant {
            seq: 0,
            core,
            region: 1,
            cycle: 0,
            outstanding_at_grant: 0,
            pending_mask: pending.iter().fold(0, |m, &c| m | (1 << c)),
        }
    }

    #[test]
    fn clean_log_passes() {
        let log = [
            grant(0, 0, 1, 10),
            grant(1, 1, 1, 11),
            grant(2, 0, 2, 30),
            grant(3, 1, 2, 30),
        ];
        assert!(check_drain_log(&log, 2, 2).is_empty());
    }

    #[test]
    fn swapped_sequence_is_flagged() {
        let log = [grant(1, 0, 1, 10), grant(0, 1, 1, 9)];
        let v = check_drain_log(&log, 2, 1);
        assert!(v
            .iter()
            .any(|v| v.kind == InvariantKind::CrossCoreDrainOrder));
    }

    #[test]
    fn port_overcommit_is_flagged() {
        let log = [grant(0, 0, 1, 5), grant(1, 1, 1, 5)];
        let v = check_drain_log(&log, 2, 1);
        assert!(
            v.iter().any(|v| v.detail.contains("port width")),
            "got {v:?}"
        );
    }

    #[test]
    fn regressing_region_is_flagged() {
        let log = [grant(0, 0, 2, 5), grant(1, 0, 2, 9)];
        let v = check_drain_log(&log, 1, 1);
        assert!(v
            .iter()
            .any(|v| v.kind == InvariantKind::CrossCoreDrainOrder));
    }

    #[test]
    fn in_flight_stores_are_flagged() {
        let mut g = grant(0, 0, 1, 5);
        g.outstanding_at_grant = 3;
        let v = check_drain_log(&[g], 1, 1);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, InvariantKind::PersistBeforeDependence);
    }

    #[test]
    fn unknown_core_is_flagged() {
        let v = check_drain_log(&[grant(0, 7, 1, 5)], 2, 1);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn rotating_grants_are_fair() {
        // Contended port served in ring order: 0 → 1 → 2 → wrap to 0.
        let log = [
            granted(0, &[0, 1, 2]),
            granted(1, &[1, 2]),
            granted(2, &[0, 2]),
            granted(0, &[0]),
        ];
        assert!(check_arbiter_fairness(&log, 3).is_empty());
    }

    #[test]
    fn uncontended_grants_are_trivially_fair() {
        // A single requester is always round-robin-first.
        let log = [granted(2, &[2]), granted(0, &[0]), granted(2, &[2])];
        assert!(check_arbiter_fairness(&log, 3).is_empty());
    }

    #[test]
    fn biased_port_breaks_rotation() {
        // After core 0's grant the cursor sits at 1; with 1 and 0 both
        // pending, a fair port must pick 1 — picking 0 again is bias.
        let log = [granted(0, &[0, 1]), granted(0, &[0, 1])];
        let v = check_arbiter_fairness(&log, 2);
        assert!(
            v.iter()
                .any(|v| v.kind == InvariantKind::ArbiterUnfair
                    && v.detail.contains("rotation broken")),
            "got {v:?}"
        );
    }

    #[test]
    fn grant_without_request_is_flagged() {
        let log = [granted(1, &[0])];
        let v = check_arbiter_fairness(&log, 2);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("without a pending request"));
    }

    #[test]
    fn starved_core_is_flagged() {
        // Core 3 requests forever while the port ping-pongs between 0
        // and 1: after more than `num_cores` grants it is starved.
        let log: Vec<DrainGrant> = (0..8).map(|i| granted(i % 2, &[0, 1, 3])).collect();
        let v = check_arbiter_fairness(&log, 4);
        assert!(
            v.iter()
                .any(|v| v.core == 3 && v.detail.contains("starved")),
            "got {v:?}"
        );
    }

    #[test]
    fn wide_machines_are_not_judged() {
        assert!(check_arbiter_fairness(&[granted(1, &[0])], 65).is_empty());
    }
}
