//! End-to-end tests of the shared-memory multi-core machine: shared-state
//! DRF workloads, cross-core persist ordering, whole-machine failure and
//! recovery, and the mutation self-tests of the machine-level validators.

use ppa_core::verify::InvariantKind;
use ppa_sim::SystemConfig;
use ppa_smp::{ArbiterFault, MachineCheckpoint, SmpSystem};
use ppa_workloads::shared;

fn machine(app: &str, threads: usize, len: usize, cfg: SystemConfig) -> SmpSystem {
    let app = shared::by_name(app).expect("known shared workload");
    let cfg = cfg.with_threads(threads);
    SmpSystem::new(cfg, app.generate_threads(len, 1, threads))
}

#[test]
fn every_shared_workload_completes_consistently() {
    for app in shared::all() {
        let sys = machine(app.name, 4, 1_500, SystemConfig::ppa());
        let report = sys.run();
        assert_eq!(report.committed, 4 * 1_500, "{}", app.name);
        assert!(report.consistent, "{} left NVM inconsistent", app.name);
        assert!(
            report.drain_grants > 0,
            "{} never exercised the persist arbiter",
            app.name
        );
    }
}

#[test]
fn baseline_machine_needs_no_arbitration() {
    let report = machine("counters", 4, 1_500, SystemConfig::baseline()).run();
    assert_eq!(report.committed, 4 * 1_500);
    assert_eq!(report.drain_grants, 0, "baseline has no sync regions");
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let sys = machine("barrier", 4, 1_200, SystemConfig::ppa());
        let r = sys.run();
        (r.cycles, r.committed, r.drain_grants)
    };
    assert_eq!(run(), run());
}

#[test]
fn drain_grants_serialize_sync_regions_round_robin() {
    let mut sys = machine("counters", 4, 2_000, SystemConfig::ppa());
    while !sys.is_finished() {
        sys.step();
    }
    let log = sys.drain_log();
    assert!(
        log.len() >= 8,
        "expected plenty of grants, got {}",
        log.len()
    );
    // Every core's drains are certified, in increasing region order.
    for core in 0..4 {
        let regions: Vec<u64> = log
            .iter()
            .filter(|g| g.core == core)
            .map(|g| g.region)
            .collect();
        assert!(!regions.is_empty(), "core {core} never granted");
        assert!(regions.windows(2).all(|w| w[0] < w[1]));
    }
    assert!(sys.validate().is_empty(), "clean run must validate clean");
}

#[test]
fn clean_machine_validates_clean_at_any_point() {
    let mut sys = machine("halo", 2, 1_500, SystemConfig::ppa());
    for checkpoint_at in [300, 900, 1_500] {
        sys.run_to(checkpoint_at);
        assert!(
            sys.validate().is_empty(),
            "violations at cycle {checkpoint_at}"
        );
    }
}

#[test]
fn whole_machine_failure_and_recovery_is_consistent() {
    for app in ["counters", "prodcons"] {
        let mut sys = machine(app, 2, 1_200, SystemConfig::ppa());
        sys.run_to(2_000);
        let ckpt = sys.jit_checkpoint();
        sys.power_failure();
        sys.recover(&ckpt);
        assert!(
            sys.consistent(),
            "{app}: replay must restore consistency at the failure point"
        );
        let report = sys.run();
        assert_eq!(report.committed, 2 * 1_200, "{app}");
        assert!(report.consistent, "{app}");
    }
}

#[test]
fn machine_checkpoint_survives_serialization_but_not_tearing() {
    let mut sys = machine("barrier", 2, 1_000, SystemConfig::ppa());
    sys.run_to(1_500);
    let ckpt = sys.jit_checkpoint();
    let words = ckpt.serialize();
    assert_eq!(MachineCheckpoint::deserialize(&words), Some(ckpt));
    for cut in 0..words.len() {
        assert_eq!(
            MachineCheckpoint::deserialize(&words[..cut]),
            None,
            "torn prefix of {cut} words must be rejected"
        );
    }
}

#[test]
fn unordered_grants_are_caught() {
    let mut sys = machine("counters", 4, 2_000, SystemConfig::ppa());
    sys.inject_arbiter_fault(ArbiterFault::UnorderedGrants);
    while !sys.is_finished() {
        sys.step();
    }
    let violations = sys.validate();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == InvariantKind::CrossCoreDrainOrder),
        "pairwise-swapped grant log must break the total order: {violations:?}"
    );
}

#[test]
fn phantom_grants_are_caught() {
    let mut sys = machine("counters", 4, 2_000, SystemConfig::ppa());
    sys.inject_arbiter_fault(ArbiterFault::PhantomGrant);
    while !sys.is_finished() {
        sys.step();
    }
    let violations = sys.validate();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == InvariantKind::PersistBeforeDependence),
        "mid-region certificates must be caught: {violations:?}"
    );
}

#[test]
fn duplicated_image_entries_are_caught() {
    let mut sys = machine("counters", 2, 1_500, SystemConfig::ppa());
    sys.inject_arbiter_fault(ArbiterFault::DuplicateImageEntry);
    // Position the failure where core 0's CSQ is non-empty so the
    // duplicated entry actually lands in core 1's image.
    let mut at = None;
    for cycle in (200..4_000).step_by(100) {
        sys.run_to(cycle);
        if !sys.jit_checkpoint().images[0].csq.is_empty() {
            at = Some(cycle);
            break;
        }
    }
    let at = at.expect("some checkpoint has a duplicated entry");
    let violations = sys.validate();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == InvariantKind::RecoveryImageOverlap),
        "overlapping recovery images at cycle {at} must be caught: {violations:?}"
    );
}
