use crate::reg::ArchReg;
use std::fmt;

/// Branch flavours. ReplayCache's compiler cannot keep store-integrity
/// regions alive across calls and returns (paper §2.4: "function
/// calls/loops" limit its region size), so the trace distinguishes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional or unconditional intra-procedural branch.
    Jump,
    /// Function call.
    Call,
    /// Function return.
    Ret,
}

/// Synchronisation primitive kinds. Under PPA every one of these is a
/// region boundary (paper §6): the core may not commit it until all stores
/// of the current region are persisted and the CSQ is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// Memory fence (`mfence`/`sfence`).
    Fence,
    /// Atomic read-modify-write (`lock`-prefixed instruction).
    AtomicRmw,
    /// Lock acquire — an atomic that may additionally spin/contend.
    LockAcquire,
    /// Lock release — a plain store with release semantics plus ordering.
    LockRelease,
}

/// A memory reference carried by a load, store, or `clwb` micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Byte address of the access.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4, or 8).
    pub size: u8,
    /// For stores: the value written (the simulator replays these values
    /// during power-failure recovery). Ignored for loads.
    pub value: u64,
}

impl MemRef {
    /// Creates a memory reference.
    pub fn new(addr: u64, size: u8, value: u64) -> Self {
        MemRef { addr, size, value }
    }
}

/// Micro-op kinds with their execution-latency classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// Single-cycle integer ALU operation (add, sub, logic, shifts).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Floating-point add/sub/compare.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / sqrt.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Control transfer.
    Branch(BranchKind),
    /// Cache-line write-back (`clwb`). Only produced by the ReplayCache
    /// pass; occupies a store-queue entry (paper Table 1).
    Clwb,
    /// Synchronisation primitive.
    Sync(SyncKind),
    /// A persist barrier marking a region boundary in the *trace*. Only the
    /// software baselines (ReplayCache, Capri) carry these; PPA forms its
    /// regions dynamically in hardware.
    PersistBarrier,
    /// No-op (pipeline filler; commits without resources).
    Nop,
}

impl UopKind {
    /// Fixed execution latency in cycles, excluding memory access time.
    /// Loads/stores get their memory latency from the cache hierarchy.
    pub const fn exec_latency(self) -> u32 {
        match self {
            UopKind::IntAlu | UopKind::Nop | UopKind::PersistBarrier => 1,
            UopKind::Branch(_) => 1,
            UopKind::IntMul => 3,
            UopKind::IntDiv => 12,
            UopKind::FpAlu => 4,
            UopKind::FpMul => 4,
            UopKind::FpDiv => 14,
            UopKind::Load | UopKind::Store | UopKind::Clwb => 1,
            UopKind::Sync(_) => 2,
        }
    }

    /// Whether this kind accesses memory through the data cache.
    pub const fn is_mem(self) -> bool {
        matches!(self, UopKind::Load | UopKind::Store | UopKind::Clwb)
    }

    /// Whether this is a store (writes memory at commit).
    pub const fn is_store(self) -> bool {
        matches!(self, UopKind::Store)
    }

    /// Whether this kind needs a store-queue entry. Note `clwb` does (paper
    /// Table 1, footnote 5) — this is one of the two reasons ReplayCache is
    /// slow on server-class cores.
    pub const fn needs_sq_entry(self) -> bool {
        matches!(self, UopKind::Store | UopKind::Clwb)
    }

    /// Whether this kind needs a load-queue entry.
    pub const fn needs_lq_entry(self) -> bool {
        matches!(self, UopKind::Load)
    }

    /// Whether PPA must treat this micro-op as a region boundary regardless
    /// of free-list pressure (paper §6: synchronisation primitives).
    pub const fn is_sync_boundary(self) -> bool {
        matches!(self, UopKind::Sync(_))
    }
}

impl fmt::Display for UopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UopKind::IntAlu => "ialu",
            UopKind::IntMul => "imul",
            UopKind::IntDiv => "idiv",
            UopKind::FpAlu => "falu",
            UopKind::FpMul => "fmul",
            UopKind::FpDiv => "fdiv",
            UopKind::Load => "ld",
            UopKind::Store => "st",
            UopKind::Branch(BranchKind::Jump) => "br",
            UopKind::Branch(BranchKind::Call) => "call",
            UopKind::Branch(BranchKind::Ret) => "ret",
            UopKind::Clwb => "clwb",
            UopKind::Sync(SyncKind::Fence) => "fence",
            UopKind::Sync(SyncKind::AtomicRmw) => "rmw",
            UopKind::Sync(SyncKind::LockAcquire) => "lock",
            UopKind::Sync(SyncKind::LockRelease) => "unlock",
            UopKind::PersistBarrier => "pbar",
            UopKind::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// One micro-op on the committed path of a program.
///
/// Traces contain only committed instructions (the PPA mechanism never
/// touches wrong-path state: §4 "PPA does not save or recover architectural
/// status related to speculation"). Front-end effects of misspeculation are
/// modelled statistically by the workload generators as fetch bubbles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uop {
    /// Program counter of the parent instruction.
    pub pc: u64,
    /// Operation kind.
    pub kind: UopKind,
    /// Source architectural registers (up to three; `None`s are trailing).
    pub srcs: [Option<ArchReg>; 3],
    /// Destination architectural register, if the op defines one.
    pub dst: Option<ArchReg>,
    /// Memory reference for loads/stores/`clwb`.
    pub mem: Option<MemRef>,
}

impl Uop {
    /// Creates a micro-op with no register operands or memory reference.
    pub fn new(pc: u64, kind: UopKind) -> Self {
        Uop {
            pc,
            kind,
            srcs: [None; 3],
            dst: None,
            mem: None,
        }
    }

    /// Adds source registers (consuming builder style).
    ///
    /// # Panics
    ///
    /// Panics if more than three sources are supplied in total.
    pub fn with_srcs(mut self, srcs: &[ArchReg]) -> Self {
        let first_free = self.srcs.iter().position(Option::is_none).unwrap_or(3);
        for (slot, &r) in (first_free..).zip(srcs) {
            assert!(slot < 3, "a micro-op has at most three sources");
            self.srcs[slot] = Some(r);
        }
        self
    }

    /// Sets the destination register.
    pub fn with_dst(mut self, dst: ArchReg) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Sets the memory reference.
    pub fn with_mem(mut self, mem: MemRef) -> Self {
        self.mem = Some(mem);
        self
    }

    /// Whether this op defines (renames) a new architectural register value.
    /// This is what consumes a physical register at the rename stage — the
    /// paper observes only ~30% of instructions do.
    pub fn defines_reg(&self) -> bool {
        self.dst.is_some()
    }

    /// Iterator over the op's source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// For a store, the register whose value is being stored: by convention
    /// the *first* source operand (the data register). The paper's MaskReg
    /// optimisation (§4.2 footnote 10) keeps only the data register.
    pub fn store_data_reg(&self) -> Option<ArchReg> {
        if self.kind.is_store() {
            self.srcs[0]
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::ArchReg;

    #[test]
    fn latencies_are_positive() {
        for k in [
            UopKind::IntAlu,
            UopKind::IntMul,
            UopKind::IntDiv,
            UopKind::FpAlu,
            UopKind::FpMul,
            UopKind::FpDiv,
            UopKind::Load,
            UopKind::Store,
            UopKind::Branch(BranchKind::Jump),
            UopKind::Clwb,
            UopKind::Sync(SyncKind::Fence),
            UopKind::PersistBarrier,
            UopKind::Nop,
        ] {
            assert!(k.exec_latency() >= 1, "{k} must take at least a cycle");
        }
    }

    #[test]
    fn clwb_occupies_store_queue_but_is_not_a_store() {
        assert!(UopKind::Clwb.needs_sq_entry());
        assert!(!UopKind::Clwb.is_store());
        assert!(UopKind::Clwb.is_mem());
    }

    #[test]
    fn sync_ops_are_region_boundaries() {
        assert!(UopKind::Sync(SyncKind::AtomicRmw).is_sync_boundary());
        assert!(!UopKind::Store.is_sync_boundary());
    }

    #[test]
    fn with_srcs_appends() {
        let u = Uop::new(0, UopKind::IntAlu)
            .with_srcs(&[ArchReg::int(1)])
            .with_srcs(&[ArchReg::int(2), ArchReg::int(3)]);
        assert_eq!(u.sources().count(), 3);
    }

    #[test]
    #[should_panic(expected = "at most three")]
    fn too_many_sources_panics() {
        Uop::new(0, UopKind::IntAlu).with_srcs(&[
            ArchReg::int(0),
            ArchReg::int(1),
            ArchReg::int(2),
            ArchReg::int(3),
        ]);
    }

    #[test]
    fn store_data_reg_is_first_source() {
        let u = Uop::new(0, UopKind::Store)
            .with_srcs(&[ArchReg::int(5), ArchReg::int(6)])
            .with_mem(MemRef::new(0x100, 8, 7));
        assert_eq!(u.store_data_reg(), Some(ArchReg::int(5)));
        let l = Uop::new(0, UopKind::Load).with_srcs(&[ArchReg::int(5)]);
        assert_eq!(l.store_data_reg(), None);
    }
}
