//! Micro-op ISA and instruction traces for the PPA simulator.
//!
//! The PPA paper evaluates an x86_64 out-of-order core, but its mechanism is
//! ISA-agnostic: everything it adds happens at the rename and commit stages
//! and in the L1D write-back path. This crate therefore models a small,
//! explicit micro-op vocabulary — integer/floating-point ALU operations,
//! loads, stores, branches, synchronisation primitives, and the `clwb`
//! cache-line write-back the ReplayCache baseline inserts — together with
//! the committed-path instruction *traces* the simulator executes.
//!
//! It also hosts the "compiler" passes of the two software baselines:
//!
//! * [`transform::replaycache`] — ReplayCache's (MICRO '21) store-integrity
//!   region formation over the 16/32 architectural registers, plus the
//!   `clwb` after every store (paper §2.4 and Figure 1);
//! * [`transform::capri`] — Capri's (HPDC '22) redo-buffer-bounded region
//!   formation (~29 instructions per region, paper §7.5).
//! * [`transform::AutoPersistPass`] — dependence-driven flush/fence
//!   insertion derived from the static persist-dependence graph in
//!   [`depgraph`], the minimal software placement the comparisons are
//!   measured against.
//!
//! PPA itself needs *no* pass: its regions are formed dynamically in
//! hardware, which is the paper's central claim.
//!
//! # Examples
//!
//! ```
//! use ppa_isa::{ArchReg, Trace, TraceBuilder, UopKind};
//!
//! let mut b = TraceBuilder::new("demo");
//! let r0 = ArchReg::int(0);
//! b.alu(r0, &[r0]);
//! b.store(r0, 0x1000, 42);
//! let trace: Trace = b.build();
//! assert_eq!(trace.len(), 2);
//! assert!(matches!(trace[1].kind, UopKind::Store));
//! ```

pub mod depgraph;
mod disasm;
mod reg;
mod trace;
pub mod transform;
mod uop;

pub use disasm::{disasm_uop, Disassembly};
pub use reg::{ArchReg, RegClass, NUM_FP_ARCH_REGS, NUM_INT_ARCH_REGS};
pub use trace::{Trace, TraceBuilder, TraceMix};
pub use uop::{BranchKind, MemRef, SyncKind, Uop, UopKind};

/// Cache-line size in bytes, fixed at 64 B as in Table 2 of the paper.
pub const CACHE_LINE_BYTES: u64 = 64;

/// Returns the cache-line-aligned address containing `addr`.
///
/// # Examples
///
/// ```
/// assert_eq!(ppa_isa::line_of(0x1234), 0x1200);
/// ```
pub const fn line_of(addr: u64) -> u64 {
    addr & !(CACHE_LINE_BYTES - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_masks_low_bits() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(0xffff_ffff_ffff_ffff), 0xffff_ffff_ffff_ffc0);
    }
}
