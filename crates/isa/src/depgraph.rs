//! Static persist-dependence graph over a committed-path [`Trace`].
//!
//! The graph makes persist ordering a *dataflow* property rather than a
//! peephole one: its nodes are the persist-relevant micro-ops (stores,
//! loads, `clwb`s, persist barriers, synchronisation primitives) and its
//! edges capture the three ways one micro-op's durability can constrain
//! another's:
//!
//! * **Same-line persist order** — stores and `clwb`s to one cache line
//!   drain to NVM in trace order, so consecutive accesses to a line chain
//!   together.
//! * **Register dataflow** — a load observes a stored value and the value
//!   flows through register def-use into a later store. If the later store
//!   becomes durable while the earlier one is still volatile, recovery can
//!   observe an effect without its cause.
//! * **Recovery observability** — a post-crash read of a word can observe
//!   the last store to that word out of prefix order unless the store was
//!   sealed (flushed and fenced) first.
//!
//! The derived [`PersistDependence`] pairs are what the `AutoPersist`
//! transform ([`crate::transform::AutoPersistPass`]) and the `ppa-verify`
//! analysis engine consume: each pair names the source store, the load
//! that observed it, the intermediate register-defining hops, and the
//! dependent store — the *why* behind a required flush/fence, not just the
//! position.
//!
//! Everything here is plain `std` (this crate has no dependencies), so the
//! verification crate can reuse the exact same model the transform used to
//! place its flushes.

use crate::line_of;
use crate::reg::ArchReg;
use crate::trace::Trace;
use crate::uop::UopKind;
use std::collections::{HashMap, HashSet};

/// Persistent-memory word granularity: recovery compares 8-byte words.
pub const WORD_BYTES: u64 = 8;

/// The 8-byte word an address falls into.
pub const fn word_of(addr: u64) -> u64 {
    addr & !(WORD_BYTES - 1)
}

/// Maximum register-dataflow hops recorded per dependence path. Longer
/// chains are truncated (the endpoints are always exact); the cap keeps the
/// graph linear in trace length.
pub const MAX_PATH_HOPS: usize = 6;

/// Kind of a persist-relevant node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepNodeKind {
    /// A store, with the word and cache line it writes.
    Store {
        /// 8-byte word written.
        word: u64,
        /// Cache line written.
        line: u64,
    },
    /// A load, with the word it reads.
    Load {
        /// 8-byte word read.
        word: u64,
    },
    /// A `clwb`, with the line it flushes.
    Clwb {
        /// Cache line flushed.
        line: u64,
    },
    /// A persist barrier (fences all earlier flushes).
    Barrier,
    /// A synchronisation primitive (cross-thread publication point).
    Sync,
}

/// One node of the dependence graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepNode {
    /// Trace position of the micro-op.
    pub pos: usize,
    /// Program counter of the micro-op.
    pub pc: u64,
    /// What the node is.
    pub kind: DepNodeKind,
}

/// Kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepEdgeKind {
    /// Persist order between consecutive accesses to one cache line.
    SameLine,
    /// Register dataflow from a load of persistent state into a store.
    DataFlow,
    /// A read that recovery could satisfy from the preceding store.
    RecoveryObservability,
}

/// A directed edge between two nodes (indices into [`PersistDepGraph::nodes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Why the edge exists.
    pub kind: DepEdgeKind,
}

/// A persist-dependence pair: store `to_store`'s data derives from store
/// `from_store`'s value via the load at `via_load` (and the register-defining
/// hops in between). Crash consistency requires `from_store` to be sealed
/// (flushed *and* fenced) before `to_store` commits; otherwise recovery can
/// observe the effect without the cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistDependence {
    /// Trace position of the source store (the "cause").
    pub from_store: usize,
    /// Trace position of the load that observed the source store's word.
    pub via_load: usize,
    /// Trace positions of intermediate register-defining micro-ops, oldest
    /// first (truncated to [`MAX_PATH_HOPS`]).
    pub hops: Vec<usize>,
    /// Trace position of the dependent store (the "effect").
    pub to_store: usize,
}

impl PersistDependence {
    /// The full dependence path as trace positions: source store, observing
    /// load, register hops, dependent store.
    pub fn path(&self) -> Vec<usize> {
        let mut p = Vec::with_capacity(3 + self.hops.len());
        p.push(self.from_store);
        p.push(self.via_load);
        p.extend_from_slice(&self.hops);
        p.push(self.to_store);
        p
    }
}

/// Node/edge census of a graph, for summaries and metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepGraphSummary {
    /// Store nodes.
    pub stores: usize,
    /// Load nodes.
    pub loads: usize,
    /// `clwb` nodes.
    pub clwbs: usize,
    /// Barrier nodes.
    pub barriers: usize,
    /// Sync nodes.
    pub syncs: usize,
    /// Same-line persist-order edges.
    pub same_line_edges: usize,
    /// Register-dataflow edges (load → dependent store).
    pub dataflow_edges: usize,
    /// Recovery-observability edges (store → later load of the word).
    pub observability_edges: usize,
    /// Distinct persist-dependence pairs.
    pub dependence_pairs: usize,
}

/// Per-register taint tracked while building the graph: where the value in
/// the register ultimately came from, if it derives from a store observed
/// through a load.
#[derive(Clone)]
struct Taint {
    from_store: usize,
    via_load: usize,
    via_load_node: usize,
    hops: Vec<usize>,
}

/// The static persist-dependence graph of one trace.
///
/// # Examples
///
/// ```
/// use ppa_isa::{ArchReg, TraceBuilder};
/// use ppa_isa::depgraph::PersistDepGraph;
///
/// // A write-ahead-log shape: the payload store derives from the log entry.
/// let mut b = TraceBuilder::new("wal");
/// b.store(ArchReg::int(0), 0x100, 7); // log entry
/// b.load(ArchReg::int(1), 0x100); // recovery code re-reads it
/// b.alu(ArchReg::int(2), &[ArchReg::int(1)]);
/// b.store(ArchReg::int(2), 0x200, 7); // payload derived from the entry
/// let g = PersistDepGraph::build(&b.build());
/// let pairs = g.dependence_pairs();
/// assert_eq!(pairs.len(), 1);
/// assert_eq!(pairs[0].from_store, 0);
/// assert_eq!(pairs[0].to_store, 3);
/// assert_eq!(pairs[0].path(), vec![0, 1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct PersistDepGraph {
    nodes: Vec<DepNode>,
    edges: Vec<DepEdge>,
    pairs: Vec<PersistDependence>,
}

impl PersistDepGraph {
    /// Builds the graph in one pass over the trace.
    pub fn build(trace: &Trace) -> Self {
        let mut nodes: Vec<DepNode> = Vec::new();
        let mut edges: Vec<DepEdge> = Vec::new();
        let mut pairs: Vec<PersistDependence> = Vec::new();
        // Last store/clwb node per cache line, for SameLine chains.
        let mut last_line_node: HashMap<u64, usize> = HashMap::new();
        // Last store per word: (node index, trace position).
        let mut last_store_word: HashMap<u64, (usize, usize)> = HashMap::new();
        // Per-register taint.
        let mut taint: Vec<Option<Taint>> = vec![None; ArchReg::flat_count()];
        // Dedup (from_store, to_store) pairs.
        let mut seen_pairs: HashSet<(usize, usize)> = HashSet::new();

        for (pos, u) in trace.iter().enumerate() {
            match u.kind {
                UopKind::Store => {
                    let mem = match u.mem {
                        Some(m) => m,
                        None => continue,
                    };
                    let line = line_of(mem.addr);
                    let word = word_of(mem.addr);
                    let node = nodes.len();
                    nodes.push(DepNode {
                        pos,
                        pc: u.pc,
                        kind: DepNodeKind::Store { word, line },
                    });
                    if let Some(prev) = last_line_node.insert(line, node) {
                        edges.push(DepEdge {
                            from: prev,
                            to: node,
                            kind: DepEdgeKind::SameLine,
                        });
                    }
                    // Dataflow edges and dependence pairs from tainted sources.
                    for r in u.sources() {
                        if let Some(t) = &taint[r.flat_index()] {
                            if seen_pairs.insert((t.from_store, pos)) {
                                edges.push(DepEdge {
                                    from: t.via_load_node,
                                    to: node,
                                    kind: DepEdgeKind::DataFlow,
                                });
                                pairs.push(PersistDependence {
                                    from_store: t.from_store,
                                    via_load: t.via_load,
                                    hops: t.hops.clone(),
                                    to_store: pos,
                                });
                            }
                        }
                    }
                    last_store_word.insert(word, (node, pos));
                }
                UopKind::Load => {
                    let mem = match u.mem {
                        Some(m) => m,
                        None => continue,
                    };
                    let word = word_of(mem.addr);
                    let node = nodes.len();
                    nodes.push(DepNode {
                        pos,
                        pc: u.pc,
                        kind: DepNodeKind::Load { word },
                    });
                    let new_taint = last_store_word.get(&word).map(|&(snode, spos)| {
                        edges.push(DepEdge {
                            from: snode,
                            to: node,
                            kind: DepEdgeKind::RecoveryObservability,
                        });
                        Taint {
                            from_store: spos,
                            via_load: pos,
                            via_load_node: node,
                            hops: Vec::new(),
                        }
                    });
                    if let Some(d) = u.dst {
                        taint[d.flat_index()] = new_taint;
                    }
                }
                UopKind::Clwb => {
                    let mem = match u.mem {
                        Some(m) => m,
                        None => continue,
                    };
                    let line = line_of(mem.addr);
                    let node = nodes.len();
                    nodes.push(DepNode {
                        pos,
                        pc: u.pc,
                        kind: DepNodeKind::Clwb { line },
                    });
                    if let Some(prev) = last_line_node.insert(line, node) {
                        edges.push(DepEdge {
                            from: prev,
                            to: node,
                            kind: DepEdgeKind::SameLine,
                        });
                    }
                }
                UopKind::PersistBarrier => {
                    nodes.push(DepNode {
                        pos,
                        pc: u.pc,
                        kind: DepNodeKind::Barrier,
                    });
                }
                UopKind::Sync(_) => {
                    nodes.push(DepNode {
                        pos,
                        pc: u.pc,
                        kind: DepNodeKind::Sync,
                    });
                }
                _ => {
                    // Register-defining compute op: propagate taint from the
                    // first tainted source; a def from untainted sources
                    // kills the destination's taint.
                    if let Some(d) = u.dst {
                        let mut new_taint: Option<Taint> = None;
                        for r in u.sources() {
                            if let Some(t) = &taint[r.flat_index()] {
                                let mut t = t.clone();
                                if t.hops.len() < MAX_PATH_HOPS {
                                    t.hops.push(pos);
                                }
                                new_taint = Some(t);
                                break;
                            }
                        }
                        taint[d.flat_index()] = new_taint;
                    }
                }
            }
        }

        PersistDepGraph {
            nodes,
            edges,
            pairs,
        }
    }

    /// The graph's nodes, in trace order.
    pub fn nodes(&self) -> &[DepNode] {
        &self.nodes
    }

    /// The graph's edges, in discovery order.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Persist-dependence pairs, deduplicated by (source, dependent) store,
    /// in dependent-store order.
    pub fn dependence_pairs(&self) -> &[PersistDependence] {
        &self.pairs
    }

    /// Node/edge census.
    pub fn summary(&self) -> DepGraphSummary {
        let mut s = DepGraphSummary {
            dependence_pairs: self.pairs.len(),
            ..DepGraphSummary::default()
        };
        for n in &self.nodes {
            match n.kind {
                DepNodeKind::Store { .. } => s.stores += 1,
                DepNodeKind::Load { .. } => s.loads += 1,
                DepNodeKind::Clwb { .. } => s.clwbs += 1,
                DepNodeKind::Barrier => s.barriers += 1,
                DepNodeKind::Sync => s.syncs += 1,
            }
        }
        for e in &self.edges {
            match e.kind {
                DepEdgeKind::SameLine => s.same_line_edges += 1,
                DepEdgeKind::DataFlow => s.dataflow_edges += 1,
                DepEdgeKind::RecoveryObservability => s.observability_edges += 1,
            }
        }
        s
    }
}

/// Seal bookkeeping for one store: the epoch-persistency events that make
/// it durable. A store is *sealed* once a `clwb` of its line commits after
/// it and a persist barrier commits after that `clwb`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSeal {
    /// Trace position of the store.
    pub pos: usize,
    /// Program counter of the store.
    pub pc: u64,
    /// Cache line written.
    pub line: u64,
    /// 8-byte word written.
    pub word: u64,
    /// First `clwb` of the store's line strictly after the store.
    pub clwb_pos: Option<usize>,
    /// First persist barrier strictly after that `clwb` — the position at
    /// which the store is durable. `None` means the store is never sealed.
    pub barrier_pos: Option<usize>,
}

impl StoreSeal {
    /// Whether the store is sealed anywhere in the trace.
    pub fn sealed(&self) -> bool {
        self.barrier_pos.is_some()
    }

    /// Whether the store is sealed strictly before trace position `pos`.
    pub fn sealed_before(&self, pos: usize) -> bool {
        self.barrier_pos.is_some_and(|b| b < pos)
    }
}

/// Computes the seal position of every store in the trace.
///
/// # Examples
///
/// ```
/// use ppa_isa::{ArchReg, MemRef, TraceBuilder, Uop, UopKind};
/// use ppa_isa::depgraph::store_seals;
///
/// let mut b = TraceBuilder::new("t");
/// b.store(ArchReg::int(0), 0x100, 1);
/// b.push(Uop::new(0, UopKind::Clwb).with_mem(MemRef::new(0x100, 8, 0)));
/// b.push(Uop::new(0, UopKind::PersistBarrier));
/// let seals = store_seals(&b.build());
/// assert_eq!(seals[0].clwb_pos, Some(1));
/// assert_eq!(seals[0].barrier_pos, Some(2));
/// assert!(seals[0].sealed());
/// ```
pub fn store_seals(trace: &Trace) -> Vec<StoreSeal> {
    let mut barriers: Vec<usize> = Vec::new();
    let mut clwbs_by_line: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut stores: Vec<StoreSeal> = Vec::new();
    for (pos, u) in trace.iter().enumerate() {
        match u.kind {
            UopKind::Store => {
                if let Some(m) = u.mem {
                    stores.push(StoreSeal {
                        pos,
                        pc: u.pc,
                        line: line_of(m.addr),
                        word: word_of(m.addr),
                        clwb_pos: None,
                        barrier_pos: None,
                    });
                }
            }
            UopKind::Clwb => {
                if let Some(m) = u.mem {
                    clwbs_by_line.entry(line_of(m.addr)).or_default().push(pos);
                }
            }
            UopKind::PersistBarrier => barriers.push(pos),
            _ => {}
        }
    }
    for s in &mut stores {
        let clwb = clwbs_by_line.get(&s.line).and_then(|v| {
            let i = v.partition_point(|&p| p <= s.pos);
            v.get(i).copied()
        });
        s.clwb_pos = clwb;
        s.barrier_pos = clwb.and_then(|c| {
            let i = barriers.partition_point(|&p| p <= c);
            barriers.get(i).copied()
        });
    }
    stores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use crate::uop::{MemRef, SyncKind, Uop};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    #[test]
    fn word_of_masks_low_bits() {
        assert_eq!(word_of(0x107), 0x100);
        assert_eq!(word_of(0x108), 0x108);
    }

    #[test]
    fn nodes_cover_persist_relevant_kinds_only() {
        let mut b = TraceBuilder::new("t");
        b.alu(r(0), &[]);
        b.store(r(0), 0x100, 1);
        b.load(r(1), 0x100);
        b.sync(SyncKind::Fence);
        b.push(Uop::new(0, UopKind::Clwb).with_mem(MemRef::new(0x100, 8, 0)));
        b.push(Uop::new(0, UopKind::PersistBarrier));
        b.nop();
        let g = PersistDepGraph::build(&b.build());
        let s = g.summary();
        assert_eq!(s.stores, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.clwbs, 1);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.syncs, 1);
        assert_eq!(g.nodes().len(), 5);
    }

    #[test]
    fn same_line_edges_chain_stores_and_clwbs() {
        let mut b = TraceBuilder::new("t");
        b.store(r(0), 0x100, 1);
        b.store(r(0), 0x108, 2); // same line
        b.push(Uop::new(0, UopKind::Clwb).with_mem(MemRef::new(0x100, 8, 0)));
        b.store(r(0), 0x400, 3); // different line
        let g = PersistDepGraph::build(&b.build());
        let s = g.summary();
        assert_eq!(s.same_line_edges, 2, "st->st and st->clwb on line 0x100");
    }

    #[test]
    fn observability_edge_links_store_to_later_load() {
        let mut b = TraceBuilder::new("t");
        b.store(r(0), 0x100, 1);
        b.load(r(1), 0x100);
        b.load(r(2), 0x900); // never stored: no edge
        let g = PersistDepGraph::build(&b.build());
        assert_eq!(g.summary().observability_edges, 1);
        let e = g
            .edges()
            .iter()
            .find(|e| e.kind == DepEdgeKind::RecoveryObservability)
            .unwrap();
        assert_eq!(g.nodes()[e.from].pos, 0);
        assert_eq!(g.nodes()[e.to].pos, 1);
    }

    #[test]
    fn dataflow_pair_tracks_hops() {
        let mut b = TraceBuilder::new("t");
        b.store(r(0), 0x100, 7); // pos 0
        b.load(r(1), 0x100); // pos 1
        b.alu(r(2), &[r(1)]); // pos 2
        b.alu(r(3), &[r(2)]); // pos 3
        b.store(r(3), 0x200, 7); // pos 4
        let g = PersistDepGraph::build(&b.build());
        let pairs = g.dependence_pairs();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].path(), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.summary().dataflow_edges, 1);
    }

    #[test]
    fn overwriting_a_register_kills_taint() {
        let mut b = TraceBuilder::new("t");
        b.store(r(0), 0x100, 7);
        b.load(r(1), 0x100);
        b.alu(r(1), &[]); // overwrite with untainted value
        b.store(r(1), 0x200, 7);
        let g = PersistDepGraph::build(&b.build());
        assert!(g.dependence_pairs().is_empty());
    }

    #[test]
    fn load_of_unwritten_word_clears_taint() {
        let mut b = TraceBuilder::new("t");
        b.store(r(0), 0x100, 7);
        b.load(r(1), 0x100);
        b.load(r(1), 0x900); // reload from a word nothing stored to
        b.store(r(1), 0x200, 7);
        let g = PersistDepGraph::build(&b.build());
        assert!(g.dependence_pairs().is_empty());
    }

    #[test]
    fn duplicate_pairs_are_deduped() {
        let mut b = TraceBuilder::new("t");
        b.store(r(0), 0x100, 7);
        b.load(r(1), 0x100);
        b.load(r(2), 0x100);
        // Both sources carry the same (from, to) pair.
        let pc = 0;
        b.push(
            Uop::new(pc, UopKind::Store)
                .with_srcs(&[r(1), r(2)])
                .with_mem(MemRef::new(0x200, 8, 7)),
        );
        let g = PersistDepGraph::build(&b.build());
        assert_eq!(g.dependence_pairs().len(), 1);
    }

    #[test]
    fn hop_cap_truncates_long_chains() {
        let mut b = TraceBuilder::new("t");
        b.store(r(0), 0x100, 7);
        b.load(r(1), 0x100);
        for _ in 0..(MAX_PATH_HOPS + 4) {
            b.alu(r(1), &[r(1)]);
        }
        b.store(r(1), 0x200, 7);
        let g = PersistDepGraph::build(&b.build());
        let pairs = g.dependence_pairs();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].hops.len(), MAX_PATH_HOPS);
    }

    #[test]
    fn store_seals_require_clwb_then_barrier_in_order() {
        let mut b = TraceBuilder::new("t");
        b.store(r(0), 0x100, 1); // pos 0: sealed at 4
        b.store(r(0), 0x200, 2); // pos 1: clwb'd but never fenced
        b.push(Uop::new(0, UopKind::PersistBarrier)); // pos 2: too early for 0x200's clwb
        b.push(Uop::new(0, UopKind::Clwb).with_mem(MemRef::new(0x100, 8, 0))); // pos 3
        b.push(Uop::new(0, UopKind::PersistBarrier)); // pos 4
        b.push(Uop::new(0, UopKind::Clwb).with_mem(MemRef::new(0x200, 8, 0))); // pos 5
        b.store(r(0), 0x300, 3); // pos 6: never flushed
        let seals = store_seals(&b.build());
        assert_eq!(seals.len(), 3);
        assert_eq!(seals[0].clwb_pos, Some(3));
        assert_eq!(seals[0].barrier_pos, Some(4));
        assert!(seals[0].sealed_before(5));
        assert!(!seals[0].sealed_before(4));
        assert_eq!(seals[1].clwb_pos, Some(5));
        assert_eq!(seals[1].barrier_pos, None, "no barrier after the clwb");
        assert_eq!(seals[2].clwb_pos, None);
        assert!(!seals[2].sealed());
    }
}
