//! Human-readable trace disassembly, in the notation of the paper's
//! figures (`str r0, [100]`, persist barriers as `-- persist barrier --`).

use crate::trace::Trace;
use crate::uop::{BranchKind, SyncKind, Uop, UopKind};
use std::fmt;
use std::fmt::Write as _;

/// Formats one micro-op the way the paper's figures write instructions.
///
/// # Examples
///
/// ```
/// use ppa_isa::{disasm_uop, ArchReg, MemRef, Uop, UopKind};
///
/// let st = Uop::new(0x1000, UopKind::Store)
///     .with_srcs(&[ArchReg::int(0)])
///     .with_mem(MemRef::new(0x100, 8, 42));
/// assert_eq!(disasm_uop(&st), "str r0, [0x100] ; =42");
/// ```
pub fn disasm_uop(u: &Uop) -> String {
    let mut s = String::new();
    let srcs: Vec<String> = u.sources().map(|r| r.to_string()).collect();
    match u.kind {
        UopKind::Store => {
            let m = u.mem.expect("store has a memory reference");
            let data = srcs.first().cloned().unwrap_or_else(|| "?".into());
            let _ = write!(s, "str {data}, [{:#x}] ; ={}", m.addr, m.value);
        }
        UopKind::Load => {
            let m = u.mem.expect("load has a memory reference");
            let dst = u.dst.map(|d| d.to_string()).unwrap_or_else(|| "?".into());
            let _ = write!(s, "ldr {dst}, [{:#x}]", m.addr);
        }
        UopKind::Clwb => {
            let m = u.mem.expect("clwb has a memory reference");
            let _ = write!(s, "clwb [{:#x}]", m.addr);
        }
        UopKind::PersistBarrier => s.push_str("-- persist barrier --"),
        UopKind::Branch(BranchKind::Call) => s.push_str("call"),
        UopKind::Branch(BranchKind::Ret) => s.push_str("ret"),
        UopKind::Branch(BranchKind::Jump) => {
            let _ = write!(s, "b {}", srcs.join(", "));
        }
        UopKind::Sync(k) => {
            let name = match k {
                SyncKind::Fence => "fence",
                SyncKind::AtomicRmw => "lock rmw",
                SyncKind::LockAcquire => "lock acquire",
                SyncKind::LockRelease => "lock release",
            };
            s.push_str(name);
        }
        UopKind::Nop => s.push_str("nop"),
        kind => {
            // ALU forms: `op dst, src1[, src2]`.
            let dst = u
                .dst
                .map(|d| d.to_string())
                .unwrap_or_else(|| "flags".into());
            let _ = write!(s, "{kind} {dst}");
            if !srcs.is_empty() {
                let _ = write!(s, ", {}", srcs.join(", "));
            }
        }
    }
    s
}

/// A formatting adaptor that disassembles a trace (or a window of it).
///
/// # Examples
///
/// ```
/// use ppa_isa::{ArchReg, Disassembly, TraceBuilder};
///
/// let mut b = TraceBuilder::new("t");
/// b.alu(ArchReg::int(0), &[ArchReg::int(1)]);
/// b.store(ArchReg::int(0), 0x40, 7);
/// let t = b.build();
/// let text = Disassembly::of(&t).to_string();
/// assert!(text.contains("str r0"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Disassembly<'a> {
    trace: &'a Trace,
    start: usize,
    end: usize,
}

impl<'a> Disassembly<'a> {
    /// Disassembles the whole trace.
    pub fn of(trace: &'a Trace) -> Self {
        Disassembly {
            trace,
            start: 0,
            end: trace.len(),
        }
    }

    /// Disassembles `start..end` (clamped to the trace).
    pub fn window(trace: &'a Trace, start: usize, end: usize) -> Self {
        let end = end.min(trace.len());
        Disassembly {
            trace,
            start: start.min(end),
            end,
        }
    }
}

impl fmt::Display for Disassembly<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in self.start..self.end {
            let u = &self.trace[i];
            writeln!(f, "{:>6}  {:#08x}  {}", i, u.pc, disasm_uop(u))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::ArchReg;
    use crate::trace::TraceBuilder;
    use crate::uop::MemRef;

    #[test]
    fn store_and_load_forms() {
        let st = Uop::new(0, UopKind::Store)
            .with_srcs(&[ArchReg::int(3), ArchReg::int(0)])
            .with_mem(MemRef::new(0x1234, 8, 9));
        assert_eq!(disasm_uop(&st), "str r3, [0x1234] ; =9");
        let ld = Uop::new(0, UopKind::Load)
            .with_dst(ArchReg::fp(2))
            .with_mem(MemRef::new(0x40, 8, 0));
        assert_eq!(disasm_uop(&ld), "ldr f2, [0x40]");
    }

    #[test]
    fn alu_and_flag_forms() {
        let add = Uop::new(0, UopKind::IntAlu)
            .with_dst(ArchReg::int(1))
            .with_srcs(&[ArchReg::int(2), ArchReg::int(3)]);
        assert_eq!(disasm_uop(&add), "ialu r1, r2, r3");
        let cmp = Uop::new(0, UopKind::IntAlu).with_srcs(&[ArchReg::int(2)]);
        assert_eq!(disasm_uop(&cmp), "ialu flags, r2");
    }

    #[test]
    fn special_forms() {
        assert_eq!(
            disasm_uop(&Uop::new(0, UopKind::PersistBarrier)),
            "-- persist barrier --"
        );
        assert_eq!(
            disasm_uop(&Uop::new(0, UopKind::Sync(SyncKind::LockAcquire))),
            "lock acquire"
        );
        assert_eq!(
            disasm_uop(&Uop::new(0, UopKind::Branch(BranchKind::Call))),
            "call"
        );
    }

    #[test]
    fn window_clamps_to_trace() {
        let mut b = TraceBuilder::new("t");
        b.nop().nop().nop();
        let t = b.build();
        let text = Disassembly::window(&t, 1, 100).to_string();
        assert_eq!(text.lines().count(), 2);
        let empty = Disassembly::window(&t, 5, 3).to_string();
        assert!(empty.is_empty());
    }

    #[test]
    fn full_disassembly_has_one_line_per_uop() {
        let mut b = TraceBuilder::new("t");
        for _ in 0..7 {
            b.nop();
        }
        let t = b.build();
        assert_eq!(Disassembly::of(&t).to_string().lines().count(), 7);
    }
}
