use crate::depgraph::{word_of, PersistDepGraph};
use crate::line_of;
use crate::reg::ArchReg;
use crate::trace::Trace;
use crate::transform::TracePass;
use crate::uop::{MemRef, Uop, UopKind};
use std::collections::{HashMap, HashSet};

/// Dependence-driven flush/fence insertion: the minimal epoch-persistency
/// placement the static persist-dependence graph ([`PersistDepGraph`])
/// proves sufficient.
///
/// ReplayCache and Capri seal on a *schedule* — every N instructions, every
/// call, every register-pressure event — because their recovery hardware
/// needs bounded epochs. A pure flush/fence software scheme has no such
/// bound: a barrier is only ever *required* where the dependence graph says
/// ordering is observable. This pass seals (one `clwb` per dirty cache
/// line, in first-dirtied order, followed by one persist barrier) at
/// exactly three kinds of points:
///
/// 1. **Dependence crossings** — immediately before a store whose data
///    derives, through register dataflow from a load, from a store that is
///    not yet sealed. Sealing first makes the cause durable before the
///    effect can be.
/// 2. **Synchronisation primitives** — immediately before a `Sync` uop, if
///    unsealed stores exist. Once another thread can observe this thread's
///    writes it can persist state derived from them, so publication
///    requires durability (the same contract ReplayCache/Capri honour by
///    ending regions at syncs).
/// 3. **Trace end** — a final seal so no committed store is lost at exit.
///
/// Everything between two seals is one epoch; `clwb`s are coalesced per
/// line (a line dirtied by many stores is flushed once per epoch), which is
/// also cheaper than ReplayCache's clwb-per-store placement.
///
/// The output is lint-clean under `LintProfile::AutoPersist` by
/// construction: every store's line reaches a `clwb` before the epoch's
/// barrier, no barrier seals an empty epoch, and every dependence pair and
/// sync crossing is sealed in order.
///
/// # Examples
///
/// ```
/// use ppa_isa::transform::{AutoPersistPass, CapriPass, TracePass};
/// use ppa_isa::{ArchReg, TraceBuilder};
///
/// let mut b = TraceBuilder::new("t");
/// for i in 0..200u64 {
///     b.store(ArchReg::int(0), i * 8, i);
/// }
/// let t = b.build();
/// let auto = AutoPersistPass::new().apply(&t);
/// let capri = CapriPass::new().apply(&t);
/// assert!(auto.mix().barriers < capri.mix().barriers);
/// assert_eq!(auto.mix().barriers, 1, "independent stores need one seal");
/// ```
#[derive(Debug, Clone, Default)]
pub struct AutoPersistPass;

impl AutoPersistPass {
    /// Creates the pass. It has no tuning knobs: the placement is fully
    /// determined by the trace's dependence structure.
    pub fn new() -> Self {
        AutoPersistPass
    }
}

impl TracePass for AutoPersistPass {
    fn name(&self) -> &str {
        "autopersist"
    }

    fn apply(&self, trace: &Trace) -> Trace {
        let mut out: Vec<Uop> = Vec::with_capacity(trace.len() + 8);
        // Dirty lines of the current epoch, in first-dirtied order.
        let mut dirty: Vec<u64> = Vec::new();
        let mut dirty_set: HashSet<u64> = HashSet::new();
        // Epochs count the seals emitted so far; a store is unsealed iff it
        // was committed in the current epoch.
        let mut epoch = 0u64;
        // Epoch of the last store to each word.
        let mut word_epoch: HashMap<u64, u64> = HashMap::new();
        // Epoch of the unsealed store a register's value derives from.
        let mut reg_epoch: Vec<Option<u64>> = vec![None; ArchReg::flat_count()];

        let seal = |out: &mut Vec<Uop>,
                    dirty: &mut Vec<u64>,
                    dirty_set: &mut HashSet<u64>,
                    epoch: &mut u64,
                    pc: u64| {
            for &line in dirty.iter() {
                out.push(Uop::new(pc, UopKind::Clwb).with_mem(MemRef::new(line, 8, 0)));
            }
            out.push(Uop::new(pc, UopKind::PersistBarrier));
            dirty.clear();
            dirty_set.clear();
            *epoch += 1;
        };

        for u in trace {
            match u.kind {
                UopKind::Sync(_) => {
                    if !dirty.is_empty() {
                        seal(&mut out, &mut dirty, &mut dirty_set, &mut epoch, u.pc);
                    }
                    out.push(*u);
                }
                UopKind::Store => {
                    let crosses_dependence = u
                        .sources()
                        .any(|r| reg_epoch[r.flat_index()] == Some(epoch));
                    if crosses_dependence && !dirty.is_empty() {
                        seal(&mut out, &mut dirty, &mut dirty_set, &mut epoch, u.pc);
                    }
                    out.push(*u);
                    if let Some(m) = u.mem {
                        let line = line_of(m.addr);
                        if dirty_set.insert(line) {
                            dirty.push(line);
                        }
                        word_epoch.insert(word_of(m.addr), epoch);
                    }
                }
                UopKind::Load => {
                    out.push(*u);
                    if let Some(d) = u.dst {
                        reg_epoch[d.flat_index()] = u
                            .mem
                            .and_then(|m| word_epoch.get(&word_of(m.addr)).copied());
                    }
                }
                _ => {
                    out.push(*u);
                    if let Some(d) = u.dst {
                        let merged = u.sources().filter_map(|r| reg_epoch[r.flat_index()]).max();
                        reg_epoch[d.flat_index()] = merged;
                    }
                }
            }
        }
        if !dirty.is_empty() {
            seal(
                &mut out,
                &mut dirty,
                &mut dirty_set,
                &mut epoch,
                trace.len() as u64 * 4,
            );
        }
        // The placement mirrors the dependence graph by construction; debug
        // builds double-check that every dependence pair is sealed in order.
        debug_assert!({
            let t = Trace::from_uops("check", out.clone());
            let seals = crate::depgraph::store_seals(&t);
            let by_pos: HashMap<usize, &crate::depgraph::StoreSeal> =
                seals.iter().map(|s| (s.pos, s)).collect();
            PersistDepGraph::build(&t)
                .dependence_pairs()
                .iter()
                .all(|p| by_pos[&p.from_store].sealed_before(p.to_store))
        });
        Trace::from_uops(format!("{}+autopersist", trace.name()), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use crate::transform::{CapriPass, ReplayCachePass};
    use crate::uop::SyncKind;

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    #[test]
    fn independent_stores_get_one_final_seal() {
        let mut b = TraceBuilder::new("t");
        for i in 0..50u64 {
            b.store(r(0), 0x100 + i * 64, i);
        }
        let out = AutoPersistPass::new().apply(&b.build());
        let m = out.mix();
        assert_eq!(m.barriers, 1);
        assert_eq!(m.clwbs, 50, "one clwb per dirty line");
        assert_eq!(out.name(), "t+autopersist");
    }

    #[test]
    fn same_line_stores_coalesce_to_one_clwb() {
        let mut b = TraceBuilder::new("t");
        for i in 0..8u64 {
            b.store(r(0), 0x100 + i * 8, i);
        }
        let out = AutoPersistPass::new().apply(&b.build());
        assert_eq!(out.mix().clwbs, 1);
        assert_eq!(out.mix().barriers, 1);
    }

    #[test]
    fn dependence_crossing_seals_before_the_dependent_store() {
        let mut b = TraceBuilder::new("t");
        b.store(r(0), 0x100, 7);
        b.load(r(1), 0x100);
        b.alu(r(2), &[r(1)]);
        b.store(r(2), 0x200, 7);
        let out = AutoPersistPass::new().apply(&b.build());
        assert_eq!(out.mix().barriers, 2, "dependence seal + final seal");
        // The first barrier must precede the dependent store.
        let bar = out
            .iter()
            .position(|u| u.kind == UopKind::PersistBarrier)
            .unwrap();
        let dep_store = out
            .iter()
            .enumerate()
            .filter(|(_, u)| u.kind == UopKind::Store)
            .nth(1)
            .unwrap()
            .0;
        assert!(bar < dep_store);
    }

    #[test]
    fn sealed_dependence_needs_no_second_seal() {
        let mut b = TraceBuilder::new("t");
        b.store(r(0), 0x100, 7);
        b.sync(SyncKind::Fence); // forces a seal; the store is now durable
        b.load(r(1), 0x100);
        b.store(r(1), 0x200, 7);
        let out = AutoPersistPass::new().apply(&b.build());
        // Seal before the sync + final seal, but none at the second store.
        assert_eq!(out.mix().barriers, 2);
        let dep_store = out
            .iter()
            .enumerate()
            .filter(|(_, u)| u.kind == UopKind::Store)
            .nth(1)
            .unwrap()
            .0;
        assert_ne!(out[dep_store - 1].kind, UopKind::PersistBarrier);
    }

    #[test]
    fn syncs_seal_only_when_stores_are_pending() {
        let mut b = TraceBuilder::new("t");
        b.sync(SyncKind::LockAcquire); // nothing dirty: no seal
        b.store(r(0), 0x100, 1);
        b.sync(SyncKind::LockRelease); // seals the store
        b.nop();
        let out = AutoPersistPass::new().apply(&b.build());
        assert_eq!(out.mix().barriers, 1);
        assert_eq!(out[0].kind, UopKind::Sync(SyncKind::LockAcquire));
    }

    #[test]
    fn storeless_trace_is_unchanged() {
        let mut b = TraceBuilder::new("t");
        for _ in 0..20 {
            b.nop();
        }
        let t = b.build();
        let out = AutoPersistPass::new().apply(&t);
        assert_eq!(out.mix().barriers, 0);
        assert_eq!(out.len(), t.len());
    }

    #[test]
    fn taint_clears_across_a_seal() {
        let mut b = TraceBuilder::new("t");
        b.store(r(0), 0x100, 7);
        b.load(r(1), 0x100); // tainted by the unsealed store
        b.sync(SyncKind::Fence); // seal: the store becomes durable
        b.alu(r(2), &[r(1)]);
        b.store(r(2), 0x200, 7); // no seal needed: cause already durable
        let out = AutoPersistPass::new().apply(&b.build());
        assert_eq!(out.mix().barriers, 2, "sync seal + final seal only");
    }

    #[test]
    fn fewer_barriers_than_capri_and_replaycache_on_a_mixed_trace() {
        let mut b = TraceBuilder::new("t");
        for i in 0..2000u64 {
            match i % 10 {
                0 => {
                    b.store(r(0), 0x100 + (i % 64) * 64, i);
                }
                5 => {
                    b.branch(crate::uop::BranchKind::Call);
                }
                _ => {
                    b.alu(r(1), &[r(1)]);
                }
            }
        }
        let t = b.build();
        let auto = AutoPersistPass::new().apply(&t).mix().barriers;
        let capri = CapriPass::new().apply(&t).mix().barriers;
        let rc = ReplayCachePass::new().apply(&t).mix().barriers;
        assert!(auto < capri, "autopersist {auto} vs capri {capri}");
        assert!(auto < rc, "autopersist {auto} vs replaycache {rc}");
    }
}
