use crate::reg::RegClass;
use crate::trace::Trace;
use crate::transform::TracePass;
use crate::uop::{BranchKind, MemRef, Uop, UopKind};
use std::collections::HashSet;

/// ReplayCache's compiler-based store-integrity region formation (paper
/// §2.4), reproduced as a trace pass.
///
/// ReplayCache enforces store integrity over the *architectural* register
/// file: within a region, a register that supplied a store's data must not
/// be redefined. The compiler mitigates write-after-read conflicts by
/// renaming redefinitions to unused architectural registers, but with only
/// 16 integer / 32 FP registers it runs out quickly, and regions also end
/// at every call/return because the analysis is intra-procedural. On top of
/// that, ReplayCache emits a `clwb` after every store to push the line
/// toward NVM, which doubles store-queue pressure (Table 1, footnote 5).
///
/// The paper measures an average region length of ~12 instructions for this
/// scheme (with energy-aware splitting disabled, §7) and an average 5×
/// slowdown on a server-class core (Figure 1). Both effects reproduce here:
/// the short regions come out of this pass, and the slowdown out of the
/// per-barrier persist stalls in the core model.
///
/// # Examples
///
/// ```
/// use ppa_isa::transform::{ReplayCachePass, TracePass};
/// use ppa_isa::{ArchReg, TraceBuilder, UopKind};
///
/// let mut b = TraceBuilder::new("t");
/// let r0 = ArchReg::int(0);
/// b.store(r0, 0x100, 1);
/// let out = ReplayCachePass::new().apply(&b.build());
/// // A clwb follows every store.
/// assert!(matches!(out[1].kind, UopKind::Clwb));
/// ```
#[derive(Debug, Clone)]
pub struct ReplayCachePass {
    /// Architectural registers the register allocator may burn on renaming
    /// WAR redefinitions before it must place a barrier, as a fraction of
    /// the class's registers. ReplayCache's allocator competes with the
    /// program's own live values, so only a fraction is ever spare.
    spare_fraction: f64,
    /// ReplayCache's energy-aware region splitting for energy-harvesting
    /// systems (§2.4): an upper bound on region length so a region's
    /// stores always fit the harvested-energy budget. The paper's
    /// methodology *disables* this (None) to give ReplayCache the longest
    /// regions it can form; enabling it shows why EHS-tuned regions are
    /// hopeless on server-class cores.
    energy_split_insts: Option<usize>,
}

impl ReplayCachePass {
    /// Creates the pass with the default spare-register budget (55% of each
    /// class, mirroring the scarce-architectural-registers discussion in
    /// §2.4; calibrated so the measured average slowdown lands on the
    /// paper's Figure 1).
    pub fn new() -> Self {
        ReplayCachePass {
            spare_fraction: 0.55,
            energy_split_insts: None,
        }
    }

    /// Enables §2.4's energy-aware region splitting with the given region
    /// bound (ReplayCache's EHS deployments use very short regions; its
    /// measured average is 12 instructions).
    ///
    /// # Panics
    ///
    /// Panics if `max_insts` is zero.
    pub fn with_energy_splitting(mut self, max_insts: usize) -> Self {
        assert!(max_insts > 0, "region bound must be positive");
        self.energy_split_insts = Some(max_insts);
        self
    }

    /// Overrides the fraction of architectural registers the allocator may
    /// use for WAR renaming. Used by ablation benches.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    pub fn with_spare_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "spare fraction must be in [0, 1]"
        );
        self.spare_fraction = fraction;
        self
    }

    fn spare_budget(&self, class: RegClass) -> usize {
        (class.arch_count() as f64 * self.spare_fraction).floor() as usize
    }
}

impl Default for ReplayCachePass {
    fn default() -> Self {
        ReplayCachePass::new()
    }
}

impl TracePass for ReplayCachePass {
    fn name(&self) -> &str {
        "replaycache"
    }

    fn apply(&self, trace: &Trace) -> Trace {
        let mut out: Vec<Uop> = Vec::with_capacity(trace.len() * 2);
        // Store-integrity state for the current region.
        let mut protected: HashSet<crate::reg::ArchReg> = HashSet::new();
        let mut spare_int = self.spare_budget(RegClass::Int);
        let mut spare_fp = self.spare_budget(RegClass::Fp);
        let mut region_has_store = false;
        let mut region_insts = 0usize;

        let end_region = |out: &mut Vec<Uop>,
                          protected: &mut HashSet<crate::reg::ArchReg>,
                          spare_int: &mut usize,
                          spare_fp: &mut usize,
                          region_has_store: &mut bool,
                          pc: u64| {
            // A barrier is only useful if the region performed stores; empty
            // regions merge into their successor (the compiler would not
            // emit a barrier there).
            if *region_has_store {
                out.push(Uop::new(pc, UopKind::PersistBarrier));
            }
            protected.clear();
            *spare_int = self.spare_budget(RegClass::Int);
            *spare_fp = self.spare_budget(RegClass::Fp);
            *region_has_store = false;
        };

        for u in trace {
            // 0. Energy-aware splitting, when enabled: hard bound on
            //    region length.
            if let Some(bound) = self.energy_split_insts {
                if region_insts >= bound {
                    end_region(
                        &mut out,
                        &mut protected,
                        &mut spare_int,
                        &mut spare_fp,
                        &mut region_has_store,
                        u.pc,
                    );
                    region_insts = 0;
                }
            }
            region_insts += 1;

            // 1. Region boundary before redefinitions of protected registers
            //    that the allocator can no longer rename around.
            if let Some(dst) = u.dst {
                if protected.contains(&dst) {
                    let spare = match dst.class() {
                        RegClass::Int => &mut spare_int,
                        RegClass::Fp => &mut spare_fp,
                    };
                    if *spare > 0 {
                        // The compiler renames the redefinition to a spare
                        // architectural register; the protected value stays
                        // live.
                        *spare -= 1;
                    } else {
                        end_region(
                            &mut out,
                            &mut protected,
                            &mut spare_int,
                            &mut spare_fp,
                            &mut region_has_store,
                            u.pc,
                        );
                    }
                }
            }

            // 2. Intra-procedural analysis: calls and returns end regions.
            if matches!(
                u.kind,
                UopKind::Branch(BranchKind::Call) | UopKind::Branch(BranchKind::Ret)
            ) {
                out.push(*u);
                end_region(
                    &mut out,
                    &mut protected,
                    &mut spare_int,
                    &mut spare_fp,
                    &mut region_has_store,
                    u.pc,
                );
                continue;
            }

            // 3. Synchronisation primitives are ordering points and end
            //    regions in every scheme.
            if u.kind.is_sync_boundary() {
                out.push(*u);
                end_region(
                    &mut out,
                    &mut protected,
                    &mut spare_int,
                    &mut spare_fp,
                    &mut region_has_store,
                    u.pc,
                );
                continue;
            }

            out.push(*u);

            // 4. Stores protect their data register and are followed by a
            //    clwb to the same line.
            if u.kind.is_store() {
                region_has_store = true;
                if let Some(data) = u.store_data_reg() {
                    protected.insert(data);
                }
                let mem = u.mem.expect("store without a memory reference");
                out.push(
                    Uop::new(u.pc, UopKind::Clwb).with_mem(MemRef::new(mem.addr, mem.size, 0)),
                );
            }
        }
        // Final barrier so the last region is persisted before "exit".
        if region_has_store {
            out.push(Uop::new(trace.len() as u64 * 4, UopKind::PersistBarrier));
        }
        Trace::from_uops(format!("{}+replaycache", trace.name()), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::ArchReg;
    use crate::trace::{Trace, TraceBuilder};
    use crate::transform::region_lengths;
    use crate::uop::SyncKind;

    fn count_kind(t: &Trace, pred: impl Fn(&UopKind) -> bool) -> usize {
        t.iter().filter(|u| pred(&u.kind)).count()
    }

    #[test]
    fn every_store_gets_a_clwb() {
        let mut b = TraceBuilder::new("t");
        for i in 0..10u64 {
            b.store(ArchReg::int((i % 8) as u8), i * 64, i);
        }
        let out = ReplayCachePass::new().apply(&b.build());
        assert_eq!(count_kind(&out, |k| matches!(k, UopKind::Clwb)), 10);
        assert_eq!(count_kind(&out, |k| k.is_store()), 10);
    }

    #[test]
    fn redefinition_of_store_register_forces_barrier_when_spares_exhausted() {
        // With no spare registers, the very first redefinition of a store's
        // data register must end the region.
        let pass = ReplayCachePass::new().with_spare_fraction(0.0);
        let mut b = TraceBuilder::new("t");
        let r0 = ArchReg::int(0);
        b.store(r0, 0x100, 1);
        b.alu(r0, &[r0]); // WAR on the store's data register
        b.store(r0, 0x140, 2);
        let out = pass.apply(&b.build());
        let barrier_before_redef = out
            .iter()
            .position(|u| u.kind == UopKind::PersistBarrier)
            .expect("must contain a barrier");
        // Barrier appears after the store+clwb pair and before the ALU.
        assert_eq!(barrier_before_redef, 2);
    }

    #[test]
    fn spare_registers_delay_the_barrier() {
        let pass = ReplayCachePass::new().with_spare_fraction(0.5);
        let mut b = TraceBuilder::new("t");
        let r0 = ArchReg::int(0);
        b.store(r0, 0x100, 1);
        for _ in 0..4 {
            b.alu(r0, &[r0]);
        }
        let out = pass.apply(&b.build());
        // 8 spare int registers absorb the 4 redefinitions, so the only
        // barrier is the trailing one.
        let n_barriers = count_kind(&out, |k| matches!(k, UopKind::PersistBarrier));
        assert_eq!(n_barriers, 1);
        assert_eq!(
            *out.as_slice().last().map(|u| &u.kind).unwrap(),
            UopKind::PersistBarrier
        );
    }

    #[test]
    fn calls_end_regions() {
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0x100, 1);
        b.branch(BranchKind::Call);
        b.store(ArchReg::int(1), 0x200, 2);
        let out = ReplayCachePass::new().apply(&b.build());
        let lens = region_lengths(&out);
        assert_eq!(lens.len(), 2, "call must split the trace into two regions");
    }

    #[test]
    fn sync_primitives_end_regions() {
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0x100, 1);
        b.sync(SyncKind::AtomicRmw);
        b.store(ArchReg::int(1), 0x200, 2);
        let out = ReplayCachePass::new().apply(&b.build());
        assert!(region_lengths(&out).len() >= 2);
    }

    #[test]
    fn storeless_trace_gets_no_barriers() {
        let mut b = TraceBuilder::new("t");
        for _ in 0..20 {
            b.alu(ArchReg::int(2), &[ArchReg::int(3)]);
        }
        let out = ReplayCachePass::new().apply(&b.build());
        assert_eq!(
            count_kind(&out, |k| matches!(k, UopKind::PersistBarrier)),
            0
        );
    }

    #[test]
    fn regions_are_short_under_register_pressure() {
        // A pointer-chase-like loop that stores through a rotating set of
        // registers: ReplayCache regions should be an order of magnitude
        // shorter than the trace.
        let mut b = TraceBuilder::new("t");
        for i in 0..400u64 {
            let r = ArchReg::int((i % 4) as u8);
            b.alu(r, &[r]);
            b.store(r, i * 8, i);
        }
        let out = ReplayCachePass::new().apply(&b.build());
        let lens = region_lengths(&out);
        let avg = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!(avg < 40.0, "avg region {avg} should be short");
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn invalid_spare_fraction_panics() {
        ReplayCachePass::new().with_spare_fraction(1.5);
    }

    #[test]
    fn energy_splitting_caps_region_length() {
        let mut b = TraceBuilder::new("t");
        for i in 0..200u64 {
            b.store(ArchReg::int(0), i * 64, i);
            b.alu(ArchReg::int(1), &[ArchReg::int(1)]);
        }
        let out = ReplayCachePass::new()
            .with_energy_splitting(12)
            .apply(&b.build());
        for len in region_lengths(&out) {
            // The pass inserts a clwb per store, so a 12-instruction input
            // region can grow to at most 24 output micro-ops.
            assert!(len <= 24, "region of {len} exceeds the energy bound");
        }
    }

    #[test]
    fn energy_splitting_shortens_regions_vs_default() {
        let mut b = TraceBuilder::new("t");
        for i in 0..600u64 {
            if i % 10 == 0 {
                b.store(ArchReg::int((i % 4) as u8), i * 64, i);
            } else {
                b.alu(ArchReg::int(((i + 1) % 4) as u8), &[ArchReg::int(0)]);
            }
        }
        let t = b.build();
        let avg = |t: &Trace| {
            let l = region_lengths(t);
            l.iter().sum::<usize>() as f64 / l.len().max(1) as f64
        };
        let plain = ReplayCachePass::new().apply(&t);
        let split = ReplayCachePass::new().with_energy_splitting(12).apply(&t);
        assert!(avg(&split) < avg(&plain));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_energy_bound_panics() {
        ReplayCachePass::new().with_energy_splitting(0);
    }
}
