use crate::trace::Trace;
use crate::transform::TracePass;
use crate::uop::{BranchKind, Uop, UopKind};

/// Capri's compiler region formation (paper §8 and §7.5), reproduced as a
/// trace pass.
///
/// Capri partitions the program into recoverable regions whose stores are
/// held in a per-core battery-backed redo buffer; the compiler must bound
/// each region so the buffer can never overflow, and — being a static,
/// intra-procedural analysis — it also ends regions at calls and returns.
/// The paper measures Capri's average region size at 29 instructions,
/// roughly 11× shorter than PPA's dynamically formed regions (§7.1/§7.5),
/// and that gap is the root of Capri's 26% overhead.
///
/// Unlike ReplayCache, Capri does not insert `clwb`s: the redo buffer
/// drains to NVM over a dedicated persist path whose bandwidth the core
/// model charges for (4 GB/s in the paper's practical configuration).
///
/// # Examples
///
/// ```
/// use ppa_isa::transform::{region_lengths, CapriPass, TracePass};
/// use ppa_isa::{ArchReg, TraceBuilder};
///
/// let mut b = TraceBuilder::new("t");
/// for i in 0..200u64 {
///     b.store(ArchReg::int(0), i * 8, i);
/// }
/// let out = CapriPass::new().apply(&b.build());
/// let lens = region_lengths(&out);
/// let avg = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
/// assert!(avg <= 33.0);
/// ```
#[derive(Debug, Clone)]
pub struct CapriPass {
    /// Static instruction bound per region. The compiler proves the redo
    /// buffer cannot overflow by bounding region length conservatively; 32
    /// instructions reproduces the paper's measured average of 29 once
    /// call/return splits are added.
    max_insts: usize,
    /// Redo-buffer byte budget per region; a region also ends when its
    /// stores would exceed this.
    max_store_bytes: usize,
}

impl CapriPass {
    /// Creates the pass with the paper-calibrated defaults.
    pub fn new() -> Self {
        CapriPass {
            max_insts: 32,
            max_store_bytes: 54 * 1024,
        }
    }

    /// Overrides the static per-region instruction bound.
    ///
    /// # Panics
    ///
    /// Panics if `max_insts` is zero.
    pub fn with_max_insts(mut self, max_insts: usize) -> Self {
        assert!(max_insts > 0, "region bound must be positive");
        self.max_insts = max_insts;
        self
    }

    /// Overrides the redo-buffer byte budget.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn with_max_store_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "redo buffer budget must be positive");
        self.max_store_bytes = bytes;
        self
    }
}

impl Default for CapriPass {
    fn default() -> Self {
        CapriPass::new()
    }
}

impl TracePass for CapriPass {
    fn name(&self) -> &str {
        "capri"
    }

    fn apply(&self, trace: &Trace) -> Trace {
        let mut out: Vec<Uop> = Vec::with_capacity(trace.len() + trace.len() / 16);
        let mut insts = 0usize;
        let mut store_bytes = 0usize;
        let mut has_store = false;

        let end_region =
            |out: &mut Vec<Uop>, insts: &mut usize, bytes: &mut usize, has: &mut bool, pc: u64| {
                // Regions are recoverable epochs: the compiler seals every
                // one, stores or not (the barrier is how recovery finds
                // epoch boundaries).
                let _ = has;
                out.push(Uop::new(pc, UopKind::PersistBarrier));
                *insts = 0;
                *bytes = 0;
                *has = false;
            };

        for u in trace {
            let boundary_branch = matches!(
                u.kind,
                UopKind::Branch(BranchKind::Call) | UopKind::Branch(BranchKind::Ret)
            );
            out.push(*u);
            insts += 1;
            if u.kind.is_store() {
                has_store = true;
                store_bytes += u.mem.map(|m| m.size as usize).unwrap_or(8);
            }
            if boundary_branch
                || u.kind.is_sync_boundary()
                || insts >= self.max_insts
                || store_bytes >= self.max_store_bytes
            {
                end_region(&mut out, &mut insts, &mut store_bytes, &mut has_store, u.pc);
            }
        }
        if has_store {
            end_region(
                &mut out,
                &mut insts,
                &mut store_bytes,
                &mut has_store,
                trace.len() as u64 * 4,
            );
        }
        Trace::from_uops(format!("{}+capri", trace.name()), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::ArchReg;
    use crate::trace::TraceBuilder;
    use crate::transform::region_lengths;
    use crate::uop::SyncKind;

    #[test]
    fn regions_bounded_by_max_insts() {
        let mut b = TraceBuilder::new("t");
        for i in 0..100u64 {
            b.store(ArchReg::int(0), i * 8, i);
        }
        let out = CapriPass::new().with_max_insts(10).apply(&b.build());
        for len in region_lengths(&out) {
            assert!(len <= 10, "region of {len} exceeds the bound");
        }
    }

    #[test]
    fn redo_buffer_budget_splits_regions() {
        let mut b = TraceBuilder::new("t");
        for i in 0..8u64 {
            b.store(ArchReg::int(0), i * 8, i);
        }
        // 16-byte budget => two 8-byte stores per region.
        let out = CapriPass::new()
            .with_max_insts(1000)
            .with_max_store_bytes(16)
            .apply(&b.build());
        let lens = region_lengths(&out);
        assert_eq!(lens, vec![2, 2, 2, 2]);
    }

    #[test]
    fn calls_split_regions() {
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0, 0);
        b.branch(BranchKind::Call);
        b.store(ArchReg::int(0), 8, 1);
        let out = CapriPass::new().apply(&b.build());
        assert_eq!(region_lengths(&out).len(), 2);
    }

    #[test]
    fn syncs_split_regions() {
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0, 0);
        b.sync(SyncKind::LockRelease);
        b.store(ArchReg::int(0), 8, 1);
        let out = CapriPass::new().apply(&b.build());
        assert_eq!(region_lengths(&out).len(), 2);
    }

    #[test]
    fn storeless_code_is_still_partitioned_into_epochs() {
        let mut b = TraceBuilder::new("t");
        for _ in 0..100 {
            b.nop();
        }
        let out = CapriPass::new().apply(&b.build());
        let n = out
            .iter()
            .filter(|u| u.kind == UopKind::PersistBarrier)
            .count();
        assert!(n >= 3, "expected epoch barriers, got {n}");
    }

    #[test]
    fn default_average_region_matches_paper_ballpark() {
        // Mixed trace: mostly ALU ops with ~10% stores and occasional calls.
        let mut b = TraceBuilder::new("t");
        for i in 0..3000u64 {
            if i % 10 == 0 {
                b.store(ArchReg::int(0), i * 8, i);
            } else if i % 97 == 0 {
                b.branch(BranchKind::Call);
            } else {
                b.alu(ArchReg::int(1), &[ArchReg::int(1)]);
            }
        }
        let out = CapriPass::new().apply(&b.build());
        let lens = region_lengths(&out);
        let avg = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!(
            (20.0..=33.0).contains(&avg),
            "Capri average region {avg} should be near the paper's 29"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        CapriPass::new().with_max_insts(0);
    }
}
