//! "Compiler" passes over instruction traces.
//!
//! The PPA paper compares against two software-formed-region baselines:
//! ReplayCache (MICRO '21) and Capri (HPDC '22). Both rely on a compiler to
//! partition the program into persistence regions ahead of time; in this
//! reproduction those compilers are trace-to-trace passes. PPA itself needs
//! no pass — its regions come from hardware free-list pressure.

mod autopersist;
mod capri;
mod replaycache;

pub use autopersist::AutoPersistPass;
pub use capri::CapriPass;
pub use replaycache::ReplayCachePass;

use crate::trace::Trace;
use crate::uop::UopKind;

/// A trace-to-trace transformation (a stand-in for a compiler pass).
pub trait TracePass {
    /// Human-readable pass name.
    fn name(&self) -> &str;

    /// Applies the pass, producing a new trace.
    fn apply(&self, trace: &Trace) -> Trace;
}

/// Lengths (in micro-ops, excluding the barrier itself) of the statically
/// formed regions of a trace, split at [`UopKind::PersistBarrier`].
///
/// The trailing partial region is included, matching how the paper counts
/// average region size (Figure 13 reports Capri's average as 29).
///
/// # Examples
///
/// ```
/// use ppa_isa::transform::{region_lengths, CapriPass, TracePass};
/// use ppa_isa::{ArchReg, TraceBuilder};
///
/// let mut b = TraceBuilder::new("t");
/// for i in 0..100u64 {
///     b.store(ArchReg::int(0), i * 8, i);
/// }
/// let t = CapriPass::new().apply(&b.build());
/// assert!(!region_lengths(&t).is_empty());
/// ```
pub fn region_lengths(trace: &Trace) -> Vec<usize> {
    let mut lens = Vec::new();
    let mut cur = 0usize;
    for u in trace {
        if u.kind == UopKind::PersistBarrier {
            lens.push(cur);
            cur = 0;
        } else {
            cur += 1;
        }
    }
    if cur > 0 {
        lens.push(cur);
    }
    lens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use crate::uop::{Uop, UopKind};

    #[test]
    fn region_lengths_split_at_barriers() {
        let mut b = TraceBuilder::new("t");
        b.nop().nop();
        b.push(Uop::new(0, UopKind::PersistBarrier));
        b.nop();
        let lens = region_lengths(&b.build());
        assert_eq!(lens, vec![2, 1]);
    }

    #[test]
    fn trailing_barrier_yields_no_empty_region() {
        let mut b = TraceBuilder::new("t");
        b.nop();
        b.push(Uop::new(0, UopKind::PersistBarrier));
        let lens = region_lengths(&b.build());
        assert_eq!(lens, vec![1]);
    }

    #[test]
    fn empty_trace_has_no_regions() {
        let t = Trace::from_uops("e", Vec::new());
        assert!(region_lengths(&t).is_empty());
    }
}
