use crate::reg::ArchReg;
use crate::uop::{BranchKind, MemRef, SyncKind, Uop, UopKind};
use std::fmt;
use std::ops::Index;

/// A committed-path instruction trace: the unit of work a simulated core
/// executes.
///
/// Traces are produced by the workload generators in `ppa-workloads` (one
/// per paper application) or hand-built with [`TraceBuilder`] in tests.
///
/// # Examples
///
/// ```
/// use ppa_isa::{ArchReg, TraceBuilder};
///
/// let mut b = TraceBuilder::new("t");
/// b.load(ArchReg::int(0), 0x40);
/// b.store(ArchReg::int(0), 0x80, 1);
/// let t = b.build();
/// assert_eq!(t.mix().loads, 1);
/// assert_eq!(t.mix().stores, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    uops: Vec<Uop>,
}

impl Trace {
    /// Creates a trace from raw micro-ops.
    pub fn from_uops(name: impl Into<String>, uops: Vec<Uop>) -> Self {
        Trace {
            name: name.into(),
            uops,
        }
    }

    /// The trace's name (usually the application name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of micro-ops.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Micro-op at `idx`, or `None` past the end.
    pub fn get(&self, idx: usize) -> Option<&Uop> {
        self.uops.get(idx)
    }

    /// Iterator over the micro-ops.
    pub fn iter(&self) -> std::slice::Iter<'_, Uop> {
        self.uops.iter()
    }

    /// The micro-ops as a slice.
    pub fn as_slice(&self) -> &[Uop] {
        &self.uops
    }

    /// Consumes the trace, returning its micro-ops.
    pub fn into_uops(self) -> Vec<Uop> {
        self.uops
    }

    /// Distinct cache lines the trace touches (loads + stores) — the
    /// simulated working-set footprint in lines.
    ///
    /// # Examples
    ///
    /// ```
    /// use ppa_isa::{ArchReg, TraceBuilder};
    /// let mut b = TraceBuilder::new("t");
    /// b.store(ArchReg::int(0), 0x00, 1);
    /// b.store(ArchReg::int(0), 0x08, 2); // same line
    /// b.store(ArchReg::int(0), 0x40, 3); // new line
    /// assert_eq!(b.build().footprint_lines(), 2);
    /// ```
    pub fn footprint_lines(&self) -> usize {
        let mut lines: Vec<u64> = self
            .uops
            .iter()
            .filter_map(|u| u.mem.map(|m| crate::line_of(m.addr)))
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len()
    }

    /// Instruction-mix statistics for the whole trace.
    pub fn mix(&self) -> TraceMix {
        let mut m = TraceMix::default();
        for u in &self.uops {
            m.total += 1;
            match u.kind {
                UopKind::IntAlu | UopKind::IntMul | UopKind::IntDiv => m.int_ops += 1,
                UopKind::FpAlu | UopKind::FpMul | UopKind::FpDiv => m.fp_ops += 1,
                UopKind::Load => m.loads += 1,
                UopKind::Store => m.stores += 1,
                UopKind::Branch(_) => m.branches += 1,
                UopKind::Clwb => m.clwbs += 1,
                UopKind::Sync(_) => m.syncs += 1,
                UopKind::PersistBarrier => m.barriers += 1,
                UopKind::Nop => m.nops += 1,
            }
            if u.defines_reg() {
                m.reg_defs += 1;
            }
        }
        m
    }
}

impl Index<usize> for Trace {
    type Output = Uop;

    fn index(&self, idx: usize) -> &Uop {
        &self.uops[idx]
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Uop;
    type IntoIter = std::slice::Iter<'a, Uop>;

    fn into_iter(self) -> Self::IntoIter {
        self.uops.iter()
    }
}

/// Instruction-mix counts for a [`Trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceMix {
    /// Total micro-ops.
    pub total: u64,
    /// Integer ALU/mul/div ops.
    pub int_ops: u64,
    /// Floating-point ops.
    pub fp_ops: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Branches (jumps, calls, returns).
    pub branches: u64,
    /// `clwb` ops (ReplayCache-transformed traces only).
    pub clwbs: u64,
    /// Synchronisation primitives.
    pub syncs: u64,
    /// Persist barriers (software-baseline traces only).
    pub barriers: u64,
    /// No-ops.
    pub nops: u64,
    /// Micro-ops that define a register (consume a physical register).
    pub reg_defs: u64,
}

impl TraceMix {
    /// Fraction of micro-ops that are stores.
    pub fn store_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.stores as f64 / self.total as f64
        }
    }

    /// Fraction of micro-ops that define a register. The paper reports ~30%
    /// for its workloads, which is what leaves the PRF underutilised.
    pub fn def_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.reg_defs as f64 / self.total as f64
        }
    }
}

impl fmt::Display for TraceMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} uops: {} int, {} fp, {} ld, {} st, {} br, {} sync ({}% defs)",
            self.total,
            self.int_ops,
            self.fp_ops,
            self.loads,
            self.stores,
            self.branches,
            self.syncs,
            (self.def_fraction() * 100.0).round()
        )
    }
}

/// Incremental builder for [`Trace`]s with automatic PC assignment.
///
/// Every helper advances a synthetic program counter by 4 so that the
/// last-committed-PC (LCPC) logic has distinct addresses to record.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    name: String,
    uops: Vec<Uop>,
    pc: u64,
}

impl TraceBuilder {
    /// Creates an empty builder; PCs start at `0x1000`.
    pub fn new(name: impl Into<String>) -> Self {
        TraceBuilder {
            name: name.into(),
            uops: Vec::new(),
            pc: 0x1000,
        }
    }

    fn next_pc(&mut self) -> u64 {
        let pc = self.pc;
        self.pc += 4;
        pc
    }

    /// Pushes a fully formed micro-op, overriding its PC with the builder's.
    pub fn push(&mut self, mut uop: Uop) -> &mut Self {
        uop.pc = self.next_pc();
        self.uops.push(uop);
        self
    }

    /// Pushes an integer ALU op `dst = f(srcs)`.
    pub fn alu(&mut self, dst: ArchReg, srcs: &[ArchReg]) -> &mut Self {
        let pc = self.next_pc();
        self.uops
            .push(Uop::new(pc, UopKind::IntAlu).with_dst(dst).with_srcs(srcs));
        self
    }

    /// Pushes a floating-point ALU op.
    pub fn fp_alu(&mut self, dst: ArchReg, srcs: &[ArchReg]) -> &mut Self {
        let pc = self.next_pc();
        self.uops
            .push(Uop::new(pc, UopKind::FpAlu).with_dst(dst).with_srcs(srcs));
        self
    }

    /// Pushes an 8-byte load into `dst` from `addr`.
    pub fn load(&mut self, dst: ArchReg, addr: u64) -> &mut Self {
        let pc = self.next_pc();
        self.uops.push(
            Uop::new(pc, UopKind::Load)
                .with_dst(dst)
                .with_mem(MemRef::new(addr, 8, 0)),
        );
        self
    }

    /// Pushes an 8-byte store of register `data` (holding `value`) to `addr`.
    pub fn store(&mut self, data: ArchReg, addr: u64, value: u64) -> &mut Self {
        let pc = self.next_pc();
        self.uops.push(
            Uop::new(pc, UopKind::Store)
                .with_srcs(&[data])
                .with_mem(MemRef::new(addr, 8, value)),
        );
        self
    }

    /// Pushes a branch of the given kind.
    pub fn branch(&mut self, kind: BranchKind) -> &mut Self {
        let pc = self.next_pc();
        self.uops.push(Uop::new(pc, UopKind::Branch(kind)));
        self
    }

    /// Pushes a synchronisation primitive.
    pub fn sync(&mut self, kind: SyncKind) -> &mut Self {
        let pc = self.next_pc();
        self.uops.push(Uop::new(pc, UopKind::Sync(kind)));
        self
    }

    /// Pushes a no-op.
    pub fn nop(&mut self) -> &mut Self {
        let pc = self.next_pc();
        self.uops.push(Uop::new(pc, UopKind::Nop));
        self
    }

    /// Number of micro-ops queued so far.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether no micro-ops have been queued.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Finishes the trace.
    pub fn build(self) -> Trace {
        Trace {
            name: self.name,
            uops: self.uops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_increasing_pcs() {
        let mut b = TraceBuilder::new("t");
        b.nop().nop().nop();
        let t = b.build();
        assert!(t[0].pc < t[1].pc && t[1].pc < t[2].pc);
    }

    #[test]
    fn mix_counts_every_category() {
        let mut b = TraceBuilder::new("t");
        b.alu(ArchReg::int(0), &[]);
        b.fp_alu(ArchReg::fp(0), &[]);
        b.load(ArchReg::int(1), 0x40);
        b.store(ArchReg::int(1), 0x80, 9);
        b.branch(BranchKind::Call);
        b.sync(SyncKind::Fence);
        b.nop();
        let m = b.build().mix();
        assert_eq!(m.total, 7);
        assert_eq!(m.int_ops, 1);
        assert_eq!(m.fp_ops, 1);
        assert_eq!(m.loads, 1);
        assert_eq!(m.stores, 1);
        assert_eq!(m.branches, 1);
        assert_eq!(m.syncs, 1);
        assert_eq!(m.nops, 1);
        // alu, fp_alu and load define registers.
        assert_eq!(m.reg_defs, 3);
    }

    #[test]
    fn store_fraction_and_def_fraction() {
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0, 0);
        b.nop();
        let m = b.build().mix();
        assert!((m.store_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(m.def_fraction(), 0.0);
    }

    #[test]
    fn empty_mix_fractions_are_zero() {
        let m = Trace::from_uops("e", Vec::new()).mix();
        assert_eq!(m.store_fraction(), 0.0);
        assert_eq!(m.def_fraction(), 0.0);
    }

    #[test]
    fn footprint_counts_distinct_lines() {
        let mut b = TraceBuilder::new("t");
        b.load(ArchReg::int(0), 0x100);
        b.load(ArchReg::int(1), 0x104); // same line
        b.store(ArchReg::int(0), 0x200, 1);
        b.nop();
        let t = b.build();
        assert_eq!(t.footprint_lines(), 2);
        assert_eq!(Trace::from_uops("e", vec![]).footprint_lines(), 0);
    }

    #[test]
    fn trace_indexing_and_iteration() {
        let mut b = TraceBuilder::new("t");
        b.nop().nop();
        let t = b.build();
        assert_eq!(t.len(), 2);
        assert_eq!(t.iter().count(), 2);
        assert_eq!((&t).into_iter().count(), 2);
        assert!(t.get(5).is_none());
    }
}
