use std::fmt;

/// Number of architectural integer registers (x86_64 GPRs), per §7.13.
pub const NUM_INT_ARCH_REGS: usize = 16;

/// Number of architectural floating-point/vector registers (XMM), per §7.13.
pub const NUM_FP_ARCH_REGS: usize = 32;

/// Register class: the paper's core has split integer and floating-point
/// physical register files (180/168 entries in the default configuration),
/// so every architectural register carries its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// General-purpose integer register.
    Int,
    /// Floating-point / vector register.
    Fp,
}

impl RegClass {
    /// Number of architectural registers in this class.
    pub const fn arch_count(self) -> usize {
        match self {
            RegClass::Int => NUM_INT_ARCH_REGS,
            RegClass::Fp => NUM_FP_ARCH_REGS,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural register: class plus index within the class.
///
/// # Examples
///
/// ```
/// use ppa_isa::{ArchReg, RegClass};
///
/// let r = ArchReg::int(3);
/// assert_eq!(r.class(), RegClass::Int);
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "r3");
/// assert_eq!(ArchReg::fp(1).to_string(), "f1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg {
    class: RegClass,
    index: u8,
}

impl ArchReg {
    /// Creates an integer architectural register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_INT_ARCH_REGS`.
    pub const fn int(index: u8) -> Self {
        assert!(index < NUM_INT_ARCH_REGS as u8);
        ArchReg {
            class: RegClass::Int,
            index,
        }
    }

    /// Creates a floating-point architectural register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_FP_ARCH_REGS`.
    pub const fn fp(index: u8) -> Self {
        assert!(index < NUM_FP_ARCH_REGS as u8);
        ArchReg {
            class: RegClass::Fp,
            index,
        }
    }

    /// Creates a register of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the class's architectural register count.
    pub const fn new(class: RegClass, index: u8) -> Self {
        match class {
            RegClass::Int => ArchReg::int(index),
            RegClass::Fp => ArchReg::fp(index),
        }
    }

    /// The register's class.
    pub const fn class(self) -> RegClass {
        self.class
    }

    /// The register's index within its class.
    pub const fn index(self) -> u8 {
        self.index
    }

    /// A dense index over *all* architectural registers: integers first,
    /// then floating-point. Useful for flat rename tables.
    pub const fn flat_index(self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_INT_ARCH_REGS + self.index as usize,
        }
    }

    /// Total number of architectural registers across both classes.
    pub const fn flat_count() -> usize {
        NUM_INT_ARCH_REGS + NUM_FP_ARCH_REGS
    }

    /// Iterator over every architectural register (ints then fps).
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_INT_ARCH_REGS as u8)
            .map(ArchReg::int)
            .chain((0..NUM_FP_ARCH_REGS as u8).map(ArchReg::fp))
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_is_dense_and_unique() {
        let mut seen = vec![false; ArchReg::flat_count()];
        for r in ArchReg::all() {
            assert!(!seen[r.flat_index()], "duplicate flat index for {r}");
            seen[r.flat_index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn arch_counts_match_paper() {
        assert_eq!(RegClass::Int.arch_count(), 16);
        assert_eq!(RegClass::Fp.arch_count(), 32);
        assert_eq!(ArchReg::flat_count(), 48);
    }

    #[test]
    fn display_uses_r_and_f_prefixes() {
        assert_eq!(ArchReg::int(15).to_string(), "r15");
        assert_eq!(ArchReg::fp(31).to_string(), "f31");
    }

    #[test]
    #[should_panic]
    fn int_index_out_of_range_panics() {
        ArchReg::int(16);
    }

    #[test]
    #[should_panic]
    fn fp_index_out_of_range_panics() {
        ArchReg::fp(32);
    }
}
