//! A deterministic writer (and minimal reader) for the flat metrics
//! JSON format.
//!
//! Metrics serialize as a single object whose keys are dotted metric
//! names and whose values are numbers — nothing nested, so the file
//! diffs line-by-line and any JSON tool (or `python3 -c "import
//! json,sys; json.load(sys.stdin)"` in ci.sh) can consume it:
//!
//! ```json
//! {
//!   "grid.coord.lease.expired": 1,
//!   "span.fig11.sum": 153000000
//! }
//! ```
//!
//! The reader exists solely so a second tool can *merge* its metrics
//! into a file the first one wrote (`ppa-verify check
//! --metrics-json-merge results/bench_baseline.json`); it accepts
//! exactly the flat subset the writer emits, rejecting anything nested
//! with a typed error rather than guessing.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number, kept as written: integers render without a decimal
/// point so counters stay greppable, floats via Rust's shortest
/// round-trip formatting (deterministic for equal values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer (counters, summary counts).
    Int(u64),
    /// A finite float (gauges, sums, means).
    Float(f64),
}

impl Number {
    /// The value as `f64` regardless of representation.
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::Int(v) => *v as f64,
            Number::Float(v) => *v,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(v) => write!(f, "{v}"),
            // `{}` on f64 is shortest-round-trip and always includes
            // enough digits to reparse exactly; integral floats print
            // as "8", which is still a valid JSON number.
            Number::Float(v) => write!(f, "{v}"),
        }
    }
}

/// Escapes a string for use inside JSON quotes (metric names are
/// plain dotted identifiers today, but the writer must never emit
/// invalid JSON no matter what a caller names a metric).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders sorted `(key, number)` pairs as one flat JSON object, one
/// member per line, trailing newline included.
pub fn render_flat(pairs: &[(String, Number)]) -> String {
    if pairs.is_empty() {
        return "{}\n".to_string();
    }
    let mut out = String::from("{\n");
    for (i, (key, num)) in pairs.iter().enumerate() {
        let comma = if i + 1 == pairs.len() { "" } else { "," };
        out.push_str(&format!("  \"{}\": {num}{comma}\n", escape(key)));
    }
    out.push_str("}\n");
    out
}

/// A parse failure, with enough context to point at the offending
/// byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flat-JSON parse error at byte {}: {}",
            self.at, self.what
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, what: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            what: what.into(),
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex =
                                self.bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or(ParseError {
                                        at: self.pos,
                                        what: "truncated \\u escape".into(),
                                    })?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => out.push(c),
                                None => return self.err("bad \\u escape"),
                            }
                            self.pos += 4;
                        }
                        _ => return self.err("unsupported escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| ParseError {
                            at: self.pos,
                            what: "invalid UTF-8".into(),
                        })?;
                    let c = rest.chars().next().expect("non-empty by match arm");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Number, ParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        if text.is_empty() || text == "-" {
            return self.err("expected a number");
        }
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Number::Int(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Number::Float(v)),
            _ => self.err(format!("bad number {text:?}")),
        }
    }
}

/// Parses a flat `{"name": number, ...}` object as written by
/// [`render_flat`]. Nested values, arrays, strings, booleans, and
/// nulls are rejected: this reader merges metric files, it is not a
/// general JSON parser.
pub fn parse_flat(text: &str) -> Result<BTreeMap<String, Number>, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut out = BTreeMap::new();
    p.skip_ws();
    p.expect(b'{')?;
    p.skip_ws();
    if p.bytes.get(p.pos) == Some(&b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let num = p.number()?;
            out.insert(key, num);
            p.skip_ws();
            match p.bytes.get(p.pos) {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return p.err("expected ',' or '}'"),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data after object");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let pairs = vec![
            ("a.count".to_string(), Number::Int(3)),
            ("a.mean".to_string(), Number::Float(1.25)),
            ("big".to_string(), Number::Int(u64::MAX)),
            ("tiny".to_string(), Number::Float(1e-9)),
        ];
        let text = render_flat(&pairs);
        let parsed = parse_flat(&text).expect("round trip parses");
        assert_eq!(parsed.len(), pairs.len());
        for (k, v) in &pairs {
            assert_eq!(parsed.get(k).unwrap().as_f64(), v.as_f64(), "key {k}");
        }
        assert_eq!(parsed.get("big"), Some(&Number::Int(u64::MAX)));
    }

    #[test]
    fn empty_object_round_trips() {
        assert_eq!(render_flat(&[]), "{}\n");
        assert!(parse_flat("{}\n").unwrap().is_empty());
        assert!(parse_flat("  { }  ").unwrap().is_empty());
    }

    #[test]
    fn escaping_keeps_output_parseable() {
        let pairs = vec![("we\"ird\\name\n".to_string(), Number::Int(1))];
        let text = render_flat(&pairs);
        let parsed = parse_flat(&text).expect("escaped key parses");
        assert_eq!(parsed.get("we\"ird\\name\n"), Some(&Number::Int(1)));
    }

    #[test]
    fn rejects_nested_and_malformed() {
        for bad in [
            "",
            "[1,2]",
            "{\"a\": {\"b\": 1}}",
            "{\"a\": \"str\"}",
            "{\"a\": true}",
            "{\"a\": 1,}",
            "{\"a\": 1} trailing",
            "{\"a\": NaN}",
        ] {
            assert!(parse_flat(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn negative_and_exponent_numbers_parse_as_floats() {
        let m = parse_flat("{\"a\": -3, \"b\": 2.5e3}").unwrap();
        assert_eq!(m.get("a").unwrap().as_f64(), -3.0);
        assert_eq!(m.get("b").unwrap().as_f64(), 2500.0);
    }
}
