//! `ppa-obs` — unified telemetry for the PPA harnesses.
//!
//! The repo spans five subsystems (core, smp, pool, grid, verify) and
//! until this crate existed none of them had a shared way to report
//! what they were doing: `PoolStats` was collected and never surfaced,
//! the grid coordinator logged via ad-hoc `eprintln!`, and `repro`
//! timings went to stderr in an untested free-form format. This crate
//! is the observation surface for all of them, built (per the offline
//! dependency policy in ROADMAP.md) from `std` and `ppa-stats` alone:
//!
//! * [`registry`] — a process-global hierarchical metrics registry.
//!   Counters, gauges, and summaries live under stable dotted names
//!   (`grid.coord.lease.expired`, `verify.check.cycles_scanned`);
//!   increments are a single atomic op, and [`registry::snapshot`]
//!   renders stable-sorted text tables and JSON.
//! * [`span`] — RAII wall-clock spans. Each closed span aggregates
//!   into a per-label count/total/min/max summary (mirrored into the
//!   registry under `span.<label>`) and, when a trace sink is enabled,
//!   records a Chrome `trace_event` that [`span::write_trace`] emits
//!   as a JSON timeline loadable in `chrome://tracing` / Perfetto.
//! * [`log`] — a leveled, target-prefixed stderr logger configured via
//!   `PPA_LOG=error|warn|info|debug` (default `warn`), replacing the
//!   grid/pool `eprintln!` scatter.
//!
//! # Determinism rules
//!
//! Simulated *results* on stdout must stay byte-identical at any job
//! or worker count — the invariant `ppa-pool` and `ppa-grid` already
//! enforce. Telemetry therefore never touches stdout: metrics and
//! traces go to stderr or to files named by the caller, and every
//! renderer sorts by name so two runs of the same binary produce
//! diffable output even though raw timings differ.
//!
//! # Examples
//!
//! ```
//! ppa_obs::registry::counter("doc.example.hits").inc();
//! {
//!     let _s = ppa_obs::span::span("doc.example.work");
//!     // ... timed region ...
//! }
//! let snap = ppa_obs::registry::snapshot();
//! assert!(snap.to_json().contains("doc.example.hits"));
//! ```

pub mod json;
pub mod log;
pub mod registry;
pub mod span;

pub use log::Level;
pub use registry::{snapshot, Snapshot};
pub use span::span;
