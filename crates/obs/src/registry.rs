//! The process-global metrics registry.
//!
//! Metrics live under stable dotted names mirroring the subsystem that
//! owns them (`pool.steals`, `grid.coord.lease.expired`,
//! `verify.check.cycles_scanned`). Three kinds exist:
//!
//! * **counters** — monotonic `u64` event counts; incrementing is one
//!   relaxed atomic add, cheap enough for hot paths.
//! * **gauges** — last-write-wins `f64` levels (live workers, derived
//!   rates like `sim.cycles_per_sec`).
//! * **summaries** — streaming count/sum/min/max/mean over `f64`
//!   samples, backed by [`ppa_stats::Summary`]. Span aggregates from
//!   [`crate::span`] land here under `span.<label>` (values in ns).
//!
//! Handles are cheap clones of the underlying atomics, so callers
//! resolve a name once and increment lock-free afterwards. Snapshots
//! are stable-sorted, which is what makes text/JSON renders diffable
//! across runs.

use crate::json;
use ppa_stats::TextTable;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Summary(Arc<Mutex<ppa_stats::Summary>>),
}

fn metrics() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// A handle to a monotonic event counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the count; for mirroring an externally accumulated
    /// total (e.g. `PoolStats`) into the registry.
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A handle to a last-write-wins level.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the level.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A handle to a streaming sample summary.
#[derive(Clone)]
pub struct SummaryHandle(Arc<Mutex<ppa_stats::Summary>>);

impl SummaryHandle {
    /// Records one sample.
    pub fn record(&self, v: f64) {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).record(v);
    }

    /// A copy of the current aggregate.
    pub fn get(&self) -> ppa_stats::Summary {
        *self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Resolves (registering on first use) the counter called `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Counter {
    let mut map = metrics().lock().unwrap_or_else(|e| e.into_inner());
    match map
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
    {
        Metric::Counter(c) => Counter(Arc::clone(c)),
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// Resolves (registering on first use) the gauge called `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Gauge {
    let mut map = metrics().lock().unwrap_or_else(|e| e.into_inner());
    match map
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
    {
        Metric::Gauge(g) => Gauge(Arc::clone(g)),
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// Resolves (registering on first use) the summary called `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn summary(name: &str) -> SummaryHandle {
    let mut map = metrics().lock().unwrap_or_else(|e| e.into_inner());
    match map
        .entry(name.to_string())
        .or_insert_with(|| Metric::Summary(Arc::new(Mutex::new(ppa_stats::Summary::new()))))
    {
        Metric::Summary(s) => SummaryHandle(Arc::clone(s)),
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A counter's count.
    Counter(u64),
    /// A gauge's level.
    Gauge(f64),
    /// A summary's aggregate.
    Summary(ppa_stats::Summary),
}

/// A point-in-time, stable-sorted copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    entries: Vec<(String, Value)>,
}

/// Takes a snapshot of the whole registry, sorted by metric name.
pub fn snapshot() -> Snapshot {
    let map = metrics().lock().unwrap_or_else(|e| e.into_inner());
    let entries = map
        .iter()
        .map(|(name, m)| {
            let v = match m {
                Metric::Counter(c) => Value::Counter(c.load(Ordering::Relaxed)),
                Metric::Gauge(g) => Value::Gauge(f64::from_bits(g.load(Ordering::Relaxed))),
                Metric::Summary(s) => Value::Summary(*s.lock().unwrap_or_else(|e| e.into_inner())),
            };
            (name.clone(), v)
        })
        .collect();
    Snapshot { entries }
}

impl Snapshot {
    /// The `(name, value)` entries, sorted by name.
    pub fn entries(&self) -> &[(String, Value)] {
        &self.entries
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up one metric by exact name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The change since `earlier`: counters and summary count/sum
    /// subtract (saturating at zero), gauges and summary min/max keep
    /// this snapshot's value. Metrics absent from `earlier` pass
    /// through unchanged.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, v)| {
                let d = match (v, earlier.get(name)) {
                    (Value::Counter(now), Some(Value::Counter(then))) => {
                        Value::Counter(now.saturating_sub(*then))
                    }
                    _ => *v,
                };
                (name.clone(), d)
            })
            .collect();
        Snapshot { entries }
    }

    /// Flattens to `(key, number)` pairs: counters keep their name,
    /// gauges keep their name, summaries expand to `.count`, `.sum`,
    /// `.min`, `.max`, and `.mean` suffixes. Non-finite values (an
    /// empty summary's min/max) are skipped so every emitted number is
    /// valid JSON. The result stays sorted by key.
    pub fn flat(&self) -> Vec<(String, json::Number)> {
        let mut out = Vec::with_capacity(self.entries.len());
        for (name, v) in &self.entries {
            match v {
                Value::Counter(c) => out.push((name.clone(), json::Number::Int(*c))),
                Value::Gauge(g) => {
                    if g.is_finite() {
                        out.push((name.clone(), json::Number::Float(*g)));
                    }
                }
                Value::Summary(s) => {
                    out.push((format!("{name}.count"), json::Number::Int(s.count())));
                    if s.is_empty() {
                        continue; // no samples: .sum/.min/.max/.mean would be padding
                    }
                    for (suffix, val) in [
                        ("sum", s.sum()),
                        ("min", s.min()),
                        ("max", s.max()),
                        ("mean", s.mean()),
                    ] {
                        if val.is_finite() {
                            out.push((format!("{name}.{suffix}"), json::Number::Float(val)));
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Renders an aligned two-column table, sorted by metric name.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(["metric", "value"]);
        for (key, num) in self.flat() {
            t.row([key.as_str(), &num.to_string()]);
        }
        t
    }

    /// Renders the flat form as one deterministic JSON object
    /// (sorted keys, one `"name": number` member per line).
    pub fn to_json(&self) -> String {
        json::render_flat(&self.flat())
    }

    /// Writes [`Snapshot::to_json`] to `path`. With `merge`, keys
    /// already present in an existing flat-JSON file at `path` are
    /// preserved unless this snapshot overwrites them — this is how
    /// `ppa-verify check --metrics-json-merge` folds its metrics into
    /// the `results/bench_baseline.json` that `repro` wrote.
    pub fn write_json_file(&self, path: &Path, merge: bool) -> io::Result<()> {
        let mut merged: BTreeMap<String, json::Number> = BTreeMap::new();
        if merge {
            if let Ok(existing) = std::fs::read_to_string(path) {
                let parsed = json::parse_flat(&existing).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("cannot merge into {}: {e}", path.display()),
                    )
                })?;
                merged.extend(parsed);
            }
        }
        merged.extend(self.flat());
        let pairs: Vec<(String, json::Number)> = merged.into_iter().collect();
        std::fs::write(path, json::render_flat(&pairs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = counter("test.registry.hits");
        let before = snapshot();
        c.inc();
        c.add(4);
        let after = snapshot();
        let d = after.diff(&before);
        assert_eq!(d.get("test.registry.hits"), Some(&Value::Counter(5)));
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let g = gauge("test.registry.level");
        g.set(3.5);
        g.set(2.0);
        assert_eq!(g.get(), 2.0);
        assert_eq!(
            snapshot().get("test.registry.level"),
            Some(&Value::Gauge(2.0))
        );
    }

    #[test]
    fn summaries_expand_in_flat_form() {
        let s = summary("test.registry.lat");
        s.record(1.0);
        s.record(3.0);
        let flat = snapshot().flat();
        let get = |k: &str| {
            flat.iter()
                .find(|(name, _)| name == k)
                .map(|(_, n)| n.as_f64())
        };
        assert!(get("test.registry.lat.count").unwrap() >= 2.0);
        assert!(get("test.registry.lat.min").unwrap() <= 1.0);
        assert!(get("test.registry.lat.max").unwrap() >= 3.0);
    }

    #[test]
    fn empty_summary_skips_non_finite_members() {
        summary("test.registry.empty");
        let flat = snapshot().flat();
        assert!(flat.iter().any(|(k, _)| k == "test.registry.empty.count"));
        assert!(!flat.iter().any(|(k, _)| k == "test.registry.empty.min"));
        assert!(!flat.iter().any(|(k, _)| k == "test.registry.empty.max"));
    }

    #[test]
    fn snapshot_is_sorted_and_json_is_stable() {
        counter("test.sorted.b").inc();
        counter("test.sorted.a").inc();
        let snap = snapshot();
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(snap.to_json(), snap.to_json());
        let ja = snap.to_json();
        let a_pos = ja.find("test.sorted.a").unwrap();
        let b_pos = ja.find("test.sorted.b").unwrap();
        assert!(a_pos < b_pos);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        counter("test.registry.conflict");
        gauge("test.registry.conflict");
    }

    #[test]
    fn merge_preserves_foreign_keys() {
        let dir = std::env::temp_dir().join("ppa_obs_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merged.json");
        std::fs::write(&path, "{\n  \"alien.key\": 42\n}\n").unwrap();
        counter("test.registry.merge").inc();
        snapshot().write_json_file(&path, true).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("alien.key"), "foreign key dropped:\n{text}");
        assert!(text.contains("test.registry.merge"));
        let reparsed = json::parse_flat(&text).unwrap();
        assert_eq!(reparsed.get("alien.key").unwrap().as_f64(), 42.0);
    }
}
