//! Scoped wall-clock tracing spans.
//!
//! A [`span`] is an RAII timer: it measures from construction to drop,
//! nests naturally (inner guards drop first), and is safe to open on
//! any thread — `repro` opens one per experiment inside pool workers.
//! Closing a span does two things:
//!
//! 1. **Aggregates** the duration into the metrics registry under
//!    `span.<label>` (a [`ppa_stats::Summary`] in nanoseconds), from
//!    which [`timing_lines`] renders the one stable stderr format the
//!    harnesses print and tests assert.
//! 2. **Records a trace event** when a sink has been armed with
//!    [`enable_trace`]: a Chrome `trace_event` "complete" (`ph:"X"`)
//!    entry with microsecond `ts`/`dur` relative to a process-global
//!    epoch and a small dense `tid`. [`write_trace`] emits the sorted
//!    timeline as JSON that loads directly in `chrome://tracing` or
//!    [Perfetto](https://ui.perfetto.dev) (`--trace-out FILE` on
//!    `repro`).
//!
//! Raw timings are inherently nondeterministic; determinism here means
//! *shape*: labels are stable, [`timing_lines`] sorts by label, and
//! [`write_trace`] sorts by timestamp, so runs are comparable even
//! though the numbers differ.

use crate::registry;
use ppa_stats::fmt_duration;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The process-global epoch all trace timestamps are relative to
/// (armed on first use, so `ts` 0 is "first telemetry activity").
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Dense per-thread ids for the trace timeline (OS thread ids are
/// neither small nor stable across runs).
fn trace_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

#[derive(Debug, Clone)]
struct TraceEvent {
    name: String,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
}

fn sink() -> &'static Mutex<Option<Vec<TraceEvent>>> {
    static SINK: OnceLock<Mutex<Option<Vec<TraceEvent>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Arms the trace sink: spans closed from now on are recorded as
/// trace events (off by default — aggregation alone costs one summary
/// update per span, the timeline costs memory per event).
pub fn enable_trace() {
    let mut guard = sink().lock().unwrap_or_else(|e| e.into_inner());
    if guard.is_none() {
        *guard = Some(Vec::new());
    }
    epoch(); // pin ts 0 at (or before) the first recorded span
}

/// An open span; the measured region ends when this guard drops.
#[must_use = "a span measures until dropped; binding it to _ closes it immediately"]
pub struct SpanGuard {
    label: String,
    start: Instant,
}

/// Opens a span labelled `label`. Labels are dotted like metric names
/// (`experiment.fig11`); every close folds into `span.<label>` in the
/// registry.
pub fn span(label: &str) -> SpanGuard {
    SpanGuard {
        label: label.to_string(),
        start: Instant::now(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = Instant::now();
        let dur = end.duration_since(self.start);
        registry::summary(&format!("span.{}", self.label)).record(dur.as_nanos() as f64);
        let mut guard = sink().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(events) = guard.as_mut() {
            let ts_us = self.start.saturating_duration_since(epoch()).as_micros() as u64;
            events.push(TraceEvent {
                name: self.label.clone(),
                ts_us,
                dur_us: dur.as_micros() as u64,
                tid: trace_tid(),
            });
        }
    }
}

/// Renders the recorded timeline as Chrome `trace_event` JSON: a
/// `traceEvents` array of complete (`ph:"X"`) events, one per line,
/// sorted by `ts` then `tid`. Returns the number of events written.
pub fn write_trace(path: &std::path::Path) -> std::io::Result<usize> {
    let events: Vec<TraceEvent> = {
        let guard = sink().lock().unwrap_or_else(|e| e.into_inner());
        guard.as_ref().cloned().unwrap_or_default()
    };
    let mut events = events;
    events.sort_by_key(|e| (e.ts_us, e.tid, e.name.clone()));
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        let comma = if i + 1 == events.len() { "" } else { "," };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}{comma}\n",
            crate::json::escape(&e.name),
            e.ts_us,
            e.dur_us,
            e.tid,
        ));
    }
    out.push_str("]}\n");
    std::fs::write(path, out)?;
    Ok(events.len())
}

/// Structurally validates a timeline written by [`write_trace`]:
/// the `traceEvents` envelope, one complete (`ph:"X"`) event per line
/// with `ts`/`dur`/`pid`/`tid` fields, and non-decreasing `ts`.
/// Returns the event count. The trace-out acceptance test and ci.sh
/// both call this instead of eyeballing Perfetto.
pub fn validate_trace(text: &str) -> Result<usize, String> {
    let mut lines = text.lines();
    if lines.next() != Some("{\"traceEvents\":[") {
        return Err("missing {\"traceEvents\":[ envelope".into());
    }
    let body: Vec<&str> = lines.collect();
    let Some((last, events)) = body.split_last() else {
        return Err("truncated file".into());
    };
    if *last != "]}" {
        return Err(format!("bad closing line {last:?}"));
    }
    let mut prev_ts = 0u64;
    for (i, line) in events.iter().enumerate() {
        let line = line.strip_suffix(',').unwrap_or(line);
        if !line.starts_with("{\"name\":\"") || !line.ends_with('}') {
            return Err(format!("event {i} is not an object: {line:?}"));
        }
        if !line.contains("\"ph\":\"X\"") {
            return Err(format!("event {i} is not a complete (X) event"));
        }
        let field = |key: &str| -> Result<u64, String> {
            let pat = format!("\"{key}\":");
            let at = line
                .find(&pat)
                .ok_or_else(|| format!("event {i} missing {key}"))?;
            let digits: String = line[at + pat.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits
                .parse()
                .map_err(|_| format!("event {i} has non-numeric {key}"))
        };
        let ts = field("ts")?;
        field("dur")?;
        field("pid")?;
        field("tid")?;
        if ts < prev_ts {
            return Err(format!("event {i} ts {ts} < previous {prev_ts} (unsorted)"));
        }
        prev_ts = ts;
    }
    Ok(events.len())
}

/// Renders one aggregated timing line per span label matching
/// `prefix`, sorted by label — THE stable stderr timing format:
///
/// ```text
/// <label>: total=<dur> count=<n> min=<dur> max=<dur>
/// ```
///
/// Durations use [`ppa_stats::fmt_duration`]; `repro` prints these
/// after a run in place of its former free-form per-experiment lines.
pub fn timing_lines(prefix: &str) -> Vec<String> {
    let snap = registry::snapshot();
    let mut out = Vec::new();
    for (name, value) in snap.entries() {
        let registry::Value::Summary(s) = value else {
            continue;
        };
        let Some(label) = name.strip_prefix("span.") else {
            continue;
        };
        if !label.starts_with(prefix) || s.is_empty() {
            continue;
        }
        out.push(fmt_timing_line(label, s));
    }
    out
}

fn fmt_timing_line(label: &str, s: &ppa_stats::Summary) -> String {
    let ns = |v: f64| fmt_duration(Duration::from_nanos(v as u64));
    format!(
        "{label}: total={} count={} min={} max={}",
        ns(s.sum()),
        s.count(),
        ns(s.min()),
        ns(s.max()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_into_the_registry() {
        for _ in 0..3 {
            let _s = span("test.span.agg");
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = registry::snapshot();
        let Some(registry::Value::Summary(s)) = snap.get("span.test.span.agg") else {
            panic!("span summary not registered");
        };
        assert_eq!(s.count(), 3);
        assert!(s.min() >= 1_000_000.0, "min below 1ms: {}", s.min());
        assert!(s.sum() >= s.max());
    }

    #[test]
    fn timing_line_has_the_stable_format() {
        {
            let _s = span("test.span.format");
            std::thread::sleep(Duration::from_millis(2));
        }
        let lines = timing_lines("test.span.format");
        assert_eq!(lines.len(), 1, "got {lines:?}");
        let line = &lines[0];
        // Exactly: "<label>: total=<dur> count=<n> min=<dur> max=<dur>"
        let (label, rest) = line.split_once(": ").expect("label separator");
        assert_eq!(label, "test.span.format");
        let parts: Vec<&str> = rest.split(' ').collect();
        assert_eq!(parts.len(), 4, "wrong field count in {line:?}");
        for (part, key) in parts.iter().zip(["total=", "count=", "min=", "max="]) {
            assert!(
                part.starts_with(key),
                "field {part:?} missing {key} in {line:?}"
            );
        }
        assert_eq!(parts[1], "count=1");
        for dur_field in [parts[0], parts[2], parts[3]] {
            let v = dur_field.split_once('=').unwrap().1;
            assert!(
                v.ends_with("ms") || v.ends_with('s'),
                "duration field {v:?} not fmt_duration-formatted"
            );
        }
    }

    #[test]
    fn trace_round_trip_validates() {
        enable_trace();
        {
            let _outer = span("test.trace.outer");
            let _inner = span("test.trace.inner");
            std::thread::sleep(Duration::from_millis(1));
        }
        let dir = std::env::temp_dir().join("ppa_obs_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let written = write_trace(&path).expect("trace writes");
        assert!(
            written >= 2,
            "expected at least our 2 events, got {written}"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let validated = validate_trace(&text).expect("trace validates");
        assert_eq!(validated, written);
        assert!(text.contains("\"name\":\"test.trace.inner\""));
    }

    #[test]
    fn validate_trace_rejects_structural_damage() {
        enable_trace();
        {
            let _s = span("test.trace.damage");
        }
        let dir = std::env::temp_dir().join("ppa_obs_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("damage.json");
        write_trace(&path).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();
        assert!(validate_trace("").is_err());
        assert!(validate_trace("{\"traceEvents\":[\n]}").is_ok());
        assert!(validate_trace(&good.replace("\"ph\":\"X\"", "\"ph\":\"B\"")).is_err());
        assert!(validate_trace(&good.replace("\"ts\":", "\"xx\":")).is_err());
        let unsorted = "{\"traceEvents\":[\n\
            {\"name\":\"a\",\"ph\":\"X\",\"ts\":9,\"dur\":1,\"pid\":1,\"tid\":1},\n\
            {\"name\":\"b\",\"ph\":\"X\",\"ts\":3,\"dur\":1,\"pid\":1,\"tid\":1}\n\
            ]}";
        assert!(validate_trace(unsorted).is_err(), "unsorted ts accepted");
    }
}
