//! A leveled, target-prefixed stderr logger.
//!
//! The grid coordinator, workers, and CLI used to narrate via bare
//! `eprintln!`; this module gives that chatter levels so the default
//! experience is quiet. The level comes from `PPA_LOG`
//! (`error|warn|info|debug`, default [`Level::Warn`]) and can be
//! overridden programmatically — `ppa-grid serve|work -q/-v/-vv` maps
//! to error/info/debug via [`set_level`].
//!
//! Lines print as `<target>: <message>` — the target names the
//! subsystem (`grid.coord`, `grid.worker`), matching the metric
//! namespace. Output goes to stderr only, preserving the stdout
//! byte-identity invariant.
//!
//! # Examples
//!
//! ```
//! ppa_obs::log::set_level(ppa_obs::Level::Info);
//! ppa_obs::info!("doc.example", "connected to {}", "127.0.0.1:9");
//! assert!(ppa_obs::log::enabled(ppa_obs::Level::Info));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The operation failed; the caller will see an error anyway, but
    /// this is where the details go.
    Error = 0,
    /// Something degraded but recoverable (a worker died mid-lease,
    /// a unit is being re-dispatched).
    Warn = 1,
    /// Progress narration (listening, connected, finished) — the
    /// pre-logger `eprintln!` chatter lives here.
    Info = 2,
    /// Per-unit/per-message detail for debugging protocol issues.
    Debug = 3,
}

impl Level {
    fn from_env(s: &str) -> Option<Level> {
        match s.trim() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

const UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

/// The active level: the last [`set_level`], else `PPA_LOG`, else
/// [`Level::Warn`].
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        UNSET => {
            let from_env = std::env::var("PPA_LOG")
                .ok()
                .and_then(|s| Level::from_env(&s))
                .unwrap_or(Level::Warn);
            // Racing first calls agree (the env doesn't change), so a
            // plain store is fine.
            LEVEL.store(from_env as u8, Ordering::Relaxed);
            from_env
        }
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Overrides the level (CLI `-q`/`-v` flags win over `PPA_LOG`).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether messages at `l` currently print.
pub fn enabled(l: Level) -> bool {
    l <= level()
}

/// Prints `<target>: <message>` to stderr if `l` is enabled. Use the
/// [`crate::error!`]/[`crate::warn!`]/[`crate::info!`]/[`crate::debug!`]
/// macros rather than calling this directly.
pub fn log(l: Level, target: &str, args: fmt::Arguments<'_>) {
    if enabled(l) {
        eprintln!("{target}: {args}");
    }
}

/// Logs at [`Level::Error`]: `ppa_obs::error!("grid.coord", "bind failed: {e}")`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::log($crate::Level::Error, $target, ::std::format_args!($($arg)+))
    };
}

/// Logs at [`Level::Warn`]: `ppa_obs::warn!("grid.coord", "worker {w} lost")`.
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::log($crate::Level::Warn, $target, ::std::format_args!($($arg)+))
    };
}

/// Logs at [`Level::Info`]: `ppa_obs::info!("grid.worker", "connected")`.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::log($crate::Level::Info, $target, ::std::format_args!($($arg)+))
    };
}

/// Logs at [`Level::Debug`]: `ppa_obs::debug!("grid.proto", "frame {n} ok")`.
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::log($crate::Level::Debug, $target, ::std::format_args!($($arg)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn set_level_gates_enabled() {
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_level(Level::Warn);
    }

    #[test]
    fn env_strings_parse() {
        assert_eq!(Level::from_env("error"), Some(Level::Error));
        assert_eq!(Level::from_env(" warn "), Some(Level::Warn));
        assert_eq!(Level::from_env("warning"), Some(Level::Warn));
        assert_eq!(Level::from_env("info"), Some(Level::Info));
        assert_eq!(Level::from_env("debug"), Some(Level::Debug));
        assert_eq!(Level::from_env("verbose"), None);
    }

    #[test]
    fn macros_format_lazily_and_compile() {
        set_level(Level::Warn);
        // These must compile with format args and not print (level
        // gates them); output correctness is eyeballed via stderr in
        // the integration tests.
        crate::info!("test.log", "hidden {}", 1);
        crate::debug!("test.log", "hidden {}", 2);
        set_level(Level::Warn);
    }
}
