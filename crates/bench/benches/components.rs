//! Benches for the simulator's building blocks: caches, NVM, the write
//! buffer, trace generation, and the baseline compiler passes.

use ppa_bench::harness::bench_function;
use ppa_isa::transform::{CapriPass, ReplayCachePass, TracePass};
use ppa_mem::{Cache, CacheConfig, MemConfig, MemorySystem, Nvm, NvmConfig, WriteBuffer};
use ppa_workloads::registry;
use std::hint::black_box;

fn bench_cache() {
    bench_function("cache", "l1_hit", |b| {
        let mut cache = Cache::new(CacheConfig::new(64 * 1024, 8, 4));
        cache.access(0x1000, false, 0);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(cache.access(black_box(0x1000), false, t))
        })
    });
    bench_function("cache", "l1_streaming_misses", |b| {
        let mut cache = Cache::new(CacheConfig::new(64 * 1024, 8, 4));
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            black_box(cache.access(black_box(addr), true, addr))
        })
    });
    bench_function("cache", "dram_cache_sparse", |b| {
        let mut cache = Cache::new(CacheConfig::new(4 << 30, 1, 60));
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(0x9e37_79b9).wrapping_mul(3) & 0xffff_ffc0;
            black_box(cache.access(black_box(addr), false, addr))
        })
    });
}

fn bench_nvm() {
    bench_function("nvm", "wpq_write", |b| {
        let mut nvm = Nvm::new(NvmConfig::paper_default());
        let mut now = 0u64;
        let mut addr = 0u64;
        b.iter(|| {
            now += 64;
            addr += 64;
            black_box(nvm.enqueue_write(addr, now).ok())
        })
    });
    bench_function("nvm", "write_buffer_coalesce", |b| {
        let mut wb = WriteBuffer::new(16, true);
        wb.enqueue(0x1000, 0);
        b.iter(|| black_box(wb.enqueue(black_box(0x1000), 1)))
    });
}

fn bench_memory_system() {
    bench_function("memory_system", "load_hot", |b| {
        let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
        mem.load(0, 0x4000, 0);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            black_box(mem.load(0, black_box(0x4000), now))
        })
    });
    bench_function("memory_system", "store_commit_path", |b| {
        let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            let lat = mem.store_merge(0, 0x8000, now);
            mem.commit_store_value(0x8000, now);
            mem.persist_enqueue(0, 0x8000, now);
            mem.tick(now);
            black_box(lat)
        })
    });
}

fn bench_workloads() {
    let app = registry::by_name("mcf").expect("mcf exists");
    bench_function("workloads", "generate_10k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(app.generate(10_000, seed))
        })
    });
    let raw = app.generate(10_000, 1);
    bench_function("workloads", "replaycache_pass_10k", |b| {
        b.iter(|| black_box(ReplayCachePass::new().apply(black_box(&raw))))
    });
    bench_function("workloads", "capri_pass_10k", |b| {
        b.iter(|| black_box(CapriPass::new().apply(black_box(&raw))))
    });
}

fn main() {
    bench_cache();
    bench_nvm();
    bench_memory_system();
    bench_workloads();
}
