//! Benches timing one representative measurement point of each paper
//! experiment, so `cargo bench` exercises every harness path. The full
//! tables come from the `repro` binary — these benches answer "how long
//! does one experimental data point take to simulate".

use ppa_bench::harness::bench_function;
use ppa_mem::NvmConfig;
use ppa_sim::{inject_failure, Machine, SystemConfig};
use ppa_workloads::registry;
use std::hint::black_box;

const LEN: usize = 6_000;

fn point(cfg: SystemConfig, app: &str) -> u64 {
    let app = registry::by_name(app).expect("known app");
    Machine::new(cfg).run_app(&app, LEN, 1).cycles
}

fn main() {
    bench_function("figures", "fig1_replaycache_point", |b| {
        b.iter(|| black_box(point(SystemConfig::replay_cache(), "gcc")))
    });
    bench_function("figures", "fig8_ppa_point", |b| {
        b.iter(|| black_box(point(SystemConfig::ppa(), "gcc")))
    });
    bench_function("figures", "fig8_capri_point", |b| {
        b.iter(|| black_box(point(SystemConfig::capri(), "gcc")))
    });
    bench_function("figures", "fig9_dram_only_point", |b| {
        b.iter(|| black_box(point(SystemConfig::dram_only(), "lbm")))
    });
    bench_function("figures", "fig10_psp_point", |b| {
        b.iter(|| black_box(point(SystemConfig::eadr_bbb(), "libquantum")))
    });
    bench_function("figures", "fig14_deep_hierarchy_point", |b| {
        b.iter(|| black_box(point(SystemConfig::ppa().with_deep_hierarchy(), "gcc")))
    });
    bench_function("figures", "fig15_wpq8_point", |b| {
        let mut cfg = SystemConfig::ppa();
        cfg.mem = cfg
            .mem
            .with_nvm(NvmConfig::paper_default().with_wpq_entries(8));
        b.iter(|| black_box(point(cfg, "rb")))
    });
    bench_function("figures", "fig16_prf80_point", |b| {
        let mut cfg = SystemConfig::ppa();
        cfg.core = cfg.core.with_prf(80, 80);
        b.iter(|| black_box(point(cfg, "hmmer")))
    });
    bench_function("figures", "fig17_csq10_point", |b| {
        let mut cfg = SystemConfig::ppa();
        cfg.core = cfg.core.with_csq(10);
        b.iter(|| black_box(point(cfg, "gcc")))
    });
    bench_function("figures", "fig18_bw1_point", |b| {
        let mut cfg = SystemConfig::ppa();
        cfg.mem = cfg
            .mem
            .with_nvm(NvmConfig::paper_default().with_write_bandwidth_gbps(1.0));
        b.iter(|| black_box(point(cfg, "rb")))
    });
    bench_function("figures", "fig19_8threads_point", |b| {
        let app = ppa_workloads::shared::by_name("counters").expect("counters exists");
        b.iter(|| {
            let traces = app.generate_threads(LEN / 3, 1, 8);
            black_box(
                ppa_smp::SmpSystem::new(SystemConfig::ppa().with_threads(8), traces)
                    .run()
                    .cycles,
            )
        })
    });
    bench_function("figures", "ckpt_failure_injection", |b| {
        let app = registry::by_name("tpcc").expect("tpcc exists");
        let trace = app.generate(LEN, 1);
        b.iter(|| black_box(inject_failure(&SystemConfig::ppa(), &trace, 2_000)))
    });
}
