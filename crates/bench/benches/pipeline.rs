//! Benches for the cycle-level core: simulation throughput per
//! persistence scheme, plus the checkpoint/recovery hot path.

use ppa_bench::harness::bench_function;
use ppa_core::{replay_stores, Core, CoreConfig, InOrderCore, PersistenceMode};
use ppa_mem::{MemConfig, MemorySystem};
use ppa_sim::{Machine, SystemConfig};
use ppa_workloads::registry;
use std::hint::black_box;

const LEN: usize = 10_000;

fn bench_modes() {
    let app = registry::by_name("sjeng").expect("sjeng exists");
    for (name, cfg) in [
        ("baseline", SystemConfig::baseline()),
        ("ppa", SystemConfig::ppa()),
        ("replaycache", SystemConfig::replay_cache()),
        ("capri", SystemConfig::capri()),
    ] {
        bench_function("pipeline", name, |b| {
            b.iter(|| black_box(Machine::new(cfg).run_app(&app, LEN, 1)))
        });
    }
    bench_function("pipeline", "in_order", |b| {
        let trace = app.generate(LEN, 1);
        b.iter(|| {
            let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
            let mut core = InOrderCore::new(40, 0);
            black_box(core.run(&trace, &mut mem))
        })
    });
}

fn bench_checkpoint_recovery() {
    let app = registry::by_name("tpcc").expect("tpcc exists");
    let trace = app.generate(LEN, 1);
    // Run a PPA core part-way to populate the CSQ/MaskReg.
    let cfg = CoreConfig::paper_default(PersistenceMode::Ppa);
    let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
    let mut core = Core::new(cfg, 0);
    for now in 0..3_000 {
        core.step(&trace, &mut mem, now);
        mem.tick(now);
    }

    bench_function("recovery", "jit_checkpoint", |b| {
        b.iter(|| black_box(core.jit_checkpoint()))
    });
    let image = core.jit_checkpoint();
    bench_function("recovery", "replay_stores", |b| {
        b.iter(|| {
            let mut nvm = ppa_mem::NvmImage::new();
            black_box(replay_stores(black_box(&image), &mut nvm))
        })
    });
    bench_function("recovery", "core_recover", |b| {
        b.iter(|| black_box(Core::recover(cfg, 0, black_box(&image))))
    });
}

fn main() {
    bench_modes();
    bench_checkpoint_recovery();
}
