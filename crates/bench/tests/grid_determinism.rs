//! Distributed runs must be byte-identical to local ones, including
//! when a worker dies mid-lease. These tests drive the real
//! `ppa-bench` unit vocabulary through a real loopback TCP grid.

use ppa_bench::gridwork::{self, BenchExecutor};
use ppa_grid::coord::GridConfig;
use ppa_grid::loopback;
use ppa_grid::worker::WorkerOptions;
use std::sync::Arc;

/// Transport-level equivalence: every fig11 cell unit executed through
/// a loopback grid (with one worker dying mid-lease) returns exactly
/// the bytes local execution produces, in submission order.
#[test]
fn transported_cells_match_local_execution_despite_worker_death() {
    let units = gridwork::units_for("fig11", 2_000).expect("fig11 decomposes");
    let expected: Vec<Vec<u8>> = units
        .iter()
        .map(|u| gridwork::execute(&u.tag, &u.payload).expect("cells execute locally"))
        .collect();

    let opts = vec![
        WorkerOptions {
            die_after: Some(2),
            ..WorkerOptions::default()
        },
        WorkerOptions::default(),
        WorkerOptions::default(),
    ];
    let lb = loopback::start(opts, Arc::new(BenchExecutor), GridConfig::default())
        .expect("loopback grid starts");
    let results = lb.run_units(units.clone());
    for ((unit, exp), res) in units.iter().zip(&expected).zip(results) {
        let outcome = res.expect("every unit completes despite the death");
        assert_eq!(
            outcome.payload, *exp,
            "unit {} diverged from local execution",
            unit.tag
        );
    }
    let stats = lb.coordinator().stats();
    assert!(stats.workers_lost >= 1, "stats: {stats:?}");
    assert!(stats.redispatched >= 1, "stats: {stats:?}");
    assert!(lb.shutdown().iter().any(|r| r.died));
}

/// Rendered-table equivalence: `render_experiment` through an installed
/// loopback grid produces the same string a grid-free render does.
/// (This test owns the process-wide grid handle; keep it the only test
/// in this binary that installs one.)
#[test]
fn rendered_tables_are_byte_identical_across_grid_configurations() {
    ppa_bench::set_experiment_len_override(1_500);
    let registry = ppa_bench::experiments::all_experiments();
    let fig11 = registry
        .iter()
        .find(|(id, _)| *id == "fig11")
        .copied()
        .expect("fig11 is registered");
    let table1 = registry
        .iter()
        .find(|(id, _)| *id == "table1")
        .copied()
        .expect("table1 is registered");

    // Local renders first — render_experiment falls through to a plain
    // call while no grid handle is installed.
    let local_fig11 = gridwork::render_experiment(fig11.0, fig11.1);
    let local_table1 = gridwork::render_experiment(table1.0, table1.1);

    let lb = loopback::start_uniform(2, 2, Arc::new(BenchExecutor), GridConfig::default())
        .expect("loopback grid starts");
    gridwork::install(gridwork::GridHandle::Loopback(lb));

    // fig11 decomposes into per-app units; table1 ships whole. Both
    // paths must reproduce the local bytes.
    assert_eq!(gridwork::render_experiment(fig11.0, fig11.1), local_fig11);
    assert_eq!(
        gridwork::render_experiment(table1.0, table1.1),
        local_table1
    );
    let stats = gridwork::active()
        .unwrap()
        .coordinator()
        .expect("loopback handle owns its coordinator")
        .stats();
    assert!(stats.completed >= 42, "stats: {stats:?}");
}
