//! The telemetry acceptance contract for `repro`: stdout stays
//! byte-identical whether or not metrics/tracing are requested, the
//! metrics JSON is machine-readable, the trace file is a structurally
//! valid Chrome trace, and the stderr timing lines follow the one
//! stable format. Drives the real compiled binary.

use std::path::Path;
use std::process::{Command, Output};

fn repro(dir: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig5"])
        .args(extra)
        .env("PPA_REPRO_LEN", "600")
        .env_remove("PPA_JOBS")
        .env_remove("PPA_GRID")
        .env_remove("PPA_LOG")
        .current_dir(dir)
        .output()
        .expect("repro runs")
}

#[test]
fn telemetry_flags_do_not_perturb_stdout_and_emit_valid_artifacts() {
    let dir = std::env::temp_dir().join("ppa_bench_telemetry_test");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics_path = dir.join("metrics.json");
    let trace_path = dir.join("trace.json");

    let plain = repro(&dir, &[]);
    assert!(plain.status.success(), "plain run failed: {plain:?}");

    let telem = repro(
        &dir,
        &[
            "--metrics",
            "--metrics-json",
            metrics_path.to_str().unwrap(),
            "--trace-out",
            trace_path.to_str().unwrap(),
        ],
    );
    assert!(telem.status.success(), "telemetry run failed: {telem:?}");

    // The determinism invariant: simulated results on stdout are
    // byte-identical no matter what telemetry was requested.
    assert_eq!(
        plain.stdout, telem.stdout,
        "telemetry flags perturbed stdout"
    );
    assert!(
        String::from_utf8_lossy(&plain.stdout).contains("=== fig5 ==="),
        "stdout lost the result table"
    );

    // Metrics JSON: parses with the crate's own strict parser, is
    // non-empty, and contains the expected metric families.
    let metrics_text = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    let metrics = ppa_obs::json::parse_flat(&metrics_text).expect("metrics JSON parses");
    assert!(!metrics.is_empty(), "metrics JSON is empty");
    let has = |key: &str| metrics.iter().any(|(k, _)| k == key);
    let family = |prefix: &str| metrics.iter().any(|(k, _)| k.starts_with(prefix));
    assert!(has("sim.machine.runs"), "missing sim.machine.runs");
    assert!(has("sim.cycles.total"), "missing sim.cycles.total");
    assert!(has("sim.cycles_per_sec"), "missing sim.cycles_per_sec");
    assert!(family("pool."), "missing pool.* family");
    assert!(
        has("span.experiment.fig5.count"),
        "missing per-experiment span summary"
    );

    // Trace file: structurally valid Chrome trace_event JSON with at
    // least the run-level and per-experiment spans.
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let events = ppa_obs::span::validate_trace(&trace_text).expect("trace validates");
    assert!(events >= 2, "expected >= 2 trace events, got {events}");
    assert!(trace_text.contains("\"name\":\"experiment.fig5\""));

    // The stderr timing lines use the one stable aggregated format.
    let stderr = String::from_utf8_lossy(&telem.stderr);
    let timing = stderr
        .lines()
        .find(|l| l.starts_with("experiment.fig5: "))
        .unwrap_or_else(|| panic!("no timing line for fig5 in stderr:\n{stderr}"));
    let rest = timing.strip_prefix("experiment.fig5: ").unwrap();
    let fields: Vec<&str> = rest.split(' ').collect();
    assert_eq!(fields.len(), 4, "timing line drifted: {timing:?}");
    for (field, key) in fields.iter().zip(["total=", "count=", "min=", "max="]) {
        assert!(field.starts_with(key), "field {field:?} in {timing:?}");
    }
    assert_eq!(fields[1], "count=1");
    // The --metrics stderr table renders the registry, stable-sorted.
    assert!(
        stderr.contains("sim.machine.runs"),
        "--metrics table missing from stderr:\n{stderr}"
    );
}

#[test]
fn metrics_json_from_a_grid_run_includes_coordinator_metrics() {
    let dir = std::env::temp_dir().join("ppa_bench_telemetry_grid_test");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics_path = dir.join("grid_metrics.json");

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--grid",
            "loopback:2",
            "--metrics-json",
            metrics_path.to_str().unwrap(),
            "fig5",
        ])
        .env("PPA_REPRO_LEN", "600")
        .env_remove("PPA_JOBS")
        .env_remove("PPA_GRID")
        .env_remove("PPA_LOG")
        .current_dir(&dir)
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "grid run failed: {out:?}");

    let text = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    let metrics = ppa_obs::json::parse_flat(&text).expect("metrics JSON parses");
    let get = |key: &str| {
        metrics
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_f64())
    };
    let dispatched = get("grid.coord.units.dispatched").expect("grid dispatch counter present");
    let completed = get("grid.coord.units.completed").expect("grid completion counter present");
    assert!(dispatched >= 1.0 && completed >= 1.0);
    assert!(
        get("grid.coord.worker.joined").unwrap_or(0.0) >= 2.0,
        "both loopback workers must have joined: {metrics:?}"
    );
    assert!(
        metrics
            .iter()
            .any(|(k, _)| k.starts_with("grid.coord.unit.elapsed_ns.")),
        "per-unit latency summary missing"
    );
}
