//! Smoke tests for the reproduction harness: every experiment renders a
//! non-empty table at a reduced trace length. This keeps `repro all` from
//! bit-rotting without paying full experiment cost in CI.

use ppa_bench::experiments;

#[test]
fn static_tables_are_instant_and_complete() {
    for id in ["table1", "table2", "table3", "table4", "table5", "table6"] {
        let (_, f) = experiments::all_experiments()
            .into_iter()
            .find(|(n, _)| *n == id)
            .expect("registered");
        let t = f();
        assert!(!t.is_empty(), "{id} rendered an empty table");
    }
}

/// All length-sensitive experiments in one test, so the environment
/// variable that shrinks them is never touched concurrently.
#[test]
fn simulation_experiments_render_at_reduced_length() {
    std::env::set_var("PPA_REPRO_LEN", "3000");

    let s = experiments::ckpt().to_string();
    assert!(s.contains("1838"));
    assert!(!s.contains("false"), "checkpoint verification failed:\n{s}");

    let t13 = experiments::fig13();
    let text = t13.to_string();
    assert!(text.contains("mean"));
    // 41 apps + mean + paper rows.
    assert_eq!(t13.len(), 43);

    let t17 = experiments::fig17();
    assert_eq!(t17.len(), 6, "five CSQ sizes plus the paper row");

    let mc = experiments::mc().to_string();
    assert!(!mc.contains("false"), "multi-MC recovery failed:\n{mc}");

    let ablation = experiments::ablation();
    assert_eq!(ablation.len(), 6, "six ablation variants");

    // Dependence-driven insertion must beat Capri on every app: the
    // "apps cheaper" row counts all 41.
    let ap = experiments::autopersist();
    assert_eq!(ap.len(), 43, "41 apps + total + cheaper rows");
    let ap_text = ap.to_string();
    assert!(
        ap_text.contains("apps cheaper than capri") && ap_text.contains("41"),
        "autopersist table:\n{ap_text}"
    );

    std::env::remove_var("PPA_REPRO_LEN");
}
