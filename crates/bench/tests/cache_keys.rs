//! The service cache key must be a pure function of (work-unit kind,
//! workload, config, seed, trace length): independent of `PPA_JOBS`,
//! worker counts, or when the unit list was generated. Otherwise a
//! daemon would recompute (or worse, wrongly share) results across
//! differently-configured clients.

use ppa_serve::unit_key;
use std::collections::HashSet;

fn keys(units: &[ppa_grid::UnitSpec]) -> Vec<u64> {
    units.iter().map(|u| unit_key(&u.tag, &u.payload)).collect()
}

#[test]
fn cache_keys_are_stable_across_job_configurations() {
    // Generate the same unit lists under different parallelism
    // settings; the serialized units — and therefore their cache keys —
    // must not depend on the pool configuration.
    let fig11_a = ppa_bench::gridwork::units_for("fig11", 4_000).expect("fig11 decomposes");
    let litmus_a = ppa_litmus::gridwork::selftest_units();
    ppa_pool::set_jobs(4);
    let fig11_b = ppa_bench::gridwork::units_for("fig11", 4_000).expect("fig11 decomposes");
    let litmus_b = ppa_litmus::gridwork::selftest_units();

    assert_eq!(keys(&fig11_a), keys(&fig11_b));
    assert_eq!(keys(&litmus_a), keys(&litmus_b));
}

#[test]
fn cache_keys_distinguish_every_unit_and_configuration() {
    let fig11 = ppa_bench::gridwork::units_for("fig11", 4_000).expect("fig11 decomposes");
    let fig11_longer = ppa_bench::gridwork::units_for("fig11", 8_000).expect("fig11 decomposes");
    let litmus = ppa_litmus::gridwork::selftest_units();

    // No collisions across kinds, workloads, or trace lengths: the
    // cache must never serve a fig11@8000 result to a fig11@4000
    // client.
    let mut all = Vec::new();
    all.extend(keys(&fig11));
    all.extend(keys(&fig11_longer));
    all.extend(keys(&litmus));
    let distinct: HashSet<u64> = all.iter().copied().collect();
    assert_eq!(distinct.len(), all.len(), "cache key collision");

    // The key covers the payload, not just the tag: same tag at a
    // different trace length maps to a different cell.
    for (a, b) in fig11.iter().zip(&fig11_longer) {
        assert_eq!(a.tag, b.tag);
        assert_ne!(unit_key(&a.tag, &a.payload), unit_key(&b.tag, &b.payload));
    }
}
