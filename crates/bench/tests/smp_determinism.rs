//! The determinism contract of the multi-core machine: the shared-state
//! fig19 sweep renders byte-identical output at any job count.
//!
//! This file holds exactly one test so `PPA_REPRO_LEN` is never touched
//! concurrently within the process.

use ppa_bench::experiments;
use ppa_pool::ThreadPool;

/// Render `fig19` with per-workload machine simulations fanned out across
/// `workers` pool threads. The experiment body runs as a pool job, so its
/// nested `par_map_ordered` calls pick up this pool through the
/// ambient-pool thread-local instead of the (serial) global default.
fn fig19_with_workers(workers: usize) -> String {
    let pool = ThreadPool::new(workers);
    pool.par_map([()], |()| experiments::fig19().to_string())
        .pop()
        .expect("one job")
        .expect("fig19 does not panic")
}

#[test]
fn fig19_is_byte_identical_at_any_job_count() {
    std::env::set_var("PPA_REPRO_LEN", "800");
    let serial = fig19_with_workers(1);
    let parallel = fig19_with_workers(8);
    std::env::remove_var("PPA_REPRO_LEN");
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "parallel fan-out changed rendered output");
}
