//! Regeneration functions for every figure and table of the paper's
//! evaluation (see DESIGN.md's experiment index).
//!
//! Each function runs the relevant simulations and returns the formatted
//! [`TextTable`] the `repro` binary prints; headline aggregates are
//! appended as table rows so the output is self-contained.
//!
//! Per-app simulations fan out across the shared [`ppa_pool`] worker
//! pool (`PPA_JOBS`/`--jobs`; serial by default). Every fan-out is an
//! order-preserving map whose results are folded into the table
//! serially, so the rendered output is byte-identical at any job count.

use crate::{experiment_len, SEED};
use ppa_core::{CoreConfig, PersistenceMode};
use ppa_isa::transform::{region_lengths, AutoPersistPass, CapriPass, ReplayCachePass, TracePass};
use ppa_mem::NvmConfig;
use ppa_sim::{inject_failure, Machine, SimReport, SystemConfig};
use ppa_stats::{fmt_percent, fmt_slowdown, geomean, Cdf, TextTable};
use ppa_workloads::{registry, AppDescriptor, Suite};

fn len_for_base(app: &AppDescriptor, base: usize) -> usize {
    if app.threads > 1 {
        (base / 3).max(2_000)
    } else {
        base
    }
}

fn len_for(app: &AppDescriptor) -> usize {
    len_for_base(app, experiment_len())
}

fn run(cfg: SystemConfig, app: &AppDescriptor) -> SimReport {
    Machine::new(cfg).run_app_parallel(app, len_for(app), SEED)
}

/// Like [`run`] but with an explicit base length, so grid workers
/// reproduce the coordinator's sizing without consulting their own
/// environment.
fn run_at(cfg: SystemConfig, app: &AppDescriptor, base: usize) -> SimReport {
    Machine::new(cfg).run_app_parallel(app, len_for_base(app, base), SEED)
}

/// Order-preserving parallel map over applications: `f` runs on the
/// shared pool (serial when `PPA_JOBS` is 1 or unset) and each result is
/// returned alongside its descriptor, in input order, for serial folding
/// into the table. A panicking simulation panics here with its message,
/// exactly as the serial loop would.
fn par_apps<T: Send>(
    apps: Vec<AppDescriptor>,
    f: impl Fn(&AppDescriptor) -> T + Sync,
) -> Vec<(AppDescriptor, T)> {
    ppa_pool::par_map_ordered(apps, |app| {
        let value = f(&app);
        (app, value)
    })
}

fn push_gmean(table: &mut TextTable, label: &str, cols: &[&[f64]]) {
    let mut row = vec![label.to_string()];
    for c in cols {
        row.push(fmt_slowdown(geomean(c.iter().copied())));
    }
    table.row(row);
}

/// Figure 1: ReplayCache's slowdown over the memory-mode baseline.
pub(crate) fn fig1_cell(app: &AppDescriptor, base_len: usize) -> Vec<f64> {
    let base = run_at(SystemConfig::baseline(), app, base_len);
    let rc = run_at(SystemConfig::replay_cache(), app, base_len);
    vec![rc.cycles as f64 / base.cycles as f64]
}

pub fn fig1() -> TextTable {
    let mut t = TextTable::new(["app", "suite", "replaycache-slowdown"]);
    let mut slows = Vec::new();
    for (app, v) in crate::gridwork::app_rows("fig1", registry::all(), fig1_cell) {
        let s = v[0];
        slows.push(s);
        t.row([app.name.to_string(), app.suite.to_string(), fmt_slowdown(s)]);
    }
    push_gmean(&mut t, "gmean", &[&slows]);
    t.row(["paper", "", "~5x average"]);
    t
}

/// Figure 5: CDFs of free integer/FP physical registers, sampled every
/// cycle at the rename stage of the baseline core, per suite.
pub fn fig5() -> TextTable {
    let cfg = CoreConfig::paper_default(PersistenceMode::Baseline);
    let mut t = TextTable::new([
        "suite",
        "int free p25",
        "int free p50",
        "int free @75% of cycles",
        "fp free p25",
        "fp free p50",
        "fp free @75% of cycles",
    ]);
    for suite in Suite::ALL {
        let mut int_cdf = Cdf::with_max_value(cfg.int_prf as u64);
        let mut fp_cdf = Cdf::with_max_value(cfg.fp_prf as u64);
        for (_, r) in par_apps(registry::by_suite(suite), |app| {
            run(SystemConfig::baseline(), app)
        }) {
            for c in &r.core_stats {
                int_cdf.merge(&c.free_int_cdf);
                fp_cdf.merge(&c.free_fp_cdf);
            }
        }
        t.row([
            suite.to_string(),
            int_cdf.quantile(0.25).to_string(),
            int_cdf.quantile(0.50).to_string(),
            int_cdf.value_available_for(0.75).to_string(),
            fp_cdf.quantile(0.25).to_string(),
            fp_cdf.quantile(0.50).to_string(),
            fp_cdf.value_available_for(0.75).to_string(),
        ]);
    }
    t.row([
        "paper".to_string(),
        String::new(),
        String::new(),
        "138 (CPU2006)".to_string(),
        String::new(),
        String::new(),
        "110 (CPU2006)".to_string(),
    ]);
    t
}

/// Figure 8: PPA and Capri slowdowns over the baseline, all 41 apps.
pub(crate) fn fig8_cell(app: &AppDescriptor, base_len: usize) -> Vec<f64> {
    let base = run_at(SystemConfig::baseline(), app, base_len);
    let ppa = run_at(SystemConfig::ppa(), app, base_len);
    let cap = run_at(SystemConfig::capri(), app, base_len);
    vec![
        ppa.cycles as f64 / base.cycles as f64,
        cap.cycles as f64 / base.cycles as f64,
    ]
}

pub fn fig8() -> TextTable {
    let mut t = TextTable::new(["app", "suite", "ppa", "capri"]);
    let mut ppa_s = Vec::new();
    let mut cap_s = Vec::new();
    for (app, v) in crate::gridwork::app_rows("fig8", registry::all(), fig8_cell) {
        let (sp, sc) = (v[0], v[1]);
        ppa_s.push(sp);
        cap_s.push(sc);
        t.row([
            app.name.to_string(),
            app.suite.to_string(),
            fmt_slowdown(sp),
            fmt_slowdown(sc),
        ]);
    }
    push_gmean(&mut t, "gmean", &[&ppa_s, &cap_s]);
    t.row(["paper", "", "1.02", "1.26"]);
    t
}

/// Figure 9: PPA and the memory mode vs the 32 GB DRAM-only system.
pub(crate) fn fig9_cell(app: &AppDescriptor, base_len: usize) -> Vec<f64> {
    let dram = run_at(SystemConfig::dram_only(), app, base_len);
    let base = run_at(SystemConfig::baseline(), app, base_len);
    let ppa = run_at(SystemConfig::ppa(), app, base_len);
    vec![
        base.cycles as f64 / dram.cycles as f64,
        ppa.cycles as f64 / dram.cycles as f64,
    ]
}

pub fn fig9() -> TextTable {
    let mut t = TextTable::new(["app", "memory-mode/dram", "ppa/dram"]);
    let mut base_s = Vec::new();
    let mut ppa_s = Vec::new();
    for (app, v) in crate::gridwork::app_rows("fig9", registry::all(), fig9_cell) {
        let (sb, sp) = (v[0], v[1]);
        base_s.push(sb);
        ppa_s.push(sp);
        t.row([app.name.to_string(), fmt_slowdown(sb), fmt_slowdown(sp)]);
    }
    push_gmean(&mut t, "gmean", &[&base_s, &ppa_s]);
    t.row(["paper", "1.14", "1.16"]);
    t
}

/// Figure 10: PPA vs the ideal PSP (eADR/BBB) on the memory-intensive
/// subset.
pub(crate) fn fig10_cell(app: &AppDescriptor, base_len: usize) -> Vec<f64> {
    let base = run_at(SystemConfig::baseline(), app, base_len);
    let ppa = run_at(SystemConfig::ppa(), app, base_len);
    let psp = run_at(SystemConfig::eadr_bbb(), app, base_len);
    vec![
        ppa.cycles as f64 / base.cycles as f64,
        psp.cycles as f64 / base.cycles as f64,
    ]
}

pub fn fig10() -> TextTable {
    let mut t = TextTable::new(["app", "ppa", "eadr/bbb"]);
    let mut ppa_s = Vec::new();
    let mut psp_s = Vec::new();
    for (app, v) in crate::gridwork::app_rows("fig10", registry::memory_intensive(), fig10_cell) {
        let (sp, se) = (v[0], v[1]);
        ppa_s.push(sp);
        psp_s.push(se);
        t.row([app.name.to_string(), fmt_slowdown(sp), fmt_slowdown(se)]);
    }
    push_gmean(&mut t, "gmean", &[&ppa_s, &psp_s]);
    t.row(["paper", "1.03", "1.39 (up to 2.4)"]);
    t
}

/// Figure 11: stall cycles at region ends as a fraction of execution.
pub(crate) fn fig11_cell(app: &AppDescriptor, base_len: usize) -> Vec<f64> {
    vec![run_at(SystemConfig::ppa(), app, base_len).region_end_stall_fraction()]
}

pub fn fig11() -> TextTable {
    let mut t = TextTable::new(["app", "region-end stall"]);
    let mut fracs = Vec::new();
    for (app, v) in crate::gridwork::app_rows("fig11", registry::all(), fig11_cell) {
        let f = v[0];
        fracs.push(f);
        t.row([app.name.to_string(), fmt_percent(f)]);
    }
    let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
    t.row(["mean".to_string(), fmt_percent(mean)]);
    t.row([
        "paper".to_string(),
        "+0.21% avg; water-ns 6.1%, water-sp 8.1%".to_string(),
    ]);
    t
}

/// Figure 12: extra rename-stage stall cycles from PRF exhaustion.
pub(crate) fn fig12_cell(app: &AppDescriptor, base_len: usize) -> Vec<f64> {
    let base = run_at(SystemConfig::baseline(), app, base_len);
    let ppa = run_at(SystemConfig::ppa(), app, base_len);
    vec![
        base.rename_noreg_stall_fraction(),
        ppa.rename_noreg_stall_fraction(),
    ]
}

pub fn fig12() -> TextTable {
    let mut t = TextTable::new(["app", "baseline", "ppa", "increase"]);
    let mut deltas = Vec::new();
    for (app, v) in crate::gridwork::app_rows("fig12", registry::all(), fig12_cell) {
        let (fb, fp) = (v[0], v[1]);
        deltas.push((fp - fb).max(0.0));
        t.row([
            app.name.to_string(),
            fmt_percent(fb),
            fmt_percent(fp),
            fmt_percent(fp - fb),
        ]);
    }
    let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    t.row([
        "mean increase".to_string(),
        String::new(),
        String::new(),
        fmt_percent(mean),
    ]);
    t.row([
        "paper".to_string(),
        String::new(),
        String::new(),
        "+0.07% avg".to_string(),
    ]);
    t
}

/// Figure 13: stores and other instructions per dynamically formed
/// region, plus Capri's compiler-formed region length for contrast.
pub(crate) fn fig13_cell(app: &AppDescriptor, base_len: usize) -> Vec<f64> {
    let ppa = run_at(SystemConfig::ppa(), app, base_len);
    let st = ppa.region_stores().mean();
    let all = ppa.region_insts().mean();
    let raw = app.generate(len_for_base(app, base_len).min(20_000), SEED);
    let capri_trace = CapriPass::new().apply(&raw);
    let lens = region_lengths(&capri_trace);
    let cap = lens.iter().sum::<usize>() as f64 / lens.len().max(1) as f64;
    vec![st, all, cap]
}

pub fn fig13() -> TextTable {
    let mut t = TextTable::new(["app", "stores/region", "others/region", "capri region"]);
    let mut stores = Vec::new();
    let mut others = Vec::new();
    let mut capri = Vec::new();
    for (app, v) in crate::gridwork::app_rows("fig13", registry::all(), fig13_cell) {
        let (st, all, cap) = (v[0], v[1], v[2]);
        stores.push(st);
        others.push(all - st);
        capri.push(cap);
        t.row([
            app.name.to_string(),
            format!("{st:.1}"),
            format!("{:.0}", all - st),
            format!("{cap:.0}"),
        ]);
    }
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    t.row([
        "mean".to_string(),
        format!("{:.1}", mean(&stores)),
        format!("{:.0}", mean(&others)),
        format!("{:.0}", mean(&capri)),
    ]);
    t.row([
        "paper".to_string(),
        "18".to_string(),
        "301".to_string(),
        "29".to_string(),
    ]);
    t
}

/// Figure 14: PPA's slowdown when an L3 sits atop the DRAM cache.
pub(crate) fn fig14_cell(app: &AppDescriptor, base_len: usize) -> Vec<f64> {
    let base = run_at(
        SystemConfig::baseline().with_deep_hierarchy(),
        app,
        base_len,
    );
    let ppa = run_at(SystemConfig::ppa().with_deep_hierarchy(), app, base_len);
    vec![ppa.cycles as f64 / base.cycles as f64]
}

pub fn fig14() -> TextTable {
    let mut t = TextTable::new(["app", "ppa (deep hierarchy)"]);
    let mut slows = Vec::new();
    for (app, v) in crate::gridwork::app_rows("fig14", registry::all(), fig14_cell) {
        let s = v[0];
        slows.push(s);
        t.row([app.name.to_string(), fmt_slowdown(s)]);
    }
    push_gmean(&mut t, "gmean", &[&slows]);
    t.row(["paper", "1.01"]);
    t
}

/// Figure 15: sensitivity to the NVM write-pending-queue depth.
pub(crate) fn fig15_cell(app: &AppDescriptor, base_len: usize) -> Vec<f64> {
    [8usize, 16, 24]
        .iter()
        .map(|&n| {
            let nvm = NvmConfig::paper_default().with_wpq_entries(n);
            let mut base_cfg = SystemConfig::baseline();
            base_cfg.mem = base_cfg.mem.with_nvm(nvm);
            let mut ppa_cfg = SystemConfig::ppa();
            ppa_cfg.mem = ppa_cfg.mem.with_nvm(nvm);
            let base = run_at(base_cfg, app, base_len);
            let ppa = run_at(ppa_cfg, app, base_len);
            ppa.cycles as f64 / base.cycles as f64
        })
        .collect()
}

pub fn fig15() -> TextTable {
    let mut t = TextTable::new(["app", "wpq-8", "wpq-16 (default)", "wpq-24"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (app, slows) in crate::gridwork::app_rows("fig15", registry::memory_intensive(), fig15_cell)
    {
        let mut row = vec![app.name.to_string()];
        for (i, s) in slows.into_iter().enumerate() {
            cols[i].push(s);
            row.push(fmt_slowdown(s));
        }
        t.row(row);
    }
    let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
    push_gmean(&mut t, "gmean", &refs);
    t.row(["paper", "1.08", "1.02", "~1.02"]);
    t
}

/// Figure 16: sensitivity to the physical-register-file size.
pub fn fig16() -> TextTable {
    let sizes: [(usize, usize, &str); 6] = [
        (80, 80, "80/80"),
        (100, 100, "100/100"),
        (120, 120, "120/120"),
        (140, 140, "140/140"),
        (180, 168, "180/168 (default)"),
        (280, 224, "280/224 (Icelake)"),
    ];
    let mut t = TextTable::new(["prf (int/fp)", "ppa slowdown (gmean)", "worst app", "worst"]);
    for (int_prf, fp_prf, label) in sizes {
        let mut slows = Vec::new();
        let mut worst = ("-", 0.0f64);
        for (app, s) in par_apps(registry::all(), |app| {
            let mut base_cfg = SystemConfig::baseline();
            base_cfg.core = base_cfg.core.with_prf(int_prf, fp_prf);
            let mut ppa_cfg = SystemConfig::ppa();
            ppa_cfg.core = ppa_cfg.core.with_prf(int_prf, fp_prf);
            let base = run(base_cfg, app);
            let ppa = run(ppa_cfg, app);
            ppa.cycles as f64 / base.cycles as f64
        }) {
            if s > worst.1 {
                worst = (app.name, s);
            }
            slows.push(s);
        }
        t.row([
            label.to_string(),
            fmt_slowdown(geomean(slows.iter().copied())),
            worst.0.to_string(),
            fmt_slowdown(worst.1),
        ]);
    }
    t.row([
        "paper",
        "1.12 @ 80/80, ~1.02 beyond default",
        "hmmer/lbm/lu-cg/tpcc ~1.3 @ 80/80",
        "",
    ]);
    t
}

/// Figure 17: sensitivity to the CSQ depth.
pub fn fig17() -> TextTable {
    let sizes = [10usize, 20, 30, 40, 50];
    let mut t = TextTable::new([
        "csq entries",
        "ppa slowdown (gmean)",
        "csq-full boundaries/10k uops",
    ]);
    for n in sizes {
        let mut slows = Vec::new();
        let mut boundaries = 0u64;
        let mut uops = 0u64;
        for (_, (s, b, u)) in par_apps(registry::all(), |app| {
            let mut ppa_cfg = SystemConfig::ppa();
            ppa_cfg.core = ppa_cfg.core.with_csq(n);
            let base = run(SystemConfig::baseline(), app);
            let ppa = run(ppa_cfg, app);
            let b = ppa
                .core_stats
                .iter()
                .map(|c| c.csq_full_boundaries)
                .sum::<u64>();
            (ppa.cycles as f64 / base.cycles as f64, b, ppa.committed)
        }) {
            slows.push(s);
            boundaries += b;
            uops += u;
        }
        t.row([
            format!("{n}{}", if n == 40 { " (default)" } else { "" }),
            fmt_slowdown(geomean(slows.iter().copied())),
            format!("{:.1}", boundaries as f64 / (uops as f64 / 10_000.0)),
        ]);
    }
    t.row([
        "paper".to_string(),
        "minimal impact 10..50".to_string(),
        String::new(),
    ]);
    t
}

/// Figure 18: sensitivity to the NVM write bandwidth.
pub(crate) fn fig18_cell(app: &AppDescriptor, base_len: usize) -> Vec<f64> {
    [1.0f64, 2.3, 4.0, 6.0]
        .iter()
        .map(|&bw| {
            let nvm = NvmConfig::paper_default().with_write_bandwidth_gbps(bw);
            let mut base_cfg = SystemConfig::baseline();
            base_cfg.mem = base_cfg.mem.with_nvm(nvm);
            let mut ppa_cfg = SystemConfig::ppa();
            ppa_cfg.mem = ppa_cfg.mem.with_nvm(nvm);
            let base = run_at(base_cfg, app, base_len);
            let ppa = run_at(ppa_cfg, app, base_len);
            ppa.cycles as f64 / base.cycles as f64
        })
        .collect()
}

pub fn fig18() -> TextTable {
    let mut t = TextTable::new(["app", "1GB/s", "2.3GB/s (default)", "4GB/s", "6GB/s"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (app, slows) in crate::gridwork::app_rows("fig18", registry::memory_intensive(), fig18_cell)
    {
        let mut row = vec![app.name.to_string()];
        for (i, s) in slows.into_iter().enumerate() {
            cols[i].push(s);
            row.push(fmt_slowdown(s));
        }
        t.row(row);
    }
    let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
    push_gmean(&mut t, "gmean", &refs);
    t.row(["paper", "1.07", "1.02", "~1.02", "~1.02"]);
    t
}

/// Figure 19: thread-count scaling on the shared-memory multi-core
/// machine ([`ppa_smp::SmpSystem`]). Unlike the lockstep runner, the
/// threads here share state — striped counters, a producer/consumer ring,
/// barrier phases, halo exchange — so the sweep exercises the §6 persist
/// arbiter (sync-region drains certified round-robin across cores) rather
/// than N independent pipelines.
pub fn fig19() -> TextTable {
    use ppa_smp::SmpSystem;
    let counts = [8usize, 16, 32, 64];
    let mut t = TextTable::new(["threads", "ppa slowdown (gmean)", "drain grants"]);
    for &n in &counts {
        let len = (experiment_len() / (n / 2).max(1)).max(1_000);
        let results: Vec<(f64, usize)> =
            ppa_pool::par_map_ordered(ppa_workloads::shared::all(), move |app| {
                let traces = app.generate_threads(len, SEED, n);
                let base =
                    SmpSystem::new(SystemConfig::baseline().with_threads(n), traces.clone()).run();
                let ppa = SmpSystem::new(SystemConfig::ppa().with_threads(n), traces).run();
                assert!(ppa.consistent, "{} left NVM inconsistent", app.name);
                (ppa.cycles as f64 / base.cycles as f64, ppa.drain_grants)
            });
        let grants: usize = results.iter().map(|&(_, g)| g).sum();
        t.row([
            n.to_string(),
            fmt_slowdown(geomean(results.iter().map(|&(s, _)| s))),
            grants.to_string(),
        ]);
    }
    t.row([
        "paper".to_string(),
        "1.02 .. 1.06 for 8..64".to_string(),
        String::new(),
    ]);
    t
}

/// Table 1: PPA vs `clwb` properties.
pub fn table1() -> TextTable {
    let mut t = TextTable::new([
        "",
        "store queue occupied",
        "single store tracking",
        "snooping",
        "reaching NVM",
    ]);
    t.row(["CLWB in x86", "yes", "yes", "yes", "no"]);
    t.row(["PPA", "no", "no", "no", "yes"]);
    t
}

/// Table 2: the simulated machine's parameters.
pub fn table2() -> TextTable {
    let cfg = SystemConfig::ppa();
    let nvm = *cfg.mem.nvm().expect("default config is NVM-backed");
    let mut t = TextTable::new(["component", "configuration"]);
    t.row([
        "processor".to_string(),
        format!("{}-core {}-wide x86_64 OoO at 2GHz", 8, cfg.core.width),
    ]);
    t.row([
        "ROB/IQ/SQ/LQ/IntPRF/FpPRF".to_string(),
        format!(
            "{}/{}/{}/{}/{}/{}",
            cfg.core.rob_entries,
            cfg.core.iq_entries,
            cfg.core.sq_entries,
            cfg.core.lq_entries,
            cfg.core.int_prf,
            cfg.core.fp_prf
        ),
    ]);
    t.row([
        "L1D".to_string(),
        format!(
            "private {}KB, {}-way, 64B block, {} cycles",
            cfg.mem.l1d.size_bytes / 1024,
            cfg.mem.l1d.ways,
            cfg.mem.l1d.hit_latency
        ),
    ]);
    t.row([
        "L2".to_string(),
        format!(
            "{} {}MB, {}-way, {} cycles",
            if cfg.mem.l2_shared {
                "shared"
            } else {
                "private"
            },
            cfg.mem.l2.size_bytes >> 20,
            cfg.mem.l2.ways,
            cfg.mem.l2.hit_latency
        ),
    ]);
    let d = cfg.mem.dram_cache.expect("memory mode has a DRAM cache");
    t.row([
        "DRAM cache (LLC)".to_string(),
        format!(
            "shared direct-mapped, {}GB, {} cycles",
            d.size_bytes >> 30,
            d.hit_latency
        ),
    ]);
    t.row([
        "PMEM".to_string(),
        format!(
            "read {} / write {} cycles, {}-entry WPQ, {:.1} GB/s write bw",
            nvm.read_latency,
            nvm.write_latency,
            nvm.wpq_entries,
            nvm.write_bytes_per_cycle * 2.0
        ),
    ]);
    t.row([
        "CSQ".to_string(),
        format!("{}-entry FIFO queue", cfg.core.csq_entries),
    ]);
    t
}

/// Table 3: the Mini-app and WHISPER workload descriptions.
pub fn table3() -> TextTable {
    let mut t = TextTable::new(["application", "description", "input", "footprint"]);
    for app in registry::by_suite(Suite::MiniApps)
        .into_iter()
        .chain(registry::by_suite(Suite::Whisper))
    {
        t.row([
            app.name.to_string(),
            app.description.to_string(),
            app.input.to_string(),
            format!("{}MB", app.footprint_mb),
        ]);
    }
    t
}

/// Table 4: hardware overheads of PPA's structures (CACTI at 22 nm).
pub fn table4() -> TextTable {
    let mut t = TextTable::new(["structure", "area (um^2)", "latency (ns)", "dynamic (pJ)"]);
    for e in [
        ppa_energy::LCPC,
        ppa_energy::MASK_REG_384,
        ppa_energy::CSQ_40,
    ] {
        t.row([
            e.name.to_string(),
            format!("{:.2}", e.area_um2),
            format!("{:.3}", e.access_ns),
            format!("{:.5}", e.dynamic_pj),
        ]);
    }
    let total = ppa_energy::cacti::total_ppa_area_um2();
    t.row([
        "total".to_string(),
        format!("{total:.2}"),
        String::new(),
        format!(
            "{:.4}% of an {:.2}mm^2 Xeon core",
            total / 1e6 / ppa_energy::CORE_AREA_MM2 * 100.0,
            ppa_energy::CORE_AREA_MM2
        ),
    ]);
    t
}

/// Table 5: JIT-flush energy requirement across schemes.
pub fn table5() -> TextTable {
    let mut t = TextTable::new([
        "scheme",
        "flush bytes",
        "energy",
        "supercap (mm^3)",
        "li-thin (mm^3)",
        "supercap/core ratio",
    ]);
    for b in ppa_energy::scheme_budgets() {
        let energy = if b.energy_uj >= 1000.0 {
            format!("{:.1} mJ", b.energy_uj / 1000.0)
        } else {
            format!("{:.1} uJ", b.energy_uj)
        };
        t.row([
            format!("{:?}", b.scheme),
            b.flush_bytes.to_string(),
            energy,
            format!("{:.4}", b.supercap_mm3),
            format!("{:.6}", b.li_thin_mm3),
            format!("{:.5}", b.supercap_core_ratio()),
        ]);
    }
    t.row([
        "paper".to_string(),
        String::new(),
        "PPA 21.7uJ, Capri 0.6mJ, LightPC 189mJ".to_string(),
        "0.06 / 1.57 / 527.8".to_string(),
        "0.0006 / 0.016 / 5.3".to_string(),
        "0.005 / 0.14 / 44.5".to_string(),
    ]);
    t
}

/// Table 6: qualitative comparison of WSP schemes.
pub fn table6() -> TextTable {
    let yes_no = |b: bool| if b { "yes" } else { "no" };
    let mut t = TextTable::new([
        "scheme",
        "hw complexity",
        "energy",
        "recompilation",
        "transparent",
        "dram cache",
        "multi-MC",
    ]);
    for p in ppa_energy::compare::scheme_properties() {
        t.row([
            format!("{:?}", p.scheme),
            p.hardware_complexity.to_string(),
            p.energy_requirement.to_string(),
            yes_no(p.recompilation).to_string(),
            yes_no(p.transparency).to_string(),
            yes_no(p.enables_dram_cache).to_string(),
            yes_no(p.enables_multi_mc).to_string(),
        ]);
    }
    t
}

/// §7.13: checkpoint energy/latency arithmetic plus a live measured
/// failure injection.
pub fn ckpt() -> TextTable {
    let b = ppa_energy::CheckpointBudget::worst_case();
    let mut t = TextTable::new(["quantity", "value", "paper"]);
    t.row([
        "worst-case checkpoint bytes".to_string(),
        b.bytes.to_string(),
        "1838".to_string(),
    ]);
    t.row([
        "energy".to_string(),
        format!("{:.2} uJ", b.energy_uj),
        "21.7 uJ".to_string(),
    ]);
    t.row([
        "supercap volume".to_string(),
        format!("{:.4} mm^3", b.supercap_mm3),
        "0.06 mm^3".to_string(),
    ]);
    t.row([
        "li-thin volume".to_string(),
        format!("{:.6} mm^3", b.li_thin_mm3),
        "0.0006 mm^3".to_string(),
    ]);
    t.row([
        "controller read time".to_string(),
        format!("{:.1} ns", b.read_ns),
        "114.9 ns".to_string(),
    ]);
    t.row([
        "total flush time".to_string(),
        format!("{:.2} us", b.total_ns / 1000.0),
        "0.91 us".to_string(),
    ]);

    // A live failure injection on a write-heavy app: measured checkpoint
    // size and recovery verification.
    let app = registry::by_name("rb").expect("rb exists");
    let trace = app.generate(10_000, SEED);
    let out = inject_failure(&SystemConfig::ppa(), &trace, 4_000);
    t.row([
        "measured checkpoint (rb @4k cycles)".to_string(),
        format!("{} bytes", out.checkpoint_bytes),
        "<= 1838".to_string(),
    ]);
    t.row([
        "stores replayed".to_string(),
        out.replayed_stores.to_string(),
        "<= 40 (CSQ)".to_string(),
    ]);
    t.row([
        "consistent after recovery".to_string(),
        out.consistent_after_recovery.to_string(),
        "true".to_string(),
    ]);
    t.row([
        "completed after resume".to_string(),
        out.completed_after_resume.to_string(),
        "true".to_string(),
    ]);
    t
}

/// Ablation of the design choices DESIGN.md calls out: persist
/// coalescing (§4.3), WPQ write combining, asynchronous persistence (a
/// 1-entry write buffer approximates synchronous write-back), and
/// dynamic region formation (vs Capri-length and paper-length static
/// regions).
pub fn ablation() -> TextTable {
    let apps: Vec<AppDescriptor> = [
        "gcc",
        "hmmer",
        "libquantum",
        "lbm",
        "rb",
        "water-ns",
        "sps",
        "tpcc",
    ]
    .iter()
    .map(|n| registry::by_name(n).expect("known app"))
    .collect();

    let mut variants: Vec<(&str, SystemConfig)> = Vec::new();
    variants.push(("ppa (full design)", SystemConfig::ppa()));

    let mut no_coalesce = SystemConfig::ppa();
    no_coalesce.mem.persist_coalescing = false;
    variants.push(("- persist coalescing", no_coalesce));

    let mut no_combine = SystemConfig::ppa();
    no_combine.mem = no_combine
        .mem
        .with_nvm(NvmConfig::paper_default().without_write_combining());
    variants.push(("- WPQ write combining", no_combine));

    let mut sync_wb = SystemConfig::ppa();
    sync_wb.mem.write_buffer_entries = 1;
    variants.push(("- async persistence (1-entry WB)", sync_wb));

    let mut static29 = SystemConfig::ppa();
    static29.core = static29.core.with_forced_regions(29);
    variants.push(("- dynamic regions (static 29)", static29));

    let mut static320 = SystemConfig::ppa();
    static320.core = static320.core.with_forced_regions(320);
    variants.push(("- dynamic regions (static 320)", static320));

    let mut t = TextTable::new(["variant", "slowdown vs baseline (gmean)"]);
    for (label, cfg) in variants {
        let slows: Vec<f64> = par_apps(apps.clone(), move |app| {
            let base = run(SystemConfig::baseline(), app);
            let v = run(cfg, app);
            v.cycles as f64 / base.cycles as f64
        })
        .into_iter()
        .map(|(_, s)| s)
        .collect();
        t.row([label.to_string(), fmt_slowdown(geomean(slows))]);
    }
    t
}

/// §6 multi-MC support: PPA behind one vs two interleaved memory
/// controllers, with recovery verified under the two-controller ordering
/// hazard.
pub fn mc() -> TextTable {
    let mut t = TextTable::new(["app", "ppa 1 MC", "ppa 2 MCs", "recovery @2MC"]);
    let names = vec!["gcc", "rb", "sps", "tpcc", "water-ns"];
    for row in ppa_pool::par_map_ordered(names, |name| {
        let app = registry::by_name(name).expect("known app");
        let base1 = run(SystemConfig::baseline(), &app);
        let ppa1 = run(SystemConfig::ppa(), &app);
        let mut base_cfg2 = SystemConfig::baseline();
        base_cfg2.mem = base_cfg2.mem.with_memory_controllers(2);
        let mut cfg2 = SystemConfig::ppa();
        cfg2.mem = cfg2.mem.with_memory_controllers(2);
        let base2 = run(base_cfg2, &app);
        let ppa2 = run(cfg2, &app);
        // Verify §4.6 recovery under cross-channel persistence reordering.
        let trace = app.generate(4_000, SEED);
        let out = inject_failure(&cfg2, &trace, 1_500);
        [
            name.to_string(),
            fmt_slowdown(ppa1.cycles as f64 / base1.cycles as f64),
            fmt_slowdown(ppa2.cycles as f64 / base2.cycles as f64),
            (out.consistent_after_recovery && out.completed_after_resume).to_string(),
        ]
    }) {
        t.row(row);
    }
    t.row([
        "paper".to_string(),
        String::new(),
        "\"naturally supports multiple MCs\"".to_string(),
        "true".to_string(),
    ]);
    t
}

/// §6's in-order-core extension: the value-carrying CSQ variant against
/// the out-of-order PPA core.
pub fn inorder() -> TextTable {
    use ppa_core::InOrderCore;
    use ppa_mem::MemorySystem;
    let mut t = TextTable::new([
        "app",
        "in-order cycles",
        "ooo ppa cycles",
        "ooo speedup",
        "in-order consistent",
    ]);
    let names = vec!["gcc", "mcf", "hmmer", "rb"];
    for row in ppa_pool::par_map_ordered(names, |name| {
        let app = registry::by_name(name).expect("known app");
        let trace = app.generate(10_000, SEED);
        let mut mem = MemorySystem::new(SystemConfig::ppa().mem, 1);
        let mut core = InOrderCore::new(40, 0);
        let io_cycles = core.run(&trace, &mut mem);
        let io_consistent = mem.nvm_image().diff(mem.arch_mem()).is_empty();
        let ooo = Machine::new(SystemConfig::ppa()).run(&trace);
        [
            name.to_string(),
            io_cycles.to_string(),
            ooo.cycles.to_string(),
            fmt_slowdown(io_cycles as f64 / ooo.cycles as f64),
            io_consistent.to_string(),
        ]
    }) {
        t.row(row);
    }
    t
}

/// §5's OS-interaction claim: context switching costs PPA essentially
/// nothing, and recovery works when power fails inside kernel code.
pub fn os() -> TextTable {
    let mut t = TextTable::new([
        "app",
        "ppa (no kernel)",
        "ppa (ctx switch / 10k uops)",
        "recovery mid-kernel",
    ]);
    let names = vec!["gcc", "hmmer", "tpcc"];
    for row in ppa_pool::par_map_ordered(names, |name| {
        let app = registry::by_name(name).expect("known app");
        // 10k uops between kernel entries corresponds to the multi-µs
        // context-switch spacing §5 quotes (5-20 µs at ~2 GHz).
        let ctx = app.with_context_switches(10_000);
        let base = run(SystemConfig::baseline(), &app);
        let ppa = run(SystemConfig::ppa(), &app);
        let base_ctx = run(SystemConfig::baseline(), &ctx);
        let ppa_ctx = run(SystemConfig::ppa(), &ctx);
        // Fail power while a kernel burst is likely in flight.
        // Recovery probe: a kernel-dense trace so the failure lands inside
        // kernel code with high probability.
        let dense = app.with_context_switches(300);
        let trace = dense.generate(6_000, SEED);
        let out = inject_failure(&SystemConfig::ppa(), &trace, 1_111);
        [
            name.to_string(),
            fmt_slowdown(ppa.cycles as f64 / base.cycles as f64),
            fmt_slowdown(ppa_ctx.cycles as f64 / base_ctx.cycles as f64),
            (out.consistent_after_recovery && out.completed_after_resume).to_string(),
        ]
    }) {
        t.row(row);
    }
    t.row([
        "paper (§5)".to_string(),
        String::new(),
        "\"practically the same with PPA\"".to_string(),
        "true".to_string(),
    ]);
    t
}

/// The introduction's CXL claim: PPA treats the hierarchy as a black
/// box, so pushing the persistent memory ~300 ns further away (a
/// CXL-attached device) must not change its overhead.
pub fn cxl() -> TextTable {
    let mut t = TextTable::new(["app", "ppa (local PMEM)", "ppa (CXL far PMEM)"]);
    let mut near_s = Vec::new();
    let mut far_s = Vec::new();
    let names = vec!["gcc", "mcf", "libquantum", "rb", "water-ns", "lulesh"];
    for (name, sn, sf) in ppa_pool::par_map_ordered(names, |name| {
        let app = registry::by_name(name).expect("known app");
        let near_b = run(SystemConfig::baseline(), &app);
        let near_p = run(SystemConfig::ppa(), &app);
        let far_b = run(SystemConfig::baseline().with_cxl_far_memory(), &app);
        let far_p = run(SystemConfig::ppa().with_cxl_far_memory(), &app);
        (
            name,
            near_p.cycles as f64 / near_b.cycles as f64,
            far_p.cycles as f64 / far_b.cycles as f64,
        )
    }) {
        near_s.push(sn);
        far_s.push(sf);
        t.row([name.to_string(), fmt_slowdown(sn), fmt_slowdown(sf)]);
    }
    push_gmean(&mut t, "gmean", &[&near_s, &far_s]);
    t.row([
        "paper (intro)",
        "",
        "\"suitable for CXL-based far persistent memory\"",
    ]);
    t
}

/// §2.4's disabled feature: ReplayCache *with* its energy-aware region
/// splitting (as deployed on energy-harvesting systems) vs the
/// longest-region variant the paper evaluates.
pub fn ehs() -> TextTable {
    use ppa_isa::transform::ReplayCachePass;
    let mut t = TextTable::new([
        "app",
        "replaycache (paper config)",
        "replaycache + energy splitting",
    ]);
    let mut plain_s = Vec::new();
    let mut split_s = Vec::new();
    let names = vec!["gcc", "hmmer", "x264", "omnetpp"];
    for (name, sp, ss) in ppa_pool::par_map_ordered(names, |name| {
        let app = registry::by_name(name).expect("known app");
        let raw = app.generate(len_for(&app), SEED);
        let base = Machine::new(SystemConfig::baseline()).run(&raw);
        let plain =
            Machine::new(SystemConfig::replay_cache()).run(&ReplayCachePass::new().apply(&raw));
        let split = Machine::new(SystemConfig::replay_cache())
            .run(&ReplayCachePass::new().with_energy_splitting(12).apply(&raw));
        (
            name,
            plain.cycles as f64 / base.cycles as f64,
            split.cycles as f64 / base.cycles as f64,
        )
    }) {
        plain_s.push(sp);
        split_s.push(ss);
        t.row([name.to_string(), fmt_slowdown(sp), fmt_slowdown(ss)]);
    }
    push_gmean(&mut t, "gmean", &[&plain_s, &split_s]);
    t.row([
        "paper".to_string(),
        "~5x (splitting disabled)".to_string(),
        "worse (12-inst EHS regions)".to_string(),
    ]);
    t
}

/// AutoPersist placement economy: persist barriers emitted by the
/// dependence-driven flush/fence insertion vs the two region-bounded
/// software baselines, on the same raw trace. AutoPersist fences only
/// where the static dependence graph proves it must (dependence
/// crossings, publication points, the trace-end seal), so its count is
/// the *lower bound* the compile-time schemes pay region-formation
/// overhead above.
pub(crate) fn autopersist_cell(app: &AppDescriptor, base_len: usize) -> Vec<f64> {
    let raw = app.generate(len_for_base(app, base_len).min(20_000), SEED);
    let ap = AutoPersistPass::new().apply(&raw).mix().barriers as f64;
    let capri = CapriPass::new().apply(&raw).mix().barriers as f64;
    let rc = ReplayCachePass::new().apply(&raw).mix().barriers as f64;
    vec![ap, capri, rc]
}

pub fn autopersist() -> TextTable {
    let mut t = TextTable::new(["app", "autopersist", "capri", "replaycache", "capri-delta"]);
    let (mut ap_total, mut capri_total, mut rc_total) = (0.0f64, 0.0f64, 0.0f64);
    let mut cheaper = 0usize;
    for (app, v) in crate::gridwork::app_rows("autopersist", registry::all(), autopersist_cell) {
        let (ap, capri, rc) = (v[0], v[1], v[2]);
        ap_total += ap;
        capri_total += capri;
        rc_total += rc;
        if ap < capri {
            cheaper += 1;
        }
        ppa_obs::registry::gauge(&format!("lint.autopersist.barriers.{}", app.name)).set(ap);
        ppa_obs::registry::gauge(&format!("lint.autopersist.capri_delta.{}", app.name))
            .set(capri - ap);
        t.row([
            app.name.to_string(),
            format!("{ap:.0}"),
            format!("{capri:.0}"),
            format!("{rc:.0}"),
            format!("{:.0}", capri - ap),
        ]);
    }
    ppa_obs::registry::gauge("lint.autopersist.barriers.total").set(ap_total);
    ppa_obs::registry::gauge("lint.autopersist.capri_delta.total").set(capri_total - ap_total);
    ppa_obs::registry::gauge("lint.autopersist.apps_cheaper").set(cheaper as f64);
    t.row([
        "total".to_string(),
        format!("{ap_total:.0}"),
        format!("{capri_total:.0}"),
        format!("{rc_total:.0}"),
        format!("{:.0}", capri_total - ap_total),
    ]);
    t.row([
        "apps cheaper than capri".to_string(),
        format!("{cheaper}"),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t
}

/// §5f conformance headline: a fixed-seed litmus batch (generator →
/// axiomatic Px86-style model → real SMP machine, exhaustive failure
/// points) summarised per core count. Deliberately independent of
/// `PPA_REPRO_LEN` — litmus programs are a few uops each, so the batch
/// size, not the trace length, is the knob; seed and size are pinned so
/// the table is reproducible byte-for-byte.
pub fn litmus() -> TextTable {
    use ppa_litmus::{generate, run_batch_local, GenConfig, RunConfig};
    const TESTS: usize = 24;
    let tests = generate(&GenConfig {
        seed: SEED,
        tests: TESTS,
    });
    let cfg = RunConfig::default();
    let rows = run_batch_local(&tests, &cfg);
    ppa_litmus::run::publish_metrics(&rows);

    let mut t = TextTable::new([
        "cores", "tests", "cells", "torn", "reached", "allowed", "unsound", "waived",
    ]);
    let mut grand = [0u64; 7];
    for cores in 2..=4usize {
        let mut acc = [0u64; 7];
        for (test, row) in tests.iter().zip(&rows) {
            if test.cores.len() != cores {
                continue;
            }
            acc[0] += 1;
            acc[1] += row.cells;
            acc[2] += row.torn;
            acc[3] += row.reached;
            acc[4] += row.allowed;
            acc[5] += row.unsound_cells;
            acc[6] += row.waived.len() as u64;
        }
        if acc[0] == 0 {
            continue;
        }
        for (g, a) in grand.iter_mut().zip(&acc) {
            *g += a;
        }
        let mut cells = vec![cores.to_string()];
        cells.extend(acc.iter().map(|v| v.to_string()));
        t.row(cells);
    }
    let mut total = vec!["total".to_string()];
    total.extend(grand.iter().map(|v| v.to_string()));
    t.row(total);
    t
}

/// A named experiment generator.
pub type Experiment = fn() -> TextTable;

/// Every experiment in paper order, as `(id, generator)` pairs.
pub fn all_experiments() -> Vec<(&'static str, Experiment)> {
    vec![
        ("fig1", fig1 as Experiment),
        ("fig5", fig5),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
        ("fig14", fig14),
        ("fig15", fig15),
        ("fig16", fig16),
        ("fig17", fig17),
        ("fig18", fig18),
        ("fig19", fig19),
        ("table1", table1),
        ("table2", table2),
        ("table3", table3),
        ("table4", table4),
        ("table5", table5),
        ("table6", table6),
        ("ckpt", ckpt),
        ("ablation", ablation),
        ("mc", mc),
        ("inorder", inorder),
        ("os", os),
        ("cxl", cxl),
        ("ehs", ehs),
        ("autopersist", autopersist),
        ("litmus", litmus),
    ]
}

/// A per-application cell kernel: given an application and the base trace
/// length, produce that app's row of figure values. Experiments with a
/// cell here decompose into one grid work unit per application;
/// everything else ships as a whole-experiment unit.
pub(crate) type AppCell = fn(&AppDescriptor, usize) -> Vec<f64>;

/// One decomposable experiment: its id, the application set it iterates
/// over, and the per-application cell kernel.
pub(crate) type CellEntry = (&'static str, fn() -> Vec<AppDescriptor>, AppCell);

/// Cell kernels for every decomposable experiment, with the application
/// set each one iterates over.
pub(crate) fn app_cells() -> Vec<CellEntry> {
    vec![
        (
            "fig1",
            registry::all as fn() -> Vec<AppDescriptor>,
            fig1_cell as AppCell,
        ),
        ("fig8", registry::all, fig8_cell),
        ("fig9", registry::all, fig9_cell),
        ("fig10", registry::memory_intensive, fig10_cell),
        ("fig11", registry::all, fig11_cell),
        ("fig12", registry::all, fig12_cell),
        ("fig13", registry::all, fig13_cell),
        ("fig14", registry::all, fig14_cell),
        ("fig15", registry::memory_intensive, fig15_cell),
        ("fig18", registry::memory_intensive, fig18_cell),
        ("autopersist", registry::all, autopersist_cell),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_registry_is_complete() {
        let ids: Vec<&str> = all_experiments().iter().map(|(id, _)| *id).collect();
        for expected in [
            "fig1",
            "fig5",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "fig19",
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "ckpt",
            "ablation",
            "mc",
            "inorder",
            "os",
            "cxl",
            "ehs",
            "autopersist",
        ] {
            assert!(ids.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn static_tables_render() {
        for f in [table1, table2, table3, table4, table5, table6] {
            let t = f();
            assert!(!t.is_empty());
            assert!(!t.to_string().is_empty());
        }
    }

    #[test]
    fn ckpt_table_contains_verified_recovery() {
        let t = ckpt();
        let s = t.to_string();
        assert!(s.contains("1838"));
        assert!(s.contains("true"));
        assert!(!s.contains("false"), "recovery verification failed:\n{s}");
    }
}
