//! `repro` — regenerates every figure and table of the PPA paper.
//!
//! ```text
//! cargo run -p ppa-bench --release --bin repro -- fig8
//! cargo run -p ppa-bench --release --bin repro -- --jobs 8 all
//! PPA_JOBS=8 cargo run -p ppa-bench --release --bin repro -- all
//! PPA_REPRO_LEN=100000 cargo run -p ppa-bench --release --bin repro -- fig16
//! cargo run -p ppa-bench --release --bin repro -- --grid loopback:2 all
//! cargo run -p ppa-bench --release --bin repro -- --metrics-json m.json all
//! ```
//!
//! Parallelism (`--jobs N` / `PPA_JOBS=N`; `0` = one worker per CPU)
//! fans per-app simulation out across the shared work-stealing pool and,
//! for `all`, runs whole experiments concurrently. With `--grid` (or
//! `PPA_GRID`) the fan-out crosses hosts instead: `loopback:N` spawns N
//! in-process workers, `serve:HOST:PORT` submits to a running
//! `ppa-serve` daemon (results come back from its content-addressed
//! cache when available). Tables always print to stdout in paper
//! order and are byte-identical at any job count and any grid
//! configuration; all telemetry — timings, `--metrics` tables,
//! `--metrics-json` / `--trace-out` files — goes to stderr or to the
//! named files so stdout stays deterministic.

use ppa_bench::{experiments, gridwork};
use ppa_grid::{loopback, GridConfig, GridMode};
use ppa_stats::fmt_duration;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: repro [OPTIONS] <experiment>... | all | list");
    eprintln!();
    eprintln!("options:");
    eprintln!("  --jobs N            worker threads for per-app fan-out (0 = auto,");
    eprintln!("                      default 1 = serial); PPA_JOBS=N is equivalent");
    eprintln!("  --grid MODE         off (default), loopback:N (self-test with N");
    eprintln!("                      in-process workers), or serve:HOST:PORT");
    eprintln!("                      (submit to a running `ppa-serve daemon`)");
    eprintln!("  --metrics           print the metrics registry to stderr on exit");
    eprintln!("  --metrics-json FILE write the metrics registry as flat JSON");
    eprintln!("  --trace-out FILE    write a Chrome trace_event timeline (open in");
    eprintln!("                      chrome://tracing or https://ui.perfetto.dev)");
    eprintln!();
    eprintln!("environment:");
    eprintln!("  PPA_JOBS=N        same as --jobs (the flag wins)");
    eprintln!("  PPA_GRID=MODE     same as --grid (the flag wins)");
    eprintln!("  PPA_GRID_DIE_AFTER=N  loopback fault injection: worker 0 drops");
    eprintln!("                    its connection after N units (testing)");
    eprintln!("  PPA_REPRO_LEN=N   per-app trace length (default 40000)");
    eprintln!("  PPA_LOG=LEVEL     stderr log level: error|warn|info|debug");
    eprintln!("  PPA_POOL_STATS=1  print pool counters to stderr on exit");
    eprintln!();
    eprintln!("experiments:");
    for (id, _) in experiments::all_experiments() {
        eprintln!("  {id}");
    }
    std::process::exit(2);
}

/// Attaches this process to the requested grid mode and installs the
/// handle; returns whether a grid is active.
fn attach_grid(mode: GridMode) -> bool {
    match mode {
        GridMode::Off => false,
        GridMode::Loopback(n) => {
            let jobs = ppa_pool::configured_jobs();
            let mut workers = vec![
                ppa_grid::WorkerOptions {
                    jobs,
                    ..Default::default()
                };
                n
            ];
            // Fault injection for the determinism checks: the first
            // loopback worker drops its connection mid-lease after N
            // units, and the output must still be byte-identical.
            if let Some(k) = std::env::var("PPA_GRID_DIE_AFTER")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
            {
                workers[0].die_after = Some(k);
            }
            let lb = loopback::start(
                workers,
                Arc::new(gridwork::BenchExecutor),
                GridConfig::default(),
            )
            .unwrap_or_else(|e| {
                eprintln!("repro: failed to start loopback grid: {e}");
                std::process::exit(1);
            });
            ppa_obs::info!(
                "grid",
                "loopback with {n} workers on {}",
                lb.coordinator().local_addr()
            );
            gridwork::install(gridwork::GridHandle::Loopback(lb));
            true
        }
        GridMode::Serve(addr) => {
            let client = ppa_serve::ServeClient::connect(addr.as_str()).unwrap_or_else(|e| {
                eprintln!("repro: {e}");
                std::process::exit(1);
            });
            ppa_obs::info!("grid", "submitting to ppa-serve daemon at {addr}");
            gridwork::install(gridwork::GridHandle::Remote(client));
            true
        }
    }
}

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut grid_flag: Option<String> = None;
    let mut metrics_table = false;
    let mut metrics_json: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| usage());
                ppa_pool::set_jobs(n);
            }
            "--grid" => grid_flag = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics" => metrics_table = true,
            "--metrics-json" => {
                metrics_json = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--help" | "-h" => usage(),
            _ => ids.push(arg),
        }
    }
    if ids.is_empty() {
        usage();
    }
    if trace_out.is_some() {
        ppa_obs::span::enable_trace();
    }

    let registry = experiments::all_experiments();
    if ids.iter().any(|id| id == "list") {
        for (id, _) in registry {
            println!("{id}");
        }
        return;
    }

    let selected: Vec<(&'static str, experiments::Experiment)> = if ids.iter().any(|id| id == "all")
    {
        registry
    } else {
        ids.iter()
            .map(|id| {
                registry
                    .iter()
                    .find(|(n, _)| n == id)
                    .copied()
                    .unwrap_or_else(|| usage())
            })
            .collect()
    };

    let mode = match grid_flag {
        Some(v) => ppa_grid::parse_grid_mode(&v),
        None => ppa_grid::grid_mode_from_env(),
    }
    .unwrap_or_else(|e| {
        eprintln!("repro: {e}");
        std::process::exit(2);
    });
    let grid_on = attach_grid(mode);

    // Run every selected experiment through the pool (serial unless jobs
    // were requested), buffering each rendered table so stdout comes out
    // in paper order regardless of completion order. A grid failure
    // (unit retries exhausted) panics with the failing unit's tag; turn
    // that into a clean nonzero exit naming the culprit.
    let t0 = Instant::now();
    let run = || {
        let _run_span = ppa_obs::span("repro.run");
        ppa_pool::par_map_ordered(selected, |(id, f)| {
            let _span = ppa_obs::span(&format!("experiment.{id}"));
            let table = gridwork::render_experiment(id, f);
            (id, table)
        })
    };
    let rendered = if grid_on {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
            Ok(r) => r,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("experiment panicked");
                eprintln!("repro: {msg}");
                std::process::exit(1);
            }
        }
    } else {
        run()
    };
    let wall = t0.elapsed();
    for (id, table) in rendered {
        println!("=== {id} ===");
        println!("{table}");
    }
    // One stable per-experiment timing format (aggregated from the
    // spans; sorted by label, not completion order).
    for line in ppa_obs::span::timing_lines("experiment.") {
        eprintln!("{line}");
    }
    eprintln!("total: {}", fmt_duration(wall));

    if let Some(grid) = gridwork::active() {
        if let Some(coord) = grid.coordinator() {
            let s = coord.stats();
            ppa_obs::info!(
                "grid",
                "dispatched={} completed={} redispatched={} duplicates={} unit_errors={} workers_joined={} workers_lost={}",
                s.dispatched, s.completed, s.redispatched, s.duplicates, s.unit_errors, s.workers_joined, s.workers_lost
            );
            coord.shutdown();
        } else if let gridwork::GridHandle::Remote(client) = grid {
            // The daemon outlives us; just report what it did for us.
            if let Ok(s) = client.stats() {
                ppa_obs::info!(
                    "grid",
                    "daemon {}: cache hits={} misses={} entries={}",
                    client.addr(),
                    s.hits,
                    s.misses,
                    s.entries
                );
            }
        }
    }

    if std::env::var("PPA_POOL_STATS").is_ok_and(|v| v != "0") {
        if let Some(stats) = ppa_pool::global_stats() {
            eprintln!("{}", stats.table());
        }
    }

    // Telemetry exports happen after all result output: fold the pool
    // counters in, derive throughput, then render/write the snapshot.
    if metrics_table || metrics_json.is_some() {
        ppa_pool::export_metrics();
        let secs = wall.as_secs_f64();
        if secs > 0.0 {
            let snap = ppa_obs::snapshot();
            if let Some(ppa_obs::registry::Value::Counter(cycles)) = snap.get("sim.cycles.total") {
                ppa_obs::registry::gauge("sim.cycles_per_sec").set(*cycles as f64 / secs);
            }
        }
        let snap = ppa_obs::snapshot();
        if metrics_table {
            eprint!("{}", snap.to_table());
        }
        if let Some(path) = &metrics_json {
            if let Err(e) = snap.write_json_file(path, false) {
                eprintln!("repro: failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &trace_out {
        match ppa_obs::span::write_trace(path) {
            Ok(n) => ppa_obs::info!("trace", "wrote {n} events to {}", path.display()),
            Err(e) => {
                eprintln!("repro: failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
