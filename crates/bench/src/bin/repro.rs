//! `repro` — regenerates every figure and table of the PPA paper.
//!
//! ```text
//! cargo run -p ppa-bench --release --bin repro -- fig8
//! cargo run -p ppa-bench --release --bin repro -- --jobs 8 all
//! PPA_JOBS=8 cargo run -p ppa-bench --release --bin repro -- all
//! PPA_REPRO_LEN=100000 cargo run -p ppa-bench --release --bin repro -- fig16
//! ```
//!
//! Parallelism (`--jobs N` / `PPA_JOBS=N`; `0` = one worker per CPU)
//! fans per-app simulation out across the shared work-stealing pool and,
//! for `all`, runs whole experiments concurrently. Tables always print
//! to stdout in paper order and are byte-identical at any job count;
//! wall-clock timings go to stderr so stdout stays deterministic.

use ppa_bench::experiments;
use ppa_stats::fmt_duration;
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: repro [--jobs N] <experiment>... | all | list");
    eprintln!();
    eprintln!("options:");
    eprintln!("  --jobs N   worker threads for per-app fan-out (0 = auto,");
    eprintln!("             default 1 = serial); PPA_JOBS=N is equivalent");
    eprintln!();
    eprintln!("environment:");
    eprintln!("  PPA_JOBS=N        same as --jobs (the flag wins)");
    eprintln!("  PPA_REPRO_LEN=N   per-app trace length (default 40000)");
    eprintln!("  PPA_POOL_STATS=1  print pool counters to stderr on exit");
    eprintln!();
    eprintln!("experiments:");
    for (id, _) in experiments::all_experiments() {
        eprintln!("  {id}");
    }
    std::process::exit(2);
}

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| usage());
                ppa_pool::set_jobs(n);
            }
            "--help" | "-h" => usage(),
            _ => ids.push(arg),
        }
    }
    if ids.is_empty() {
        usage();
    }

    let registry = experiments::all_experiments();
    if ids.iter().any(|id| id == "list") {
        for (id, _) in registry {
            println!("{id}");
        }
        return;
    }

    let selected: Vec<(&'static str, experiments::Experiment)> = if ids.iter().any(|id| id == "all")
    {
        registry
    } else {
        ids.iter()
            .map(|id| {
                registry
                    .iter()
                    .find(|(n, _)| n == id)
                    .copied()
                    .unwrap_or_else(|| usage())
            })
            .collect()
    };

    // Run every selected experiment through the pool (serial unless jobs
    // were requested), buffering each rendered table so stdout comes out
    // in paper order regardless of completion order.
    let t0 = Instant::now();
    let rendered = ppa_pool::par_map_ordered(selected, |(id, f)| {
        let t = Instant::now();
        let table = f().to_string();
        (id, table, t.elapsed())
    });
    for (id, table, took) in rendered {
        println!("=== {id} ===");
        println!("{table}");
        eprintln!("{id}: {}", fmt_duration(took));
    }
    eprintln!("total: {}", fmt_duration(t0.elapsed()));

    if std::env::var("PPA_POOL_STATS").is_ok_and(|v| v != "0") {
        if let Some(stats) = ppa_pool::global_stats() {
            eprintln!("{}", stats.table());
        }
    }
}
