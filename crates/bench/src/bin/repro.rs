//! `repro` — regenerates every figure and table of the PPA paper.
//!
//! ```text
//! cargo run -p ppa-bench --release --bin repro -- fig8
//! cargo run -p ppa-bench --release --bin repro -- all
//! PPA_REPRO_LEN=100000 cargo run -p ppa-bench --release --bin repro -- fig16
//! ```

use ppa_bench::experiments;
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: repro <experiment>|all|list");
    eprintln!("experiments:");
    for (id, _) in experiments::all_experiments() {
        eprintln!("  {id}");
    }
    std::process::exit(2);
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| usage());
    let experiments = experiments::all_experiments();
    match arg.as_str() {
        "list" => {
            for (id, _) in experiments {
                println!("{id}");
            }
        }
        "all" => {
            let t0 = Instant::now();
            for (id, f) in experiments {
                let t = Instant::now();
                println!("=== {id} ===");
                println!("{}", f());
                println!("({:.1}s)\n", t.elapsed().as_secs_f64());
            }
            println!("total: {:.1}s", t0.elapsed().as_secs_f64());
        }
        id => match experiments.into_iter().find(|(n, _)| *n == id) {
            Some((_, f)) => {
                let t = Instant::now();
                println!("=== {id} ===");
                println!("{}", f());
                println!("({:.1}s)", t.elapsed().as_secs_f64());
            }
            None => usage(),
        },
    }
}
