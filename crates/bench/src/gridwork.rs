//! Grid integration for the benchmark harness: partitions experiments
//! into serializable work units and routes them through an installed
//! `ppa-grid` coordinator.
//!
//! Decomposable experiments (those with a cell kernel in
//! [`crate::experiments::app_cells`]) ship one unit per application,
//! tagged `repro.app:{exp}/{app}`; everything else ships as a single
//! whole-experiment unit tagged `repro.exp:{id}`. Tags embed the unit's
//! identity so a coordinator that exhausts its retries can name the
//! failing application. Cell results travel as `f64` bit patterns and
//! whole experiments as their rendered UTF-8 table, which keeps grid
//! output byte-identical to a local run.

use crate::experiments::{self, AppCell};
use ppa_grid::coord::{Coordinator, UnitRunner, UnitSpec};
use ppa_grid::loopback::Loopback;
use ppa_grid::proto::{ByteReader, ByteWriter};
use ppa_grid::Executor;
use ppa_serve::ServeClient;
use ppa_workloads::{registry, AppDescriptor};
use std::sync::{Arc, OnceLock};

/// A live grid attachment for this process: an owned loopback cluster,
/// a coordinator serving external workers, or a client of a
/// `ppa-serve` daemon.
pub enum GridHandle {
    Loopback(Loopback),
    Serve(Arc<Coordinator>),
    Remote(ServeClient),
}

impl GridHandle {
    /// The runner work units are submitted through.
    pub fn runner(&self) -> &dyn UnitRunner {
        match self {
            GridHandle::Loopback(l) => l.coordinator().as_ref(),
            GridHandle::Serve(c) => c.as_ref(),
            GridHandle::Remote(client) => client,
        }
    }

    /// The locally owned coordinator, when the attachment has one
    /// (`Remote` submits to a daemon-owned coordinator instead).
    pub fn coordinator(&self) -> Option<&Arc<Coordinator>> {
        match self {
            GridHandle::Loopback(l) => Some(l.coordinator()),
            GridHandle::Serve(c) => Some(c),
            GridHandle::Remote(_) => None,
        }
    }
}

static GRID: OnceLock<GridHandle> = OnceLock::new();

/// Installs the process-wide grid handle; experiments dispatch through
/// it from then on. Panics if a grid is already installed.
pub fn install(handle: GridHandle) {
    if GRID.set(handle).is_err() {
        panic!("a grid handle is already installed for this process");
    }
}

/// The installed grid handle, if any.
pub fn active() -> Option<&'static GridHandle> {
    GRID.get()
}

fn cell_for(exp: &str) -> Option<AppCell> {
    experiments::app_cells()
        .into_iter()
        .find(|(id, _, _)| *id == exp)
        .map(|(_, _, cell)| cell)
}

fn decomposable(exp: &str) -> bool {
    cell_for(exp).is_some()
}

fn app_unit(exp: &str, app: &AppDescriptor, base_len: usize) -> UnitSpec {
    let mut w = ByteWriter::new();
    w.put_str(exp);
    w.put_str(app.name);
    w.put_u64(base_len as u64);
    UnitSpec {
        tag: format!("repro.app:{exp}/{}", app.name),
        payload: w.into_bytes(),
    }
}

fn exp_unit(exp: &str, base_len: usize) -> UnitSpec {
    let mut w = ByteWriter::new();
    w.put_str(exp);
    w.put_u64(base_len as u64);
    UnitSpec {
        tag: format!("repro.exp:{exp}"),
        payload: w.into_bytes(),
    }
}

fn encode_row(values: &[f64]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(values.len() as u32);
    for &v in values {
        w.put_f64(v);
    }
    w.into_bytes()
}

fn decode_row(payload: &[u8]) -> Result<Vec<f64>, String> {
    let mut r = ByteReader::new(payload);
    let n = r.u32().map_err(|e| e.to_string())?;
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(r.f64().map_err(|e| e.to_string())?);
    }
    r.finish().map_err(|e| e.to_string())?;
    Ok(out)
}

/// Evaluates `cell` for every application of `exp`, through the grid
/// when one is installed and via the local pool otherwise. Rows come
/// back in `apps` order either way, so rendered tables are
/// byte-identical across grid configurations.
pub(crate) fn app_rows(
    exp: &str,
    apps: Vec<AppDescriptor>,
    cell: AppCell,
) -> Vec<(AppDescriptor, Vec<f64>)> {
    let base = crate::experiment_len();
    let Some(grid) = active() else {
        return ppa_pool::par_map_ordered(apps, move |app| {
            let v = cell(&app, base);
            (app, v)
        });
    };
    let units = apps.iter().map(|app| app_unit(exp, app, base)).collect();
    let results = grid.runner().run_units(units);
    apps.into_iter()
        .zip(results)
        .map(|(app, res)| match res {
            Ok(outcome) => {
                let row = decode_row(&outcome.payload).unwrap_or_else(|e| {
                    panic!("grid: bad result payload for {exp}/{}: {e}", app.name)
                });
                (app, row)
            }
            Err(e) => panic!("grid: app cell {exp}/{} failed: {e}", app.name),
        })
        .collect()
}

/// Renders one experiment: locally when no grid is installed or the
/// experiment decomposes (its per-app cells already went through
/// [`app_rows`]), and as a single remote unit otherwise.
pub fn render_experiment(id: &str, f: crate::experiments::Experiment) -> String {
    let Some(grid) = active() else {
        return f().to_string();
    };
    if decomposable(id) {
        // The table shell renders locally; each row is a grid unit.
        return f().to_string();
    }
    let unit = exp_unit(id, crate::experiment_len());
    let mut results = grid.runner().run_units(vec![unit]);
    match results.remove(0) {
        Ok(outcome) => String::from_utf8(outcome.payload)
            .unwrap_or_else(|_| panic!("grid: non-UTF-8 table for experiment {id}")),
        Err(e) => panic!("grid: experiment {id} failed: {e}"),
    }
}

/// Builds the per-app unit list for a decomposable experiment at an
/// explicit base length, or `None` when `exp` only ships whole.
/// `ppa-grid selftest` uses this to generate representative transport
/// traffic without rendering tables.
pub fn units_for(exp: &str, base_len: usize) -> Option<Vec<UnitSpec>> {
    experiments::app_cells()
        .into_iter()
        .find(|(id, _, _)| *id == exp)
        .map(|(_, apps, _)| {
            apps()
                .iter()
                .map(|app| app_unit(exp, app, base_len))
                .collect()
        })
}

/// Worker-side dispatcher for `repro.*` unit tags.
pub fn execute(tag: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
    if let Some(rest) = tag.strip_prefix("repro.app:") {
        let mut r = ByteReader::new(payload);
        let exp = r.str().map_err(|e| e.to_string())?;
        let app_name = r.str().map_err(|e| e.to_string())?;
        let base_len = r.u64().map_err(|e| e.to_string())? as usize;
        r.finish().map_err(|e| e.to_string())?;
        let cell =
            cell_for(&exp).ok_or_else(|| format!("unknown decomposable experiment '{exp}'"))?;
        let app = registry::by_name(&app_name)
            .ok_or_else(|| format!("unknown application '{app_name}' in unit '{rest}'"))?;
        Ok(encode_row(&cell(&app, base_len)))
    } else if let Some(exp) = tag.strip_prefix("repro.exp:") {
        let mut r = ByteReader::new(payload);
        let payload_exp = r.str().map_err(|e| e.to_string())?;
        let base_len = r.u64().map_err(|e| e.to_string())? as usize;
        r.finish().map_err(|e| e.to_string())?;
        if payload_exp != exp {
            return Err(format!(
                "tag names experiment '{exp}' but payload names '{payload_exp}'"
            ));
        }
        crate::set_experiment_len_override(base_len);
        let f = experiments::all_experiments()
            .into_iter()
            .find(|(id, _)| *id == exp)
            .map(|(_, f)| f)
            .ok_or_else(|| format!("unknown experiment '{exp}'"))?;
        Ok(f().to_string().into_bytes())
    } else {
        Err(format!("unknown unit tag '{tag}'"))
    }
}

/// [`Executor`] over the benchmark unit vocabulary, used by loopback
/// self-tests and the `ppa-grid work` worker.
pub struct BenchExecutor;

impl Executor for BenchExecutor {
    fn execute(&self, tag: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        execute(tag, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_payload_round_trips() {
        let vals = [1.0, -0.0, f64::MAX, 1.0 / 3.0];
        assert_eq!(decode_row(&encode_row(&vals)).unwrap(), vals);
    }

    #[test]
    fn app_unit_executes_to_same_row_as_direct_call() {
        let app = registry::by_name("gcc").expect("gcc is registered");
        let cell = cell_for("fig1").expect("fig1 decomposes");
        let unit = app_unit("fig1", &app, 4_000);
        assert_eq!(unit.tag, "repro.app:fig1/gcc");
        let remote = execute(&unit.tag, &unit.payload).expect("unit executes");
        assert_eq!(decode_row(&remote).unwrap(), cell(&app, 4_000));
    }

    #[test]
    fn exp_unit_tag_payload_mismatch_is_an_error() {
        let unit = exp_unit("table1", 4_000);
        let err = execute("repro.exp:table2", &unit.payload).unwrap_err();
        assert!(err.contains("table1") && err.contains("table2"), "{err}");
    }

    #[test]
    fn unknown_tags_are_errors_not_panics() {
        let payload_for = |exp: &str, app: &str| {
            let mut w = ByteWriter::new();
            w.put_str(exp);
            w.put_str(app);
            w.put_u64(100);
            w.into_bytes()
        };
        assert!(execute("oracle.cell:x", &[]).is_err());
        assert!(execute(
            "repro.app:fig1/nosuchapp",
            &payload_for("fig1", "nosuchapp")
        )
        .is_err());
        assert!(execute("repro.app:zzz/gcc", &payload_for("zzz", "gcc")).is_err());
        assert!(execute("repro.app:fig1/gcc", b"torn").is_err());
    }
}
