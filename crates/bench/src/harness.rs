//! A minimal, dependency-free micro-benchmark harness.
//!
//! The bench files under `benches/` use `harness = false` and drive this
//! module directly: each bench calibrates an iteration count against a
//! ~200 ms measurement budget, runs three timed rounds, and reports the
//! best round as nanoseconds per iteration:
//!
//! ```text
//! pipeline/ppa                      1234567 ns/iter  (162 iters)
//! ```
//!
//! Set `PPA_BENCH_ITERS` to pin the iteration count (useful for quick
//! smoke runs: `PPA_BENCH_ITERS=1 cargo bench -p ppa-bench`).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Passed to each benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, preventing the result from being
    /// optimized away.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn pinned_iters() -> Option<u64> {
    std::env::var("PPA_BENCH_ITERS").ok()?.parse().ok()
}

fn run_round(f: &mut impl FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

/// Runs one named benchmark and prints its best-of-three ns/iter.
pub fn bench_function(group: &str, name: &str, mut f: impl FnMut(&mut Bencher)) {
    // Calibration: one untimed iteration sizes the measurement rounds.
    let once = run_round(&mut f, 1).max(Duration::from_nanos(1));
    let iters = pinned_iters().unwrap_or_else(|| {
        let budget = Duration::from_millis(200);
        (budget.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64
    });
    let best = (0..3)
        .map(|_| run_round(&mut f, iters))
        .min()
        .expect("three rounds ran");
    let ns_per_iter = best.as_nanos() as f64 / iters as f64;
    println!("{group}/{name:<32} {ns_per_iter:>14.0} ns/iter  ({iters} iters)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_the_closure() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 10);
        assert!(b.elapsed > Duration::ZERO);
    }
}
