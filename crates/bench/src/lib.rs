//! Benchmark harness for the PPA reproduction.
//!
//! Every figure and table of the paper's evaluation section has a
//! regeneration function in [`experiments`]; the `repro` binary dispatches
//! to them (`cargo run -p ppa-bench --release --bin repro -- fig8`), and
//! the benches in `benches/` time the simulator's building blocks with
//! the in-tree [`harness`] (no external bench framework).
//!
//! Experiment sizes default to traces that finish a full `repro all` in a
//! few minutes; set `PPA_REPRO_LEN` to scale them (micro-ops per
//! single-threaded trace; multi-threaded applications run 8 threads at a
//! third of the length each).

pub mod experiments;
pub mod gridwork;
pub mod harness;

/// Default per-trace micro-op count for single-threaded applications.
pub const DEFAULT_LEN: usize = 40_000;

/// Deterministic seed used by every experiment.
pub const SEED: u64 = 1;

/// Length override installed by grid workers so a dispatched work unit
/// reproduces the coordinator's trace sizing instead of consulting the
/// worker's own environment. Zero means "unset".
static LEN_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Pins [`experiment_len`] to `len` for this process. Grid workers call
/// this before rendering a whole-experiment work unit; all units of one
/// run carry the same length, so late writes are idempotent.
pub fn set_experiment_len_override(len: usize) {
    LEN_OVERRIDE.store(len, std::sync::atomic::Ordering::SeqCst);
}

/// Resolves the experiment length from the grid override, `PPA_REPRO_LEN`,
/// or the default, in that order.
pub fn experiment_len() -> usize {
    let pinned = LEN_OVERRIDE.load(std::sync::atomic::Ordering::SeqCst);
    if pinned != 0 {
        return pinned;
    }
    std::env::var("PPA_REPRO_LEN")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_LEN)
}
