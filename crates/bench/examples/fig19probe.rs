//! Diagnostic for the fig19 thread sweep: runs each shared DRF workload
//! on the `ppa-smp` machine, baseline vs PPA, and prints where the PPA
//! cycles go (persist-drain stalls at sync boundaries, rename stalls from
//! forced region ends, region/grant counts). This is the tool that
//! localises a slowdown to the store-path (drain stalls scale with
//! non-coalescing line traffic) versus the rename-path (PRF exhaustion in
//! a sync's commit shadow).
//!
//!     PROBE_THREADS=32 PROBE_LEN=2500 \
//!         cargo run --release -p ppa-bench --example fig19probe

use ppa_sim::SystemConfig;
use ppa_smp::SmpSystem;
use ppa_workloads::shared;

fn main() {
    let n: usize = std::env::var("PROBE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let len: usize = std::env::var("PROBE_LEN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_500);
    for app in shared::all() {
        let traces = app.generate_threads(len, 1, n);
        let base = SmpSystem::new(SystemConfig::baseline().with_threads(n), traces.clone()).run();
        let ppa = SmpSystem::new(SystemConfig::ppa().with_threads(n), traces).run();
        let sum = |f: fn(&ppa_core::CoreStats) -> u64, r: &ppa_smp::SmpReport| -> u64 {
            r.core_stats.iter().map(f).sum()
        };
        println!(
            "{:10} base={} ppa={} slow={:.2} | drainstall={} rename={}/{} syncs={} regions={} grants={}",
            app.name,
            base.cycles,
            ppa.cycles,
            ppa.cycles as f64 / base.cycles as f64,
            sum(|c| c.region_end_stall_cycles, &ppa),
            sum(|c| c.rename_stall_cycles, &ppa),
            sum(|c| c.rename_stall_cycles, &base),
            sum(|c| c.region_ends_sync, &ppa),
            sum(|c| c.regions, &ppa),
            ppa.drain_grants,
        );
    }
}
