//! `ppa-verify`: verification tooling for the PPA model.
//!
//! Three layers of assurance, from cycle-granular to end-to-end:
//!
//! 1. **Cycle-level invariant checking** ([`runner`]) — drives every
//!    workload of the evaluation through the PPA core with the pluggable
//!    [`ppa_core::verify`] validators attached, asserting MaskReg, CSQ,
//!    free-list, rename-table, and ROB/LSQ invariants every cycle.
//! 2. **Trace persistency linting** ([`lint`]) — a static analysis over
//!    uop traces that checks the output of the Capri and ReplayCache
//!    software transforms (and raw PPA traces) for missing, redundant, or
//!    misordered persist barriers and clwbs, with uop positions.
//! 3. **Crash-consistency oracle** ([`oracle`]) — injects power failures
//!    at randomized cycles (including *inside* the checkpoint flush),
//!    takes the §4.5 JIT checkpoint, runs the §4.6 store replay, and
//!    diffs recovered NVM state against an independent golden in-order
//!    execution ([`golden`]).
//! 4. **Multi-core crash oracle** ([`smp_oracle`]) — the same protocol
//!    over the §6 shared-memory machine ([`ppa_smp::SmpSystem`]): the
//!    whole machine is checkpointed and recovered, diffed against the
//!    union of per-thread golden executions, and the cross-core
//!    validators (drain order, persist-before-dependence, recovery-image
//!    coherence) run at every failure point.
//!
//! 5. **Static persist-ordering analysis** ([`analysis`]) — the
//!    dependence-graph engine: [`analysis::analyze_raw_trace`] explains
//!    *where and why* a raw trace needs flushes/fences (the placement
//!    [`ppa_isa::transform::AutoPersistPass`] synthesises),
//!    [`analysis::race`] is a static single-writer-per-word race detector
//!    over the shared-memory workloads, and [`analysis::crosscheck`]
//!    fuzz-mutates sealed traces to prove the static verdicts agree with
//!    an independent dynamic adversarial crash simulation.
//!
//! The checker itself is validated by **mutation self-tests**
//! ([`mutation`] for the core, [`smp_oracle::run_arbiter_mutations`] for
//! the persist arbiter, [`analysis::selftest`] for the analysis rules):
//! deliberately broken hardware or traces must be caught as named
//! violations.
//!
//! All of it is driven by the `ppa-verify` binary:
//!
//! ```text
//! ppa-verify all            # everything below, in order
//! ppa-verify check          # cycle-level invariants, all 41 workloads
//! ppa-verify lint           # persistency lint of transform outputs
//! ppa-verify analyze        # dependence graphs, race detector, crosscheck
//! ppa-verify oracle         # randomized crash-consistency injections
//! ppa-verify smp            # multi-core crash oracle + arbiter mutations
//! ppa-verify mutate         # mutation self-tests of the checker
//! ```

pub mod analysis;
pub mod golden;
pub mod grid;
pub mod lint;
pub mod mutation;
pub mod oracle;
pub mod runner;
pub mod smp_oracle;

pub use analysis::{analyze_raw_trace, PersistRequirement, TraceAnalysis};
pub use golden::{GoldenMemory, GoldenMismatch};
pub use lint::{lint_trace, Diagnostic, LintProfile, LintRule, Severity};
pub use mutation::{MutationCase, MutationReport};
pub use oracle::{OracleOutcome, CHECKPOINT_BUDGET_BYTES};
pub use runner::CheckReport;
pub use smp_oracle::{SmpMutationReport, SmpOracleOutcome};
