//! The trace-level persistency linter.
//!
//! Statically analyzes a [`ppa_isa::Trace`] for missing, redundant, or
//! misordered persist annotations. Each software persistence scheme has
//! its own contract — the linter checks a trace against the *profile* of
//! the scheme that is supposed to execute it:
//!
//! * [`LintProfile::Raw`] — the PPA input contract: hardware forms
//!   regions dynamically, so the trace must carry **no** persist barriers
//!   or `clwb`s.
//! * [`LintProfile::ReplayCache`] — every store immediately followed by a
//!   `clwb` to the same line, store-integrity over architectural
//!   registers (no redefinition of a protected register once the spare
//!   budget is spent), no storeless barriers, and a final barrier after
//!   the last store.
//! * [`LintProfile::Capri`] — bounded epochs: at most `max_insts`
//!   micro-ops and `max_store_bytes` store bytes between barriers, and a
//!   barrier sealing the trailing region when it stored.
//!
//! Diagnostics carry the trace position and PC, so a finding is
//! actionable without re-running anything.

use ppa_isa::{BranchKind, RegClass, Trace, UopKind};
use std::collections::HashSet;
use std::fmt;

/// Named lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintRule {
    /// A store is not immediately followed by a `clwb` to its line
    /// (ReplayCache's persist-push contract).
    MissingClwb,
    /// A `clwb` that does not immediately follow a store.
    OrphanClwb,
    /// A `clwb` that follows its store but targets a different line.
    ClwbAddrMismatch,
    /// The trace's final store-bearing region is never sealed with a
    /// persist barrier, so its stores may never persist.
    MissingFinalBarrier,
    /// A persist barrier with no store since the previous region
    /// boundary — pure overhead the scheme's compiler would not emit.
    RedundantBarrier,
    /// A protected register (a store's data register) is redefined within
    /// its region after the spare-register budget is exhausted —
    /// ReplayCache's store-integrity guarantee is broken, and replay
    /// would read the clobbered value.
    StoreIntegrityViolation,
    /// A Capri epoch exceeds the compiler's static instruction bound, so
    /// the redo buffer can no longer be proven not to overflow.
    RegionTooLong,
    /// A Capri epoch's stores exceed the redo-buffer byte budget.
    RegionBytesExceeded,
    /// A persist barrier in a raw (PPA-input) trace, which forms regions
    /// in hardware.
    BarrierInRawTrace,
    /// A `clwb` in a raw (PPA-input) trace.
    ClwbInRawTrace,
    /// More stores between two sync boundaries than the in-order core's
    /// value-carrying CSQ holds: every overflow forces an early region
    /// boundary that stalls the scalar pipeline until persists drain.
    SyncIntervalOverflowsCsq,
    /// A store too wide for a value-carrying CSQ entry, whose 8-byte value
    /// field must hold the entire datum for register-free replay.
    StoreTooWideForValueCsq,
}

impl LintRule {
    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            LintRule::MissingClwb => "missing-clwb",
            LintRule::OrphanClwb => "orphan-clwb",
            LintRule::ClwbAddrMismatch => "clwb-addr-mismatch",
            LintRule::MissingFinalBarrier => "missing-final-barrier",
            LintRule::RedundantBarrier => "redundant-barrier",
            LintRule::StoreIntegrityViolation => "store-integrity-violation",
            LintRule::RegionTooLong => "region-too-long",
            LintRule::RegionBytesExceeded => "region-bytes-exceeded",
            LintRule::BarrierInRawTrace => "barrier-in-raw-trace",
            LintRule::ClwbInRawTrace => "clwb-in-raw-trace",
            LintRule::SyncIntervalOverflowsCsq => "sync-interval-overflows-csq",
            LintRule::StoreTooWideForValueCsq => "store-too-wide-for-value-csq",
        }
    }
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How bad a finding is. `Error`s break persistency; `Warning`s are
/// correct-but-wasteful annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Correct but wasteful.
    Warning,
    /// Breaks the persistency contract.
    Error,
}

/// One linter finding, anchored to a trace position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: LintRule,
    /// Finding severity.
    pub severity: Severity,
    /// Index of the offending micro-op in the trace (or of the trace end
    /// for missing-final-barrier findings).
    pub pos: usize,
    /// PC of the offending micro-op, when one exists.
    pub pc: Option<u64>,
    /// Human-readable context.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}] at uop {}", self.rule, self.pos)?;
        if let Some(pc) = self.pc {
            write!(f, " (pc {pc:#x})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The persistency contract a trace is checked against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LintProfile {
    /// PPA input: no software persist annotations allowed.
    Raw,
    /// ReplayCache output, with the pass's spare-register fraction.
    ReplayCache {
        /// Fraction of each class's architectural registers the compiler
        /// may burn renaming WAR redefinitions (the pass default is 0.55).
        spare_fraction: f64,
    },
    /// Capri output, with the pass's epoch bounds.
    Capri {
        /// Static instruction bound per epoch (pass default 32).
        max_insts: usize,
        /// Redo-buffer byte budget per epoch (pass default 54 KiB).
        max_store_bytes: usize,
    },
    /// §6's in-order core with a value-carrying CSQ
    /// ([`ppa_core::InOrderCore`]). Hardware still forms regions, so the
    /// raw-trace rules apply; on top, every store must fit an 8-byte CSQ
    /// value field, and packing more stores than the CSQ holds between two
    /// sync boundaries forces early stall-until-drain regions.
    InOrder {
        /// Value-carrying CSQ capacity (the evaluation uses 40).
        csq_entries: usize,
    },
}

impl LintProfile {
    /// The ReplayCache profile with the pass's defaults.
    pub fn replaycache_default() -> Self {
        LintProfile::ReplayCache {
            spare_fraction: 0.55,
        }
    }

    /// The Capri profile with the pass's defaults.
    pub fn capri_default() -> Self {
        LintProfile::Capri {
            max_insts: 32,
            max_store_bytes: 54 * 1024,
        }
    }

    /// The in-order profile with the evaluation's CSQ capacity.
    pub fn inorder_default() -> Self {
        LintProfile::InOrder { csq_entries: 40 }
    }
}

fn line_of(addr: u64) -> u64 {
    addr & !63
}

/// Lints a trace against a profile, returning findings in trace order.
pub fn lint_trace(trace: &Trace, profile: &LintProfile) -> Vec<Diagnostic> {
    match profile {
        LintProfile::Raw => lint_raw(trace),
        LintProfile::ReplayCache { spare_fraction } => lint_replaycache(trace, *spare_fraction),
        LintProfile::Capri {
            max_insts,
            max_store_bytes,
        } => lint_capri(trace, *max_insts, *max_store_bytes),
        LintProfile::InOrder { csq_entries } => lint_inorder(trace, *csq_entries),
    }
}

fn lint_raw(trace: &Trace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (pos, u) in trace.iter().enumerate() {
        match u.kind {
            UopKind::PersistBarrier => out.push(Diagnostic {
                rule: LintRule::BarrierInRawTrace,
                severity: Severity::Error,
                pos,
                pc: Some(u.pc),
                message: "PPA forms regions in hardware; raw traces must not carry barriers"
                    .to_string(),
            }),
            UopKind::Clwb => out.push(Diagnostic {
                rule: LintRule::ClwbInRawTrace,
                severity: Severity::Error,
                pos,
                pc: Some(u.pc),
                message: "PPA persists committed stores itself; raw traces must not carry clwbs"
                    .to_string(),
            }),
            _ => {}
        }
    }
    out
}

fn lint_replaycache(trace: &Trace, spare_fraction: f64) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let budget = |class: RegClass| (class.arch_count() as f64 * spare_fraction).floor() as usize;

    // Store-integrity state, mirroring the pass's region formation: the
    // protected set and spare budgets reset at every region boundary
    // (barrier, call, return, or sync).
    let mut protected: HashSet<ppa_isa::ArchReg> = HashSet::new();
    let mut spare_int = budget(RegClass::Int);
    let mut spare_fp = budget(RegClass::Fp);
    // Stores not yet sealed by a barrier. Unlike the protected set, this
    // does NOT reset at calls/syncs: the pass emits a region's barrier
    // *after* the boundary micro-op, so the barrier that follows a call
    // seals the pre-call stores.
    let mut stores_since_barrier = 0usize;
    let mut store_pending_clwb: Option<(usize, u64)> = None;

    let uops: Vec<_> = trace.iter().collect();
    for (pos, u) in uops.iter().enumerate() {
        // Pairing: the previous store must be followed *immediately* by
        // its clwb, so anything else arriving first is a missing clwb.
        if let Some((store_pos, line)) = store_pending_clwb.take() {
            match u.kind {
                UopKind::Clwb => {
                    let m = u.mem.expect("clwb carries an address");
                    if line_of(m.addr) != line {
                        out.push(Diagnostic {
                            rule: LintRule::ClwbAddrMismatch,
                            severity: Severity::Error,
                            pos,
                            pc: Some(u.pc),
                            message: format!(
                                "clwb targets line {:#x} but the store at uop {store_pos} wrote line {line:#x}",
                                line_of(m.addr)
                            ),
                        });
                    }
                    continue;
                }
                _ => out.push(Diagnostic {
                    rule: LintRule::MissingClwb,
                    severity: Severity::Error,
                    pos: store_pos,
                    pc: uops.get(store_pos).map(|s| s.pc),
                    message: format!(
                        "store to line {line:#x} is not followed by a clwb; its cache line may never reach NVM"
                    ),
                }),
            }
        }

        let mut boundary = false;
        match u.kind {
            UopKind::PersistBarrier => {
                if stores_since_barrier == 0 {
                    out.push(Diagnostic {
                        rule: LintRule::RedundantBarrier,
                        severity: Severity::Warning,
                        pos,
                        pc: Some(u.pc),
                        message: "barrier seals a region with no stores; ReplayCache merges empty regions forward"
                            .to_string(),
                    });
                }
                boundary = true;
            }
            UopKind::Branch(BranchKind::Call) | UopKind::Branch(BranchKind::Ret) => {
                boundary = true;
            }
            UopKind::Sync(_) => boundary = true,
            UopKind::Clwb => {
                out.push(Diagnostic {
                    rule: LintRule::OrphanClwb,
                    severity: Severity::Error,
                    pos,
                    pc: Some(u.pc),
                    message: "clwb does not immediately follow a store; the pairing that pushes store lines to NVM is broken"
                        .to_string(),
                });
            }
            UopKind::Store => {
                let m = u.mem.expect("stores carry a memory reference");
                stores_since_barrier += 1;
                store_pending_clwb = Some((pos, line_of(m.addr)));
            }
            _ => {}
        }

        // Store-integrity: a redefinition of a protected register burns a
        // spare; once the budget is spent, the region must already have
        // ended.
        if !boundary {
            if let Some(dst) = u.dst {
                if protected.contains(&dst) {
                    let spare = match dst.class() {
                        RegClass::Int => &mut spare_int,
                        RegClass::Fp => &mut spare_fp,
                    };
                    if *spare > 0 {
                        *spare -= 1;
                    } else {
                        out.push(Diagnostic {
                            rule: LintRule::StoreIntegrityViolation,
                            severity: Severity::Error,
                            pos,
                            pc: Some(u.pc),
                            message: format!(
                                "{dst} supplied a store in this region and is redefined with no spare registers left; replay would read the clobbered value"
                            ),
                        });
                    }
                }
            }
            if u.kind.is_store() {
                if let Some(data) = u.store_data_reg() {
                    protected.insert(data);
                }
            }
        }

        if boundary {
            protected.clear();
            spare_int = budget(RegClass::Int);
            spare_fp = budget(RegClass::Fp);
            if u.kind == UopKind::PersistBarrier {
                stores_since_barrier = 0;
            }
        }
    }

    if let Some((store_pos, line)) = store_pending_clwb {
        out.push(Diagnostic {
            rule: LintRule::MissingClwb,
            severity: Severity::Error,
            pos: store_pos,
            pc: uops.get(store_pos).map(|s| s.pc),
            message: format!("trailing store to line {line:#x} has no clwb"),
        });
    }
    if stores_since_barrier > 0 {
        out.push(Diagnostic {
            rule: LintRule::MissingFinalBarrier,
            severity: Severity::Error,
            pos: uops.len(),
            pc: None,
            message: format!(
                "{stores_since_barrier} store(s) after the last barrier are never sealed; they may not persist before exit"
            ),
        });
    }
    out.sort_by_key(|d| d.pos);
    out
}

fn lint_inorder(trace: &Trace, csq_entries: usize) -> Vec<Diagnostic> {
    // The in-order variant is still hardware persistence: the raw-trace
    // contract (no barriers, no clwbs) applies unchanged.
    let mut out = lint_raw(trace);
    let mut stores_since_sync = 0usize;
    for (pos, u) in trace.iter().enumerate() {
        if u.kind.is_store() {
            let m = u.mem.expect("stores carry a memory reference");
            if m.size > 8 {
                out.push(Diagnostic {
                    rule: LintRule::StoreTooWideForValueCsq,
                    severity: Severity::Error,
                    pos,
                    pc: Some(u.pc),
                    message: format!(
                        "{}-byte store cannot be carried in an 8-byte CSQ value field; register-free replay would truncate it",
                        m.size
                    ),
                });
            }
            stores_since_sync += 1;
            // Report once per runaway interval, at the first overflowing
            // store.
            if stores_since_sync == csq_entries + 1 {
                out.push(Diagnostic {
                    rule: LintRule::SyncIntervalOverflowsCsq,
                    severity: Severity::Warning,
                    pos,
                    pc: Some(u.pc),
                    message: format!(
                        "more than {csq_entries} stores since the last sync boundary; the value-carrying CSQ will force early stall-until-drain regions"
                    ),
                });
            }
        }
        if matches!(u.kind, UopKind::Sync(_)) {
            stores_since_sync = 0;
        }
    }
    out.sort_by_key(|d| d.pos);
    out
}

fn lint_capri(trace: &Trace, max_insts: usize, max_store_bytes: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut insts = 0usize;
    let mut store_bytes = 0usize;
    let mut stores_since_boundary = 0usize;
    let mut prev_was_barrier = false;

    for (pos, u) in trace.iter().enumerate() {
        if u.kind == UopKind::PersistBarrier {
            if prev_was_barrier {
                out.push(Diagnostic {
                    rule: LintRule::RedundantBarrier,
                    severity: Severity::Warning,
                    pos,
                    pc: Some(u.pc),
                    message: "back-to-back barriers seal an empty epoch".to_string(),
                });
            }
            insts = 0;
            store_bytes = 0;
            stores_since_boundary = 0;
            prev_was_barrier = true;
            continue;
        }
        prev_was_barrier = false;

        // The compiler seals an epoch as soon as a bound is reached, so a
        // non-barrier micro-op arriving with a bound already met means the
        // epoch escaped its static proof.
        if insts >= max_insts {
            out.push(Diagnostic {
                rule: LintRule::RegionTooLong,
                severity: Severity::Error,
                pos,
                pc: Some(u.pc),
                message: format!(
                    "epoch reaches {} micro-ops, past the static bound of {max_insts}; the redo buffer can overflow",
                    insts + 1
                ),
            });
            // Report once per runaway epoch.
            insts = 0;
            store_bytes = 0;
        }
        if store_bytes >= max_store_bytes {
            out.push(Diagnostic {
                rule: LintRule::RegionBytesExceeded,
                severity: Severity::Error,
                pos,
                pc: Some(u.pc),
                message: format!(
                    "epoch holds {store_bytes} store bytes, past the redo-buffer budget of {max_store_bytes}"
                ),
            });
            store_bytes = 0;
        }

        insts += 1;
        if u.kind.is_store() {
            store_bytes += u.mem.map(|m| m.size as usize).unwrap_or(8);
            stores_since_boundary += 1;
        }
    }

    if stores_since_boundary > 0 {
        out.push(Diagnostic {
            rule: LintRule::MissingFinalBarrier,
            severity: Severity::Error,
            pos: trace.len(),
            pc: None,
            message: format!(
                "{stores_since_boundary} store(s) in the trailing epoch are never sealed"
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_isa::transform::{CapriPass, ReplayCachePass, TracePass};
    use ppa_isa::{ArchReg, MemRef, TraceBuilder, Uop};

    fn store_loop(n: u64) -> Trace {
        let mut b = TraceBuilder::new("t");
        for i in 0..n {
            let r = ArchReg::int((i % 6) as u8);
            b.alu(r, &[r]);
            b.store(r, 0x1000 + (i % 64) * 8, i + 1);
            if i % 29 == 0 {
                b.branch(BranchKind::Call);
            }
        }
        b.build()
    }

    #[test]
    fn raw_workload_traces_are_clean() {
        assert!(lint_trace(&store_loop(200), &LintProfile::Raw).is_empty());
    }

    #[test]
    fn pass_outputs_are_clean_under_their_profiles() {
        let raw = store_loop(300);
        let rc = ReplayCachePass::new().apply(&raw);
        assert_eq!(lint_trace(&rc, &LintProfile::replaycache_default()), vec![]);
        let capri = CapriPass::new().apply(&raw);
        assert_eq!(lint_trace(&capri, &LintProfile::capri_default()), vec![]);
    }

    #[test]
    fn pass_outputs_fail_the_raw_profile() {
        let rc = ReplayCachePass::new().apply(&store_loop(50));
        let diags = lint_trace(&rc, &LintProfile::Raw);
        assert!(diags.iter().any(|d| d.rule == LintRule::ClwbInRawTrace));
        assert!(diags.iter().any(|d| d.rule == LintRule::BarrierInRawTrace));
    }

    #[test]
    fn deleting_a_clwb_is_detected() {
        let rc = ReplayCachePass::new().apply(&store_loop(50));
        let clwb_pos = rc
            .iter()
            .position(|u| u.kind == UopKind::Clwb)
            .expect("pass emits clwbs");
        let mutated: Vec<Uop> = rc
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != clwb_pos)
            .map(|(_, u)| *u)
            .collect();
        let t = Trace::from_uops("mutated", mutated);
        let diags = lint_trace(&t, &LintProfile::replaycache_default());
        assert!(diags.iter().any(|d| d.rule == LintRule::MissingClwb));
    }

    #[test]
    fn deleting_the_final_barrier_is_detected() {
        let rc = ReplayCachePass::new().apply(&store_loop(50));
        let uops: Vec<Uop> = rc.iter().copied().collect();
        assert_eq!(uops.last().unwrap().kind, UopKind::PersistBarrier);
        let t = Trace::from_uops("mutated", uops[..uops.len() - 1].to_vec());
        let diags = lint_trace(&t, &LintProfile::replaycache_default());
        assert!(diags
            .iter()
            .any(|d| d.rule == LintRule::MissingFinalBarrier));
    }

    #[test]
    fn swapping_store_and_clwb_is_detected() {
        let rc = ReplayCachePass::new().apply(&store_loop(20));
        let mut uops: Vec<Uop> = rc.iter().copied().collect();
        let store_pos = uops.iter().position(|u| u.kind.is_store()).unwrap();
        uops.swap(store_pos, store_pos + 1);
        let t = Trace::from_uops("mutated", uops);
        let diags = lint_trace(&t, &LintProfile::replaycache_default());
        assert!(diags.iter().any(|d| d.rule == LintRule::OrphanClwb));
    }

    #[test]
    fn clwb_to_the_wrong_line_is_detected() {
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0x100, 1);
        let mut uops: Vec<Uop> = ReplayCachePass::new()
            .apply(&b.build())
            .iter()
            .copied()
            .collect();
        let clwb = uops.iter_mut().find(|u| u.kind == UopKind::Clwb).unwrap();
        clwb.mem = Some(MemRef::new(0x4000, 8, 0));
        let t = Trace::from_uops("mutated", uops);
        let diags = lint_trace(&t, &LintProfile::replaycache_default());
        assert!(diags.iter().any(|d| d.rule == LintRule::ClwbAddrMismatch));
    }

    #[test]
    fn protected_register_clobber_is_detected() {
        // With a zero spare budget, redefining a store's data register
        // inside its region is a store-integrity violation.
        let mut b = TraceBuilder::new("t");
        let r0 = ArchReg::int(0);
        b.store(r0, 0x100, 1);
        b.alu(r0, &[r0]);
        let rc = ReplayCachePass::new().apply(&b.build());
        // The default pass output is clean even at spare 0.0? No — the
        // pass *used a spare* to absorb this redefinition, so checking
        // with a zero budget must flag it.
        let diags = lint_trace(
            &rc,
            &LintProfile::ReplayCache {
                spare_fraction: 0.0,
            },
        );
        assert!(diags
            .iter()
            .any(|d| d.rule == LintRule::StoreIntegrityViolation));
        // At the pass's own budget it is clean.
        assert!(lint_trace(&rc, &LintProfile::replaycache_default()).is_empty());
    }

    #[test]
    fn storeless_barrier_is_redundant_under_replaycache() {
        let mut b = TraceBuilder::new("t");
        b.alu(ArchReg::int(0), &[]);
        let mut uops: Vec<Uop> = b.build().iter().copied().collect();
        uops.push(Uop::new(99, UopKind::PersistBarrier));
        let t = Trace::from_uops("mutated", uops);
        let diags = lint_trace(&t, &LintProfile::replaycache_default());
        assert!(diags.iter().any(|d| d.rule == LintRule::RedundantBarrier));
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn deleting_a_capri_barrier_is_detected() {
        let capri = CapriPass::new().apply(&store_loop(200));
        let barrier_pos = capri
            .iter()
            .position(|u| u.kind == UopKind::PersistBarrier)
            .expect("capri seals epochs");
        let mutated: Vec<Uop> = capri
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != barrier_pos)
            .map(|(_, u)| *u)
            .collect();
        let t = Trace::from_uops("mutated", mutated);
        let diags = lint_trace(&t, &LintProfile::capri_default());
        assert!(diags.iter().any(|d| d.rule == LintRule::RegionTooLong));
    }

    #[test]
    fn capri_byte_budget_overrun_is_detected() {
        let mut b = TraceBuilder::new("t");
        for i in 0..8u64 {
            b.store(ArchReg::int(0), i * 8, i);
        }
        let raw = b.build();
        // Two 8-byte stores per 16-byte epoch is fine; five is not.
        let tight = CapriPass::new()
            .with_max_insts(1000)
            .with_max_store_bytes(16)
            .apply(&raw);
        assert!(lint_trace(
            &tight,
            &LintProfile::Capri {
                max_insts: 1000,
                max_store_bytes: 16
            }
        )
        .is_empty());
        let diags = lint_trace(
            &raw,
            &LintProfile::Capri {
                max_insts: 1000,
                max_store_bytes: 16,
            },
        );
        assert!(diags
            .iter()
            .any(|d| d.rule == LintRule::RegionBytesExceeded));
    }

    #[test]
    fn inorder_accepts_shared_workload_traces() {
        use ppa_workloads::shared;
        for app in shared::all() {
            for t in app.generate_threads(600, 1, 2) {
                let diags = lint_trace(&t, &LintProfile::inorder_default());
                assert!(diags.is_empty(), "{}: {diags:?}", t.name());
            }
        }
    }

    #[test]
    fn inorder_rejects_software_persist_annotations() {
        let rc = ReplayCachePass::new().apply(&store_loop(50));
        let diags = lint_trace(&rc, &LintProfile::inorder_default());
        assert!(diags.iter().any(|d| d.rule == LintRule::ClwbInRawTrace));
        assert!(diags.iter().any(|d| d.rule == LintRule::BarrierInRawTrace));
    }

    #[test]
    fn inorder_warns_once_per_overflowing_sync_interval() {
        use ppa_isa::SyncKind;
        let mut b = TraceBuilder::new("t");
        for i in 0..5u64 {
            b.store(ArchReg::int(0), 0x100 + i * 8, i);
        }
        b.sync(SyncKind::Fence);
        for i in 0..3u64 {
            b.store(ArchReg::int(0), 0x200 + i * 8, i);
        }
        let t = b.build();
        // Four entries: the first interval (5 stores) overflows once; the
        // second (3 stores) fits.
        let diags = lint_trace(&t, &LintProfile::InOrder { csq_entries: 4 });
        let overflows: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == LintRule::SyncIntervalOverflowsCsq)
            .collect();
        assert_eq!(overflows.len(), 1, "{diags:?}");
        assert_eq!(overflows[0].severity, Severity::Warning);
        assert_eq!(overflows[0].pos, 4, "flagged at the first overflow");
        // At the evaluation capacity the same trace is clean.
        assert!(lint_trace(&t, &LintProfile::inorder_default()).is_empty());
    }

    #[test]
    fn inorder_rejects_stores_wider_than_a_value_entry() {
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0x100, 1);
        let mut uops: Vec<Uop> = b.build().iter().copied().collect();
        let store = uops.iter_mut().find(|u| u.kind.is_store()).unwrap();
        store.mem = Some(MemRef::new(0x100, 16, 1));
        let t = Trace::from_uops("mutated", uops);
        let diags = lint_trace(&t, &LintProfile::inorder_default());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == LintRule::StoreTooWideForValueCsq
                    && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn diagnostics_render_with_position_and_pc() {
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0x100, 1);
        let diags = lint_trace(&b.build(), &LintProfile::replaycache_default());
        assert!(!diags.is_empty());
        let text = diags[0].to_string();
        assert!(text.contains("at uop"), "{text}");
    }
}
