//! The trace-level persistency linter.
//!
//! Statically analyzes a [`ppa_isa::Trace`] for missing, redundant, or
//! misordered persist annotations. Each software persistence scheme has
//! its own contract — the linter checks a trace against the *profile* of
//! the scheme that is supposed to execute it:
//!
//! * [`LintProfile::Raw`] — the PPA input contract: hardware forms
//!   regions dynamically, so the trace must carry **no** persist barriers
//!   or `clwb`s.
//! * [`LintProfile::ReplayCache`] — every store immediately followed by a
//!   `clwb` to the same line, store-integrity over architectural
//!   registers (no redefinition of a protected register once the spare
//!   budget is spent), no storeless barriers, and a final barrier after
//!   the last store.
//! * [`LintProfile::Capri`] — bounded epochs: at most `max_insts`
//!   micro-ops and `max_store_bytes` store bytes between barriers, and a
//!   barrier sealing the trailing region when it stored.
//! * [`LintProfile::AutoPersist`] — the dependence-driven contract of
//!   [`ppa_isa::transform::AutoPersistPass`]: every store sealed (flushed
//!   then fenced) somewhere, every persist-dependence pair sealed in
//!   order, every store sealed before the next synchronisation primitive,
//!   and no wasted barriers or flushes. Unlike the peephole profiles this
//!   one is *dataflow-driven*: it consumes the static persist-dependence
//!   graph ([`ppa_isa::depgraph`]), and its dependence diagnostics carry
//!   the full path (store → load → register hops → store) explaining why
//!   the flush/fence is required.
//!
//! Diagnostics carry the trace position and PC, so a finding is
//! actionable without re-running anything.

use ppa_isa::depgraph::{store_seals, PersistDepGraph};
use ppa_isa::{BranchKind, RegClass, Trace, UopKind};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Named lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintRule {
    /// A store is not immediately followed by a `clwb` to its line
    /// (ReplayCache's persist-push contract).
    MissingClwb,
    /// A `clwb` that does not immediately follow a store.
    OrphanClwb,
    /// A `clwb` that follows its store but targets a different line.
    ClwbAddrMismatch,
    /// The trace's final store-bearing region is never sealed with a
    /// persist barrier, so its stores may never persist.
    MissingFinalBarrier,
    /// A persist barrier with no store since the previous region
    /// boundary — pure overhead the scheme's compiler would not emit.
    RedundantBarrier,
    /// A protected register (a store's data register) is redefined within
    /// its region after the spare-register budget is exhausted —
    /// ReplayCache's store-integrity guarantee is broken, and replay
    /// would read the clobbered value.
    StoreIntegrityViolation,
    /// A Capri epoch exceeds the compiler's static instruction bound, so
    /// the redo buffer can no longer be proven not to overflow.
    RegionTooLong,
    /// A Capri epoch's stores exceed the redo-buffer byte budget.
    RegionBytesExceeded,
    /// A persist barrier in a raw (PPA-input) trace, which forms regions
    /// in hardware.
    BarrierInRawTrace,
    /// A `clwb` in a raw (PPA-input) trace.
    ClwbInRawTrace,
    /// More stores between two sync boundaries than the in-order core's
    /// value-carrying CSQ holds: every overflow forces an early region
    /// boundary that stalls the scalar pipeline until persists drain.
    SyncIntervalOverflowsCsq,
    /// A store too wide for a value-carrying CSQ entry, whose 8-byte value
    /// field must hold the entire datum for register-free replay.
    StoreTooWideForValueCsq,
    /// A store whose data derives (through a load and register dataflow)
    /// from an earlier store that is not sealed before the dependent store
    /// commits: recovery could observe the effect without the cause. The
    /// diagnostic message carries the full dependence path.
    UnorderedPersistDependence,
    /// A store still unsealed when a synchronisation primitive commits:
    /// once another core can observe the write it can persist state derived
    /// from it, so publication requires durability first.
    UnsealedStoresAtSync,
}

impl LintRule {
    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            LintRule::MissingClwb => "missing-clwb",
            LintRule::OrphanClwb => "orphan-clwb",
            LintRule::ClwbAddrMismatch => "clwb-addr-mismatch",
            LintRule::MissingFinalBarrier => "missing-final-barrier",
            LintRule::RedundantBarrier => "redundant-barrier",
            LintRule::StoreIntegrityViolation => "store-integrity-violation",
            LintRule::RegionTooLong => "region-too-long",
            LintRule::RegionBytesExceeded => "region-bytes-exceeded",
            LintRule::BarrierInRawTrace => "barrier-in-raw-trace",
            LintRule::ClwbInRawTrace => "clwb-in-raw-trace",
            LintRule::SyncIntervalOverflowsCsq => "sync-interval-overflows-csq",
            LintRule::StoreTooWideForValueCsq => "store-too-wide-for-value-csq",
            LintRule::UnorderedPersistDependence => "unordered-persist-dependence",
            LintRule::UnsealedStoresAtSync => "unsealed-stores-at-sync",
        }
    }
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How bad a finding is. `Error`s break persistency; `Warning`s are
/// correct-but-wasteful annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Correct but wasteful.
    Warning,
    /// Breaks the persistency contract.
    Error,
}

/// One linter finding, anchored to a trace position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: LintRule,
    /// Finding severity.
    pub severity: Severity,
    /// Index of the offending micro-op in the trace (or of the trace end
    /// for missing-final-barrier findings).
    pub pos: usize,
    /// PC of the offending micro-op, when one exists.
    pub pc: Option<u64>,
    /// Human-readable context.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}] at uop {}", self.rule, self.pos)?;
        if let Some(pc) = self.pc {
            write!(f, " (pc {pc:#x})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The persistency contract a trace is checked against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LintProfile {
    /// PPA input: no software persist annotations allowed.
    Raw,
    /// ReplayCache output, with the pass's spare-register fraction.
    ReplayCache {
        /// Fraction of each class's architectural registers the compiler
        /// may burn renaming WAR redefinitions (the pass default is 0.55).
        spare_fraction: f64,
    },
    /// Capri output, with the pass's epoch bounds.
    Capri {
        /// Static instruction bound per epoch (pass default 32).
        max_insts: usize,
        /// Redo-buffer byte budget per epoch (pass default 54 KiB).
        max_store_bytes: usize,
    },
    /// §6's in-order core with a value-carrying CSQ
    /// ([`ppa_core::InOrderCore`]). Hardware still forms regions, so the
    /// raw-trace rules apply; on top, every store must fit an 8-byte CSQ
    /// value field, and packing more stores than the CSQ holds between two
    /// sync boundaries forces early stall-until-drain regions.
    InOrder {
        /// Value-carrying CSQ capacity (the evaluation uses 40).
        csq_entries: usize,
    },
    /// Output of the dependence-driven
    /// [`ppa_isa::transform::AutoPersistPass`]: seals only where the
    /// persist-dependence graph requires them (dependence crossings, sync
    /// publication points, trace end), with per-line coalesced `clwb`s.
    AutoPersist,
}

impl LintProfile {
    /// The ReplayCache profile with the pass's defaults.
    pub fn replaycache_default() -> Self {
        LintProfile::ReplayCache {
            spare_fraction: 0.55,
        }
    }

    /// The Capri profile with the pass's defaults.
    pub fn capri_default() -> Self {
        LintProfile::Capri {
            max_insts: 32,
            max_store_bytes: 54 * 1024,
        }
    }

    /// The in-order profile with the evaluation's CSQ capacity.
    pub fn inorder_default() -> Self {
        LintProfile::InOrder { csq_entries: 40 }
    }
}

fn line_of(addr: u64) -> u64 {
    addr & !63
}

/// Lints a trace against a profile, returning findings in trace order.
pub fn lint_trace(trace: &Trace, profile: &LintProfile) -> Vec<Diagnostic> {
    match profile {
        LintProfile::Raw => lint_raw(trace),
        LintProfile::ReplayCache { spare_fraction } => lint_replaycache(trace, *spare_fraction),
        LintProfile::Capri {
            max_insts,
            max_store_bytes,
        } => lint_capri(trace, *max_insts, *max_store_bytes),
        LintProfile::InOrder { csq_entries } => lint_inorder(trace, *csq_entries),
        LintProfile::AutoPersist => lint_autopersist(trace),
    }
}

fn lint_raw(trace: &Trace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (pos, u) in trace.iter().enumerate() {
        match u.kind {
            UopKind::PersistBarrier => out.push(Diagnostic {
                rule: LintRule::BarrierInRawTrace,
                severity: Severity::Error,
                pos,
                pc: Some(u.pc),
                message: "PPA forms regions in hardware; raw traces must not carry barriers"
                    .to_string(),
            }),
            UopKind::Clwb => out.push(Diagnostic {
                rule: LintRule::ClwbInRawTrace,
                severity: Severity::Error,
                pos,
                pc: Some(u.pc),
                message: "PPA persists committed stores itself; raw traces must not carry clwbs"
                    .to_string(),
            }),
            _ => {}
        }
    }
    out
}

fn lint_replaycache(trace: &Trace, spare_fraction: f64) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let budget = |class: RegClass| (class.arch_count() as f64 * spare_fraction).floor() as usize;

    // Store-integrity state, mirroring the pass's region formation: the
    // protected set and spare budgets reset at every region boundary
    // (barrier, call, return, or sync).
    let mut protected: HashSet<ppa_isa::ArchReg> = HashSet::new();
    let mut spare_int = budget(RegClass::Int);
    let mut spare_fp = budget(RegClass::Fp);
    // Stores not yet sealed by a barrier. Unlike the protected set, this
    // does NOT reset at calls/syncs: the pass emits a region's barrier
    // *after* the boundary micro-op, so the barrier that follows a call
    // seals the pre-call stores.
    let mut stores_since_barrier = 0usize;
    let mut store_pending_clwb: Option<(usize, u64)> = None;

    let uops: Vec<_> = trace.iter().collect();
    for (pos, u) in uops.iter().enumerate() {
        // Pairing: the previous store must be followed *immediately* by
        // its clwb, so anything else arriving first is a missing clwb.
        if let Some((store_pos, line)) = store_pending_clwb.take() {
            match u.kind {
                UopKind::Clwb => {
                    let m = u.mem.expect("clwb carries an address");
                    if line_of(m.addr) != line {
                        out.push(Diagnostic {
                            rule: LintRule::ClwbAddrMismatch,
                            severity: Severity::Error,
                            pos,
                            pc: Some(u.pc),
                            message: format!(
                                "clwb targets line {:#x} but the store at uop {store_pos} wrote line {line:#x}",
                                line_of(m.addr)
                            ),
                        });
                    }
                    continue;
                }
                _ => out.push(Diagnostic {
                    rule: LintRule::MissingClwb,
                    severity: Severity::Error,
                    pos: store_pos,
                    pc: uops.get(store_pos).map(|s| s.pc),
                    message: format!(
                        "store to line {line:#x} is not followed by a clwb; its cache line may never reach NVM"
                    ),
                }),
            }
        }

        let mut boundary = false;
        match u.kind {
            UopKind::PersistBarrier => {
                if stores_since_barrier == 0 {
                    out.push(Diagnostic {
                        rule: LintRule::RedundantBarrier,
                        severity: Severity::Warning,
                        pos,
                        pc: Some(u.pc),
                        message: "barrier seals a region with no stores; ReplayCache merges empty regions forward"
                            .to_string(),
                    });
                }
                boundary = true;
            }
            UopKind::Branch(BranchKind::Call) | UopKind::Branch(BranchKind::Ret) => {
                boundary = true;
            }
            UopKind::Sync(_) => boundary = true,
            UopKind::Clwb => {
                out.push(Diagnostic {
                    rule: LintRule::OrphanClwb,
                    severity: Severity::Error,
                    pos,
                    pc: Some(u.pc),
                    message: "clwb does not immediately follow a store; the pairing that pushes store lines to NVM is broken"
                        .to_string(),
                });
            }
            UopKind::Store => {
                let m = u.mem.expect("stores carry a memory reference");
                stores_since_barrier += 1;
                store_pending_clwb = Some((pos, line_of(m.addr)));
            }
            _ => {}
        }

        // Store-integrity: a redefinition of a protected register burns a
        // spare; once the budget is spent, the region must already have
        // ended.
        if !boundary {
            if let Some(dst) = u.dst {
                if protected.contains(&dst) {
                    let spare = match dst.class() {
                        RegClass::Int => &mut spare_int,
                        RegClass::Fp => &mut spare_fp,
                    };
                    if *spare > 0 {
                        *spare -= 1;
                    } else {
                        out.push(Diagnostic {
                            rule: LintRule::StoreIntegrityViolation,
                            severity: Severity::Error,
                            pos,
                            pc: Some(u.pc),
                            message: format!(
                                "{dst} supplied a store in this region and is redefined with no spare registers left; replay would read the clobbered value"
                            ),
                        });
                    }
                }
            }
            if u.kind.is_store() {
                if let Some(data) = u.store_data_reg() {
                    protected.insert(data);
                }
            }
        }

        if boundary {
            protected.clear();
            spare_int = budget(RegClass::Int);
            spare_fp = budget(RegClass::Fp);
            if u.kind == UopKind::PersistBarrier {
                stores_since_barrier = 0;
            }
        }
    }

    if let Some((store_pos, line)) = store_pending_clwb {
        out.push(Diagnostic {
            rule: LintRule::MissingClwb,
            severity: Severity::Error,
            pos: store_pos,
            pc: uops.get(store_pos).map(|s| s.pc),
            message: format!("trailing store to line {line:#x} has no clwb"),
        });
    }
    if stores_since_barrier > 0 {
        out.push(Diagnostic {
            rule: LintRule::MissingFinalBarrier,
            severity: Severity::Error,
            pos: uops.len(),
            pc: None,
            message: format!(
                "{stores_since_barrier} store(s) after the last barrier are never sealed; they may not persist before exit"
            ),
        });
    }
    out.sort_by_key(|d| d.pos);
    out
}

fn lint_inorder(trace: &Trace, csq_entries: usize) -> Vec<Diagnostic> {
    // The in-order variant is still hardware persistence: the raw-trace
    // contract (no barriers, no clwbs) applies unchanged.
    let mut out = lint_raw(trace);
    let mut stores_since_sync = 0usize;
    for (pos, u) in trace.iter().enumerate() {
        if u.kind.is_store() {
            let m = u.mem.expect("stores carry a memory reference");
            if m.size > 8 {
                out.push(Diagnostic {
                    rule: LintRule::StoreTooWideForValueCsq,
                    severity: Severity::Error,
                    pos,
                    pc: Some(u.pc),
                    message: format!(
                        "{}-byte store cannot be carried in an 8-byte CSQ value field; register-free replay would truncate it",
                        m.size
                    ),
                });
            }
            stores_since_sync += 1;
            // Report once per runaway interval, at the first overflowing
            // store.
            if stores_since_sync == csq_entries + 1 {
                out.push(Diagnostic {
                    rule: LintRule::SyncIntervalOverflowsCsq,
                    severity: Severity::Warning,
                    pos,
                    pc: Some(u.pc),
                    message: format!(
                        "more than {csq_entries} stores since the last sync boundary; the value-carrying CSQ will force early stall-until-drain regions"
                    ),
                });
            }
        }
        if matches!(u.kind, UopKind::Sync(_)) {
            stores_since_sync = 0;
        }
    }
    out.sort_by_key(|d| d.pos);
    out
}

fn lint_capri(trace: &Trace, max_insts: usize, max_store_bytes: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut insts = 0usize;
    let mut store_bytes = 0usize;
    let mut stores_since_boundary = 0usize;
    // The trace start is an epoch boundary, so a barrier at position 0
    // seals an empty leading epoch and is just as redundant as a
    // back-to-back pair (and as the storeless leading barrier the
    // ReplayCache profile already flags).
    let mut prev_was_barrier = true;

    for (pos, u) in trace.iter().enumerate() {
        if u.kind == UopKind::PersistBarrier {
            if prev_was_barrier {
                out.push(Diagnostic {
                    rule: LintRule::RedundantBarrier,
                    severity: Severity::Warning,
                    pos,
                    pc: Some(u.pc),
                    message: "back-to-back barriers seal an empty epoch".to_string(),
                });
            }
            insts = 0;
            store_bytes = 0;
            stores_since_boundary = 0;
            prev_was_barrier = true;
            continue;
        }
        prev_was_barrier = false;

        // The compiler seals an epoch as soon as a bound is reached, so a
        // non-barrier micro-op arriving with a bound already met means the
        // epoch escaped its static proof.
        if insts >= max_insts {
            out.push(Diagnostic {
                rule: LintRule::RegionTooLong,
                severity: Severity::Error,
                pos,
                pc: Some(u.pc),
                message: format!(
                    "epoch reaches {} micro-ops, past the static bound of {max_insts}; the redo buffer can overflow",
                    insts + 1
                ),
            });
            // Report once per runaway epoch.
            insts = 0;
            store_bytes = 0;
        }
        if store_bytes >= max_store_bytes {
            out.push(Diagnostic {
                rule: LintRule::RegionBytesExceeded,
                severity: Severity::Error,
                pos,
                pc: Some(u.pc),
                message: format!(
                    "epoch holds {store_bytes} store bytes, past the redo-buffer budget of {max_store_bytes}"
                ),
            });
            store_bytes = 0;
        }

        insts += 1;
        if u.kind.is_store() {
            store_bytes += u.mem.map(|m| m.size as usize).unwrap_or(8);
            stores_since_boundary += 1;
        }
    }

    if stores_since_boundary > 0 {
        out.push(Diagnostic {
            rule: LintRule::MissingFinalBarrier,
            severity: Severity::Error,
            pos: trace.len(),
            pc: None,
            message: format!(
                "{stores_since_boundary} store(s) in the trailing epoch are never sealed"
            ),
        });
    }
    out
}

/// The dependence-driven AutoPersist contract. A store is *sealed* once a
/// `clwb` of its line commits after it and a persist barrier commits after
/// that `clwb`; the profile demands that every store is sealed somewhere,
/// that every persist-dependence pair from the static graph is sealed in
/// order, that no store crosses a synchronisation primitive unsealed, and
/// that no barrier or `clwb` is wasted.
fn lint_autopersist(trace: &Trace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let seals = store_seals(trace);

    // Per-store sealing: a line that never reaches a clwb is an error at
    // the store; clwb'd-but-never-fenced stores are collected into one
    // trace-end finding, like the other profiles' MissingFinalBarrier.
    let mut unsealed_at_end = 0usize;
    for s in &seals {
        if s.clwb_pos.is_none() {
            out.push(Diagnostic {
                rule: LintRule::MissingClwb,
                severity: Severity::Error,
                pos: s.pos,
                pc: Some(s.pc),
                message: format!(
                    "store to line {:#x} is never flushed; the line cannot reach NVM before a crash",
                    s.line
                ),
            });
        } else if s.barrier_pos.is_none() {
            unsealed_at_end += 1;
        }
    }
    if unsealed_at_end > 0 {
        out.push(Diagnostic {
            rule: LintRule::MissingFinalBarrier,
            severity: Severity::Error,
            pos: trace.len(),
            pc: None,
            message: format!(
                "{unsealed_at_end} flushed store(s) are never fenced; their durability is unordered at exit"
            ),
        });
    }

    // Wasted annotations: a barrier sealing an epoch with no stores, or a
    // clwb flushing a line nothing dirtied since its previous flush. Both
    // are warnings — correct but pure overhead the pass would not emit.
    let mut stores_since_barrier = 0usize;
    let mut dirty_lines: HashSet<u64> = HashSet::new();
    for (pos, u) in trace.iter().enumerate() {
        match u.kind {
            UopKind::Store => {
                if let Some(m) = u.mem {
                    dirty_lines.insert(ppa_isa::line_of(m.addr));
                }
                stores_since_barrier += 1;
            }
            UopKind::PersistBarrier => {
                if stores_since_barrier == 0 {
                    out.push(Diagnostic {
                        rule: LintRule::RedundantBarrier,
                        severity: Severity::Warning,
                        pos,
                        pc: Some(u.pc),
                        message: "barrier seals an epoch with no stores".to_string(),
                    });
                }
                stores_since_barrier = 0;
            }
            UopKind::Clwb => {
                if let Some(m) = u.mem {
                    if !dirty_lines.remove(&ppa_isa::line_of(m.addr)) {
                        out.push(Diagnostic {
                            rule: LintRule::OrphanClwb,
                            severity: Severity::Warning,
                            pos,
                            pc: Some(u.pc),
                            message: format!(
                                "clwb flushes line {:#x}, which no store dirtied since its last flush",
                                ppa_isa::line_of(m.addr)
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
    }

    // Publication: every store committed before a sync must be sealed by
    // the sync's position. One finding per offending sync.
    let sync_positions: Vec<usize> = trace
        .iter()
        .enumerate()
        .filter(|(_, u)| u.kind.is_sync_boundary())
        .map(|(pos, _)| pos)
        .collect();
    let mut unsealed_per_sync: HashMap<usize, usize> = HashMap::new();
    for s in &seals {
        let i = sync_positions.partition_point(|&p| p <= s.pos);
        if let Some(&sync_pos) = sync_positions.get(i) {
            if !s.sealed_before(sync_pos) {
                *unsealed_per_sync.entry(sync_pos).or_insert(0) += 1;
            }
        }
    }
    for &sync_pos in &sync_positions {
        if let Some(&n) = unsealed_per_sync.get(&sync_pos) {
            out.push(Diagnostic {
                rule: LintRule::UnsealedStoresAtSync,
                severity: Severity::Error,
                pos: sync_pos,
                pc: trace.get(sync_pos).map(|u| u.pc),
                message: format!(
                    "{n} store(s) cross this synchronisation point unsealed; another core could observe and persist state derived from volatile data"
                ),
            });
        }
    }

    // Dependence ordering: for every persist-dependence pair the source
    // store must be sealed strictly before the dependent store commits.
    // The diagnostic carries the path — the *why*, not just the position.
    let seal_by_pos: HashMap<usize, &ppa_isa::depgraph::StoreSeal> =
        seals.iter().map(|s| (s.pos, s)).collect();
    let graph = PersistDepGraph::build(trace);
    for pair in graph.dependence_pairs() {
        let sealed_in_time = seal_by_pos
            .get(&pair.from_store)
            .is_some_and(|s| s.sealed_before(pair.to_store));
        if !sealed_in_time {
            let path: Vec<String> = pair.path().iter().map(|p| p.to_string()).collect();
            out.push(Diagnostic {
                rule: LintRule::UnorderedPersistDependence,
                severity: Severity::Error,
                pos: pair.to_store,
                pc: trace.get(pair.to_store).map(|u| u.pc),
                message: format!(
                    "store depends on the store at uop {} via the load at uop {} (dependence path: uops {}); the source must be flushed and fenced before this store commits or recovery can observe the effect without the cause",
                    pair.from_store,
                    pair.via_load,
                    path.join(" -> ")
                ),
            });
        }
    }

    out.sort_by_key(|d| d.pos);
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// Renders the finding as one self-contained JSON object (one line, no
    /// trailing newline) for machine consumers: `app` and `profile` give
    /// the finding its context, the remaining fields mirror the struct.
    ///
    /// # Examples
    ///
    /// ```
    /// use ppa_verify::lint::{lint_trace, LintProfile};
    /// use ppa_isa::{ArchReg, TraceBuilder};
    ///
    /// let mut b = TraceBuilder::new("t");
    /// b.store(ArchReg::int(0), 0x100, 1);
    /// let d = &lint_trace(&b.build(), &LintProfile::AutoPersist)[0];
    /// let json = d.to_json("demo", "autopersist");
    /// assert!(json.starts_with("{\"app\":\"demo\""));
    /// assert!(json.contains("\"rule\":\"missing-clwb\""));
    /// ```
    pub fn to_json(&self, app: &str, profile: &str) -> String {
        let severity = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let pc = match self.pc {
            Some(pc) => pc.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"app\":\"{}\",\"profile\":\"{}\",\"rule\":\"{}\",\"severity\":\"{}\",\"pos\":{},\"pc\":{},\"message\":\"{}\"}}",
            json_escape(app),
            json_escape(profile),
            self.rule.name(),
            severity,
            self.pos,
            pc,
            json_escape(&self.message)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_isa::transform::{CapriPass, ReplayCachePass, TracePass};
    use ppa_isa::{ArchReg, MemRef, TraceBuilder, Uop};

    fn store_loop(n: u64) -> Trace {
        let mut b = TraceBuilder::new("t");
        for i in 0..n {
            let r = ArchReg::int((i % 6) as u8);
            b.alu(r, &[r]);
            b.store(r, 0x1000 + (i % 64) * 8, i + 1);
            if i % 29 == 0 {
                b.branch(BranchKind::Call);
            }
        }
        b.build()
    }

    #[test]
    fn raw_workload_traces_are_clean() {
        assert!(lint_trace(&store_loop(200), &LintProfile::Raw).is_empty());
    }

    #[test]
    fn pass_outputs_are_clean_under_their_profiles() {
        let raw = store_loop(300);
        let rc = ReplayCachePass::new().apply(&raw);
        assert_eq!(lint_trace(&rc, &LintProfile::replaycache_default()), vec![]);
        let capri = CapriPass::new().apply(&raw);
        assert_eq!(lint_trace(&capri, &LintProfile::capri_default()), vec![]);
    }

    #[test]
    fn pass_outputs_fail_the_raw_profile() {
        let rc = ReplayCachePass::new().apply(&store_loop(50));
        let diags = lint_trace(&rc, &LintProfile::Raw);
        assert!(diags.iter().any(|d| d.rule == LintRule::ClwbInRawTrace));
        assert!(diags.iter().any(|d| d.rule == LintRule::BarrierInRawTrace));
    }

    #[test]
    fn deleting_a_clwb_is_detected() {
        let rc = ReplayCachePass::new().apply(&store_loop(50));
        let clwb_pos = rc
            .iter()
            .position(|u| u.kind == UopKind::Clwb)
            .expect("pass emits clwbs");
        let mutated: Vec<Uop> = rc
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != clwb_pos)
            .map(|(_, u)| *u)
            .collect();
        let t = Trace::from_uops("mutated", mutated);
        let diags = lint_trace(&t, &LintProfile::replaycache_default());
        assert!(diags.iter().any(|d| d.rule == LintRule::MissingClwb));
    }

    #[test]
    fn deleting_the_final_barrier_is_detected() {
        let rc = ReplayCachePass::new().apply(&store_loop(50));
        let uops: Vec<Uop> = rc.iter().copied().collect();
        assert_eq!(uops.last().unwrap().kind, UopKind::PersistBarrier);
        let t = Trace::from_uops("mutated", uops[..uops.len() - 1].to_vec());
        let diags = lint_trace(&t, &LintProfile::replaycache_default());
        assert!(diags
            .iter()
            .any(|d| d.rule == LintRule::MissingFinalBarrier));
    }

    #[test]
    fn swapping_store_and_clwb_is_detected() {
        let rc = ReplayCachePass::new().apply(&store_loop(20));
        let mut uops: Vec<Uop> = rc.iter().copied().collect();
        let store_pos = uops.iter().position(|u| u.kind.is_store()).unwrap();
        uops.swap(store_pos, store_pos + 1);
        let t = Trace::from_uops("mutated", uops);
        let diags = lint_trace(&t, &LintProfile::replaycache_default());
        assert!(diags.iter().any(|d| d.rule == LintRule::OrphanClwb));
    }

    #[test]
    fn clwb_to_the_wrong_line_is_detected() {
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0x100, 1);
        let mut uops: Vec<Uop> = ReplayCachePass::new()
            .apply(&b.build())
            .iter()
            .copied()
            .collect();
        let clwb = uops.iter_mut().find(|u| u.kind == UopKind::Clwb).unwrap();
        clwb.mem = Some(MemRef::new(0x4000, 8, 0));
        let t = Trace::from_uops("mutated", uops);
        let diags = lint_trace(&t, &LintProfile::replaycache_default());
        assert!(diags.iter().any(|d| d.rule == LintRule::ClwbAddrMismatch));
    }

    #[test]
    fn protected_register_clobber_is_detected() {
        // With a zero spare budget, redefining a store's data register
        // inside its region is a store-integrity violation.
        let mut b = TraceBuilder::new("t");
        let r0 = ArchReg::int(0);
        b.store(r0, 0x100, 1);
        b.alu(r0, &[r0]);
        let rc = ReplayCachePass::new().apply(&b.build());
        // The default pass output is clean even at spare 0.0? No — the
        // pass *used a spare* to absorb this redefinition, so checking
        // with a zero budget must flag it.
        let diags = lint_trace(
            &rc,
            &LintProfile::ReplayCache {
                spare_fraction: 0.0,
            },
        );
        assert!(diags
            .iter()
            .any(|d| d.rule == LintRule::StoreIntegrityViolation));
        // At the pass's own budget it is clean.
        assert!(lint_trace(&rc, &LintProfile::replaycache_default()).is_empty());
    }

    #[test]
    fn storeless_barrier_is_redundant_under_replaycache() {
        let mut b = TraceBuilder::new("t");
        b.alu(ArchReg::int(0), &[]);
        let mut uops: Vec<Uop> = b.build().iter().copied().collect();
        uops.push(Uop::new(99, UopKind::PersistBarrier));
        let t = Trace::from_uops("mutated", uops);
        let diags = lint_trace(&t, &LintProfile::replaycache_default());
        assert!(diags.iter().any(|d| d.rule == LintRule::RedundantBarrier));
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn deleting_a_capri_barrier_is_detected() {
        let capri = CapriPass::new().apply(&store_loop(200));
        let barrier_pos = capri
            .iter()
            .position(|u| u.kind == UopKind::PersistBarrier)
            .expect("capri seals epochs");
        let mutated: Vec<Uop> = capri
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != barrier_pos)
            .map(|(_, u)| *u)
            .collect();
        let t = Trace::from_uops("mutated", mutated);
        let diags = lint_trace(&t, &LintProfile::capri_default());
        assert!(diags.iter().any(|d| d.rule == LintRule::RegionTooLong));
    }

    #[test]
    fn capri_byte_budget_overrun_is_detected() {
        let mut b = TraceBuilder::new("t");
        for i in 0..8u64 {
            b.store(ArchReg::int(0), i * 8, i);
        }
        let raw = b.build();
        // Two 8-byte stores per 16-byte epoch is fine; five is not.
        let tight = CapriPass::new()
            .with_max_insts(1000)
            .with_max_store_bytes(16)
            .apply(&raw);
        assert!(lint_trace(
            &tight,
            &LintProfile::Capri {
                max_insts: 1000,
                max_store_bytes: 16
            }
        )
        .is_empty());
        let diags = lint_trace(
            &raw,
            &LintProfile::Capri {
                max_insts: 1000,
                max_store_bytes: 16,
            },
        );
        assert!(diags
            .iter()
            .any(|d| d.rule == LintRule::RegionBytesExceeded));
    }

    #[test]
    fn inorder_accepts_shared_workload_traces() {
        use ppa_workloads::shared;
        for app in shared::all() {
            for t in app.generate_threads(600, 1, 2) {
                let diags = lint_trace(&t, &LintProfile::inorder_default());
                assert!(diags.is_empty(), "{}: {diags:?}", t.name());
            }
        }
    }

    #[test]
    fn inorder_rejects_software_persist_annotations() {
        let rc = ReplayCachePass::new().apply(&store_loop(50));
        let diags = lint_trace(&rc, &LintProfile::inorder_default());
        assert!(diags.iter().any(|d| d.rule == LintRule::ClwbInRawTrace));
        assert!(diags.iter().any(|d| d.rule == LintRule::BarrierInRawTrace));
    }

    #[test]
    fn inorder_warns_once_per_overflowing_sync_interval() {
        use ppa_isa::SyncKind;
        let mut b = TraceBuilder::new("t");
        for i in 0..5u64 {
            b.store(ArchReg::int(0), 0x100 + i * 8, i);
        }
        b.sync(SyncKind::Fence);
        for i in 0..3u64 {
            b.store(ArchReg::int(0), 0x200 + i * 8, i);
        }
        let t = b.build();
        // Four entries: the first interval (5 stores) overflows once; the
        // second (3 stores) fits.
        let diags = lint_trace(&t, &LintProfile::InOrder { csq_entries: 4 });
        let overflows: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == LintRule::SyncIntervalOverflowsCsq)
            .collect();
        assert_eq!(overflows.len(), 1, "{diags:?}");
        assert_eq!(overflows[0].severity, Severity::Warning);
        assert_eq!(overflows[0].pos, 4, "flagged at the first overflow");
        // At the evaluation capacity the same trace is clean.
        assert!(lint_trace(&t, &LintProfile::inorder_default()).is_empty());
    }

    #[test]
    fn inorder_rejects_stores_wider_than_a_value_entry() {
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0x100, 1);
        let mut uops: Vec<Uop> = b.build().iter().copied().collect();
        let store = uops.iter_mut().find(|u| u.kind.is_store()).unwrap();
        store.mem = Some(MemRef::new(0x100, 16, 1));
        let t = Trace::from_uops("mutated", uops);
        let diags = lint_trace(&t, &LintProfile::inorder_default());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == LintRule::StoreTooWideForValueCsq
                    && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn diagnostics_render_with_position_and_pc() {
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0x100, 1);
        let diags = lint_trace(&b.build(), &LintProfile::replaycache_default());
        assert!(!diags.is_empty());
        let text = diags[0].to_string();
        assert!(text.contains("at uop"), "{text}");
    }

    #[test]
    fn leading_barriers_are_redundant_under_both_region_profiles() {
        // Regression: lint_capri used to treat the trace start as "not a
        // barrier", so back-to-back barriers at positions 0 and 1 slipped
        // through while the ReplayCache profile flagged them.
        let mut uops = vec![
            Uop::new(0x10, UopKind::PersistBarrier),
            Uop::new(0x14, UopKind::PersistBarrier),
        ];
        uops.extend(store_loop(5).iter().copied());
        let t = Trace::from_uops("leading", uops);
        for profile in [
            LintProfile::capri_default(),
            LintProfile::replaycache_default(),
        ] {
            let redundant: Vec<usize> = lint_trace(&t, &profile)
                .iter()
                .filter(|d| d.rule == LintRule::RedundantBarrier)
                .map(|d| d.pos)
                .collect();
            assert_eq!(redundant, vec![0, 1], "under {profile:?}");
        }
    }

    #[test]
    fn capri_pass_output_stays_clean_with_the_leading_boundary_fix() {
        let capri = CapriPass::new().apply(&store_loop(300));
        assert_eq!(lint_trace(&capri, &LintProfile::capri_default()), vec![]);
    }

    #[test]
    fn autopersist_pass_output_is_clean_on_every_workload() {
        use ppa_isa::transform::AutoPersistPass;
        for app in ppa_workloads::registry::all() {
            let raw = app.generate(1_000, 1);
            let t = AutoPersistPass::new().apply(&raw);
            let diags = lint_trace(&t, &LintProfile::AutoPersist);
            assert!(diags.is_empty(), "{}: {diags:?}", t.name());
        }
    }

    #[test]
    fn autopersist_flags_an_unflushed_store() {
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0x100, 1);
        let diags = lint_trace(&b.build(), &LintProfile::AutoPersist);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, LintRule::MissingClwb);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn autopersist_flags_a_flushed_but_unfenced_store() {
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0x100, 1);
        b.push(Uop::new(0, UopKind::Clwb).with_mem(MemRef::new(0x100, 8, 0)));
        let diags = lint_trace(&b.build(), &LintProfile::AutoPersist);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, LintRule::MissingFinalBarrier);
    }

    #[test]
    fn autopersist_dependence_diagnostic_carries_the_path() {
        use ppa_isa::transform::{AutoPersistPass, TracePass};
        // Known-clean: the pass seals the dependence. Deleting that barrier
        // must fire exactly the dependence rule, with the path in the text.
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0x100, 7);
        b.load(ArchReg::int(1), 0x100);
        b.alu(ArchReg::int(2), &[ArchReg::int(1)]);
        b.store(ArchReg::int(2), 0x200, 7);
        let clean = AutoPersistPass::new().apply(&b.build());
        assert!(lint_trace(&clean, &LintProfile::AutoPersist).is_empty());
        let bar = clean
            .iter()
            .position(|u| u.kind == UopKind::PersistBarrier)
            .unwrap();
        let mutated: Vec<Uop> = clean
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != bar)
            .map(|(_, u)| *u)
            .collect();
        let diags = lint_trace(
            &Trace::from_uops("mutated", mutated),
            &LintProfile::AutoPersist,
        );
        let dep: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == LintRule::UnorderedPersistDependence)
            .collect();
        assert_eq!(dep.len(), 1, "{diags:?}");
        assert!(dep[0].message.contains("dependence path"), "{}", dep[0]);
    }

    #[test]
    fn autopersist_flags_stores_crossing_a_sync_unsealed() {
        use ppa_isa::SyncKind;
        let mut b = TraceBuilder::new("t");
        b.store(ArchReg::int(0), 0x100, 1);
        b.sync(SyncKind::LockRelease);
        // Sealed only after the sync: publication happened too early.
        b.push(Uop::new(0, UopKind::Clwb).with_mem(MemRef::new(0x100, 8, 0)));
        b.push(Uop::new(0, UopKind::PersistBarrier));
        let diags = lint_trace(&b.build(), &LintProfile::AutoPersist);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, LintRule::UnsealedStoresAtSync);
        assert_eq!(diags[0].pos, 1);
    }

    #[test]
    fn autopersist_warns_on_wasted_annotations() {
        let mut b = TraceBuilder::new("t");
        b.push(Uop::new(0, UopKind::PersistBarrier)); // empty epoch
        b.store(ArchReg::int(0), 0x100, 1);
        b.push(Uop::new(0, UopKind::Clwb).with_mem(MemRef::new(0x100, 8, 0)));
        b.push(Uop::new(0, UopKind::Clwb).with_mem(MemRef::new(0x100, 8, 0))); // clean line
        b.push(Uop::new(0, UopKind::PersistBarrier));
        let diags = lint_trace(&b.build(), &LintProfile::AutoPersist);
        assert!(diags
            .iter()
            .any(|d| d.rule == LintRule::RedundantBarrier && d.pos == 0));
        assert!(diags
            .iter()
            .any(|d| d.rule == LintRule::OrphanClwb && d.pos == 3));
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn diagnostic_json_is_escaped_and_complete() {
        let d = Diagnostic {
            rule: LintRule::MissingClwb,
            severity: Severity::Error,
            pos: 7,
            pc: None,
            message: "quote \" backslash \\ newline \n done".to_string(),
        };
        let json = d.to_json("app\"name", "raw");
        assert!(json.contains("\"pc\":null"), "{json}");
        assert!(json.contains("\"pos\":7"), "{json}");
        assert!(json.contains("app\\\"name"), "{json}");
        assert!(json.contains("backslash \\\\ newline \\n"), "{json}");
    }
}
