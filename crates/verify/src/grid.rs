//! Grid integration for the crash-consistency oracle: partitions the
//! (app × failure-point) grid into `ppa-grid` work units.
//!
//! Distribution runs in two waves so the coordinator — not the workers —
//! owns the RNG stream that places failure points:
//!
//! 1. **Plan** (`oracle.plan:{app}`): one unit per workload measuring
//!    the uninterrupted execution's cycle count.
//! 2. **Cell** (`oracle.cell:{app}#{i}`): one unit per injection point,
//!    carrying the exact `fail_cycle`/`mid_flush` the coordinator drew
//!    with [`oracle::run_app`]'s RNG stream.
//!
//! Each cell returns `(passed, exercised, rendered failure block)`, so
//! assembling rows in (registry, point) order reproduces the local
//! `ppa-verify oracle` output byte for byte. Tags embed the unit's
//! identity, so exhausted retries name the failing app and point.

use crate::oracle::{self, OracleOutcome};
use ppa_grid::coord::{Coordinator, GridConfig, UnitRunner, UnitSpec};
use ppa_grid::loopback::{self, Loopback};
use ppa_grid::proto::{ByteReader, ByteWriter};
use ppa_grid::{Executor, GridMode};
use ppa_prng::Prng;
use ppa_serve::ServeClient;
use ppa_workloads::registry;
use std::sync::Arc;

/// One row of `ppa-verify oracle` output, whether computed locally or
/// returned by a grid cell.
pub struct OracleRow {
    pub passed: bool,
    pub exercised: bool,
    /// Rendered FAIL block; empty when `passed`.
    pub failure: String,
}

impl OracleRow {
    pub fn from_outcome(o: &OracleOutcome) -> OracleRow {
        OracleRow {
            passed: o.passed(),
            exercised: oracle::exercised_recovery(o),
            failure: oracle::render_failure(o),
        }
    }
}

fn plan_unit(app: &'static str, len: usize, seed: u64) -> UnitSpec {
    let mut w = ByteWriter::new();
    w.put_str(app);
    w.put_u64(len as u64);
    w.put_u64(seed);
    UnitSpec {
        tag: format!("oracle.plan:{app}"),
        payload: w.into_bytes(),
    }
}

fn cell_unit(
    app: &'static str,
    idx: usize,
    len: usize,
    seed: u64,
    fail_cycle: u64,
    mid_flush: Option<u64>,
) -> UnitSpec {
    let mut w = ByteWriter::new();
    w.put_str(app);
    w.put_u64(len as u64);
    w.put_u64(seed);
    w.put_u64(fail_cycle);
    w.put_u8(mid_flush.is_some() as u8);
    w.put_u64(mid_flush.unwrap_or(0));
    UnitSpec {
        tag: format!("oracle.cell:{app}#{idx}"),
        payload: w.into_bytes(),
    }
}

/// Runs the full oracle suite through `runner` (a local coordinator or
/// a `ppa-serve` client), reproducing [`oracle::run_suite`]'s row order
/// exactly. Returns `Err` (with the failing unit's tag in the message)
/// when a unit exhausts its retries.
pub fn oracle_rows(
    runner: &dyn UnitRunner,
    len: usize,
    seed: u64,
    points: usize,
) -> Result<Vec<OracleRow>, String> {
    let apps = registry::all();

    // Wave 1: learn each workload's natural cycle count.
    let plans = apps
        .iter()
        .map(|app| plan_unit(app.name, len, seed))
        .collect();
    let mut totals = Vec::with_capacity(apps.len());
    for res in runner.run_units(plans) {
        let outcome = res.map_err(|e| e.to_string())?;
        let mut r = ByteReader::new(&outcome.payload);
        let total = r.u64().map_err(|e| e.to_string())?;
        r.finish().map_err(|e| e.to_string())?;
        totals.push(total);
    }

    // Wave 2: the coordinator draws every failure point with run_app's
    // RNG stream, then fans the (app x point) grid out as cells.
    let mut cells = Vec::with_capacity(apps.len() * points);
    for (app, &total_cycles) in apps.iter().zip(&totals) {
        let mut rng = Prng::seed_from_u64(seed ^ 0x07ac1e ^ app.name.len() as u64);
        for i in 0..points {
            let fail_cycle = rng.random_range(10..total_cycles.saturating_mul(4) / 5);
            let interrupt = rng.random_range(0..240);
            let mid_flush = (i % 3 == 2).then_some(interrupt);
            cells.push(cell_unit(app.name, i, len, seed, fail_cycle, mid_flush));
        }
    }
    let mut rows = Vec::with_capacity(cells.len());
    for res in runner.run_units(cells) {
        let outcome = res.map_err(|e| e.to_string())?;
        let mut r = ByteReader::new(&outcome.payload);
        let passed = r.u8().map_err(|e| e.to_string())? != 0;
        let exercised = r.u8().map_err(|e| e.to_string())? != 0;
        let failure = r.str().map_err(|e| e.to_string())?;
        r.finish().map_err(|e| e.to_string())?;
        rows.push(OracleRow {
            passed,
            exercised,
            failure,
        });
    }
    Ok(rows)
}

/// A small representative batch of oracle units (plans plus cells, one
/// of them mid-flush) for `ppa-grid selftest`. Fail cycles are fixed
/// rather than planned: the self-test checks transport fidelity, not
/// injection coverage.
pub fn selftest_units() -> Vec<UnitSpec> {
    let mut units = Vec::new();
    for (i, app) in registry::all().into_iter().take(3).enumerate() {
        units.push(plan_unit(app.name, 800, 1));
        let mid_flush = (i % 3 == 2).then_some(40);
        units.push(cell_unit(
            app.name,
            i,
            800,
            1,
            250 + 50 * i as u64,
            mid_flush,
        ));
    }
    units
}

/// Worker-side dispatcher for `oracle.*` unit tags.
pub fn execute(tag: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
    if tag.starts_with("oracle.plan:") {
        let mut r = ByteReader::new(payload);
        let app_name = r.str().map_err(|e| e.to_string())?;
        let len = r.u64().map_err(|e| e.to_string())? as usize;
        let seed = r.u64().map_err(|e| e.to_string())?;
        r.finish().map_err(|e| e.to_string())?;
        let app = registry::by_name(&app_name)
            .ok_or_else(|| format!("unknown application '{app_name}'"))?;
        let total = oracle_total_cycles(&app, len, seed);
        let mut w = ByteWriter::new();
        w.put_u64(total);
        Ok(w.into_bytes())
    } else if tag.starts_with("oracle.cell:") {
        let mut r = ByteReader::new(payload);
        let app_name = r.str().map_err(|e| e.to_string())?;
        let len = r.u64().map_err(|e| e.to_string())? as usize;
        let seed = r.u64().map_err(|e| e.to_string())?;
        let fail_cycle = r.u64().map_err(|e| e.to_string())?;
        let has_mid = r.u8().map_err(|e| e.to_string())? != 0;
        let mid = r.u64().map_err(|e| e.to_string())?;
        r.finish().map_err(|e| e.to_string())?;
        let app = registry::by_name(&app_name)
            .ok_or_else(|| format!("unknown application '{app_name}'"))?;
        let trace = app.generate(len, seed);
        let o = oracle::run_point_with_flush(
            app.name,
            &trace,
            seed,
            fail_cycle,
            has_mid.then_some(mid),
        );
        let row = OracleRow::from_outcome(&o);
        let mut w = ByteWriter::new();
        w.put_u8(row.passed as u8);
        w.put_u8(row.exercised as u8);
        w.put_str(&row.failure);
        Ok(w.into_bytes())
    } else {
        Err(format!("unknown unit tag '{tag}'"))
    }
}

/// The uninterrupted cycle count [`oracle::run_app`] plans around.
fn oracle_total_cycles(app: &ppa_workloads::AppDescriptor, len: usize, seed: u64) -> u64 {
    use ppa_core::{Core, CoreConfig, PersistenceMode};
    use ppa_mem::{MemConfig, MemorySystem};
    let trace = app.generate(len, seed);
    let cfg = CoreConfig::paper_default(PersistenceMode::Ppa);
    let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
    let mut core = Core::new(cfg, 0);
    core.run(&trace, &mut mem)
}

/// [`Executor`] over the verification unit vocabulary.
pub struct VerifyExecutor;

impl Executor for VerifyExecutor {
    fn execute(&self, tag: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        execute(tag, payload)
    }
}

/// A live grid attachment owned by the `ppa-verify` binary.
pub enum GridHandle {
    Loopback(Loopback),
    Serve(Arc<Coordinator>),
    Remote(ServeClient),
}

impl GridHandle {
    /// The runner work units are submitted through.
    pub fn runner(&self) -> &dyn UnitRunner {
        match self {
            GridHandle::Loopback(l) => l.coordinator().as_ref(),
            GridHandle::Serve(c) => c.as_ref(),
            GridHandle::Remote(client) => client,
        }
    }

    /// The locally owned coordinator, when the attachment has one
    /// (`Remote` submits to a daemon-owned coordinator instead).
    pub fn coordinator(&self) -> Option<&Arc<Coordinator>> {
        match self {
            GridHandle::Loopback(l) => Some(l.coordinator()),
            GridHandle::Serve(c) => Some(c),
            GridHandle::Remote(_) => None,
        }
    }
}

/// Attaches to the requested grid mode with `exec` serving loopback
/// workers; `Ok(None)` for [`GridMode::Off`].
pub fn attach(mode: GridMode, exec: Arc<dyn Executor>) -> Result<Option<GridHandle>, String> {
    match mode {
        GridMode::Off => Ok(None),
        GridMode::Loopback(n) => {
            let lb = loopback::start_uniform(
                n,
                ppa_pool::configured_jobs(),
                exec,
                GridConfig::default(),
            )
            .map_err(|e| format!("failed to start loopback grid: {e}"))?;
            ppa_obs::info!(
                "grid",
                "loopback with {n} workers on {}",
                lb.coordinator().local_addr()
            );
            Ok(Some(GridHandle::Loopback(lb)))
        }
        GridMode::Serve(addr) => {
            let client = ServeClient::connect(addr.as_str())?;
            ppa_obs::info!("grid", "submitting to ppa-serve daemon at {addr}");
            Ok(Some(GridHandle::Remote(client)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_unit_reproduces_local_outcome() {
        let app = registry::by_name("mcf").expect("mcf is registered");
        let outcomes = oracle::run_app(&app, 800, 7, 3);
        let total = oracle_total_cycles(&app, 800, 7);
        // Re-draw the same points the planner would and check cell
        // execution returns the same row the local path renders.
        let mut rng = Prng::seed_from_u64(7 ^ 0x07ac1e ^ app.name.len() as u64);
        for (i, o) in outcomes.iter().enumerate() {
            let fail_cycle = rng.random_range(10..total.saturating_mul(4) / 5);
            let interrupt = rng.random_range(0..240);
            let mid_flush = (i % 3 == 2).then_some(interrupt);
            assert_eq!(fail_cycle, o.fail_cycle, "planner diverged from run_app");
            let unit = cell_unit(app.name, i, 800, 7, fail_cycle, mid_flush);
            let bytes = execute(&unit.tag, &unit.payload).expect("cell executes");
            let mut r = ByteReader::new(&bytes);
            assert_eq!(r.u8().unwrap() != 0, o.passed());
            assert_eq!(r.u8().unwrap() != 0, oracle::exercised_recovery(o));
            assert_eq!(r.str().unwrap(), oracle::render_failure(o));
        }
    }

    #[test]
    fn unknown_tags_are_errors() {
        assert!(execute(
            "oracle.plan:nosuchapp",
            &plan_unit("nosuchapp", 100, 1).payload
        )
        .is_err());
        assert!(execute("repro.app:fig1/gcc", &[]).is_err());
        assert!(execute("oracle.cell:mcf#0", b"torn").is_err());
    }
}
