//! The multi-core crash-consistency oracle (§6).
//!
//! Extends the single-core oracle ([`crate::oracle`]) to the shared-memory
//! machine: N cores running a shared-state DRF workload are power-failed
//! at a randomized cycle, the whole machine is JIT-checkpointed through
//! the controller FSM (optionally tearing the flush partway), recovered
//! from the deserialized stream, and diffed against the **union** of each
//! thread's independent golden in-order execution
//! ([`GoldenMemory::from_thread_prefixes`]) — which is only well-defined
//! because DRF single-writer discipline keeps the per-thread images
//! disjoint, the same property that lets §6 replay per-core CSQs in
//! arbitrary order.
//!
//! The machine-level validators themselves are validated by the arbiter
//! **mutation self-tests** ([`run_arbiter_mutations`]): each
//! [`ArbiterFault`] must be caught as a named violation while clean runs
//! stay silent.

use crate::golden::{GoldenMemory, GoldenMismatch};
use ppa_core::verify::{InvariantKind, Violation};
use ppa_core::CheckpointController;
use ppa_prng::Prng;
use ppa_sim::SystemConfig;
use ppa_smp::{ArbiterFault, MachineCheckpoint, SmpSystem};
use ppa_workloads::shared::{self, SharedApp};

/// Outcome of one randomized whole-machine power-failure injection.
#[derive(Debug)]
pub struct SmpOracleOutcome {
    /// Shared workload name.
    pub app: &'static str,
    /// Number of cores (= threads).
    pub cores: usize,
    /// Trace generation seed.
    pub seed: u64,
    /// Cycle at which power was cut.
    pub fail_cycle: u64,
    /// Micro-ops committed across all cores before the failure.
    pub committed: u64,
    /// Stores replayed from the checkpointed CSQs (all cores).
    pub replayed: usize,
    /// Drain certificates the persist arbiter had issued by the failure.
    pub drain_grants: usize,
    /// Controller cycles after which the checkpoint flush was interrupted
    /// by a second power loss; `None` for an uninterrupted flush.
    pub mid_flush_interrupt: Option<u64>,
    /// Words of the serialized machine checkpoint durable at the
    /// interruption.
    pub torn_words: u64,
    /// Whether the torn stream was rejected by deserialization (vacuously
    /// `true` for an uninterrupted flush).
    pub torn_prefix_rejected: bool,
    /// Whether the machine checkpoint round-tripped and recovery consumed
    /// the deserialized images, not the in-memory ones.
    pub stream_recovered: bool,
    /// Machine-level validator findings at the failure point (drain-log
    /// total order, persist-before-dependence, recovery-image coherence).
    pub validator_violations: Vec<Violation>,
    /// Golden-union disagreements remaining after recovery (must be
    /// empty).
    pub recovery_mismatches: Vec<GoldenMismatch>,
    /// Whether every recovered core re-ran its trace to completion.
    pub resumed_to_completion: bool,
    /// Golden full-run disagreements in the final NVM image (must be
    /// empty).
    pub final_mismatches: Vec<GoldenMismatch>,
}

impl SmpOracleOutcome {
    /// Whether this injection point passed every oracle check.
    pub fn passed(&self) -> bool {
        self.validator_violations.is_empty()
            && self.torn_prefix_rejected
            && self.stream_recovered
            && self.recovery_mismatches.is_empty()
            && self.resumed_to_completion
            && self.final_mismatches.is_empty()
    }
}

/// Runs one whole-machine failure injection: `cores` threads of `app` on
/// an [`SmpSystem`], power cut at `fail_cycle` (optionally `mid_flush`
/// controller cycles *into* the checkpoint flush), recovery, resume.
pub fn run_smp_point(
    app: &SharedApp,
    cores: usize,
    len: usize,
    seed: u64,
    fail_cycle: u64,
    mid_flush: Option<u64>,
) -> SmpOracleOutcome {
    let traces = app.generate_threads(len, seed, cores);
    let cfg = SystemConfig::ppa().with_threads(cores);
    let mut sys = SmpSystem::new(cfg, traces.clone());

    // Phase 1: normal execution until the lights go out, then run the
    // machine-level validators over the live state.
    sys.run_to(fail_cycle);
    let validator_violations = sys.validate();
    let drain_grants = sys.drain_log().len();

    // Phase 2: whole-machine JIT checkpoint through the controller FSM.
    // All cores flush in parallel inside the residual-energy window; the
    // serialized stream's completion marker lands last, so a torn prefix
    // is always detectable.
    let ckpt = sys.jit_checkpoint();
    let stream = ckpt.serialize();
    let mut fsm = CheckpointController::new();
    fsm.power_fail(stream.len() as u64 * 8);
    let (torn_words, torn_prefix_rejected) = match mid_flush {
        None => {
            fsm.run_to_completion();
            (0, true)
        }
        Some(interrupt) => {
            for _ in 0..interrupt {
                if !fsm.step() {
                    break;
                }
            }
            let torn = fsm.words_done();
            let rejected = torn >= stream.len() as u64
                || MachineCheckpoint::deserialize(&stream[..torn as usize]).is_none();
            fsm.run_to_completion();
            (torn, rejected)
        }
    };
    sys.power_failure();

    // Phase 3: recovery from the deserialized stream, diffed against the
    // union of every thread's golden prefix execution.
    let recovered =
        MachineCheckpoint::deserialize(&stream).expect("a completed flush must deserialize");
    let stream_recovered = recovered == ckpt;
    let committed_per_core: Vec<u64> = recovered.images.iter().map(|i| i.committed).collect();
    let committed = committed_per_core.iter().sum();
    let golden_prefix = GoldenMemory::from_thread_prefixes(&traces, &committed_per_core)
        .expect("shared workloads are single-writer per word");
    let replayed = sys.recover(&recovered);
    let recovery_mismatches = golden_prefix.diff_nvm(sys.mem().nvm_image());

    // Phase 4: resume every core and finish the program.
    let report = sys.run_in_place();
    let total_uops = (len * cores) as u64;
    let resumed_to_completion = report.committed == total_uops;
    let committed_full: Vec<u64> = traces.iter().map(|t| t.len() as u64).collect();
    let golden_full = GoldenMemory::from_thread_prefixes(&traces, &committed_full)
        .expect("shared workloads are single-writer per word");
    let final_mismatches = golden_full.diff_nvm(sys.mem().nvm_image());

    SmpOracleOutcome {
        app: app.name,
        cores,
        seed,
        fail_cycle,
        committed,
        replayed,
        drain_grants,
        mid_flush_interrupt: mid_flush,
        torn_words,
        torn_prefix_rejected,
        stream_recovered,
        validator_violations,
        recovery_mismatches,
        resumed_to_completion,
        final_mismatches,
    }
}

/// Runs `points` randomized whole-machine injections for one shared
/// workload. Failure cycles are drawn uniformly from the first ~80% of
/// the uninterrupted run; every third point also tears the checkpoint
/// flush partway through.
pub fn run_smp_app(
    app: &SharedApp,
    cores: usize,
    len: usize,
    seed: u64,
    points: usize,
) -> Vec<SmpOracleOutcome> {
    // Clean run to learn the machine's natural cycle count.
    let cfg = SystemConfig::ppa().with_threads(cores);
    let total_cycles = SmpSystem::new(cfg, app.generate_threads(len, seed, cores))
        .run()
        .cycles;

    // Draw every failure point up front so the RNG stream is identical at
    // any job count.
    let mut rng = Prng::seed_from_u64(seed ^ 0x53b9 ^ (app.name.len() as u64) << 8);
    let fail_points: Vec<(u64, Option<u64>)> = (0..points)
        .map(|i| {
            let fail_cycle = rng.random_range(10..total_cycles.saturating_mul(4) / 5);
            let interrupt = rng.random_range(0..240 * cores as u64);
            (fail_cycle, (i % 3 == 2).then_some(interrupt))
        })
        .collect();
    let app = *app;
    ppa_pool::par_map_ordered(fail_points, move |(fail_cycle, mid_flush)| {
        run_smp_point(&app, cores, len, seed, fail_cycle, mid_flush)
    })
}

/// Runs the whole-machine oracle across all shared workloads with
/// `points_per_app` injections each.
pub fn run_smp_suite(
    cores: usize,
    len: usize,
    seed: u64,
    points_per_app: usize,
) -> Vec<SmpOracleOutcome> {
    ppa_pool::par_map_ordered(shared::all(), move |app| {
        run_smp_app(&app, cores, len, seed, points_per_app)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Outcome of the exhaustive failure-point sweep for one shared workload
/// (`--fail-points all`): a single forward pass that examines **every
/// cycle** as a failure point — checkpoint round-trip through the
/// serialized stream, CSQ replay into a clone of the live NVM image
/// (power failure never touches NVM, so the clone is the post-crash
/// image), golden-prefix diff — tearing the controller flush on a strided
/// subset of cells, plus a few full recover-and-resume points sampled
/// from the run for phase-4 coverage.
#[derive(Debug)]
pub struct SmpSweepOutcome {
    /// Shared workload name.
    pub app: &'static str,
    /// Number of cores (= threads).
    pub cores: usize,
    /// Trace generation seed.
    pub seed: u64,
    /// Failure points examined (one per cycle of the run).
    pub cells: u64,
    /// Cells that additionally ran the mid-flush tearing probe.
    pub torn_cells: u64,
    /// Torn prefixes recovery failed to reject (must be 0).
    pub torn_accepted: u64,
    /// Cells whose recovered image diverged from the golden prefix union
    /// (must be 0).
    pub mismatch_cells: u64,
    /// First failing cell, for diagnosis.
    pub first_failure: Option<String>,
    /// Sampled full recover-and-resume injections (phase 4 of
    /// [`run_smp_point`]).
    pub resume_points: Vec<SmpOracleOutcome>,
}

impl SmpSweepOutcome {
    /// Whether every cell and every sampled resume point passed.
    pub fn passed(&self) -> bool {
        self.torn_accepted == 0
            && self.mismatch_cells == 0
            && self.resume_points.iter().all(|o| o.passed())
    }
}

/// Runs the exhaustive failure-point sweep for one shared workload. One
/// forward execution; every cycle is a failure point. Deterministic in
/// (app, cores, len, seed) — the tearing stride and interrupts are
/// cell-derived, not drawn from an RNG.
pub fn run_smp_app_exhaustive(
    app: &SharedApp,
    cores: usize,
    len: usize,
    seed: u64,
) -> SmpSweepOutcome {
    let traces = app.generate_threads(len, seed, cores);
    let cfg = SystemConfig::ppa().with_threads(cores);
    let mut sys = SmpSystem::new(cfg, traces.clone());
    let total_uops = (len * cores) as u64;
    let limit = 1_000_000 + total_uops * 2_000;

    let mut cells = 0u64;
    let mut torn_cells = 0u64;
    let mut torn_accepted = 0u64;
    let mut mismatch_cells = 0u64;
    let mut first_failure: Option<String> = None;
    let fail = |slot: &mut Option<String>, count: &mut u64, msg: String| {
        *count += 1;
        slot.get_or_insert(msg);
    };

    loop {
        let cycle = sys.now();
        cells += 1;
        let ckpt = sys.jit_checkpoint();
        let stream = ckpt.serialize();

        // Tearing probe every third cell, at a cell-derived interrupt.
        if cells.is_multiple_of(3) && !stream.is_empty() {
            torn_cells += 1;
            let mut fsm = CheckpointController::new();
            fsm.power_fail(stream.len() as u64 * 8);
            let interrupt = (cells * 13) % stream.len() as u64;
            for _ in 0..interrupt {
                if !fsm.step() {
                    break;
                }
            }
            let words = fsm.words_done().min(stream.len() as u64 - 1);
            if MachineCheckpoint::deserialize(&stream[..words as usize]).is_some() {
                fail(
                    &mut first_failure,
                    &mut torn_accepted,
                    format!("cycle {cycle}: torn prefix ({words} words) accepted"),
                );
            }
        }

        // Round-trip recovery against the golden prefix union.
        match MachineCheckpoint::deserialize(&stream) {
            None => fail(
                &mut first_failure,
                &mut mismatch_cells,
                format!("cycle {cycle}: intact stream failed to deserialize"),
            ),
            Some(recovered) => {
                let committed_per_core: Vec<u64> =
                    recovered.images.iter().map(|i| i.committed).collect();
                let golden = GoldenMemory::from_thread_prefixes(&traces, &committed_per_core)
                    .expect("shared workloads are single-writer per word");
                let mut nvm = sys.mem().nvm_image().clone();
                for image in &recovered.images {
                    ppa_core::replay_stores(image, &mut nvm);
                }
                let diffs = golden.diff_nvm(&nvm);
                if !diffs.is_empty() {
                    fail(
                        &mut first_failure,
                        &mut mismatch_cells,
                        format!(
                            "cycle {cycle}: {} golden mismatches, first {:?}",
                            diffs.len(),
                            diffs[0]
                        ),
                    );
                }
            }
        }

        if sys.is_finished() {
            break;
        }
        assert!(cycle < limit, "{} wedged the machine", app.name);
        sys.step();
    }

    // Phase-4 coverage: a few full recover-and-resume injections sampled
    // across the run (one of them tearing the flush mid-stream).
    let end = sys.now().max(5);
    let resume_points = (1..=4u64)
        .map(|i| {
            let fail_cycle = (end * i / 5).max(1);
            let mid_flush = (i == 3).then_some(40);
            run_smp_point(app, cores, len, seed, fail_cycle, mid_flush)
        })
        .collect();

    SmpSweepOutcome {
        app: app.name,
        cores,
        seed,
        cells,
        torn_cells,
        torn_accepted,
        mismatch_cells,
        first_failure,
        resume_points,
    }
}

/// Runs the exhaustive sweep across all shared workloads.
pub fn run_smp_suite_exhaustive(cores: usize, len: usize, seed: u64) -> Vec<SmpSweepOutcome> {
    ppa_pool::par_map_ordered(shared::all(), move |app| {
        run_smp_app_exhaustive(&app, cores, len, seed)
    })
}

/// One arbiter mutation self-test: the machine ran with `fault` injected,
/// and the validators reported `violations`.
#[derive(Debug)]
pub struct SmpMutationReport {
    /// The deliberately injected arbiter defect.
    pub fault: ArbiterFault,
    /// The invariant the defect is designed to break.
    pub expected: InvariantKind,
    /// Validator findings on the faulted machine.
    pub violations: Vec<Violation>,
}

impl SmpMutationReport {
    /// Whether the expected invariant fired.
    pub fn detected(&self) -> bool {
        self.violations.iter().any(|v| v.kind == self.expected)
    }

    /// The distinct invariant kinds that fired.
    pub fn fired_kinds(&self) -> Vec<InvariantKind> {
        let mut kinds: Vec<InvariantKind> = self.violations.iter().map(|v| v.kind).collect();
        kinds.dedup();
        kinds
    }
}

/// Runs every [`ArbiterFault`] through the multi-core machine and reports
/// what the validators caught. A correct checker detects all three — and
/// stays silent on the clean run the oracle sweep exercises.
pub fn run_arbiter_mutations(len: usize, seed: u64) -> Vec<SmpMutationReport> {
    let cases = [
        (
            ArbiterFault::UnorderedGrants,
            InvariantKind::CrossCoreDrainOrder,
        ),
        (
            ArbiterFault::PhantomGrant,
            InvariantKind::PersistBeforeDependence,
        ),
        (
            ArbiterFault::DuplicateImageEntry,
            InvariantKind::RecoveryImageOverlap,
        ),
        (ArbiterFault::BiasedPort, InvariantKind::ArbiterUnfair),
    ];
    ppa_pool::par_map_ordered(cases.to_vec(), move |(fault, expected)| {
        // Two cores suffice for an image overlap; the ordering faults need
        // enough cores for the round-robin to matter; the biased port only
        // shows once enough cores contend for the grant slot at the same
        // time, which the barrier workload's sync storms guarantee.
        let (app_name, cores) = match fault {
            ArbiterFault::DuplicateImageEntry => ("counters", 2),
            ArbiterFault::BiasedPort => ("barrier", 8),
            _ => ("counters", 4),
        };
        let app = shared::by_name(app_name).expect("shared workload is registered");
        let cfg = SystemConfig::ppa().with_threads(cores);
        let mut sys = SmpSystem::new(cfg, app.generate_threads(len, seed, cores));
        sys.inject_arbiter_fault(fault);
        let violations = if fault == ArbiterFault::DuplicateImageEntry {
            // The duplicated entry only lands when core 0's CSQ is
            // non-empty, so probe checkpoints until one is corrupt.
            let mut found = Vec::new();
            let limit = 1_000 + (len as u64) * 40;
            for cycle in (100..limit).step_by(100) {
                sys.run_to(cycle);
                found = sys.validate();
                if !found.is_empty() || sys.is_finished() {
                    break;
                }
            }
            found
        } else {
            while !sys.is_finished() {
                sys.step();
            }
            sys.validate()
        };
        SmpMutationReport {
            fault,
            expected,
            violations,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_smp_point_recovers_against_the_golden_union() {
        let app = shared::by_name("counters").unwrap();
        let o = run_smp_point(&app, 2, 600, 1, 1_500, None);
        assert!(
            o.passed(),
            "fail_cycle={} validators={:?} recovery={:?} final={:?} resumed={}",
            o.fail_cycle,
            o.validator_violations,
            o.recovery_mismatches,
            o.final_mismatches,
            o.resumed_to_completion
        );
    }

    #[test]
    fn mid_flush_point_rejects_the_torn_machine_stream() {
        let app = shared::by_name("barrier").unwrap();
        for interrupt in [0, 3, 25, 400] {
            let o = run_smp_point(&app, 2, 600, 1, 1_200, Some(interrupt));
            assert!(o.torn_prefix_rejected, "interrupt={interrupt}");
            assert!(o.stream_recovered, "interrupt={interrupt}");
            assert!(o.passed(), "interrupt={interrupt}");
        }
    }

    #[test]
    fn every_arbiter_mutation_is_detected() {
        for report in run_arbiter_mutations(1_500, 1) {
            assert!(
                report.detected(),
                "{:?} not detected; fired: {:?}",
                report.fault,
                report.fired_kinds()
            );
        }
    }
}
