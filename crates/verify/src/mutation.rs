//! Mutation self-tests: deliberately break the PPA hardware and prove
//! the invariant checker notices.
//!
//! A checker that has never caught a bug is untested. Each case here arms
//! one [`FaultKind`] in the core — skipping a MaskReg pin, dropping a CSQ
//! entry, reclaiming a pinned register eagerly, leaking the deferred-free
//! list — runs a register-recycling store workload with the default
//! validators attached, and reports which named invariants fired. The
//! self-test passes only if *every* fault is detected via one of its
//! expected violation kinds.

use ppa_core::verify::{FaultKind, InvariantKind, Violation};
use ppa_core::{Core, CoreConfig, PersistenceMode};
use ppa_isa::{ArchReg, Trace, TraceBuilder};
use ppa_mem::{MemConfig, MemorySystem};

/// One mutation case: the injected fault and the violation kinds that
/// legitimately witness it (detection timing decides which fires first).
#[derive(Debug, Clone, Copy)]
pub struct MutationCase {
    /// The bug injected into the core.
    pub fault: FaultKind,
    /// Violation kinds accepted as a detection of this fault.
    pub expected: &'static [InvariantKind],
}

/// The self-test suite: every injectable fault with its expected
/// witnesses.
pub fn cases() -> Vec<MutationCase> {
    vec![
        MutationCase {
            fault: FaultKind::SkipMaskPin,
            expected: &[
                InvariantKind::CsqSourceUnmasked,
                InvariantKind::CsqSourceFreed,
            ],
        },
        MutationCase {
            fault: FaultKind::SkipCsqEntry,
            expected: &[
                InvariantKind::MaskedNotStoreSource,
                InvariantKind::CsqStoreCountMismatch,
            ],
        },
        MutationCase {
            fault: FaultKind::EagerFreeMasked,
            expected: &[
                InvariantKind::MaskedRegisterFree,
                InvariantKind::MaskedRegisterReallocated,
                InvariantKind::CsqSourceFreed,
            ],
        },
        MutationCase {
            fault: FaultKind::LeakDeferredFrees,
            expected: &[InvariantKind::PrfLeak],
        },
    ]
}

/// A register-recycling store workload: every iteration redefines a
/// register that supplied an earlier store, so MaskReg pins, deferred
/// frees, and CSQ pressure all occur; the small PRF forces frequent
/// region boundaries.
fn mutation_trace() -> Trace {
    let mut b = TraceBuilder::new("mutation");
    for i in 0..400u64 {
        let r = ArchReg::int((i % 6) as u8);
        b.alu(r, &[r]);
        b.store(r, 0x1000 + (i % 48) * 8, i + 1);
        b.alu(r, &[r]); // redefine the store's data register
    }
    b.build()
}

/// Result of running one mutation case.
#[derive(Debug)]
pub struct MutationReport {
    /// The case that ran.
    pub case: MutationCase,
    /// Every violation the validators reported.
    pub violations: Vec<Violation>,
}

impl MutationReport {
    /// The distinct violation kinds that fired.
    pub fn fired_kinds(&self) -> Vec<InvariantKind> {
        let mut kinds: Vec<InvariantKind> = self.violations.iter().map(|v| v.kind).collect();
        kinds.sort_by_key(|k| k.name());
        kinds.dedup();
        kinds
    }

    /// Whether the fault was detected via one of its expected kinds.
    pub fn detected(&self) -> bool {
        self.violations
            .iter()
            .any(|v| self.case.expected.contains(&v.kind))
    }
}

/// Runs one mutation case: arms the fault, attaches the default
/// validators, and steps the core for up to `max_cycles` (faults can
/// deadlock the pipeline — e.g. a leaked PRF starves renaming — so the
/// run is bounded rather than driven to completion).
pub fn run_case(case: MutationCase, max_cycles: u64) -> MutationReport {
    let trace = mutation_trace();
    let cfg = CoreConfig::paper_default(PersistenceMode::Ppa).with_prf(56, 56);
    let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
    let mut core = Core::new(cfg, 0);
    core.attach_default_validators();
    core.inject_fault(case.fault);
    for now in 0..max_cycles {
        core.step(&trace, &mut mem, now);
        mem.tick(now);
        if core.is_finished() {
            break;
        }
    }
    MutationReport {
        case,
        violations: core.take_violations(),
    }
}

/// Runs the whole suite, one pool job per injected fault.
pub fn run_all(max_cycles: u64) -> Vec<MutationReport> {
    ppa_pool::par_map_ordered(cases(), move |c| run_case(c, max_cycles))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_injected_fault_is_detected_as_a_named_violation() {
        let reports = run_all(20_000);
        assert!(reports.len() >= 3, "the suite must cover at least 3 bugs");
        for r in &reports {
            assert!(
                r.detected(),
                "fault {:?} went undetected; kinds that fired: {:?}",
                r.case.fault,
                r.fired_kinds()
            );
        }
    }

    #[test]
    fn clean_run_of_the_same_workload_reports_nothing() {
        let trace = mutation_trace();
        let cfg = CoreConfig::paper_default(PersistenceMode::Ppa).with_prf(56, 56);
        let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
        let mut core = Core::new(cfg, 0);
        core.attach_default_validators();
        core.run(&trace, &mut mem);
        assert_eq!(core.violations(), &[] as &[Violation]);
    }
}
