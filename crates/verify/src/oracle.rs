//! The crash-consistency oracle.
//!
//! For a workload and a randomized failure cycle, the oracle:
//!
//! 1. runs the PPA core normally until the failure cycle;
//! 2. takes the §4.5 JIT checkpoint and cuts power (volatile caches and
//!    write buffers are lost; only the NVM image and checkpoint survive);
//! 3. runs the §4.6 recovery — replaying the checkpointed CSQ's stores
//!    into the NVM image — and diffs the result against an independent
//!    **golden in-order execution** of the committed trace prefix
//!    ([`crate::golden::GoldenMemory`]);
//! 4. resumes a recovered core from the checkpoint, runs it to
//!    completion, and diffs final NVM state against the golden execution
//!    of the whole trace.
//!
//! Any disagreement at step 3 or 4 means a committed store was lost,
//! reordered, or corrupted across the failure — exactly the property PPA
//! exists to guarantee.

use crate::golden::{GoldenMemory, GoldenMismatch};
use ppa_core::{
    deserialize_images, replay_stores, serialize_images, CheckpointController, Core, CoreConfig,
    PersistenceMode,
};
use ppa_isa::Trace;
use ppa_mem::{MemConfig, MemorySystem};
use ppa_prng::Prng;
use ppa_workloads::{registry, AppDescriptor};

/// The §4.5 checkpoint budget: the paper's worst-case JIT checkpoint is
/// 1838 bytes, sized to eADR's residual-energy envelope.
pub const CHECKPOINT_BUDGET_BYTES: usize = 1838;

/// Outcome of one randomized power-failure injection.
#[derive(Debug)]
pub struct OracleOutcome {
    /// Workload name.
    pub app: &'static str,
    /// Trace generation seed.
    pub seed: u64,
    /// Cycle at which power was cut.
    pub fail_cycle: u64,
    /// Micro-ops committed before the failure.
    pub committed: u64,
    /// Stores replayed from the checkpointed CSQ.
    pub replayed: u64,
    /// Checkpoint footprint in bytes.
    pub checkpoint_bytes: usize,
    /// Controller cycles after which the checkpoint flush was interrupted
    /// by a second power loss; `None` for an uninterrupted flush.
    pub mid_flush_interrupt: Option<u64>,
    /// Words of the serialized checkpoint durable at the interruption.
    pub torn_words: u64,
    /// Whether the torn word stream was rejected by deserialization —
    /// accepting a torn image as complete would be silent corruption.
    /// Vacuously `true` for an uninterrupted flush.
    pub torn_prefix_rejected: bool,
    /// Whether the checkpoint round-tripped through serialization and
    /// recovery consumed the deserialized image, not the in-memory one.
    pub stream_recovered: bool,
    /// Whether the NVM image already matched the golden prefix *before*
    /// replay (usually false — that gap is what recovery repairs).
    pub consistent_before_replay: bool,
    /// Golden-prefix disagreements remaining after recovery (must be
    /// empty).
    pub recovery_mismatches: Vec<GoldenMismatch>,
    /// Whether the recovered core re-ran the rest of the trace to
    /// completion.
    pub resumed_to_completion: bool,
    /// Golden full-trace disagreements in the final NVM image (must be
    /// empty).
    pub final_mismatches: Vec<GoldenMismatch>,
}

impl OracleOutcome {
    /// Whether this injection point passed every oracle check.
    pub fn passed(&self) -> bool {
        self.recovery_mismatches.is_empty()
            && self.resumed_to_completion
            && self.final_mismatches.is_empty()
            && self.checkpoint_bytes <= CHECKPOINT_BUDGET_BYTES
            && self.torn_prefix_rejected
            && self.stream_recovered
    }
}

/// Renders the `ppa-verify oracle` FAIL block for a failing outcome
/// (empty string for a passing one). Lives here rather than in the
/// binary so grid workers render failure reports byte-identically to a
/// local run.
pub fn render_failure(o: &OracleOutcome) -> String {
    if o.passed() {
        return String::new();
    }
    let mut lines = vec![format!(
        "  FAIL {:<16} fail_cycle={} committed={} replayed={} ckpt={}B resumed={}",
        o.app, o.fail_cycle, o.committed, o.replayed, o.checkpoint_bytes, o.resumed_to_completion
    )];
    for m in o.recovery_mismatches.iter().take(5) {
        lines.push(format!("       recovery: {m:?}"));
    }
    for m in o.final_mismatches.iter().take(5) {
        lines.push(format!("       final:    {m:?}"));
    }
    lines.join("\n")
}

/// Whether this outcome exercised non-trivial recovery (replayed stores
/// or repaired a pre-replay inconsistency) — the statistic the oracle
/// summary line reports.
pub fn exercised_recovery(o: &OracleOutcome) -> bool {
    o.replayed > 0 || !o.consistent_before_replay
}

/// Runs one failure injection at `fail_cycle` on a single-core PPA
/// machine executing `trace`. The checkpoint flush completes within the
/// residual-energy window (the §4.5 guarantee).
pub fn run_point(app: &'static str, trace: &Trace, seed: u64, fail_cycle: u64) -> OracleOutcome {
    run_point_with_flush(app, trace, seed, fail_cycle, None)
}

/// Like [`run_point`], but when `mid_flush` is `Some(n)` the failure point
/// sits *inside* the JIT-checkpoint FSM: power is lost again `n`
/// controller cycles into the flush. The oracle then demands that the
/// torn word stream is rejected by deserialization and that recovery runs
/// from the re-deserialized full stream — exercising the tear-detection
/// path, not just the happy path.
pub fn run_point_with_flush(
    app: &'static str,
    trace: &Trace,
    seed: u64,
    fail_cycle: u64,
    mid_flush: Option<u64>,
) -> OracleOutcome {
    let cfg = CoreConfig::paper_default(PersistenceMode::Ppa);
    let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
    let mut core = Core::new(cfg, 0);

    // Phase 1: normal execution until the lights go out.
    for now in 0..fail_cycle {
        core.step(trace, &mut mem, now);
        mem.tick(now);
        if core.is_finished() {
            break;
        }
    }

    // Phase 2: JIT checkpoint + power failure. The image travels to NVM
    // through the controller FSM as a word stream whose completion marker
    // lands last; a mid-flush interruption leaves a torn prefix durable.
    let image = core.jit_checkpoint();
    let committed = core.committed();
    let checkpoint_bytes = image.checkpoint_bytes(cfg.total_prf()) as usize;
    let stream = serialize_images(std::slice::from_ref(&image));
    let mut fsm = CheckpointController::new();
    fsm.power_fail(stream.len() as u64 * 8);
    let (torn_words, torn_prefix_rejected) = match mid_flush {
        None => {
            fsm.run_to_completion();
            (0, true)
        }
        Some(interrupt) => {
            for _ in 0..interrupt {
                if !fsm.step() {
                    break;
                }
            }
            let torn = fsm.words_done();
            let rejected = torn >= stream.len() as u64
                || deserialize_images(&stream[..torn as usize]).is_none();
            // The residual-energy window finishes the flush.
            fsm.run_to_completion();
            (torn, rejected)
        }
    };
    mem.power_failure();

    // Phase 3: recovery — deserialize the durable stream (recovery must
    // trust nothing else), replay the CSQ into NVM, then diff against the
    // independent golden execution of the committed prefix.
    let recovered_image = deserialize_images(&stream)
        .and_then(|mut v| if v.len() == 1 { v.pop() } else { None })
        .expect("a completed flush must deserialize to one image");
    let stream_recovered = recovered_image == image;
    let image = recovered_image;
    let golden_prefix = GoldenMemory::from_trace_prefix(trace, committed);
    let consistent_before_replay = golden_prefix.diff_nvm(mem.nvm_image()).is_empty();
    let report = replay_stores(&image, mem.nvm_image_mut());
    let recovery_mismatches = golden_prefix.diff_nvm(mem.nvm_image());

    // Phase 4: resume from the checkpoint and finish the program.
    let mut recovered = Core::recover(cfg, 0, &image);
    let uops = trace.len() as u64;
    let limit = 1_000_000 + uops * 1_000;
    let mut now = fail_cycle;
    while !recovered.is_finished() && now < fail_cycle + limit {
        recovered.step(trace, &mut mem, now);
        mem.tick(now);
        now += 1;
    }
    let resumed_to_completion = recovered.is_finished() && recovered.committed() == uops;
    let final_mismatches = GoldenMemory::from_trace(trace).diff_nvm(mem.nvm_image());

    OracleOutcome {
        app,
        seed,
        fail_cycle,
        committed,
        replayed: report.replayed_stores as u64,
        checkpoint_bytes,
        mid_flush_interrupt: mid_flush,
        torn_words,
        torn_prefix_rejected,
        stream_recovered,
        consistent_before_replay,
        recovery_mismatches,
        resumed_to_completion,
        final_mismatches,
    }
}

/// Runs `points` randomized injection points for one workload. Failure
/// cycles are drawn uniformly from the first ~80% of the uninterrupted
/// execution so the checkpoint lands mid-flight. Every third point also
/// interrupts the checkpoint flush itself partway through, exercising the
/// torn-stream detection of §4.5's completion marker.
pub fn run_app(app: &AppDescriptor, len: usize, seed: u64, points: usize) -> Vec<OracleOutcome> {
    let trace = app.generate(len, seed);
    // Baseline run to learn the workload's natural cycle count.
    let cfg = CoreConfig::paper_default(PersistenceMode::Ppa);
    let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
    let mut core = Core::new(cfg, 0);
    let total_cycles = core.run(&trace, &mut mem);

    // Draw every failure cycle (and flush-interruption offset) up front so
    // the RNG stream is identical at any job count, then fan the
    // (app x failure-point) grid out across the pool.
    let mut rng = Prng::seed_from_u64(seed ^ 0x07ac1e ^ app.name.len() as u64);
    let fail_points: Vec<(u64, Option<u64>)> = (0..points)
        .map(|i| {
            let fail_cycle = rng.random_range(10..total_cycles.saturating_mul(4) / 5);
            let interrupt = rng.random_range(0..240);
            (fail_cycle, (i % 3 == 2).then_some(interrupt))
        })
        .collect();
    let name = app.name;
    let trace = &trace;
    ppa_pool::par_map_ordered(fail_points, move |(fail_cycle, mid_flush)| {
        run_point_with_flush(name, trace, seed, fail_cycle, mid_flush)
    })
}

/// Runs the oracle across all 41 workloads with `points_per_app`
/// injections each. Workloads fan out across the shared pool; outcomes
/// are returned in (registry, injection) order at any job count.
pub fn run_suite(len: usize, seed: u64, points_per_app: usize) -> Vec<OracleOutcome> {
    ppa_pool::par_map_ordered(registry::all(), move |app| {
        run_app(&app, len, seed, points_per_app)
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_passes_and_repairs_an_inconsistency() {
        let app = registry::by_name("tpcc").or_else(|| registry::by_name("mcf"));
        let app = app.expect("registry has known apps");
        let outcomes = run_app(&app, 1_200, 3, 4);
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            assert!(
                o.passed(),
                "oracle point failed: app={} fail_cycle={} recovery={:?} final={:?} resumed={}",
                o.app,
                o.fail_cycle,
                o.recovery_mismatches,
                o.final_mismatches,
                o.resumed_to_completion
            );
        }
        // At least one point should land mid-region, i.e. recovery had
        // real work to do (replayed stores or an inconsistent pre-replay
        // image).
        assert!(
            outcomes
                .iter()
                .any(|o| o.replayed > 0 || !o.consistent_before_replay),
            "all injection points were trivially consistent; the oracle is not exercising recovery"
        );
        // Every third point interrupts the checkpoint flush itself.
        assert!(
            outcomes.iter().any(|o| o.mid_flush_interrupt.is_some()),
            "the sweep must include mid-flush failure points"
        );
    }
}
