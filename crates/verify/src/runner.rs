//! Drives workloads through the core with cycle-level validators
//! attached.
//!
//! This is the harness behind `ppa-verify check`: for every workload it
//! builds a PPA-mode core (one per thread for the parallel suites),
//! attaches [`ppa_core::verify::default_validators`], and steps the
//! machine to completion, collecting every [`Violation`] the checks
//! report. A correct pipeline produces none on all 41 workloads.

use ppa_core::verify::Violation;
use ppa_core::{Core, CoreConfig, PersistenceMode};
use ppa_isa::Trace;
use ppa_mem::{MemConfig, MemorySystem};
use ppa_workloads::{registry, AppDescriptor};

/// Result of checking one workload.
#[derive(Debug)]
pub struct CheckReport {
    /// Workload name.
    pub app: &'static str,
    /// Threads (cores) simulated.
    pub threads: usize,
    /// Total cycles until every core finished.
    pub cycles: u64,
    /// Violations reported by the attached validators, across all cores.
    pub violations: Vec<Violation>,
    /// Whether every core drained within the cycle budget. A `false`
    /// here is itself a failure (pipeline deadlock).
    pub finished: bool,
}

impl CheckReport {
    /// Whether the workload ran to completion with zero violations.
    pub fn is_clean(&self) -> bool {
        self.finished && self.violations.is_empty()
    }
}

/// Steps a set of cores (with validators already attached) to
/// completion over a shared memory system, with a deadlock bound.
fn run_cores(cores: &mut [Core], traces: &[Trace], mem: &mut MemorySystem) -> (u64, bool) {
    let uops: usize = traces.iter().map(Trace::len).sum();
    let limit = 1_000_000 + uops as u64 * 1_000;
    let mut now = 0;
    while cores.iter().any(|c| !c.is_finished()) {
        for (core, trace) in cores.iter_mut().zip(traces) {
            core.step(trace, mem, now);
        }
        mem.tick(now);
        now += 1;
        if now >= limit {
            return (now, false);
        }
    }
    (now, true)
}

/// Runs one workload in `PersistenceMode::Ppa` with the default
/// validator suite attached to every core.
pub fn check_app(app: &AppDescriptor, len: usize, seed: u64) -> CheckReport {
    let traces: Vec<Trace> = (0..app.threads)
        .map(|tid| app.generate_thread(len, seed, tid))
        .collect();
    let mut mem = MemorySystem::new(MemConfig::memory_mode(), app.threads);
    let cfg = CoreConfig::paper_default(PersistenceMode::Ppa);
    let mut cores: Vec<Core> = (0..app.threads)
        .map(|id| {
            let mut c = Core::new(cfg, id);
            c.attach_default_validators();
            c
        })
        .collect();
    let (cycles, finished) = run_cores(&mut cores, &traces, &mut mem);
    record_check_metrics(&cores, cycles);
    let violations: Vec<Violation> = cores.iter_mut().flat_map(Core::take_violations).collect();
    ppa_obs::registry::counter("verify.check.violations").add(violations.len() as u64);
    CheckReport {
        app: app.name,
        threads: app.threads,
        cycles,
        violations,
        finished,
    }
}

/// Lifts the cores' [`ppa_core::verify::ValidatorTiming`] accounting
/// into `verify.check.*` metrics: cycles scanned per validator, wall
/// time per validator, and run totals. This is the measurement
/// baseline for the ROADMAP's "check is O(validators × ROB) per
/// cycle" optimization — before this existed the cost could not even
/// be observed.
fn record_check_metrics(cores: &[Core], cycles: u64) {
    ppa_obs::registry::counter("verify.check.apps").inc();
    ppa_obs::registry::counter("verify.check.cycles_scanned").add(cycles);
    for core in cores {
        for t in core.validator_timings() {
            let base = format!("verify.check.validator.{}", t.name);
            ppa_obs::registry::counter(&format!("{base}.cycles")).add(t.cycles);
            ppa_obs::registry::counter(&format!("{base}.ns")).add(t.elapsed.as_nanos() as u64);
        }
    }
}

/// Runs [`check_app`] over all 41 workloads of the evaluation, fanned
/// out across the shared [`ppa_pool`] worker pool (serial unless
/// `PPA_JOBS`/`--jobs` asks for more). Reports come back in registry
/// order regardless of job count.
pub fn check_all(len: usize, seed: u64) -> Vec<CheckReport> {
    ppa_pool::par_map_ordered(registry::all(), move |app| check_app(&app, len, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_threaded_app_is_clean() {
        let app = registry::by_name("mcf").expect("mcf exists");
        let report = check_app(&app, 1_500, 7);
        assert!(report.finished, "mcf must drain");
        assert_eq!(report.violations, vec![], "mcf must run violation-free");
    }

    #[test]
    fn parallel_app_is_clean_on_every_core() {
        let app = registry::multi_threaded()
            .into_iter()
            .next()
            .expect("parallel suites exist");
        let report = check_app(&app, 600, 11);
        assert!(report.finished);
        assert_eq!(report.violations, vec![]);
        assert!(report.threads > 1);
    }
}
