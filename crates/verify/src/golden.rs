//! The oracle's golden memory model: an independent, in-order functional
//! execution of a trace's committed stores.
//!
//! The pipeline's own architectural memory ([`ppa_mem::ArchMem`]) is
//! maintained by the very code under test, so the crash-consistency
//! oracle cannot diff against it alone. This model re-derives the
//! expected memory image straight from the trace — commit order is
//! program order, so the expected value of every word after `n` committed
//! micro-ops is simply the last of the first `n` stores to touch it.

use ppa_isa::Trace;
use ppa_mem::NvmImage;
use std::collections::BTreeMap;

/// Expected word-granular memory contents after an in-order execution of
/// a trace prefix. Word addressing matches `ArchMem` (8-byte words).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GoldenMemory {
    words: BTreeMap<u64, u64>,
}

/// One disagreement between the golden model and an observed image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenMismatch {
    /// Word address of the disagreement.
    pub addr: u64,
    /// Value the golden execution expects, if the word was ever stored.
    pub expected: Option<u64>,
    /// Value observed in the image, if present.
    pub observed: Option<u64>,
}

impl GoldenMemory {
    /// Replays the stores among the first `committed` micro-ops of
    /// `trace`, in program order.
    pub fn from_trace_prefix(trace: &Trace, committed: u64) -> Self {
        let mut words = BTreeMap::new();
        for u in trace.iter().take(committed as usize) {
            if u.kind.is_store() {
                let m = u.mem.expect("stores carry a memory reference");
                words.insert(m.addr & !7, m.value);
            }
        }
        GoldenMemory { words }
    }

    /// Replays every store of the trace (the post-resume expectation).
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_trace_prefix(trace, trace.len() as u64)
    }

    /// Merges another golden memory into this one. §6's data-race-free
    /// single-writer discipline means two cores never store to the same
    /// word, so the per-core golden maps must be disjoint; the first
    /// overlapping word address is returned as the error.
    pub fn absorb(&mut self, other: &GoldenMemory) -> Result<(), u64> {
        for (addr, value) in other.iter() {
            if self.words.insert(addr, value).is_some() {
                return Err(addr);
            }
        }
        Ok(())
    }

    /// The multi-core golden image: the union of each thread's in-order
    /// prefix execution. Under DRF any cross-core interleaving of these
    /// stores yields this same image, which is why recovery may replay
    /// per-core CSQs in arbitrary order. `Err` carries the first word two
    /// threads both wrote — a workload DRF bug, not a machine bug.
    pub fn from_thread_prefixes(traces: &[Trace], committed: &[u64]) -> Result<Self, u64> {
        assert_eq!(traces.len(), committed.len());
        let mut golden = GoldenMemory::default();
        for (trace, &n) in traces.iter().zip(committed) {
            golden.absorb(&GoldenMemory::from_trace_prefix(trace, n))?;
        }
        Ok(golden)
    }

    /// Number of distinct words the golden execution wrote.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the golden execution wrote nothing.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The expected value of the word containing `addr`.
    pub fn read(&self, addr: u64) -> Option<u64> {
        self.words.get(&(addr & !7)).copied()
    }

    /// Iterator over `(word_address, expected_value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.words.iter().map(|(&a, &v)| (a, v))
    }

    /// Diffs the golden expectation against a persisted NVM image, in
    /// both directions: every golden word must be present with the exact
    /// value, and every nonzero NVM word must be explained by a golden
    /// store (zero NVM words can be line-granularity fill and are
    /// ignored).
    pub fn diff_nvm(&self, nvm: &NvmImage) -> Vec<GoldenMismatch> {
        let mut out = Vec::new();
        for (addr, expected) in self.iter() {
            let observed = nvm.read(addr);
            if observed != Some(expected) {
                out.push(GoldenMismatch {
                    addr,
                    expected: Some(expected),
                    observed,
                });
            }
        }
        for (addr, observed) in nvm.iter() {
            if observed != 0 && self.read(addr).is_none() {
                out.push(GoldenMismatch {
                    addr,
                    expected: None,
                    observed: Some(observed),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_isa::{ArchReg, TraceBuilder};

    fn trace() -> Trace {
        let mut b = TraceBuilder::new("t");
        b.alu(ArchReg::int(0), &[]);
        b.store(ArchReg::int(0), 0x100, 1);
        b.store(ArchReg::int(0), 0x108, 2);
        b.store(ArchReg::int(0), 0x100, 3); // overwrite
        b.build()
    }

    #[test]
    fn prefix_respects_commit_order() {
        let t = trace();
        let after_two = GoldenMemory::from_trace_prefix(&t, 3);
        assert_eq!(after_two.read(0x100), Some(1));
        assert_eq!(after_two.read(0x108), Some(2));
        let full = GoldenMemory::from_trace(&t);
        assert_eq!(full.read(0x100), Some(3), "last store wins");
        assert_eq!(full.len(), 2);
    }

    #[test]
    fn thread_union_requires_disjoint_writers() {
        let mk = |addr: u64| {
            let mut b = TraceBuilder::new("t");
            b.alu(ArchReg::int(0), &[]);
            b.store(ArchReg::int(0), addr, addr);
            b.build()
        };
        let disjoint = [mk(0x100), mk(0x200)];
        let golden = GoldenMemory::from_thread_prefixes(&disjoint, &[2, 2]).unwrap();
        assert_eq!(golden.len(), 2);
        assert_eq!(golden.read(0x200), Some(0x200));

        // Same word from two threads is a DRF violation, even byte-disjoint.
        let racy = [mk(0x100), mk(0x104)];
        assert_eq!(
            GoldenMemory::from_thread_prefixes(&racy, &[2, 2]),
            Err(0x100)
        );

        // A prefix that stops before the second thread's store is fine.
        assert!(GoldenMemory::from_thread_prefixes(&racy, &[2, 1]).is_ok());
    }

    #[test]
    fn diff_nvm_flags_missing_wrong_and_unexplained_words() {
        let t = trace();
        let golden = GoldenMemory::from_trace(&t);
        let mut nvm = NvmImage::new();
        nvm.write_word(0x100, 3);
        // 0x108 missing; 0x200 unexplained.
        nvm.write_word(0x200, 99);
        let diff = golden.diff_nvm(&nvm);
        assert_eq!(diff.len(), 2);
        assert!(diff.iter().any(|m| m.addr == 0x108 && m.observed.is_none()));
        assert!(diff.iter().any(|m| m.addr == 0x200 && m.expected.is_none()));

        nvm.write_word(0x108, 2);
        nvm.write_word(0x200, 0);
        assert!(golden.diff_nvm(&nvm).is_empty());
    }
}
