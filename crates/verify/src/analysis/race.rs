//! Static conflict-aware race detector for shared multi-core traces.
//!
//! The §6 multi-core recovery story rests on a DRF discipline the smp
//! oracle only *assumes*: conflicting accesses to a shared 8-byte word are
//! ordered by synchronisation, and cross-thread reads are separated from
//! the writes they observe by synchronisation micro-ops. This module
//! proves the contract statically over the per-thread traces (e.g. a
//! [`ppa_workloads::shared::SharedTraceSet`]):
//!
//! * [`RaceRule::WriteWriteRace`] — two threads store to the same word
//!   *without* sync ordering. Writers whose stores to the word are
//!   lock-bracketed in their own thread (a [`SyncKind::LockAcquire`]
//!   before the first store **and** a [`SyncKind::LockRelease`] after the
//!   last — the lock discipline) are mutually excluded by the lock and do
//!   not race; any unbracketed side makes the pair a conflict. Fences and
//!   bare RMWs do **not** count as brackets: a fence orders a thread's own
//!   persists but provides no mutual exclusion, so two fence-bracketed
//!   writers remain unordered. (The uop vocabulary carries no lock
//!   operand, so all acquire/release pairs are assumed to name the same
//!   lock — the one residual imprecision of the static rule.) An
//!   unordered write-write conflict means the
//!   union of per-core committed-store prefixes is no longer
//!   conflict-free, so the recovered image depends on replay order. This
//!   is exactly the condition under which the dynamic
//!   [`crate::golden::GoldenMemory::from_thread_prefixes`] oracle fails,
//!   which the [`crate::analysis::crosscheck`] harness exploits.
//! * [`RaceRule::UnsyncedWriteRead`] — a thread reads another thread's
//!   word without any synchronisation discipline on either side: the
//!   *reader* executes no sync micro-op in its whole trace, or the
//!   *writer* never syncs after its first store to the word (so no
//!   release point publishes it). Reads before a reader's first sync are
//!   deliberately allowed — the halo-exchange generator legitimately
//!   reads stale neighbour edges at phase start — and a writer's trailing
//!   stores need no sync because nothing that follows publishes them.
//!
//! Diagnostics name both threads and positions, mirroring the linter's
//! actionable-without-rerunning principle.

use ppa_isa::Trace;
use ppa_isa::{SyncKind, UopKind};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Named race-detector rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaceRule {
    /// Two threads store to the same 8-byte word without sync ordering on
    /// both sides.
    WriteWriteRace,
    /// A cross-thread read with no synchronisation discipline on either
    /// side.
    UnsyncedWriteRead,
}

impl RaceRule {
    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            RaceRule::WriteWriteRace => "write-write-race",
            RaceRule::UnsyncedWriteRead => "unsynced-write-read",
        }
    }
}

impl fmt::Display for RaceRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One race finding, naming both sides of the conflict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceDiagnostic {
    /// Which rule fired.
    pub rule: RaceRule,
    /// The conflicted 8-byte word.
    pub word: u64,
    /// The word's (first) writer thread.
    pub writer_tid: usize,
    /// Trace position of that writer's first store to the word.
    pub writer_pos: usize,
    /// The conflicting thread (second writer, or unsynchronised reader).
    pub other_tid: usize,
    /// Trace position of the conflicting access.
    pub other_pos: usize,
    /// Human-readable context.
    pub message: String,
}

impl fmt::Display for RaceDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}] word {:#x}: thread {} uop {} vs thread {} uop {}: {}",
            self.rule,
            self.word,
            self.writer_tid,
            self.writer_pos,
            self.other_tid,
            self.other_pos,
            self.message
        )
    }
}

/// Runs the detector over one trace per thread. Findings are deduplicated
/// per (rule, word, conflicting thread) and returned in deterministic
/// order (by thread, then trace position of the conflicting access).
///
/// # Examples
///
/// ```
/// use ppa_verify::analysis::race::detect_races;
///
/// let set = ppa_workloads::shared::by_name("counters")
///     .unwrap()
///     .export(1_000, 1, 4);
/// assert!(detect_races(&set.traces).is_empty());
/// ```
pub fn detect_races(traces: &[Trace]) -> Vec<RaceDiagnostic> {
    let mut out = Vec::new();
    // First pass: word ownership (first writer wins), per-thread sync
    // positions, per-(word, thread) first/last store positions, and
    // write-write conflict candidates in scan order.
    let mut owner: HashMap<u64, (usize, usize)> = HashMap::new(); // word -> (tid, first store pos)
    let mut sync_positions: Vec<Vec<usize>> = vec![Vec::new(); traces.len()];
    let mut acquires: Vec<Vec<usize>> = vec![Vec::new(); traces.len()];
    let mut releases: Vec<Vec<usize>> = vec![Vec::new(); traces.len()];
    let mut stores: HashMap<(u64, usize), (usize, usize)> = HashMap::new(); // (word, tid) -> (first, last)
    let mut ww_seen: HashSet<(u64, usize)> = HashSet::new();
    let mut candidates: Vec<RaceDiagnostic> = Vec::new();
    for (tid, t) in traces.iter().enumerate() {
        for (pos, u) in t.iter().enumerate() {
            match u.kind {
                UopKind::Store => {
                    let word = match u.mem {
                        Some(m) => m.addr & !7,
                        None => continue,
                    };
                    stores
                        .entry((word, tid))
                        .and_modify(|(_, last)| *last = pos)
                        .or_insert((pos, pos));
                    match owner.get(&word) {
                        None => {
                            owner.insert(word, (tid, pos));
                        }
                        Some(&(owner_tid, owner_pos)) if owner_tid != tid => {
                            if ww_seen.insert((word, tid)) {
                                candidates.push(RaceDiagnostic {
                                    rule: RaceRule::WriteWriteRace,
                                    word,
                                    writer_tid: owner_tid,
                                    writer_pos: owner_pos,
                                    other_tid: tid,
                                    other_pos: pos,
                                    message: format!(
                                        "two threads write word {word:#x} without sync ordering; the union of per-core store prefixes is no longer conflict-free, so the recovered image depends on replay order"
                                    ),
                                });
                            }
                        }
                        Some(_) => {}
                    }
                }
                UopKind::Sync(kind) => {
                    sync_positions[tid].push(pos);
                    match kind {
                        SyncKind::LockAcquire => acquires[tid].push(pos),
                        SyncKind::LockRelease => releases[tid].push(pos),
                        // Fences/RMWs order persists but grant no mutual
                        // exclusion; they never form a lock bracket.
                        SyncKind::Fence | SyncKind::AtomicRmw => {}
                    }
                }
                _ => {}
            }
        }
    }

    // Conflict-aware filter: a second writer does not race when BOTH
    // writers' stores to the word are lock-bracketed in their own thread
    // (a LockAcquire before the first store and a LockRelease after the
    // last — the lock discipline whose mutual exclusion orders the
    // conflicting sections). Fences are deliberately excluded: they order
    // a thread's own persists but exclude nobody, so fence-bracketed
    // writers stay candidates. Any unbracketed side leaves the pair
    // unordered and the candidate stands.
    let bracketed = |tid: usize, word: u64| -> bool {
        let Some(&(first, last)) = stores.get(&(word, tid)) else {
            return false;
        };
        acquires[tid].iter().any(|&s| s < first) && releases[tid].iter().any(|&s| s > last)
    };
    for cand in candidates {
        if !(bracketed(cand.writer_tid, cand.word) && bracketed(cand.other_tid, cand.word)) {
            out.push(cand);
        }
    }

    // Second pass: cross-thread reads must have synchronisation discipline
    // on both sides.
    let mut wr_seen: HashSet<(u64, usize)> = HashSet::new();
    for (tid, t) in traces.iter().enumerate() {
        for (pos, u) in t.iter().enumerate() {
            if u.kind != UopKind::Load {
                continue;
            }
            let word = match u.mem {
                Some(m) => m.addr & !7,
                None => continue,
            };
            let (owner_tid, owner_pos) = match owner.get(&word) {
                Some(&o) if o.0 != tid => o,
                _ => continue,
            };
            let reader_never_syncs = sync_positions[tid].is_empty();
            let writer_never_publishes = sync_positions[owner_tid]
                .last()
                .is_none_or(|&last| last < owner_pos);
            if (reader_never_syncs || writer_never_publishes) && wr_seen.insert((word, tid)) {
                let side = if reader_never_syncs {
                    format!("reader thread {tid} executes no synchronisation micro-op at all")
                } else {
                    format!(
                        "writer thread {owner_tid} never syncs after its first store to the word, so no release point publishes it"
                    )
                };
                out.push(RaceDiagnostic {
                    rule: RaceRule::UnsyncedWriteRead,
                    word,
                    writer_tid: owner_tid,
                    writer_pos: owner_pos,
                    other_tid: tid,
                    other_pos: pos,
                    message: format!("cross-thread read is unsynchronised: {side}"),
                });
            }
        }
    }
    out
}

/// Mutation helper: appends a store to thread `victim_tid`'s trace that
/// writes the first word thread 0 stores to — the injected cross-core
/// second writer the detector (and the dynamic oracle) must catch.
/// Returns the mutated traces and the raced word.
///
/// # Panics
///
/// Panics if `traces` has fewer than two threads, `victim_tid` is out of
/// range or zero-owned, or thread 0 never stores.
pub fn inject_second_writer(traces: &[Trace], victim_tid: usize) -> (Vec<Trace>, u64) {
    assert!(traces.len() >= 2 && victim_tid != 0 && victim_tid < traces.len());
    let word = traces[0]
        .iter()
        .find(|u| u.kind.is_store())
        .and_then(|u| u.mem.map(|m| m.addr & !7))
        .expect("thread 0 stores at least once");
    let mut out: Vec<Trace> = traces.to_vec();
    let victim = &traces[victim_tid];
    let mut uops: Vec<ppa_isa::Uop> = victim.iter().copied().collect();
    let pc = uops.last().map(|u| u.pc + 4).unwrap_or(0x1000);
    uops.push(
        ppa_isa::Uop::new(pc, UopKind::Store)
            .with_srcs(&[ppa_isa::ArchReg::int(7)])
            .with_mem(ppa_isa::MemRef::new(word, 8, u64::MAX)),
    );
    out[victim_tid] = Trace::from_uops(format!("{}+second-writer", victim.name()), uops);
    (out, word)
}

/// A hand-built lock-disciplined trace set: two threads store the *same*
/// word, each inside a sync bracket (acquire … stores … release). The
/// brackets order the conflicting sections, so the conflict-aware rule
/// must accept the set — and rejecting either bracket
/// ([`strip_acquire`]/[`strip_release`]) must re-raise the race.
pub fn lock_disciplined_set() -> Vec<Trace> {
    use ppa_isa::{ArchReg, SyncKind, TraceBuilder};
    let word = 0x5000_0000_0000u64;
    let data = ArchReg::int(7);
    (0..2)
        .map(|tid| {
            let mut b = TraceBuilder::new(format!("locked-writer-{tid}"));
            b.nop();
            b.sync(SyncKind::LockAcquire);
            b.alu(data, &[]);
            b.store(data, word, 100 + tid);
            b.alu(data, &[]);
            b.store(data, word, 200 + tid);
            b.sync(SyncKind::LockRelease);
            b.nop();
            b.build()
        })
        .collect()
}

/// Mutation helper: replaces thread `tid`'s *first* synchronisation
/// micro-op (the acquire) with a no-op, unbracketing its stores on the
/// leading side.
///
/// # Panics
///
/// Panics if `tid` is out of range or has no sync micro-op.
pub fn strip_acquire(traces: &[Trace], tid: usize) -> Vec<Trace> {
    strip_one_sync(traces, tid, false)
}

/// Mutation helper: replaces thread `tid`'s *last* synchronisation
/// micro-op (the release) with a no-op, unbracketing its stores on the
/// trailing side.
///
/// # Panics
///
/// Panics if `tid` is out of range or has no sync micro-op.
pub fn strip_release(traces: &[Trace], tid: usize) -> Vec<Trace> {
    strip_one_sync(traces, tid, true)
}

fn strip_one_sync(traces: &[Trace], tid: usize, last: bool) -> Vec<Trace> {
    let sync_at: Vec<usize> = traces[tid]
        .iter()
        .enumerate()
        .filter(|(_, u)| u.kind.is_sync_boundary())
        .map(|(pos, _)| pos)
        .collect();
    let target = if last {
        *sync_at.last().expect("thread has a sync to strip")
    } else {
        *sync_at.first().expect("thread has a sync to strip")
    };
    let mut out: Vec<Trace> = traces.to_vec();
    let uops: Vec<ppa_isa::Uop> = traces[tid]
        .iter()
        .enumerate()
        .map(|(pos, u)| {
            if pos == target {
                ppa_isa::Uop::new(u.pc, UopKind::Nop)
            } else {
                *u
            }
        })
        .collect();
    let which = if last { "release" } else { "acquire" };
    out[tid] = Trace::from_uops(format!("{}+no-{which}", traces[tid].name()), uops);
    out
}

/// Mutation helper: replaces every synchronisation micro-op of thread
/// `tid` with a no-op, stripping the reader-side discipline.
///
/// # Panics
///
/// Panics if `tid` is out of range.
pub fn strip_syncs(traces: &[Trace], tid: usize) -> Vec<Trace> {
    let mut out: Vec<Trace> = traces.to_vec();
    let uops: Vec<ppa_isa::Uop> = traces[tid]
        .iter()
        .map(|u| {
            if u.kind.is_sync_boundary() {
                ppa_isa::Uop::new(u.pc, UopKind::Nop)
            } else {
                *u
            }
        })
        .collect();
    out[tid] = Trace::from_uops(format!("{}+no-syncs", traces[tid].name()), uops);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_workloads::shared;

    #[test]
    fn all_four_shared_generators_are_race_free() {
        for app in shared::all() {
            for threads in [2, 4] {
                let set = app.export(1_200, 1, threads);
                let diags = detect_races(&set.traces);
                assert!(diags.is_empty(), "{} x{threads}: {diags:?}", app.name);
            }
        }
    }

    #[test]
    fn injected_second_writer_is_caught_on_every_generator() {
        for app in shared::all() {
            let set = app.export(800, 1, 4);
            let (mutated, word) = inject_second_writer(&set.traces, 1);
            let diags = detect_races(&mutated);
            let ww: Vec<_> = diags
                .iter()
                .filter(|d| d.rule == RaceRule::WriteWriteRace)
                .collect();
            assert!(!ww.is_empty(), "{}: {diags:?}", app.name);
            assert!(ww.iter().any(|d| d.word == word), "{}", app.name);
        }
    }

    #[test]
    fn stripped_reader_syncs_are_caught() {
        // Every generator has cross-thread reads, so a sync-free reader
        // thread must trip the unsynced-write-read rule.
        for app in shared::all() {
            let set = app.export(1_200, 1, 4);
            let mutated = strip_syncs(&set.traces, 1);
            let diags = detect_races(&mutated);
            assert!(
                diags
                    .iter()
                    .any(|d| d.rule == RaceRule::UnsyncedWriteRead && d.other_tid == 1),
                "{}: {diags:?}",
                app.name
            );
        }
    }

    #[test]
    fn second_writer_injection_reports_the_raced_word() {
        let set = shared::by_name("counters").unwrap().export(400, 1, 2);
        let (mutated, word) = inject_second_writer(&set.traces, 1);
        let d = &detect_races(&mutated)[0];
        assert_eq!(d.rule, RaceRule::WriteWriteRace);
        assert_eq!(d.word, word);
        assert_eq!(d.writer_tid, 0);
        assert_eq!(d.other_tid, 1);
        assert!(d.to_string().contains("write-write-race"));
    }

    #[test]
    fn findings_are_deduplicated_per_word_and_thread() {
        let set = shared::by_name("counters").unwrap().export(1_000, 1, 2);
        let (mutated, word) = inject_second_writer(&set.traces, 1);
        let n = detect_races(&mutated)
            .iter()
            .filter(|d| d.rule == RaceRule::WriteWriteRace && d.word == word && d.other_tid == 1)
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn sync_bracketed_conflicting_writers_do_not_race() {
        // The conflict-aware relaxation: both writers hold the lock
        // discipline (sync before first store, sync after last), so the
        // conflicting sections are ordered and no race fires.
        let set = lock_disciplined_set();
        let diags = detect_races(&set);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn fence_bracketed_writers_still_race() {
        // Fences order a thread's own persists but provide no mutual
        // exclusion: two threads each doing fence;store;fence are still
        // unordered writers, and the recovered image depends on replay
        // order. Only a LockAcquire/LockRelease bracket may relax the rule.
        use ppa_isa::{ArchReg, SyncKind, TraceBuilder};
        let word = 0x5000_0000_0000u64;
        for kind in [SyncKind::Fence, SyncKind::AtomicRmw] {
            let set: Vec<Trace> = (0..2)
                .map(|tid| {
                    let mut b = TraceBuilder::new(format!("fenced-writer-{tid}"));
                    b.sync(kind);
                    b.store(ArchReg::int(7), word, 100 + tid);
                    b.sync(kind);
                    b.build()
                })
                .collect();
            let diags = detect_races(&set);
            assert!(
                diags
                    .iter()
                    .any(|d| d.rule == RaceRule::WriteWriteRace && d.word == word),
                "{kind:?}-bracketed two-writer set wrongly declared race-free: {diags:?}"
            );
        }
    }

    #[test]
    fn an_unbracketed_side_still_races() {
        // Stripping either bracket on either side re-raises the race:
        // the pair is no longer ordered by synchronisation.
        let set = lock_disciplined_set();
        for mutated in [
            strip_release(&set, 1),
            strip_acquire(&set, 1),
            strip_release(&set, 0),
            strip_acquire(&set, 0),
        ] {
            let diags = detect_races(&mutated);
            assert!(
                diags.iter().any(|d| d.rule == RaceRule::WriteWriteRace),
                "stripped set {:?} stayed clean",
                mutated[0].name()
            );
        }
    }

    #[test]
    fn rule_names_are_stable() {
        assert_eq!(RaceRule::WriteWriteRace.name(), "write-write-race");
        assert_eq!(RaceRule::UnsyncedWriteRead.name(), "unsynced-write-read");
    }
}
