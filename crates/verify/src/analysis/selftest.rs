//! Mutation self-tests for the static analysis rules.
//!
//! Mirrors [`crate::mutation`]: a rule that has never caught a defect is
//! untested. Each [`AnalysisCase`] injects exactly one defect — into the
//! [`AutoPersistPass`]-sealed form of a hand-built trace for the persist
//! rules, or into a shared-workload trace set for the race rules — and
//! records which named rules fire. The suite passes only if every defect
//! is detected via one of its expected rules, and nothing *outside* the
//! allowed set fires (a rule that fires on the wrong defect is as
//! untrustworthy as one that never fires).

use crate::analysis::race::{
    detect_races, inject_second_writer, lock_disciplined_set, strip_acquire, strip_release,
    strip_syncs,
};
use crate::lint::{lint_trace, LintProfile};
use ppa_isa::transform::{AutoPersistPass, TracePass};
use ppa_isa::{ArchReg, MemRef, SyncKind, Trace, TraceBuilder, Uop, UopKind};

/// One self-test case: a named defect injected into a known-clean input.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisCase {
    /// Defect name (kebab-case, stable).
    pub defect: &'static str,
    /// Rule names accepted as a detection of this defect.
    pub expected: &'static [&'static str],
    /// Rule names that may additionally fire without failing the case
    /// (knock-on findings of the same defect).
    pub allowed: &'static [&'static str],
}

/// The suite: every analysis rule is the `expected` witness of at least
/// one defect.
pub fn cases() -> Vec<AnalysisCase> {
    vec![
        AnalysisCase {
            defect: "drop-first-clwb",
            expected: &["missing-clwb"],
            allowed: &["unordered-persist-dependence", "unsealed-stores-at-sync"],
        },
        AnalysisCase {
            defect: "drop-dependence-barrier",
            expected: &["unordered-persist-dependence"],
            allowed: &[],
        },
        AnalysisCase {
            defect: "drop-pre-sync-barrier",
            expected: &["unsealed-stores-at-sync"],
            allowed: &[],
        },
        AnalysisCase {
            defect: "drop-final-barrier",
            expected: &["missing-final-barrier"],
            allowed: &[],
        },
        AnalysisCase {
            defect: "move-final-barrier-before-clwb",
            expected: &["missing-final-barrier"],
            allowed: &[],
        },
        AnalysisCase {
            defect: "insert-leading-barrier",
            expected: &["redundant-barrier"],
            allowed: &[],
        },
        AnalysisCase {
            defect: "insert-clean-line-clwb",
            expected: &["orphan-clwb"],
            allowed: &[],
        },
        AnalysisCase {
            defect: "inject-second-writer",
            expected: &["write-write-race"],
            allowed: &[],
        },
        AnalysisCase {
            defect: "strip-reader-syncs",
            expected: &["unsynced-write-read"],
            allowed: &[],
        },
        AnalysisCase {
            defect: "strip-writer-acquire",
            expected: &["write-write-race"],
            allowed: &[],
        },
        AnalysisCase {
            defect: "strip-writer-release",
            expected: &["write-write-race"],
            allowed: &[],
        },
    ]
}

/// The known-clean persist input: a dependence crossing, a publishing
/// sync, and an unpublished tail, sealed by the pass. The sealed layout is
/// `store, load, clwb, barrier, store, clwb, barrier, sync, store, clwb,
/// barrier` — every defect below targets one of those three seals.
fn clean_sealed_trace() -> Trace {
    let mut b = TraceBuilder::new("selftest");
    b.store(ArchReg::int(0), 0x100, 7);
    b.load(ArchReg::int(1), 0x100);
    b.store(ArchReg::int(1), 0x200, 7); // crossing: needs seal 1 first
    b.sync(SyncKind::Fence); // needs seal 2 first
    b.store(ArchReg::int(2), 0x300, 8); // tail: needs the final seal
    AutoPersistPass::new().apply(&b.build())
}

fn positions(trace: &Trace, kind: UopKind) -> Vec<usize> {
    trace
        .iter()
        .enumerate()
        .filter(|(_, u)| u.kind == kind)
        .map(|(p, _)| p)
        .collect()
}

fn remove_at(trace: &Trace, pos: usize, defect: &str) -> Trace {
    let mut uops: Vec<Uop> = trace.iter().copied().collect();
    uops.remove(pos);
    Trace::from_uops(format!("{}+{defect}", trace.name()), uops)
}

fn insert_at(trace: &Trace, pos: usize, uop: Uop, defect: &str) -> Trace {
    let mut uops: Vec<Uop> = trace.iter().copied().collect();
    uops.insert(pos, uop);
    Trace::from_uops(format!("{}+{defect}", trace.name()), uops)
}

/// Result of running one case.
#[derive(Debug)]
pub struct AnalysisReport {
    /// The case that ran.
    pub case: AnalysisCase,
    /// Names of the distinct rules that fired.
    pub fired: Vec<&'static str>,
}

impl AnalysisReport {
    /// Whether the defect was detected via an expected rule.
    pub fn detected(&self) -> bool {
        self.fired.iter().any(|f| self.case.expected.contains(f))
    }

    /// Whether every fired rule is either expected or allowed.
    pub fn precise(&self) -> bool {
        self.fired
            .iter()
            .all(|f| self.case.expected.contains(f) || self.case.allowed.contains(f))
    }
}

/// Runs one case: injects the defect and collects the fired rule names.
///
/// # Panics
///
/// Panics on an unknown defect name.
pub fn run_case(case: AnalysisCase) -> AnalysisReport {
    let fired = match case.defect {
        "inject-second-writer" => {
            let set = ppa_workloads::shared::by_name("counters")
                .expect("registered")
                .export(600, 1, 2);
            let (mutated, _) = inject_second_writer(&set.traces, 1);
            race_rule_names(&mutated)
        }
        "strip-reader-syncs" => {
            let set = ppa_workloads::shared::by_name("halo")
                .expect("registered")
                .export(600, 1, 2);
            race_rule_names(&strip_syncs(&set.traces, 1))
        }
        // The conflict-aware relaxation's own witnesses: a lock-disciplined
        // two-writer set is clean, and removing either bracket on one side
        // must re-raise the write-write race.
        "strip-writer-acquire" => race_rule_names(&strip_acquire(&lock_disciplined_set(), 0)),
        "strip-writer-release" => race_rule_names(&strip_release(&lock_disciplined_set(), 1)),
        _ => {
            let clean = clean_sealed_trace();
            let clwbs = positions(&clean, UopKind::Clwb);
            let barriers = positions(&clean, UopKind::PersistBarrier);
            let mutant = match case.defect {
                "drop-first-clwb" => remove_at(&clean, clwbs[0], case.defect),
                "drop-dependence-barrier" => remove_at(&clean, barriers[0], case.defect),
                "drop-pre-sync-barrier" => remove_at(&clean, barriers[1], case.defect),
                "drop-final-barrier" => {
                    remove_at(&clean, *barriers.last().expect("final seal"), case.defect)
                }
                "move-final-barrier-before-clwb" => {
                    let last = *barriers.last().expect("final seal");
                    let moved = remove_at(&clean, last, case.defect);
                    insert_at(&moved, last - 1, clean[last], case.defect)
                }
                "insert-leading-barrier" => insert_at(
                    &clean,
                    0,
                    Uop::new(0x0ffc, UopKind::PersistBarrier),
                    case.defect,
                ),
                "insert-clean-line-clwb" => insert_at(
                    &clean,
                    0,
                    Uop::new(0x0ffc, UopKind::Clwb).with_mem(MemRef::new(0x4000, 8, 0)),
                    case.defect,
                ),
                other => panic!("unknown defect {other}"),
            };
            lint_rule_names(&mutant)
        }
    };
    AnalysisReport { case, fired }
}

fn lint_rule_names(trace: &Trace) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = lint_trace(trace, &LintProfile::AutoPersist)
        .iter()
        .map(|d| d.rule.name())
        .collect();
    names.sort_unstable();
    names.dedup();
    names
}

fn race_rule_names(traces: &[Trace]) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = detect_races(traces).iter().map(|d| d.rule.name()).collect();
    names.sort_unstable();
    names.dedup();
    names
}

/// Runs the whole suite.
pub fn run_all() -> Vec<AnalysisReport> {
    cases().into_iter().map(run_case).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::LintRule;

    #[test]
    fn the_clean_inputs_really_are_clean() {
        assert!(lint_rule_names(&clean_sealed_trace()).is_empty());
        let set = ppa_workloads::shared::by_name("counters")
            .unwrap()
            .export(600, 1, 2);
        assert!(race_rule_names(&set.traces).is_empty());
        assert!(race_rule_names(&lock_disciplined_set()).is_empty());
    }

    #[test]
    fn every_injected_defect_is_detected_by_its_named_rule() {
        let reports = run_all();
        assert!(reports.len() >= 9, "one case per analysis rule at least");
        for r in &reports {
            assert!(
                r.detected(),
                "defect {} went undetected; fired: {:?}",
                r.case.defect,
                r.fired
            );
            assert!(
                r.precise(),
                "defect {} fired unexpected rules: {:?}",
                r.case.defect,
                r.fired
            );
        }
    }

    #[test]
    fn every_new_lint_rule_is_an_expected_witness_somewhere() {
        let expected: Vec<&str> = cases()
            .iter()
            .flat_map(|c| c.expected.iter().copied())
            .collect();
        for rule in [
            LintRule::MissingClwb.name(),
            LintRule::MissingFinalBarrier.name(),
            LintRule::RedundantBarrier.name(),
            LintRule::OrphanClwb.name(),
            LintRule::UnorderedPersistDependence.name(),
            LintRule::UnsealedStoresAtSync.name(),
            "write-write-race",
            "unsynced-write-read",
        ] {
            assert!(expected.contains(&rule), "{rule} has no self-test case");
        }
    }
}
