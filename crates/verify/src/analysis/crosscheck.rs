//! Soundness cross-check: static verdicts vs. a dynamic adversarial crash
//! simulation.
//!
//! A linter that never fires is worthless, and one that fires on clean
//! traces erodes trust. This harness bounds both failure modes
//! empirically: it takes every workload's [`AutoPersistPass`]-sealed trace
//! (lint-clean by construction), applies each persist-breaking
//! [`PersistMutation`], and compares two *independent* judges on the
//! mutant:
//!
//! * **static** — [`crate::lint::lint_trace`] under
//!   [`LintProfile::AutoPersist`], counting `Error`-severity findings;
//! * **dynamic** — [`crash_divergence`], an adversarial replay of the
//!   epoch-persistency semantics: any store not sealed (clwb of its line
//!   strictly after it, persist barrier strictly after that clwb) by a
//!   given point is *volatile* there, so a dependence whose source is
//!   still volatile when its sink commits, or a word whose last write is
//!   never sealed, is recoverable to an inconsistent image by crashing at
//!   the right instant.
//!
//! Soundness contract ([`CrossCase::sound`]): **static-clean ⇒
//! dynamic-green**. A static-flagged mutant with no dynamic divergence is
//! allowed but tallied as *conservative* (e.g. a deleted leading flush
//! whose store is rewritten and resealed later). The race half of
//! [`run_crosscheck`] applies the same contract to the shared-memory
//! detector against [`GoldenMemory::from_thread_prefixes`].
//!
//! Everything is deterministic in `(len, seed)`; the fixed-seed run is a
//! CI gate (`unsound = 0` over ≥ 200 mutants).

use crate::analysis::race::{detect_races, inject_second_writer, strip_syncs, RaceRule};
use crate::golden::GoldenMemory;
use crate::lint::{lint_trace, LintProfile, Severity};
use ppa_isa::depgraph::{store_seals, word_of};
use ppa_isa::transform::{AutoPersistPass, TracePass};
use ppa_isa::{ArchReg, Trace, UopKind};
use std::collections::HashMap;
use std::fmt;

/// One persist-breaking trace mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistMutation {
    /// Delete the first cache-line write-back.
    DeleteFirstClwb,
    /// Delete the last cache-line write-back.
    DeleteLastClwb,
    /// Delete the first persist barrier.
    DeleteFirstBarrier,
    /// Delete the last persist barrier.
    DeleteLastBarrier,
    /// Move the last persist barrier two slots earlier, ahead of the flush
    /// it was meant to order.
    MoveLastBarrierEarlier,
}

impl PersistMutation {
    /// All mutations, in a fixed order.
    pub fn all() -> [PersistMutation; 5] {
        [
            PersistMutation::DeleteFirstClwb,
            PersistMutation::DeleteLastClwb,
            PersistMutation::DeleteFirstBarrier,
            PersistMutation::DeleteLastBarrier,
            PersistMutation::MoveLastBarrierEarlier,
        ]
    }

    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            PersistMutation::DeleteFirstClwb => "delete-first-clwb",
            PersistMutation::DeleteLastClwb => "delete-last-clwb",
            PersistMutation::DeleteFirstBarrier => "delete-first-barrier",
            PersistMutation::DeleteLastBarrier => "delete-last-barrier",
            PersistMutation::MoveLastBarrierEarlier => "move-last-barrier-earlier",
        }
    }

    /// Applies the mutation, or `None` when the trace has no site for it
    /// (e.g. no barrier to delete).
    pub fn apply(self, trace: &Trace) -> Option<Trace> {
        let uops: Vec<ppa_isa::Uop> = trace.iter().copied().collect();
        let is_clwb = |u: &ppa_isa::Uop| u.kind == UopKind::Clwb;
        let is_barrier = |u: &ppa_isa::Uop| u.kind == UopKind::PersistBarrier;
        let name = format!("{}+{}", trace.name(), self.name());
        let mut uops = uops;
        match self {
            PersistMutation::DeleteFirstClwb => {
                let i = uops.iter().position(is_clwb)?;
                uops.remove(i);
            }
            PersistMutation::DeleteLastClwb => {
                let i = uops.iter().rposition(is_clwb)?;
                uops.remove(i);
            }
            PersistMutation::DeleteFirstBarrier => {
                let i = uops.iter().position(is_barrier)?;
                uops.remove(i);
            }
            PersistMutation::DeleteLastBarrier => {
                let i = uops.iter().rposition(is_barrier)?;
                uops.remove(i);
            }
            PersistMutation::MoveLastBarrierEarlier => {
                let i = uops.iter().rposition(is_barrier)?;
                if i < 2 {
                    return None;
                }
                let b = uops.remove(i);
                uops.insert(i - 2, b);
            }
        }
        Some(Trace::from_uops(name, uops))
    }
}

impl fmt::Display for PersistMutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the dynamic crash simulation diverged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// A store committed while the store its data derives from was still
    /// volatile: a crash between the two recovers effect-without-cause.
    DependenceViolated,
    /// A word's final value is never sealed: a crash at exit loses it.
    LostAtExit,
}

/// A dynamic counter-example found by [`crash_divergence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// Which inconsistency the adversarial crash exposes.
    pub kind: DivergenceKind,
    /// Trace position of the store that witnesses it.
    pub store_pos: usize,
}

/// Seal time of a value: `Sealed(t)` means durable once the barrier at
/// trace position `t` retires; `Never` ranks above every `Sealed(t)` so a
/// max over provenance keeps the *weakest* link of a derivation chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SealTime {
    Sealed(usize),
    Never,
}

/// Adversarial crash simulation of the epoch-persistency semantics.
///
/// Walks the trace once, tracking for every register and memory word the
/// weakest seal point among the stores its current value (transitively)
/// derives from. A store at position `p` whose source provenance seals at
/// `t > p` (or never) is a [`DivergenceKind::DependenceViolated`] witness:
/// the adversary crashes after `p` but before `t`, keeps the dependent
/// store durable, and drops the source. A word whose last write never
/// seals is a [`DivergenceKind::LostAtExit`] witness. Returns the first
/// witness in trace order, or `None` when no crash point can expose an
/// inconsistency.
pub fn crash_divergence(trace: &Trace) -> Option<Divergence> {
    let seals = store_seals(trace);
    let seal_at: HashMap<usize, SealTime> = seals
        .iter()
        .map(|s| {
            (
                s.pos,
                s.barrier_pos.map_or(SealTime::Never, SealTime::Sealed),
            )
        })
        .collect();

    // Provenance: the weakest (max) seal time among contributing stores,
    // and the position of that weakest store (for the witness report).
    type Prov = Option<(SealTime, usize)>;
    let mut reg_prov: Vec<Prov> = vec![None; ArchReg::flat_count()];
    let mut mem_prov: HashMap<u64, Prov> = HashMap::new();
    let mut last_write: HashMap<u64, usize> = HashMap::new();

    let mut dependence: Option<Divergence> = None;
    for (pos, u) in trace.iter().enumerate() {
        match u.kind {
            UopKind::Store => {
                let src_prov: Prov = u.sources().filter_map(|r| reg_prov[r.flat_index()]).max();
                if dependence.is_none() {
                    if let Some((t, _)) = src_prov {
                        if t > SealTime::Sealed(pos) {
                            dependence = Some(Divergence {
                                kind: DivergenceKind::DependenceViolated,
                                store_pos: pos,
                            });
                        }
                    }
                }
                if let Some(m) = u.mem {
                    let word = word_of(m.addr);
                    let own = seal_at.get(&pos).copied().unwrap_or(SealTime::Never);
                    mem_prov.insert(word, Some((own, pos)).max(src_prov));
                    last_write.insert(word, pos);
                }
            }
            UopKind::Load => {
                if let Some(d) = u.dst {
                    reg_prov[d.flat_index()] = u
                        .mem
                        .and_then(|m| mem_prov.get(&word_of(m.addr)).copied())
                        .flatten();
                }
            }
            _ => {
                if let Some(d) = u.dst {
                    reg_prov[d.flat_index()] =
                        u.sources().filter_map(|r| reg_prov[r.flat_index()]).max();
                }
            }
        }
    }
    if let Some(d) = dependence {
        return Some(d);
    }
    last_write
        .iter()
        .filter(|&(_, &pos)| seal_at.get(&pos) == Some(&SealTime::Never))
        .map(|(_, &pos)| pos)
        .min()
        .map(|store_pos| Divergence {
            kind: DivergenceKind::LostAtExit,
            store_pos,
        })
}

/// One (workload, mutation) verdict pair.
#[derive(Debug, Clone)]
pub struct CrossCase {
    /// Workload name.
    pub app: &'static str,
    /// Mutation applied to the sealed trace.
    pub mutation: PersistMutation,
    /// `Error`-severity findings from the static AutoPersist lint.
    pub static_errors: usize,
    /// Dynamic counter-example, if the adversary found one.
    pub divergence: Option<Divergence>,
}

impl CrossCase {
    /// Soundness: static-clean must imply dynamic-green.
    pub fn sound(&self) -> bool {
        self.static_errors > 0 || self.divergence.is_none()
    }

    /// Static flagged it but no crash point exposes an inconsistency.
    pub fn conservative(&self) -> bool {
        self.static_errors > 0 && self.divergence.is_none()
    }
}

/// Aggregate result of [`run_crosscheck`].
#[derive(Debug, Clone)]
pub struct CrossCheckReport {
    /// Every persist-mutant verdict pair.
    pub cases: Vec<CrossCase>,
    /// Race detector vs. dynamic prefix-union oracle agreed on the clean
    /// set and on every injected second writer.
    pub race_agreed: bool,
    /// Sync-stripped race mutants flagged statically while the dynamic
    /// oracle stayed green (documented-conservative by design: the oracle
    /// only checks write-write conflicts).
    pub race_conservative: usize,
}

impl CrossCheckReport {
    /// Total persist mutants exercised.
    pub fn mutants(&self) -> usize {
        self.cases.len()
    }

    /// Mutants the static lint flagged.
    pub fn flagged(&self) -> usize {
        self.cases.iter().filter(|c| c.static_errors > 0).count()
    }

    /// Mutants the dynamic adversary diverged on.
    pub fn divergent(&self) -> usize {
        self.cases.iter().filter(|c| c.divergence.is_some()).count()
    }

    /// Statically flagged, dynamically green.
    pub fn conservative(&self) -> usize {
        self.cases.iter().filter(|c| c.conservative()).count()
    }

    /// Static-clean mutants the adversary still broke — must be zero.
    pub fn unsound(&self) -> usize {
        self.cases.iter().filter(|c| !c.sound()).count()
    }

    /// The CI gate: no unsound case and race judges agree.
    pub fn passed(&self) -> bool {
        self.unsound() == 0 && self.race_agreed
    }
}

/// Runs the full cross-check at `(len, seed)`: every registry workload ×
/// every [`PersistMutation`] (41 × 5 = 205 mutants at the default
/// registry), plus the race half over all four shared generators
/// (`threads` cores each): the clean set must satisfy both judges, an
/// injected second writer must trip both, and sync-stripping must trip the
/// static detector (dynamic-green, counted conservative).
pub fn run_crosscheck(len: usize, seed: u64, threads: usize) -> CrossCheckReport {
    let apps = ppa_workloads::registry::all();
    let per_app = ppa_pool::par_map_ordered(apps, move |app| {
        let sealed = AutoPersistPass::new().apply(&app.generate(len, seed));
        let mut cases = Vec::new();
        for mutation in PersistMutation::all() {
            let Some(mutant) = mutation.apply(&sealed) else {
                continue;
            };
            let static_errors = lint_trace(&mutant, &LintProfile::AutoPersist)
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count();
            cases.push(CrossCase {
                app: app.name,
                mutation,
                static_errors,
                divergence: crash_divergence(&mutant),
            });
        }
        cases
    });
    let cases: Vec<CrossCase> = per_app.into_iter().flatten().collect();

    let mut race_agreed = true;
    let mut race_conservative = 0usize;
    for app in ppa_workloads::shared::all() {
        let set = app.export(len.min(4_000), seed, threads);
        let full: Vec<u64> = set.traces.iter().map(|t| t.len() as u64).collect();
        // Clean: both judges green.
        let clean_static = detect_races(&set.traces).is_empty();
        let clean_dynamic = GoldenMemory::from_thread_prefixes(&set.traces, &full).is_ok();
        race_agreed &= clean_static && clean_dynamic;
        // Injected second writer: both judges must fire.
        let (mutated, _) = inject_second_writer(&set.traces, 1);
        let mfull: Vec<u64> = mutated.iter().map(|t| t.len() as u64).collect();
        let ww_static = detect_races(&mutated)
            .iter()
            .any(|d| d.rule == RaceRule::WriteWriteRace);
        let ww_dynamic = GoldenMemory::from_thread_prefixes(&mutated, &mfull).is_err();
        race_agreed &= ww_static && ww_dynamic;
        // Stripped syncs: static fires; the dynamic oracle cannot see
        // ordering races, so this is the documented-conservative bucket.
        let stripped = strip_syncs(&set.traces, 1);
        let wr_static = detect_races(&stripped)
            .iter()
            .any(|d| d.rule == RaceRule::UnsyncedWriteRead);
        race_agreed &= wr_static;
        if wr_static && GoldenMemory::from_thread_prefixes(&stripped, &full).is_ok() {
            race_conservative += 1;
        }
    }

    CrossCheckReport {
        cases,
        race_agreed,
        race_conservative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_isa::{SyncKind, TraceBuilder};

    fn sealed_demo() -> Trace {
        let mut b = TraceBuilder::new("demo");
        b.store(ArchReg::int(0), 0x100, 7);
        b.load(ArchReg::int(1), 0x100);
        b.store(ArchReg::int(1), 0x200, 7);
        b.sync(SyncKind::Fence);
        b.store(ArchReg::int(2), 0x300, 8);
        AutoPersistPass::new().apply(&b.build())
    }

    #[test]
    fn sealed_trace_has_no_divergence() {
        assert_eq!(crash_divergence(&sealed_demo()), None);
        for app in ppa_workloads::registry::all().into_iter().take(8) {
            let sealed = AutoPersistPass::new().apply(&app.generate(1_000, 1));
            assert_eq!(crash_divergence(&sealed), None, "{}", app.name);
        }
    }

    #[test]
    fn deleting_the_dependence_barrier_diverges() {
        let mutant = PersistMutation::DeleteFirstBarrier
            .apply(&sealed_demo())
            .unwrap();
        let d = crash_divergence(&mutant).expect("adversary finds a crash point");
        assert_eq!(d.kind, DivergenceKind::DependenceViolated);
    }

    #[test]
    fn deleting_the_final_barrier_loses_the_tail() {
        let mutant = PersistMutation::DeleteLastBarrier
            .apply(&sealed_demo())
            .unwrap();
        let d = crash_divergence(&mutant).expect("tail store is unsealed");
        assert_eq!(d.kind, DivergenceKind::LostAtExit);
    }

    #[test]
    fn mutations_without_a_site_return_none() {
        let mut b = TraceBuilder::new("t");
        b.nop().nop();
        let t = b.build();
        for m in PersistMutation::all() {
            assert_eq!(m.apply(&t), None, "{m}");
        }
    }

    #[test]
    fn crosscheck_is_sound_over_more_than_two_hundred_mutants() {
        let report = run_crosscheck(600, 1, 4);
        assert!(report.mutants() >= 200, "only {} mutants", report.mutants());
        assert_eq!(report.unsound(), 0);
        assert!(report.race_agreed);
        assert!(report.passed());
        // The mutations are real: most mutants are flagged AND divergent.
        assert!(report.flagged() * 10 >= report.mutants() * 9);
        assert!(report.divergent() > 0);
    }

    #[test]
    fn mutation_names_are_stable() {
        let names: Vec<&str> = PersistMutation::all().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            [
                "delete-first-clwb",
                "delete-last-clwb",
                "delete-first-barrier",
                "delete-last-barrier",
                "move-last-barrier-earlier"
            ]
        );
    }
}
