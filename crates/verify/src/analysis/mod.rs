//! Static persist-ordering analysis engine.
//!
//! Where [`crate::lint`] checks a *transformed* trace against a scheme's
//! contract, this module family answers the upstream questions:
//!
//! * **Where are flushes/fences required, and why?** —
//!   [`analyze_raw_trace`] builds the static persist-dependence graph
//!   ([`ppa_isa::depgraph`]) over a raw trace and derives the exact seal
//!   points the dependence structure forces: dependence crossings (with
//!   the full store → load → register-hop → store path), synchronisation
//!   publication points, and the trace-end seal. This is precisely the
//!   placement [`ppa_isa::transform::AutoPersistPass`] emits, so the
//!   requirement list doubles as an explanation of the pass's output.
//! * **Is the shared-memory DRF contract actually met?** — [`race`] is a
//!   static single-writer-per-word race detector over the per-thread
//!   traces of [`ppa_workloads::shared`], with named diagnostics for
//!   cross-core write-write and unsynchronised write-read conflicts.
//! * **Can the static verdicts be trusted?** — [`crosscheck`] fuzz-mutates
//!   every workload's sealed trace (delete a flush, delete or move a
//!   barrier, add a cross-core writer) and checks each static verdict
//!   against an independent *dynamic* adversarial crash simulation:
//!   static-clean must imply oracle-green; static-flagged must come with a
//!   dynamic divergence or be one of the documented-conservative rules.
//! * **Do the rules fire on exactly the defects they name?** —
//!   [`selftest`] mirrors the validator mutation-test pattern of
//!   [`crate::mutation`]: each case injects one defect into a known-clean
//!   trace and asserts the expected rule (and only allowed rules) fire.
//!
//! Everything is deterministic in `(len, seed)` and runs without a
//! simulator — the whole engine is static except the crosscheck's replay
//! of store values, which is a linear trace walk.

pub mod crosscheck;
pub mod race;
pub mod selftest;

pub use ppa_isa::depgraph::{
    store_seals, DepEdge, DepEdgeKind, DepGraphSummary, DepNode, DepNodeKind, PersistDepGraph,
    PersistDependence, StoreSeal,
};

use ppa_isa::depgraph::word_of;
use ppa_isa::{ArchReg, Trace, UopKind};
use std::collections::HashMap;
use std::fmt;

/// One place a raw trace *requires* a seal (clwb of each dirty line plus a
/// persist barrier), together with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistRequirement {
    /// A store's data derives from an earlier, still-volatile store; the
    /// cause must be sealed before the effect commits.
    Dependence {
        /// The dependence pair, carrying the full path for reporting.
        pair: PersistDependence,
    },
    /// A synchronisation primitive publishes this thread's writes; all
    /// pending stores must be durable first.
    SyncSeal {
        /// Trace position of the sync micro-op.
        sync_pos: usize,
        /// Stores pending (committed since the previous required seal).
        pending_stores: usize,
    },
    /// Stores are still pending at trace end and must not be lost at exit.
    FinalSeal {
        /// Stores pending at the end of the trace.
        pending_stores: usize,
    },
}

impl PersistRequirement {
    /// Trace position the seal must precede.
    pub fn pos(&self) -> usize {
        match self {
            PersistRequirement::Dependence { pair } => pair.to_store,
            PersistRequirement::SyncSeal { sync_pos, .. } => *sync_pos,
            PersistRequirement::FinalSeal { .. } => usize::MAX,
        }
    }

    /// Human-readable explanation — for dependences, the full path.
    pub fn why(&self) -> String {
        match self {
            PersistRequirement::Dependence { pair } => {
                let path: Vec<String> = pair.path().iter().map(|p| p.to_string()).collect();
                format!(
                    "store at uop {} derives from the store at uop {} via the load at uop {} (path: uops {}); the source must be flushed and fenced first",
                    pair.to_store,
                    pair.from_store,
                    pair.via_load,
                    path.join(" -> ")
                )
            }
            PersistRequirement::SyncSeal {
                sync_pos,
                pending_stores,
            } => format!(
                "sync at uop {sync_pos} publishes {pending_stores} pending store(s); publication requires durability"
            ),
            PersistRequirement::FinalSeal { pending_stores } => {
                format!("{pending_stores} store(s) pending at trace end must not be lost at exit")
            }
        }
    }
}

impl fmt::Display for PersistRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.why())
    }
}

/// Result of analysing one raw trace: the dependence-graph census plus the
/// seal points the graph proves necessary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceAnalysis {
    /// Node/edge counts of the persist-dependence graph.
    pub summary: DepGraphSummary,
    /// Required seal points, in trace order (the final seal last).
    pub requirements: Vec<PersistRequirement>,
}

impl TraceAnalysis {
    /// Number of dependence-forced seals.
    pub fn dependence_seals(&self) -> usize {
        self.requirements
            .iter()
            .filter(|r| matches!(r, PersistRequirement::Dependence { .. }))
            .count()
    }

    /// Number of sync-forced seals.
    pub fn sync_seals(&self) -> usize {
        self.requirements
            .iter()
            .filter(|r| matches!(r, PersistRequirement::SyncSeal { .. }))
            .count()
    }

    /// Total barriers the minimal placement needs (one per requirement).
    pub fn required_barriers(&self) -> usize {
        self.requirements.len()
    }
}

/// Analyses a raw (untransformed) trace: builds the dependence graph and
/// replays the [`ppa_isa::transform::AutoPersistPass`] placement logic to
/// list each required seal with its reason. The requirement list and the
/// pass agree by construction: the pass emits exactly one clwb-set +
/// barrier per requirement returned here.
///
/// # Examples
///
/// ```
/// use ppa_isa::{ArchReg, SyncKind, TraceBuilder};
/// use ppa_verify::analysis::{analyze_raw_trace, PersistRequirement};
///
/// let mut b = TraceBuilder::new("t");
/// b.store(ArchReg::int(0), 0x100, 7);
/// b.load(ArchReg::int(1), 0x100);
/// b.store(ArchReg::int(1), 0x200, 7); // needs the first store sealed
/// b.sync(SyncKind::Fence); // publishes the second store
/// let a = analyze_raw_trace(&b.build());
/// assert_eq!(a.dependence_seals(), 1);
/// assert_eq!(a.sync_seals(), 1);
/// assert_eq!(a.required_barriers(), 2, "sync seal covers the tail");
/// assert!(a.requirements[0].why().contains("path"));
/// ```
pub fn analyze_raw_trace(trace: &Trace) -> TraceAnalysis {
    let graph = PersistDepGraph::build(trace);
    let summary = graph.summary();
    let pair_by_ends: HashMap<(usize, usize), &PersistDependence> = graph
        .dependence_pairs()
        .iter()
        .map(|p| ((p.from_store, p.to_store), p))
        .collect();

    let mut requirements = Vec::new();
    // Mirror of the pass's epoch logic: a seal clears the pending set and
    // advances the epoch; taint records which unsealed store a register
    // value derives from.
    let mut epoch = 0u64;
    let mut pending_stores = 0usize;
    let mut word_state: HashMap<u64, (u64, usize)> = HashMap::new(); // word -> (epoch, store pos)
    let mut reg_taint: Vec<Option<(u64, usize)>> = vec![None; ArchReg::flat_count()]; // (epoch, origin pos)

    for (pos, u) in trace.iter().enumerate() {
        match u.kind {
            UopKind::Sync(_) => {
                if pending_stores > 0 {
                    requirements.push(PersistRequirement::SyncSeal {
                        sync_pos: pos,
                        pending_stores,
                    });
                    pending_stores = 0;
                    epoch += 1;
                }
            }
            UopKind::Store => {
                let crossing = u
                    .sources()
                    .filter_map(|r| reg_taint[r.flat_index()])
                    .find(|&(e, _)| e == epoch);
                if let Some((_, origin)) = crossing {
                    if pending_stores > 0 {
                        let pair = pair_by_ends
                            .get(&(origin, pos))
                            .map(|p| (*p).clone())
                            .unwrap_or(PersistDependence {
                                from_store: origin,
                                via_load: origin,
                                hops: Vec::new(),
                                to_store: pos,
                            });
                        requirements.push(PersistRequirement::Dependence { pair });
                        pending_stores = 0;
                        epoch += 1;
                    }
                }
                pending_stores += 1;
                if let Some(m) = u.mem {
                    word_state.insert(word_of(m.addr), (epoch, pos));
                }
            }
            UopKind::Load => {
                if let Some(d) = u.dst {
                    reg_taint[d.flat_index()] = u
                        .mem
                        .and_then(|m| word_state.get(&word_of(m.addr)).copied());
                }
            }
            _ => {
                if let Some(d) = u.dst {
                    reg_taint[d.flat_index()] =
                        u.sources().filter_map(|r| reg_taint[r.flat_index()]).max();
                }
            }
        }
    }
    if pending_stores > 0 {
        requirements.push(PersistRequirement::FinalSeal { pending_stores });
    }

    TraceAnalysis {
        summary,
        requirements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_isa::transform::{AutoPersistPass, TracePass};
    use ppa_isa::{SyncKind, TraceBuilder};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    #[test]
    fn requirements_match_the_pass_barrier_for_barrier() {
        // Every workload: the requirement count equals the barriers the
        // pass actually emits — the checker and the synthesiser agree.
        for app in ppa_workloads::registry::all() {
            let raw = app.generate(1_500, 1);
            let a = analyze_raw_trace(&raw);
            let emitted = AutoPersistPass::new().apply(&raw).mix().barriers as usize;
            assert_eq!(a.required_barriers(), emitted, "{}", app.name);
        }
    }

    #[test]
    fn storeless_trace_requires_nothing() {
        let mut b = TraceBuilder::new("t");
        b.nop().nop();
        let a = analyze_raw_trace(&b.build());
        assert!(a.requirements.is_empty());
        assert_eq!(a.required_barriers(), 0);
    }

    #[test]
    fn final_seal_reported_for_unpublished_tail() {
        let mut b = TraceBuilder::new("t");
        b.store(r(0), 0x100, 1);
        let a = analyze_raw_trace(&b.build());
        assert_eq!(
            a.requirements,
            vec![PersistRequirement::FinalSeal { pending_stores: 1 }]
        );
        assert!(a.requirements[0].why().contains("trace end"));
    }

    #[test]
    fn sealed_dependence_requires_no_second_seal() {
        let mut b = TraceBuilder::new("t");
        b.store(r(0), 0x100, 7);
        b.sync(SyncKind::Fence); // seals the store
        b.load(r(1), 0x100);
        b.store(r(1), 0x200, 7); // cause already durable
        let a = analyze_raw_trace(&b.build());
        assert_eq!(a.dependence_seals(), 0);
        assert_eq!(a.sync_seals(), 1);
        assert_eq!(a.required_barriers(), 2, "sync + final");
    }

    #[test]
    fn requirement_positions_are_ordered() {
        let mut b = TraceBuilder::new("t");
        b.store(r(0), 0x100, 7);
        b.load(r(1), 0x100);
        b.store(r(1), 0x200, 7);
        b.sync(SyncKind::Fence);
        b.store(r(2), 0x300, 8);
        let a = analyze_raw_trace(&b.build());
        let positions: Vec<usize> = a.requirements.iter().map(|r| r.pos()).collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted);
    }
}
