//! The `ppa-verify` command-line driver.
//!
//! ```text
//! ppa-verify <check|lint|analyze|oracle|smp|mutate|all> [--len N] [--seed N] [--points N] [--cores N] [--jobs N] [--json]
//! ```
//!
//! Exit code 0 means every selected verification passed; 1 means at
//! least one violation, lint error, oracle failure, or undetected
//! mutation.
//!
//! `--jobs N` (or `PPA_JOBS=N`; `0` = one worker per CPU) fans each
//! stage out across the shared work-stealing pool: invariant checks and
//! lints per workload, the crash oracle over its (app x failure-point)
//! grid, and the mutation self-tests per injected fault. Output order
//! and content are identical at any job count.

use ppa_isa::transform::{AutoPersistPass, CapriPass, ReplayCachePass, TracePass};
use ppa_verify::analysis::analyze_raw_trace;
use ppa_verify::analysis::crosscheck::run_crosscheck;
use ppa_verify::analysis::race::{detect_races, inject_second_writer, strip_syncs, RaceRule};
use ppa_verify::lint::{LintProfile, Severity};
use ppa_verify::{grid, lint_trace, mutation, oracle, runner, smp_oracle};
use ppa_workloads::registry;
use std::process::ExitCode;

struct Options {
    len: usize,
    seed: u64,
    points: usize,
    cores: usize,
    grid: Option<String>,
    /// `smp --fail-points all`: sweep every cycle of the run as a failure
    /// point instead of `--points` randomized injections.
    fail_points_all: bool,
    /// `lint --json`: one JSON object per diagnostic instead of the
    /// human-readable table.
    json: bool,
    /// Write a flat metrics-JSON snapshot here on exit; `merge` folds
    /// into an existing file (how the validator-share numbers join the
    /// `results/bench_baseline.json` that `repro` wrote) instead of
    /// replacing it.
    metrics_json: Option<(std::path::PathBuf, bool)>,
}

impl Default for Options {
    fn default() -> Self {
        // PPA_ORACLE_POINTS raises/lowers the oracle's injection density
        // without touching the command line; `--points` still wins.
        let points = std::env::var("PPA_ORACLE_POINTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3);
        Options {
            len: 2_000,
            seed: 1,
            points,
            cores: 2,
            grid: None,
            fail_points_all: false,
            json: false,
            metrics_json: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ppa-verify <check|lint|analyze|oracle|smp|mutate|all> [--len N] [--seed N] [--points N] [--cores N] [--jobs N] [--grid MODE] [--json]"
    );
    eprintln!();
    eprintln!("  check   run cycle-level invariant checks on all workloads (PPA mode)");
    eprintln!("  lint    lint raw + transformed traces for persistency-barrier defects");
    eprintln!("  analyze dependence graphs, autopersist placement, race detector, crosscheck");
    eprintln!("  oracle  inject randomized power failures and diff recovery vs golden");
    eprintln!("  smp     multi-core crash oracle over shared-state workloads + arbiter mutations");
    eprintln!("  mutate  self-test: injected hardware bugs must be caught by name");
    eprintln!("  all     everything above, in order");
    eprintln!();
    eprintln!("  --len N      uops per workload trace (default 2000)");
    eprintln!("  --seed N     base RNG seed (default 1)");
    eprintln!("  --points N   failure injections per workload for `oracle`/`smp` (default 3)");
    eprintln!(
        "  --cores N    cores for the `smp` oracle machine and `analyze` race threads (default 2)"
    );
    eprintln!("  --fail-points MODE  `smp` only: random (default) draws --points injections;");
    eprintln!("               all sweeps every cycle of the run as a failure point");
    eprintln!("  --json       `lint` only: one JSON object per diagnostic, no table");
    eprintln!("  --jobs N     worker threads for the fan-out (0 = auto, default 1 = serial)");
    eprintln!("  --grid MODE  distribute the `oracle` grid: off (default), loopback:N,");
    eprintln!("               or serve:HOST:PORT to submit to a `ppa-serve daemon`");
    eprintln!("  --metrics-json FILE        write a metrics snapshot (flat JSON) on exit");
    eprintln!("  --metrics-json-merge FILE  like --metrics-json, but merge into FILE");
    eprintln!();
    eprintln!("environment:");
    eprintln!("  PPA_JOBS=N           same as --jobs (the flag wins)");
    eprintln!("  PPA_GRID=MODE        same as --grid (the flag wins)");
    eprintln!("  PPA_ORACLE_POINTS=N  default for --points");
    eprintln!("  PPA_POOL_STATS=1     print pool counters to stderr on exit");
    eprintln!("  PPA_LOG=LEVEL        stderr log level: error|warn|info|debug (default warn)");
    std::process::exit(2)
}

fn parse_args() -> (String, Options) {
    let mut args = std::env::args().skip(1);
    let cmd = match args.next() {
        Some(c) => c,
        None => usage(),
    };
    let mut opts = Options::default();
    while let Some(flag) = args.next() {
        if flag == "--json" {
            opts.json = true;
            continue;
        }
        let value = args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--len" => opts.len = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value.parse().unwrap_or_else(|_| usage()),
            "--points" => opts.points = value.parse().unwrap_or_else(|_| usage()),
            "--cores" => opts.cores = value.parse().unwrap_or_else(|_| usage()),
            "--fail-points" => match value.as_str() {
                "all" => opts.fail_points_all = true,
                "random" => opts.fail_points_all = false,
                _ => usage(),
            },
            "--jobs" => ppa_pool::set_jobs(value.parse().unwrap_or_else(|_| usage())),
            "--grid" => opts.grid = Some(value),
            "--metrics-json" => opts.metrics_json = Some((value.into(), false)),
            "--metrics-json-merge" => opts.metrics_json = Some((value.into(), true)),
            _ => usage(),
        }
    }
    (cmd, opts)
}

/// `ppa-verify check`: cycle-level invariants over every workload.
fn cmd_check(opts: &Options) -> bool {
    println!(
        "== check: cycle-level invariants, {} workloads, len={} seed={}",
        registry::all().len(),
        opts.len,
        opts.seed
    );
    let t0 = std::time::Instant::now();
    let reports = {
        let _span = ppa_obs::span("verify.check");
        runner::check_all(opts.len, opts.seed)
    };
    // What fraction of the check's wall time went to the validators
    // themselves (vs simulation)? At --jobs 1 this is a true share;
    // with a pool it can exceed 1.0 since validator time sums across
    // workers. Either way it is the ROADMAP perf item's baseline.
    let wall_ns = t0.elapsed().as_nanos() as f64;
    let validator_ns: u64 = ppa_obs::registry::snapshot()
        .entries()
        .iter()
        .filter_map(|(name, v)| match v {
            ppa_obs::registry::Value::Counter(c)
                if name.starts_with("verify.check.validator.") && name.ends_with(".ns") =>
            {
                Some(*c)
            }
            _ => None,
        })
        .sum();
    if wall_ns > 0.0 {
        ppa_obs::registry::gauge("verify.check.validator_share").set(validator_ns as f64 / wall_ns);
    }
    let mut ok = true;
    for report in reports {
        if report.is_clean() {
            println!(
                "  ok   {:<16} threads={} cycles={}",
                report.app, report.threads, report.cycles
            );
        } else {
            ok = false;
            let status = if report.finished { "FAIL" } else { "HANG" };
            println!(
                "  {} {:<16} threads={} cycles={} violations={}",
                status,
                report.app,
                report.threads,
                report.cycles,
                report.violations.len()
            );
            for v in report.violations.iter().take(10) {
                println!("       {v}");
            }
        }
    }
    ok
}

/// `ppa-verify lint`: raw and transformed traces against their profiles.
fn cmd_lint(opts: &Options) -> bool {
    if !opts.json {
        println!(
            "== lint: persistency linter, raw + replaycache + capri + inorder + autopersist, len={} seed={}",
            opts.len, opts.seed
        );
    }
    let rc = ReplayCachePass::new();
    let capri = CapriPass::new();
    let autopersist = AutoPersistPass::new();
    let json = opts.json;
    // Lint each workload's five trace variants as one pool job; the
    // rendered lines come back in registry order for serial printing.
    let per_app = ppa_pool::par_map_ordered(registry::all(), |app| {
        let raw = app.generate(opts.len, opts.seed);
        let checks = [
            ("raw", lint_trace(&raw, &LintProfile::Raw)),
            (
                "replaycache",
                lint_trace(&rc.apply(&raw), &LintProfile::replaycache_default()),
            ),
            (
                "capri",
                lint_trace(&capri.apply(&raw), &LintProfile::capri_default()),
            ),
            // The raw trace is also what the §6 in-order variant consumes;
            // its value-carrying CSQ adds width and sync-interval rules.
            ("inorder", lint_trace(&raw, &LintProfile::inorder_default())),
            // Dependence-driven flush/fence insertion: lint-clean by
            // construction, so any finding here is a pass bug.
            (
                "autopersist",
                lint_trace(&autopersist.apply(&raw), &LintProfile::AutoPersist),
            ),
        ];
        let mut lines = Vec::new();
        let mut clean = true;
        for (label, diags) in checks {
            let errors = diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count();
            clean &= errors == 0;
            if json {
                for d in &diags {
                    lines.push(d.to_json(app.name, label));
                }
            } else if errors == 0 {
                lines.push(format!(
                    "  ok   {:<16} {:<12} ({} warnings)",
                    app.name,
                    label,
                    diags.len()
                ));
            } else {
                lines.push(format!(
                    "  FAIL {:<16} {:<12} {} errors",
                    app.name, label, errors
                ));
                for d in diags.iter().take(10) {
                    lines.push(format!("       {d}"));
                }
            }
        }
        (lines, clean)
    });
    let mut ok = true;
    for (lines, clean) in per_app {
        ok &= clean;
        for line in lines {
            println!("{line}");
        }
    }
    ok
}

/// `ppa-verify analyze`: the static persist-ordering analysis engine —
/// per-workload dependence graphs with the autopersist-vs-capri barrier
/// comparison, the shared-memory race detector (clean + injected-defect
/// runs), and the static-vs-dynamic soundness cross-check.
fn cmd_analyze(opts: &Options) -> bool {
    let mut ok = true;
    println!(
        "== analyze: persist-dependence graphs + autopersist placement, {} workloads, len={} seed={}",
        registry::all().len(),
        opts.len,
        opts.seed
    );
    let autopersist = AutoPersistPass::new();
    let capri = CapriPass::new();
    let per_app = ppa_pool::par_map_ordered(registry::all(), |app| {
        let raw = app.generate(opts.len, opts.seed);
        let a = analyze_raw_trace(&raw);
        let sealed = autopersist.apply(&raw);
        let errors = lint_trace(&sealed, &LintProfile::AutoPersist)
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let ap_barriers = sealed.mix().barriers;
        let capri_barriers = capri.apply(&raw).mix().barriers;
        // The engine's promise: clean by construction, and never more
        // barriers than the region-bounded baseline.
        let clean = errors == 0 && ap_barriers < capri_barriers;
        let status = if clean { "ok  " } else { "FAIL" };
        let line = format!(
            "  {status} {:<16} pairs={:<4} dep-seals={:<3} sync-seals={:<3} barriers={ap_barriers} capri={capri_barriers} lint-errors={errors}",
            app.name,
            a.summary.dependence_pairs,
            a.dependence_seals(),
            a.sync_seals(),
        );
        (line, clean)
    });
    for (line, clean) in per_app {
        ok &= clean;
        println!("{line}");
    }

    let threads = opts.cores.max(2);
    println!(
        "== analyze: race detector, {} shared workloads x {} threads, len={}",
        ppa_workloads::shared::all().len(),
        threads,
        opts.len
    );
    for app in ppa_workloads::shared::all() {
        let set = app.export(opts.len, opts.seed, threads);
        let diags = detect_races(&set.traces);
        if diags.is_empty() {
            println!(
                "  ok   {:<10} clean ({} remote reads across {} written words)",
                app.name,
                set.remote_reads(),
                set.written_words()
            );
        } else {
            ok = false;
            println!(
                "  FAIL {:<10} {} findings on the clean run",
                app.name,
                diags.len()
            );
            for d in diags.iter().take(5) {
                println!("       {d}");
            }
        }
        let (mutated, word) = inject_second_writer(&set.traces, 1);
        let caught_ww = detect_races(&mutated)
            .iter()
            .any(|d| d.rule == RaceRule::WriteWriteRace && d.word == word);
        if caught_ww {
            println!(
                "  ok   {:<10} injected second writer caught (word {word:#x})",
                app.name
            );
        } else {
            ok = false;
            println!("  FAIL {:<10} injected second writer NOT caught", app.name);
        }
        let caught_wr = detect_races(&strip_syncs(&set.traces, 1))
            .iter()
            .any(|d| d.rule == RaceRule::UnsyncedWriteRead);
        if caught_wr {
            println!("  ok   {:<10} stripped reader syncs caught", app.name);
        } else {
            ok = false;
            println!("  FAIL {:<10} stripped reader syncs NOT caught", app.name);
        }
    }

    println!(
        "== analyze: soundness cross-check, static lint vs dynamic crash adversary, seed={}",
        opts.seed
    );
    let report = run_crosscheck(opts.len.min(1_200), opts.seed, threads);
    for c in report.cases.iter().filter(|c| !c.sound()) {
        println!(
            "  UNSOUND {:<16} {} static-clean but dynamically divergent: {:?}",
            c.app, c.mutation, c.divergence
        );
    }
    println!(
        "  {} mutants: flagged={} divergent={} conservative={} unsound={}",
        report.mutants(),
        report.flagged(),
        report.divergent(),
        report.conservative(),
        report.unsound()
    );
    println!(
        "  race judges: {} ({} documented-conservative sync-strip mutants)",
        if report.race_agreed {
            "agree"
        } else {
            "DISAGREE"
        },
        report.race_conservative
    );
    ppa_obs::registry::gauge("verify.analyze.mutants").set(report.mutants() as f64);
    ppa_obs::registry::gauge("verify.analyze.unsound").set(report.unsound() as f64);
    ppa_obs::registry::gauge("verify.analyze.conservative").set(report.conservative() as f64);
    ok && report.passed()
}

/// `ppa-verify oracle`: randomized crash injections across all
/// workloads, distributed over the grid when one is attached.
fn cmd_oracle(opts: &Options, grid_handle: Option<&grid::GridHandle>) -> bool {
    println!(
        "== oracle: {} injections x {} workloads, len={} seed={}",
        opts.points,
        registry::all().len(),
        opts.len,
        opts.seed
    );
    let rows: Vec<grid::OracleRow> = match grid_handle {
        Some(h) => match grid::oracle_rows(h.runner(), opts.len, opts.seed, opts.points) {
            Ok(rows) => rows,
            Err(e) => {
                println!("  grid: {e}");
                return false;
            }
        },
        None => oracle::run_suite(opts.len, opts.seed, opts.points)
            .iter()
            .map(grid::OracleRow::from_outcome)
            .collect(),
    };
    let mut ok = true;
    let mut exercised = 0usize;
    for row in &rows {
        if row.exercised {
            exercised += 1;
        }
        if !row.passed {
            ok = false;
            println!("{}", row.failure);
        }
    }
    println!(
        "  {} / {} points passed; {} exercised non-trivial recovery",
        rows.iter().filter(|r| r.passed).count(),
        rows.len(),
        exercised
    );
    ok
}

/// `ppa-verify smp`: whole-machine crash oracle over the shared-memory
/// multi-core machine, plus the persist-arbiter mutation self-tests.
fn cmd_smp(opts: &Options) -> bool {
    if opts.fail_points_all {
        return cmd_smp_exhaustive(opts);
    }
    println!(
        "== smp: {} injections x {} shared workloads, cores={} len={} seed={}",
        opts.points,
        ppa_workloads::shared::all().len(),
        opts.cores,
        opts.len,
        opts.seed
    );
    let outcomes = smp_oracle::run_smp_suite(opts.cores, opts.len, opts.seed, opts.points);
    let mut ok = true;
    let mut mid_flush = 0usize;
    for o in &outcomes {
        if o.mid_flush_interrupt.is_some() {
            mid_flush += 1;
        }
        if !o.passed() {
            ok = false;
            println!(
                "  FAIL {:<10} fail_cycle={} committed={} replayed={} grants={} torn={} resumed={}",
                o.app,
                o.fail_cycle,
                o.committed,
                o.replayed,
                o.drain_grants,
                o.torn_words,
                o.resumed_to_completion
            );
            for v in o.validator_violations.iter().take(5) {
                println!("       validator: {v}");
            }
            for m in o.recovery_mismatches.iter().take(5) {
                println!("       recovery: {m:?}");
            }
            for m in o.final_mismatches.iter().take(5) {
                println!("       final:    {m:?}");
            }
        }
    }
    println!(
        "  {} / {} machine points passed ({} mid-flush)",
        outcomes.iter().filter(|o| o.passed()).count(),
        outcomes.len(),
        mid_flush
    );
    for report in smp_oracle::run_arbiter_mutations(opts.len.min(1_500), opts.seed) {
        if report.detected() {
            println!(
                "  ok   arbiter {:?} detected ({} violations): {:?}",
                report.fault,
                report.violations.len(),
                report.fired_kinds()
            );
        } else {
            ok = false;
            println!(
                "  FAIL arbiter {:?} NOT detected; kinds that fired: {:?}",
                report.fault,
                report.fired_kinds()
            );
        }
    }
    ok
}

/// `ppa-verify smp --fail-points all`: the exhaustive sweep — every cycle
/// of each shared workload's run is a failure point.
fn cmd_smp_exhaustive(opts: &Options) -> bool {
    println!(
        "== smp: exhaustive fail points x {} shared workloads, cores={} len={} seed={}",
        ppa_workloads::shared::all().len(),
        opts.cores,
        opts.len,
        opts.seed
    );
    let sweeps = smp_oracle::run_smp_suite_exhaustive(opts.cores, opts.len, opts.seed);
    let mut ok = true;
    for s in &sweeps {
        let resumed = s.resume_points.iter().filter(|o| o.passed()).count();
        if s.passed() {
            println!(
                "  ok   {:<10} cells={:<7} torn={:<6} resume-points={}/{}",
                s.app,
                s.cells,
                s.torn_cells,
                resumed,
                s.resume_points.len()
            );
        } else {
            ok = false;
            println!(
                "  FAIL {:<10} cells={} torn={} torn-accepted={} mismatch-cells={} resume-points={}/{}",
                s.app,
                s.cells,
                s.torn_cells,
                s.torn_accepted,
                s.mismatch_cells,
                resumed,
                s.resume_points.len()
            );
            if let Some(f) = &s.first_failure {
                println!("       first: {f}");
            }
        }
    }
    println!(
        "  {} / {} exhaustive sweeps passed ({} cells, {} torn)",
        sweeps.iter().filter(|s| s.passed()).count(),
        sweeps.len(),
        sweeps.iter().map(|s| s.cells).sum::<u64>(),
        sweeps.iter().map(|s| s.torn_cells).sum::<u64>()
    );
    for report in smp_oracle::run_arbiter_mutations(opts.len.min(1_500), opts.seed) {
        if report.detected() {
            println!(
                "  ok   arbiter {:?} detected ({} violations): {:?}",
                report.fault,
                report.violations.len(),
                report.fired_kinds()
            );
        } else {
            ok = false;
            println!(
                "  FAIL arbiter {:?} NOT detected; kinds that fired: {:?}",
                report.fault,
                report.fired_kinds()
            );
        }
    }
    ok
}

/// `ppa-verify mutate`: the checker must catch every injected bug.
fn cmd_mutate(_opts: &Options) -> bool {
    println!("== mutate: checker self-test via injected hardware bugs");
    let mut ok = true;
    for report in mutation::run_all(20_000) {
        let fired = report.fired_kinds();
        if report.detected() {
            println!(
                "  ok   {:?} detected ({} violations): {:?}",
                report.case.fault,
                report.violations.len(),
                fired
            );
        } else {
            ok = false;
            println!(
                "  FAIL {:?} NOT detected; kinds that fired: {:?}",
                report.case.fault, fired
            );
        }
    }
    ok
}

fn main() -> ExitCode {
    let (cmd, opts) = parse_args();
    // The grid (if requested) distributes the `oracle` stage; the other
    // stages always run locally.
    let mode = match &opts.grid {
        Some(v) => ppa_grid::parse_grid_mode(v),
        None => ppa_grid::grid_mode_from_env(),
    }
    .unwrap_or_else(|e| {
        eprintln!("ppa-verify: {e}");
        std::process::exit(2);
    });
    let grid_handle =
        grid::attach(mode, std::sync::Arc::new(grid::VerifyExecutor)).unwrap_or_else(|e| {
            eprintln!("ppa-verify: {e}");
            std::process::exit(1);
        });
    let ok = match cmd.as_str() {
        "check" => cmd_check(&opts),
        "lint" => cmd_lint(&opts),
        "analyze" => cmd_analyze(&opts),
        "oracle" => cmd_oracle(&opts, grid_handle.as_ref()),
        "smp" => cmd_smp(&opts),
        "mutate" => cmd_mutate(&opts),
        "all" => {
            // Run every stage even after a failure, so one report shows
            // the full picture.
            let c = cmd_check(&opts);
            let l = cmd_lint(&opts);
            let a = cmd_analyze(&opts);
            let o = cmd_oracle(&opts, grid_handle.as_ref());
            let s = cmd_smp(&opts);
            let m = cmd_mutate(&opts);
            c && l && a && o && s && m
        }
        _ => usage(),
    };
    if let Some(h) = &grid_handle {
        if let Some(coord) = h.coordinator() {
            let s = coord.stats();
            ppa_obs::info!(
                "grid",
                "dispatched={} completed={} redispatched={} duplicates={} unit_errors={} workers_joined={} workers_lost={}",
                s.dispatched, s.completed, s.redispatched, s.duplicates, s.unit_errors, s.workers_joined, s.workers_lost
            );
            coord.shutdown();
        } else if let grid::GridHandle::Remote(client) = h {
            // The daemon outlives us; just report what it did for us.
            if let Ok(s) = client.stats() {
                ppa_obs::info!(
                    "grid",
                    "daemon {}: cache hits={} misses={} entries={}",
                    client.addr(),
                    s.hits,
                    s.misses,
                    s.entries
                );
            }
        }
    }
    if std::env::var("PPA_POOL_STATS").is_ok_and(|v| v != "0") {
        if let Some(stats) = ppa_pool::global_stats() {
            eprintln!("{}", stats.table());
        }
    }
    if let Some((path, merge)) = &opts.metrics_json {
        ppa_pool::export_metrics();
        if let Err(e) = ppa_obs::snapshot().write_json_file(path, *merge) {
            eprintln!(
                "ppa-verify: cannot write metrics to {}: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    }
    if ok {
        println!("ppa-verify: all selected checks passed");
        ExitCode::SUCCESS
    } else {
        println!("ppa-verify: FAILURES detected");
        ExitCode::FAILURE
    }
}
