//! The §6 acceptance sweep: a seeded whole-machine crash-oracle run over
//! the shared-memory multi-core machine — 2 cores, 20 failure points per
//! shared workload (every third one tearing the checkpoint flush itself)
//! — plus the persist-arbiter mutation self-tests.

use ppa_verify::smp_oracle;
use ppa_workloads::shared;

#[test]
fn seeded_sweep_recovers_consistently_on_every_shared_workload() {
    const CORES: usize = 2;
    const POINTS: usize = 20;
    let outcomes = smp_oracle::run_smp_suite(CORES, 450, 1, POINTS);
    assert_eq!(outcomes.len(), shared::all().len() * POINTS);

    let mut failures = Vec::new();
    for o in &outcomes {
        if !o.passed() {
            failures.push(format!(
                "{} fail_cycle={} mid_flush={:?} validators={:?} recovery={:?} final={:?} resumed={}",
                o.app,
                o.fail_cycle,
                o.mid_flush_interrupt,
                o.validator_violations,
                o.recovery_mismatches,
                o.final_mismatches,
                o.resumed_to_completion
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));

    // The sweep must include mid-checkpoint-flush points on every app,
    // and at least some of them must actually tear the stream.
    for app in shared::all() {
        let mid: Vec<_> = outcomes
            .iter()
            .filter(|o| o.app == app.name && o.mid_flush_interrupt.is_some())
            .collect();
        assert!(
            mid.len() >= POINTS / 3,
            "{}: only {} mid-flush points",
            app.name,
            mid.len()
        );
        assert!(
            mid.iter().any(|o| o.torn_words > 0),
            "{}: no mid-flush point left a torn prefix",
            app.name
        );
    }

    // The injections must exercise real recovery, not only idle points.
    assert!(
        outcomes.iter().any(|o| o.replayed > 0),
        "no point replayed any checkpointed store"
    );
}

#[test]
fn exhaustive_sweep_is_clean_at_small_len() {
    let outcomes = smp_oracle::run_smp_suite_exhaustive(2, 140, 1);
    assert_eq!(outcomes.len(), shared::all().len());
    for o in &outcomes {
        assert!(
            o.passed(),
            "{}: torn_accepted={} mismatch_cells={} first={:?}",
            o.app,
            o.torn_accepted,
            o.mismatch_cells,
            o.first_failure
        );
        assert!(o.cells > 0, "{}: sweep visited no cycles", o.app);
        assert!(o.torn_cells > 0, "{}: no cycle tore the flush", o.app);
        assert!(
            !o.resume_points.is_empty(),
            "{}: no sampled resume points",
            o.app
        );
    }
}

#[test]
fn arbiter_mutations_are_all_detected() {
    for report in smp_oracle::run_arbiter_mutations(1_200, 1) {
        assert!(
            report.detected(),
            "{:?} not detected; fired: {:?}",
            report.fault,
            report.fired_kinds()
        );
    }
}
