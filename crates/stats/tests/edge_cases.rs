//! Edge-case behaviour of the stats primitives: empty accumulators,
//! single samples, and out-of-range samples saturating into edge
//! buckets. The telemetry layer (`ppa-obs`) renders these types in its
//! snapshots, so "what does an empty Summary report" is API surface,
//! not an implementation detail.

use ppa_stats::{Cdf, Histogram, Summary};

#[test]
fn empty_summary_reports_zeroes_not_infinities() {
    let s = Summary::new();
    assert!(s.is_empty());
    assert_eq!(s.count(), 0);
    assert_eq!(s.sum(), 0.0);
    assert_eq!(s.mean(), 0.0);
    assert_eq!(s.std_dev(), 0.0);
    // min/max of an empty summary are defined as 0.0 (never ±inf), so
    // renderers can emit them as finite JSON numbers unconditionally.
    assert_eq!(s.min(), 0.0);
    assert_eq!(s.max(), 0.0);
}

#[test]
fn single_sample_summary_is_degenerate_but_exact() {
    let mut s = Summary::new();
    s.record(42.5);
    assert!(!s.is_empty());
    assert_eq!(s.count(), 1);
    assert_eq!(s.sum(), 42.5);
    assert_eq!(s.mean(), 42.5);
    assert_eq!(s.min(), 42.5);
    assert_eq!(s.max(), 42.5);
    assert_eq!(s.std_dev(), 0.0);
}

#[test]
fn merging_an_empty_summary_is_identity_both_ways() {
    let mut s = Summary::new();
    s.record(3.0);
    s.record(9.0);
    let snapshot = s;
    s.merge(&Summary::new());
    assert_eq!(s.count(), snapshot.count());
    assert_eq!(s.sum(), snapshot.sum());
    assert_eq!(s.min(), snapshot.min());
    assert_eq!(s.max(), snapshot.max());

    let mut empty = Summary::new();
    empty.merge(&snapshot);
    assert_eq!(empty.count(), 2);
    assert_eq!(empty.min(), 3.0);
    assert_eq!(empty.max(), 9.0);
}

#[test]
fn empty_cdf_is_well_defined_where_it_can_be() {
    let cdf = Cdf::with_max_value(16);
    assert_eq!(cdf.total(), 0);
    assert_eq!(cdf.max_value(), 16);
    assert_eq!(cdf.fraction_at_or_below(0), 0.0);
    assert_eq!(cdf.fraction_at_or_below(16), 0.0);
    assert!(cdf.points().is_empty());
}

#[test]
#[should_panic(expected = "empty CDF")]
fn empty_cdf_quantile_panics() {
    Cdf::with_max_value(4).quantile(0.5);
}

#[test]
fn single_sample_cdf_puts_all_mass_on_one_value() {
    let mut cdf = Cdf::with_max_value(8);
    cdf.record(5);
    assert_eq!(cdf.total(), 1);
    assert_eq!(cdf.fraction_at_or_below(4), 0.0);
    assert_eq!(cdf.fraction_at_or_below(5), 1.0);
    for q in [0.01, 0.5, 1.0] {
        assert_eq!(cdf.quantile(q), 5);
    }
    assert_eq!(cdf.points(), vec![(5, 1.0)]);
}

#[test]
fn cdf_saturates_oversized_samples_into_the_top_bucket() {
    let mut cdf = Cdf::with_max_value(4);
    cdf.record(1_000_000);
    cdf.record(u64::MAX);
    cdf.record(4);
    assert_eq!(cdf.total(), 3);
    // All three landed at the maximum value; nothing was dropped.
    assert_eq!(cdf.fraction_at_or_below(3), 0.0);
    assert_eq!(cdf.fraction_at_or_below(4), 1.0);
    assert_eq!(cdf.quantile(1.0), 4);
    assert_eq!(cdf.points(), vec![(4, 1.0)]);
}

#[test]
fn zero_width_value_range_cdf_still_works() {
    // max_value 0 means the only recordable value is 0.
    let mut cdf = Cdf::with_max_value(0);
    cdf.record(0);
    cdf.record(7); // clamps to 0
    assert_eq!(cdf.total(), 2);
    assert_eq!(cdf.quantile(1.0), 0);
    assert_eq!(cdf.fraction_at_or_below(0), 1.0);
}

#[test]
fn empty_histogram_has_zero_everywhere() {
    let h = Histogram::new(0.0, 10.0, 4);
    assert_eq!(h.total(), 0);
    assert_eq!(h.bin_len(), 4);
    for i in 0..h.bin_len() {
        assert_eq!(h.bin_count(i), 0);
    }
    assert_eq!(h.iter().map(|(_, c)| c).sum::<u64>(), 0);
}

#[test]
fn single_sample_histogram_lands_in_exactly_one_bin() {
    let mut h = Histogram::new(0.0, 10.0, 5);
    h.record(4.0);
    assert_eq!(h.total(), 1);
    assert_eq!(h.bin_count(2), 1);
    assert_eq!(h.iter().map(|(_, c)| c).sum::<u64>(), 1);
}

#[test]
fn histogram_saturates_out_of_range_samples_into_edge_bins() {
    let mut h = Histogram::new(0.0, 10.0, 5);
    h.record(-1e18);
    h.record(-0.001);
    h.record(10.0); // hi is exclusive: clamps into the last bin
    h.record(1e18);
    h.record(f64::INFINITY);
    h.record(f64::NEG_INFINITY);
    assert_eq!(h.total(), 6, "no out-of-range sample may be dropped");
    assert_eq!(h.bin_count(0), 3);
    assert_eq!(h.bin_count(4), 3);
    for i in 1..4 {
        assert_eq!(h.bin_count(i), 0);
    }
}

#[test]
fn one_bin_histogram_absorbs_everything() {
    let mut h = Histogram::new(0.0, 1.0, 1);
    for v in [-5.0, 0.0, 0.5, 0.999, 1.0, 99.0] {
        h.record(v);
    }
    assert_eq!(h.total(), 6);
    assert_eq!(h.bin_count(0), 6);
    assert_eq!(h.bin_lo(0), 0.0);
}
