//! Statistics helpers for the PPA simulator.
//!
//! The evaluation section of the PPA paper reports three kinds of numbers:
//! per-application slowdowns aggregated with a geometric mean, per-cycle
//! cumulative distributions (free physical registers, Figure 5), and simple
//! averages (region sizes, stall ratios). This crate provides small,
//! dependency-free building blocks for all of them, plus an aligned text
//! table used by the `repro` harness to print the same rows the paper
//! reports.
//!
//! # Examples
//!
//! ```
//! use ppa_stats::{geomean, Summary};
//!
//! let slowdowns = [1.02, 1.01, 1.05];
//! assert!((geomean(slowdowns.iter().copied()) - 1.0266).abs() < 1e-3);
//!
//! let s: Summary = slowdowns.iter().copied().collect();
//! assert_eq!(s.count(), 3);
//! assert!(s.max() > 1.04);
//! ```

mod cdf;
mod histogram;
mod summary;
mod table;

pub use cdf::Cdf;
pub use histogram::Histogram;
pub use summary::Summary;
pub use table::{fmt_duration, fmt_percent, fmt_slowdown, TextTable};

/// Geometric mean of an iterator of strictly positive values.
///
/// Used throughout the evaluation to aggregate per-application slowdowns
/// exactly as the paper's `gmean` columns do. Returns `1.0` for an empty
/// iterator so a missing suite degrades to "no slowdown" rather than NaN.
///
/// # Panics
///
/// Panics if any value is not strictly positive, since the logarithm of a
/// non-positive slowdown is meaningless.
///
/// # Examples
///
/// ```
/// let g = ppa_stats::geomean([2.0, 8.0].into_iter());
/// assert!((g - 4.0).abs() < 1e-12);
/// ```
pub fn geomean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u64;
    for v in values {
        assert!(
            v > 0.0,
            "geomean requires strictly positive values, got {v}"
        );
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean of an iterator of values; `0.0` when empty.
///
/// # Examples
///
/// ```
/// assert_eq!(ppa_stats::mean([1.0, 3.0].into_iter()), 2.0);
/// ```
pub fn mean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Ratio `a / b` reported as a slowdown, guarding against a zero baseline.
///
/// The paper normalises every scheme's execution cycles to the memory-mode
/// baseline; a zero-cycle baseline would indicate a harness bug, so this
/// panics rather than producing infinity silently.
///
/// # Panics
///
/// Panics if `baseline` is zero.
///
/// # Examples
///
/// ```
/// assert_eq!(ppa_stats::slowdown(150, 100), 1.5);
/// ```
pub fn slowdown(cycles: u64, baseline: u64) -> f64 {
    assert!(baseline > 0, "baseline cycle count must be non-zero");
    cycles as f64 / baseline as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_empty_is_one() {
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean([1.0, 4.0, 16.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn geomean_rejects_zero() {
        geomean([1.0, 0.0]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn slowdown_is_ratio() {
        assert!((slowdown(102, 100) - 1.02).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn slowdown_rejects_zero_baseline() {
        slowdown(1, 0);
    }
}
