/// Cumulative distribution over integer-valued samples.
///
/// Figure 5 of the PPA paper plots the CDF of the number of free physical
/// registers, sampled every cycle at the rename stage. Samples there are
/// small integers (0 ..= PRF size), so the CDF is stored as a dense count
/// vector indexed by value — O(1) per sample and exact quantiles.
///
/// # Examples
///
/// ```
/// use ppa_stats::Cdf;
///
/// let mut cdf = Cdf::with_max_value(10);
/// for v in [2u64, 2, 4, 8] {
///     cdf.record(v);
/// }
/// // 75% of samples are <= 4.
/// assert!((cdf.fraction_at_or_below(4) - 0.75).abs() < 1e-12);
/// assert_eq!(cdf.quantile(0.75), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cdf {
    counts: Vec<u64>,
    total: u64,
}

impl Cdf {
    /// Creates a CDF able to record values in `0 ..= max_value`.
    pub fn with_max_value(max_value: u64) -> Self {
        Cdf {
            counts: vec![0; max_value as usize + 1],
            total: 0,
        }
    }

    /// Records one sample, clamping values beyond the configured maximum
    /// into the top bucket (the rename stage can never observe more free
    /// registers than the PRF holds, so clamping only defends against
    /// harness misuse).
    pub fn record(&mut self, value: u64) {
        let idx = (value as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest recordable value.
    pub fn max_value(&self) -> u64 {
        (self.counts.len() - 1) as u64
    }

    /// Fraction of samples `<= value`; `0.0` when empty.
    pub fn fraction_at_or_below(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hi = (value as usize).min(self.counts.len() - 1);
        let c: u64 = self.counts[..=hi].iter().sum();
        c as f64 / self.total as f64
    }

    /// Smallest value `v` such that at least `q` of the samples are `<= v`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]` or the CDF is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1], got {q}");
        assert!(self.total > 0, "quantile of an empty CDF");
        let threshold = (q * self.total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= threshold {
                return v as u64;
            }
        }
        self.max_value()
    }

    /// The complementary quantile used by Figure 5's narration: the number
    /// of free registers available for at least `q` of the cycles, i.e. the
    /// `(1 - q)`-quantile of the sample distribution.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1)` or the CDF is empty.
    pub fn value_available_for(&self, q: f64) -> u64 {
        assert!(
            (0.0..1.0).contains(&q),
            "fraction must be in [0, 1), got {q}"
        );
        self.quantile(1.0 - q)
    }

    /// Points `(value, cumulative_fraction)` suitable for plotting; one
    /// point per distinct recorded value.
    pub fn points(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let mut acc = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                acc += c;
                out.push((v as u64, acc as f64 / self.total as f64));
            }
        }
        out
    }

    /// Merges another CDF (over the same value range) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two CDFs have different maximum values.
    pub fn merge(&mut self, other: &Cdf) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge CDFs with different value ranges"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cdf() -> Cdf {
        let mut cdf = Cdf::with_max_value(100);
        for v in 0..100u64 {
            cdf.record(v);
        }
        cdf
    }

    #[test]
    fn fractions_are_monotone() {
        let cdf = sample_cdf();
        let mut last = 0.0;
        for v in 0..=100 {
            let f = cdf.fraction_at_or_below(v);
            assert!(f >= last);
            last = f;
        }
        assert!((last - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_uniform_distribution() {
        let cdf = sample_cdf();
        assert_eq!(cdf.quantile(0.5), 49);
        assert_eq!(cdf.quantile(1.0), 99);
    }

    #[test]
    fn values_beyond_max_clamp_into_top_bucket() {
        let mut cdf = Cdf::with_max_value(4);
        cdf.record(1_000);
        assert_eq!(cdf.quantile(1.0), 4);
    }

    #[test]
    fn available_for_is_complementary_quantile() {
        // 75% of the cycles have at least `v` free registers  <=>  v is the
        // 25th-percentile sample.
        let cdf = sample_cdf();
        assert_eq!(cdf.value_available_for(0.75), cdf.quantile(0.25));
    }

    #[test]
    fn points_cover_all_mass() {
        let mut cdf = Cdf::with_max_value(10);
        cdf.record(3);
        cdf.record(3);
        cdf.record(7);
        let pts = cdf.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].0, 3);
        assert!((pts[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = Cdf::with_max_value(10);
        a.record(1);
        let mut b = Cdf::with_max_value(10);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert!((a.fraction_at_or_below(5) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        Cdf::with_max_value(3).quantile(0.5);
    }
}
