/// Running summary of a stream of `f64` samples.
///
/// Tracks count, sum, min, max, and the sum of squares so that mean and
/// (population) standard deviation can be reported without storing the
/// samples. Used for per-region instruction counts (Figure 13) and stall
/// ratios (Figures 11/12), where a run observes millions of samples.
///
/// # Examples
///
/// ```
/// use ppa_stats::Summary;
///
/// let mut s = Summary::new();
/// s.record(1.0);
/// s.record(3.0);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Merges another summary into this one, as if every sample recorded in
    /// `other` had been recorded here. Used to aggregate per-core summaries
    /// into a system-wide one.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples; `0.0` when empty.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population standard deviation; `0.0` when fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let var = (self.sum_sq - self.sum * self.sum / n) / n;
        var.max(0.0).sqrt()
    }

    /// Smallest sample; `0.0` when empty (never `+inf`).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; `0.0` when empty (never `-inf`).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn mean_min_max() {
        let s: Summary = [4.0, 2.0, 6.0].into_iter().collect();
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 6.0);
    }

    #[test]
    fn std_dev_of_constant_stream_is_zero() {
        let s: Summary = [5.0; 10].into_iter().collect();
        assert!(s.std_dev().abs() < 1e-9);
    }

    #[test]
    fn std_dev_matches_hand_computation() {
        // Population std-dev of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.std_dev() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let b: Summary = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        let c: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(a.count(), c.count());
        assert!((a.mean() - c.mean()).abs() < 1e-12);
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn extend_adds_samples() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
    }
}
