/// Fixed-width histogram over `f64` samples.
///
/// Used by the harness for distributions that are not small integers, such
/// as per-region persistence latencies. Samples below the range go into the
/// first bin and samples above into the last, so no sample is ever dropped.
///
/// # Examples
///
/// ```
/// use ppa_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.5);
/// assert_eq!(h.total(), 2);
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(4), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Records one sample, clamping out-of-range samples into the edge bins.
    pub fn record(&mut self, v: f64) {
        let n = self.bins.len();
        let idx = if v < self.lo {
            0
        } else if v >= self.hi {
            n - 1
        } else {
            let w = (self.hi - self.lo) / n as f64;
            (((v - self.lo) / w) as usize).min(n - 1)
        };
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn bin_len(&self) -> usize {
        self.bins.len()
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * i as f64
    }

    /// Iterator over `(bin_lower_edge, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.bins.len()).map(move |i| (self.bin_lo(i), self.bins[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.record(5.0);
        h.record(15.0);
        h.record(99.9);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(9), 1);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(-5.0);
        h.record(50.0);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn bin_edges_are_uniform() {
        let h = Histogram::new(10.0, 20.0, 5);
        assert!((h.bin_lo(0) - 10.0).abs() < 1e-12);
        assert!((h.bin_lo(4) - 18.0).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_all_bins() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.iter().count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_panics() {
        Histogram::new(1.0, 0.0, 3);
    }
}
