use std::fmt;

/// Column-aligned text table for harness output.
///
/// The `repro` binary prints one table per reproduced figure; this type
/// keeps that output readable without pulling in a formatting dependency.
///
/// # Examples
///
/// ```
/// use ppa_stats::TextTable;
///
/// let mut t = TextTable::new(["app", "slowdown"]);
/// t.row(["mcf", "1.02"]);
/// t.row(["gmean", "1.02"]);
/// let s = t.to_string();
/// assert!(s.contains("app"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows shorter than the header are padded with empty
    /// cells; longer rows are allowed (the extra cells widen the table).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = w[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (i, width) in w.iter().enumerate() {
                if !first {
                    write!(f, "  ")?;
                }
                first = false;
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                write!(f, "{cell:<width$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a slowdown as the paper prints it, e.g. `1.02` or `5.13`.
///
/// # Examples
///
/// ```
/// assert_eq!(ppa_stats::fmt_slowdown(1.0234), "1.02");
/// ```
pub fn fmt_slowdown(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a fraction as a percentage with two decimals, e.g. `0.21%`.
///
/// # Examples
///
/// ```
/// assert_eq!(ppa_stats::fmt_percent(0.0021), "0.21%");
/// ```
pub fn fmt_percent(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Formats a duration at a human scale: `740us`, `343ms`, or `2.41s`.
///
/// Used for harness wall-clock reporting (per-experiment timings, pool
/// idle time), where two significant figures beat nanosecond noise.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// assert_eq!(ppa_stats::fmt_duration(Duration::from_millis(343)), "343ms");
/// assert_eq!(ppa_stats::fmt_duration(Duration::from_secs_f64(2.414)), "2.41s");
/// ```
pub fn fmt_duration(d: std::time::Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.0}ms", secs * 1e3)
    } else {
        format!("{:.0}us", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let mut t = TextTable::new(["a", "bbbb"]);
        t.row(["xxxxx", "y"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        // Header and row should have the second column starting at the same
        // offset.
        let header_off = lines[0].find("bbbb").unwrap();
        let row_off = lines[2].find('y').unwrap();
        assert_eq!(header_off, row_off);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        let s = t.to_string();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn empty_table_prints_header_only() {
        let t = TextTable::new(["just", "header"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_slowdown(4.999), "5.00");
        assert_eq!(fmt_percent(1.0), "100.00%");
    }
}
