//! Cross-scheme energy comparison (Table 5) and the qualitative scheme
//! comparison (Table 6).

use crate::checkpoint::{li_thin_volume_mm3, supercap_volume_mm3, CKPT_WORST_CASE_BYTES};
use crate::{CORE_AREA_MM2, ENERGY_PER_BYTE_NJ};

/// The whole/partial-system persistence schemes compared in §7.13 and
/// Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WspScheme {
    /// This paper.
    Ppa,
    /// Capri (HPDC '22): per-core 54 KB battery-backed redo buffers.
    Capri,
    /// LightPC (ISCA '22, PSP): flushes registers + L1D + L2 to PCM.
    LightPc,
    /// BBB (HPCA '21, ideal PSP): battery-backed persist buffers.
    Bbb,
    /// Intel eADR: flushes the whole cache hierarchy on power failure.
    Eadr,
    /// Narayanan & Hodson's WSP (ASPLOS '12): flush everything to flash
    /// from a UPS.
    NarayananWsp,
    /// ReplayCache (MICRO '21): compiler WSP for energy-harvesting cores.
    ReplayCache,
}

/// One scheme's JIT-flush energy budget (Table 5 row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeBudget {
    /// Scheme.
    pub scheme: WspScheme,
    /// Bytes flushed on power failure.
    pub flush_bytes: u64,
    /// Energy in µJ.
    pub energy_uj: f64,
    /// Supercap volume (mm³).
    pub supercap_mm3: f64,
    /// Li-thin volume (mm³).
    pub li_thin_mm3: f64,
}

impl SchemeBudget {
    fn from_bytes(scheme: WspScheme, flush_bytes: u64) -> Self {
        let energy_uj = flush_bytes as f64 * ENERGY_PER_BYTE_NJ / 1000.0;
        SchemeBudget {
            scheme,
            flush_bytes,
            energy_uj,
            supercap_mm3: supercap_volume_mm3(energy_uj),
            li_thin_mm3: li_thin_volume_mm3(energy_uj),
        }
    }

    /// Supercap volume over the Xeon core area figure (Table 5's last
    /// row: 0.005 for PPA, 44.5 for LightPC).
    pub fn supercap_core_ratio(&self) -> f64 {
        self.supercap_mm3 / CORE_AREA_MM2
    }
}

/// The three Table 5 rows: PPA, Capri, LightPC.
///
/// * PPA flushes its 1838-byte worst-case checkpoint.
/// * Capri flushes one core's 54 KB redo buffer.
/// * LightPC flushes the user-process registers (4224 B: 16 GPRs plus 32
///   XMM registers), the 64 KB L1D, and the 16 MB L2 — all the way to PCM.
///
/// # Examples
///
/// ```
/// use ppa_energy::{scheme_budgets, WspScheme};
///
/// let rows = scheme_budgets();
/// let ppa = rows.iter().find(|r| r.scheme == WspScheme::Ppa).unwrap();
/// assert!((ppa.energy_uj - 21.76).abs() < 0.1);
/// ```
pub fn scheme_budgets() -> Vec<SchemeBudget> {
    vec![
        SchemeBudget::from_bytes(WspScheme::Ppa, CKPT_WORST_CASE_BYTES),
        SchemeBudget::from_bytes(WspScheme::Capri, 54 * 1024),
        // LightPC: 4224 B of architectural registers + 64 KB L1D + 16 MB
        // (decimal, as the paper's 189 mJ figure implies) of L2.
        SchemeBudget::from_bytes(WspScheme::LightPc, 4224 + 64 * 1024 + 16_000_000),
    ]
}

/// One qualitative row of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeProperties {
    /// Scheme.
    pub scheme: WspScheme,
    /// Hardware complexity as the paper grades it.
    pub hardware_complexity: &'static str,
    /// Energy requirement grade.
    pub energy_requirement: &'static str,
    /// Needs recompilation?
    pub recompilation: bool,
    /// Transparent to applications?
    pub transparency: bool,
    /// Can use a DRAM cache?
    pub enables_dram_cache: bool,
    /// Supports multiple memory controllers?
    pub enables_multi_mc: bool,
}

/// The Table 6 comparison matrix.
pub fn scheme_properties() -> Vec<SchemeProperties> {
    vec![
        SchemeProperties {
            scheme: WspScheme::NarayananWsp,
            hardware_complexity: "No",
            energy_requirement: "Extremely High",
            recompilation: false,
            transparency: true,
            enables_dram_cache: true,
            enables_multi_mc: true,
        },
        SchemeProperties {
            scheme: WspScheme::Capri,
            hardware_complexity: "Extremely High",
            energy_requirement: "Low",
            recompilation: true,
            transparency: true,
            enables_dram_cache: true,
            enables_multi_mc: false,
        },
        SchemeProperties {
            scheme: WspScheme::ReplayCache,
            hardware_complexity: "No",
            energy_requirement: "Low",
            recompilation: true,
            transparency: true,
            enables_dram_cache: false,
            enables_multi_mc: true,
        },
        SchemeProperties {
            scheme: WspScheme::Ppa,
            hardware_complexity: "Low",
            energy_requirement: "Low",
            recompilation: false,
            transparency: true,
            enables_dram_cache: true,
            enables_multi_mc: true,
        },
    ]
}

/// eADR's published supercapacitor requirement (550 mJ, §1/§7.13).
pub const EADR_ENERGY_UJ: f64 = 550_000.0;

/// BBB's published requirement (775 µJ, §7.13).
pub const BBB_ENERGY_UJ: f64 = 775.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(s: WspScheme) -> SchemeBudget {
        scheme_budgets()
            .into_iter()
            .find(|b| b.scheme == s)
            .unwrap()
    }

    #[test]
    fn capri_energy_near_paper_0_6_mj() {
        let c = budget(WspScheme::Capri);
        // 54 KB × 11.839 nJ/B ≈ 0.65 mJ; the paper rounds to 0.6 mJ.
        assert!(
            (c.energy_uj / 1000.0 - 0.65).abs() < 0.06,
            "got {}",
            c.energy_uj
        );
    }

    #[test]
    fn lightpc_energy_near_paper_189_mj() {
        let l = budget(WspScheme::LightPc);
        assert!(
            (l.energy_uj / 1000.0 - 189.0).abs() < 3.0,
            "got {} mJ",
            l.energy_uj / 1000.0
        );
    }

    #[test]
    fn lightpc_supercap_near_paper_527_mm3() {
        let l = budget(WspScheme::LightPc);
        assert!(
            (l.supercap_mm3 - 527.8).abs() < 10.0,
            "got {}",
            l.supercap_mm3
        );
        // Ratio to core: paper quotes 44.5.
        assert!((l.supercap_core_ratio() - 44.5).abs() < 1.0);
    }

    #[test]
    fn ppa_is_orders_of_magnitude_cheaper() {
        let rows = scheme_budgets();
        let ppa = rows.iter().find(|b| b.scheme == WspScheme::Ppa).unwrap();
        // §7.13: BBB is 36.5×, eADR 25943× PPA's requirement.
        assert!((BBB_ENERGY_UJ / ppa.energy_uj - 36.5).abs() < 1.0);
        assert!((EADR_ENERGY_UJ / ppa.energy_uj / 1000.0 - 25.3).abs() < 1.0);
    }

    #[test]
    fn table6_grades_match_paper() {
        let props = scheme_properties();
        let ppa = props.iter().find(|p| p.scheme == WspScheme::Ppa).unwrap();
        assert!(!ppa.recompilation && ppa.transparency);
        assert!(ppa.enables_dram_cache && ppa.enables_multi_mc);
        let capri = props.iter().find(|p| p.scheme == WspScheme::Capri).unwrap();
        assert!(capri.recompilation && !capri.enables_multi_mc);
        let rc = props
            .iter()
            .find(|p| p.scheme == WspScheme::ReplayCache)
            .unwrap();
        assert!(!rc.enables_dram_cache);
    }
}
