//! CACTI-style SRAM cost estimates at 22 nm, reproducing Table 4.

/// Area/latency/energy estimate for one SRAM structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramEstimate {
    /// Structure label.
    pub name: &'static str,
    /// Chip area in µm².
    pub area_um2: f64,
    /// Access latency in ns.
    pub access_ns: f64,
    /// Dynamic energy per access in pJ.
    pub dynamic_pj: f64,
}

impl SramEstimate {
    /// Area as a fraction of the Xeon core (§7.12's 0.005% figure sums
    /// the three structures).
    pub fn core_area_fraction(&self) -> f64 {
        (self.area_um2 / 1e6) / crate::CORE_AREA_MM2
    }
}

/// Published Table 4 row: the 64-bit LCPC register.
pub const LCPC: SramEstimate = SramEstimate {
    name: "64-bit LCPC",
    area_um2: 12.20,
    access_ns: 0.057,
    dynamic_pj: 0.00034,
};

/// Published Table 4 row: the 384-bit (rounded from 348) MaskReg.
pub const MASK_REG_384: SramEstimate = SramEstimate {
    name: "384-bit MaskReg",
    area_um2: 74.03,
    access_ns: 0.067,
    dynamic_pj: 0.00029,
};

/// Published Table 4 row: the 40-entry CSQ.
pub const CSQ_40: SramEstimate = SramEstimate {
    name: "40-entry CSQ",
    area_um2: 547.84,
    access_ns: 0.07,
    dynamic_pj: 0.00025,
};

/// A small SRAM area model fitted to the three Table 4 data points:
/// `area = bits·A + (entries−1)·E + F` with A the 22 nm register-cell
/// area, E the per-entry decode/port overhead, and F a fitting constant.
/// Used to sweep structure sizes (e.g. the CSQ ablation) where CACTI
/// itself is unavailable.
///
/// # Examples
///
/// ```
/// use ppa_energy::SramModel;
///
/// let m = SramModel::fitted();
/// // Reproduces the published CSQ area within 1%.
/// let a = m.area_um2(40 * 57, 40);
/// assert!((a - 547.84).abs() / 547.84 < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramModel {
    /// Area per bit (µm²).
    pub bit_area_um2: f64,
    /// Area per additional entry (decode/port, µm²).
    pub entry_area_um2: f64,
    /// Fitting constant (µm²).
    pub fixed_um2: f64,
}

impl SramModel {
    /// The model fitted to the published Table 4 points.
    pub fn fitted() -> Self {
        SramModel {
            bit_area_um2: 0.193_22,
            entry_area_um2: 2.755_6,
            fixed_um2: -0.166,
        }
    }

    /// Area of a structure with `bits` total bits across `entries`
    /// entries.
    pub fn area_um2(&self, bits: u64, entries: u64) -> f64 {
        bits as f64 * self.bit_area_um2
            + entries.saturating_sub(1) as f64 * self.entry_area_um2
            + self.fixed_um2
    }

    /// CSQ area at a given entry count (each entry: a 9-bit register
    /// index plus a 48-bit physical address, §7.12).
    pub fn csq_area_um2(&self, entries: u64) -> f64 {
        self.area_um2(entries * 57, entries)
    }

    /// MaskReg area for a PRF with `total_prf` registers, rounded up to a
    /// multiple of 64 bits as the paper's 384-bit figure is.
    pub fn mask_reg_area_um2(&self, total_prf: u64) -> f64 {
        let bits = total_prf.div_ceil(64) * 64;
        self.area_um2(bits, 1)
    }
}

/// Total area of PPA's three structures (µm²).
pub fn total_ppa_area_um2() -> f64 {
    LCPC.area_um2 + MASK_REG_384.area_um2 + CSQ_40.area_um2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_rows_are_the_published_values() {
        assert_eq!(LCPC.area_um2, 12.20);
        assert_eq!(MASK_REG_384.access_ns, 0.067);
        assert_eq!(CSQ_40.dynamic_pj, 0.00025);
    }

    #[test]
    fn total_area_is_0_005_percent_of_the_core() {
        let frac = total_ppa_area_um2() / 1e6 / crate::CORE_AREA_MM2;
        // §7.12: 0.005% of an 11.85 mm² Xeon core.
        assert!((frac * 100.0 - 0.005).abs() < 0.0006, "got {frac}");
    }

    #[test]
    fn fitted_model_reproduces_all_three_rows() {
        let m = SramModel::fitted();
        let lcpc = m.area_um2(64, 1);
        let mask = m.area_um2(384, 1);
        let csq = m.csq_area_um2(40);
        assert!((lcpc - LCPC.area_um2).abs() / LCPC.area_um2 < 0.01);
        assert!((mask - MASK_REG_384.area_um2).abs() / MASK_REG_384.area_um2 < 0.01);
        assert!((csq - CSQ_40.area_um2).abs() / CSQ_40.area_um2 < 0.01);
    }

    #[test]
    fn model_scales_monotonically() {
        let m = SramModel::fitted();
        assert!(m.csq_area_um2(50) > m.csq_area_um2(40));
        assert!(m.mask_reg_area_um2(348 + 64) > m.mask_reg_area_um2(348));
    }

    #[test]
    fn core_fraction_helper() {
        // The CSQ alone is under 0.005% of the core.
        assert!(CSQ_40.core_area_fraction() < 5e-5);
    }
}
