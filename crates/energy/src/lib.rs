//! Hardware cost and JIT-checkpointing energy models (paper §7.12–7.13).
//!
//! The paper sizes PPA's three structures (LCPC, MaskReg, CSQ) with CACTI
//! 7.0 at 22 nm (Table 4), and derives the checkpointing energy budget
//! analytically: bytes moved × 11.839 nJ/B, converted to a supercapacitor
//! or Li-thin-battery volume via published energy densities (Table 5).
//! This crate reproduces that arithmetic exactly — same constants, same
//! results — and provides a small fitted SRAM model for sweeping structure
//! sizes in ablation studies.
//!
//! # Examples
//!
//! ```
//! use ppa_energy::checkpoint::{checkpoint_energy_uj, CKPT_WORST_CASE_BYTES};
//!
//! // §7.13: 1838 bytes at 11.839 nJ/B is the paper's 21.7 µJ budget.
//! let e = checkpoint_energy_uj(CKPT_WORST_CASE_BYTES);
//! assert!((e - 21.76).abs() < 0.1);
//! ```

pub mod cacti;
pub mod checkpoint;
pub mod compare;

pub use cacti::{SramEstimate, SramModel, CSQ_40, LCPC, MASK_REG_384};
pub use checkpoint::{
    checkpoint_energy_uj, checkpoint_time_ns, controller_read_ns, li_thin_volume_mm3,
    supercap_volume_mm3, CheckpointBudget, CKPT_WORST_CASE_BYTES,
};
pub use compare::{scheme_budgets, SchemeBudget, WspScheme};

/// Intel Xeon server core area (mm², §7.12, via McPAT, excluding shared
/// L2) used for the "ratio to core size" rows.
pub const CORE_AREA_MM2: f64 = 11.85;

/// Energy to read a byte from SRAM and move it to NVM (nJ/B, §7.13).
pub const ENERGY_PER_BYTE_NJ: f64 = 11.839;

/// Supercapacitor energy density (Wh/cm³, §7.13).
pub const SUPERCAP_WH_PER_CM3: f64 = 1e-4;

/// Li-thin battery energy density (Wh/cm³, §7.13).
pub const LI_THIN_WH_PER_CM3: f64 = 1e-2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_the_paper() {
        assert_eq!(CORE_AREA_MM2, 11.85);
        assert_eq!(ENERGY_PER_BYTE_NJ, 11.839);
    }
}
