//! JIT-checkpointing energy and latency arithmetic (§7.13).

use crate::{ENERGY_PER_BYTE_NJ, LI_THIN_WH_PER_CM3, SUPERCAP_WH_PER_CM3};

/// §7.13's worst case: 40 CSQ entries (320 B) + 88 physical registers at
/// 16 B (1408 B) + 48 CRT entries at 9 bits (54 B) + a 384-bit MaskReg
/// (48 B) + an 8 B LCPC = 1838 bytes.
pub const CKPT_WORST_CASE_BYTES: u64 = 1838;

/// Energy (µJ) to checkpoint `bytes` of SRAM state to NVM.
///
/// # Examples
///
/// ```
/// // One byte costs 11.839 nJ.
/// assert!((ppa_energy::checkpoint_energy_uj(1000) - 11.839).abs() < 1e-9);
/// ```
pub fn checkpoint_energy_uj(bytes: u64) -> f64 {
    bytes as f64 * ENERGY_PER_BYTE_NJ / 1000.0
}

/// Volume (mm³) of a supercapacitor storing `energy_uj` microjoules.
pub fn supercap_volume_mm3(energy_uj: f64) -> f64 {
    volume_mm3(energy_uj, SUPERCAP_WH_PER_CM3)
}

/// Volume (mm³) of a Li-thin battery storing `energy_uj` microjoules.
pub fn li_thin_volume_mm3(energy_uj: f64) -> f64 {
    volume_mm3(energy_uj, LI_THIN_WH_PER_CM3)
}

fn volume_mm3(energy_uj: f64, density_wh_per_cm3: f64) -> f64 {
    // Wh/cm³ → J/mm³: ×3600 J/Wh ÷ 1000 mm³/cm³.
    let j_per_mm3 = density_wh_per_cm3 * 3600.0 / 1000.0;
    (energy_uj * 1e-6) / j_per_mm3
}

/// Time (ns) for the checkpoint controller to read `bytes` at 8 B per
/// cycle at 2 GHz (§7.13: 1838 B → 114.9 ns).
pub fn controller_read_ns(bytes: u64) -> f64 {
    let cycles = (bytes as f64 / 8.0).ceil();
    cycles / 2.0
}

/// Total time (ns) to checkpoint `bytes`: controller read time plus the
/// NVM flush at `write_gbps` (§7.13: 0.91 µs at 2.3 GB/s).
pub fn checkpoint_time_ns(bytes: u64, write_gbps: f64) -> f64 {
    assert!(write_gbps > 0.0, "write bandwidth must be positive");
    controller_read_ns(bytes) + bytes as f64 / write_gbps
}

/// Complete §7.13 budget for a checkpoint of a given size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointBudget {
    /// Bytes moved.
    pub bytes: u64,
    /// Energy in µJ.
    pub energy_uj: f64,
    /// Supercapacitor volume in mm³.
    pub supercap_mm3: f64,
    /// Li-thin battery volume in mm³.
    pub li_thin_mm3: f64,
    /// Controller read time in ns.
    pub read_ns: f64,
    /// Total flush time in ns (at 2.3 GB/s).
    pub total_ns: f64,
}

impl CheckpointBudget {
    /// Budget for `bytes` at the default 2.3 GB/s PMEM write bandwidth.
    pub fn for_bytes(bytes: u64) -> Self {
        let energy_uj = checkpoint_energy_uj(bytes);
        CheckpointBudget {
            bytes,
            energy_uj,
            supercap_mm3: supercap_volume_mm3(energy_uj),
            li_thin_mm3: li_thin_volume_mm3(energy_uj),
            read_ns: controller_read_ns(bytes),
            total_ns: checkpoint_time_ns(bytes, 2.3),
        }
    }

    /// The paper's worst-case budget (1838 bytes).
    pub fn worst_case() -> Self {
        CheckpointBudget::for_bytes(CKPT_WORST_CASE_BYTES)
    }

    /// Supercapacitor volume as a ratio of the Xeon core area figure the
    /// paper quotes (0.005 for PPA).
    pub fn supercap_core_ratio(&self) -> f64 {
        self.supercap_mm3 / crate::CORE_AREA_MM2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_energy_is_21_7_uj() {
        let e = checkpoint_energy_uj(CKPT_WORST_CASE_BYTES);
        // 1838 × 11.839 nJ = 21.76 µJ (§7.13 quotes 21.7 µJ).
        assert!((e - 21.76).abs() < 0.01, "got {e}");
    }

    #[test]
    fn supercap_volume_matches_paper_0_06_mm3() {
        let v = supercap_volume_mm3(21.76);
        assert!((v - 0.0604).abs() < 0.001, "got {v}");
    }

    #[test]
    fn li_thin_volume_matches_paper_0_0006_mm3() {
        let v = li_thin_volume_mm3(21.76);
        assert!((v - 0.000604).abs() < 0.00002, "got {v}");
    }

    #[test]
    fn controller_read_matches_paper_114_9_ns() {
        let t = controller_read_ns(CKPT_WORST_CASE_BYTES);
        assert!((t - 114.9).abs() < 0.15, "got {t}");
    }

    #[test]
    fn total_flush_matches_paper_0_91_us() {
        let t = checkpoint_time_ns(CKPT_WORST_CASE_BYTES, 2.3);
        assert!((t / 1000.0 - 0.91).abs() < 0.01, "got {t} ns");
    }

    #[test]
    fn budget_rolls_everything_up() {
        let b = CheckpointBudget::worst_case();
        assert_eq!(b.bytes, 1838);
        assert!((b.supercap_core_ratio() - 0.005).abs() < 0.0002);
        assert!(b.total_ns > b.read_ns);
    }

    #[test]
    fn energy_scales_linearly() {
        assert!((checkpoint_energy_uj(2000) - 2.0 * checkpoint_energy_uj(1000)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        checkpoint_time_ns(100, 0.0);
    }
}
