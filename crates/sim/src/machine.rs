use crate::presets::SystemConfig;
use crate::report::SimReport;
use ppa_core::Core;
use ppa_isa::transform::{CapriPass, ReplayCachePass, TracePass};
use ppa_isa::Trace;
use ppa_mem::MemorySystem;
use ppa_workloads::AppDescriptor;
use std::collections::HashSet;

/// Deterministically selects the fraction of the traces' footprint that
/// is DRAM-cache resident at measurement time (see
/// [`ppa_workloads::AppDescriptor::dram_resident_frac`]): a line is
/// resident iff a hash of its address falls below the fraction.
fn classify_lines(traces: &[Trace], app: &AppDescriptor) -> (Vec<u64>, Vec<u64>) {
    let mut hot = HashSet::new();
    let mut resident = HashSet::new();
    for t in traces {
        for u in t {
            if let Some(m) = u.mem {
                let line = ppa_isa::line_of(m.addr);
                if app.is_hot_line(line) {
                    hot.insert(line);
                } else if hash01(line) < app.dram_resident_frac {
                    resident.insert(line);
                }
            }
        }
    }
    // Sorted so prewarm order (and therefore LRU state) is deterministic.
    let mut h: Vec<u64> = hot.into_iter().collect();
    h.sort_unstable();
    let mut r: Vec<u64> = resident.into_iter().collect();
    r.sort_unstable();
    (h, r)
}

fn hash01(x: u64) -> f64 {
    // SplitMix64 finaliser: uniform enough for residency sampling.
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Cache contents established before a measured run (steady-state warmth).
#[derive(Debug, Clone, Default)]
struct Prewarm {
    /// Hot working-set lines: warmed into L2 and DRAM cache.
    hot: Vec<u64>,
    /// Additional DRAM-cache-resident lines.
    dram_resident: Vec<u64>,
}

/// A runnable machine: a [`SystemConfig`] plus the drive loop.
///
/// `Machine` owns nothing mutable — each `run_*` call builds a fresh
/// memory system and cores, so runs are independent and deterministic.
///
/// # Examples
///
/// ```
/// use ppa_sim::{Machine, SystemConfig};
/// use ppa_workloads::registry;
///
/// let app = registry::by_name("gobmk").unwrap();
/// let report = Machine::new(SystemConfig::ppa()).run_app(&app, 4_000, 1);
/// assert_eq!(report.committed, 4_000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Machine {
    cfg: SystemConfig,
}

impl Machine {
    /// Creates a machine from a configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        Machine { cfg }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Applies the persistence mode's compiler pass to a raw trace
    /// (identity for baseline and PPA — that is the paper's point).
    pub fn prepare_trace(&self, raw: &Trace) -> Trace {
        match self.cfg.core.mode {
            ppa_core::PersistenceMode::ReplayCache => ReplayCachePass::new().apply(raw),
            ppa_core::PersistenceMode::Capri => CapriPass::new().apply(raw),
            _ => raw.clone(),
        }
    }

    /// Runs a single prepared trace on core 0.
    pub fn run(&self, trace: &Trace) -> SimReport {
        self.run_threads(std::slice::from_ref(trace))
    }

    /// Runs one prepared trace per core, in lock step.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or the machine deadlocks (a cycle
    /// bound of 2000 cycles per micro-op is enforced).
    pub fn run_threads(&self, traces: &[Trace]) -> SimReport {
        self.run_inner(traces, &Prewarm::default())
    }

    fn run_inner(&self, traces: &[Trace], warm: &Prewarm) -> SimReport {
        assert!(!traces.is_empty(), "need at least one trace");
        let mut mem = MemorySystem::new(self.cfg.mem, traces.len());
        for &line in &warm.hot {
            mem.prewarm_l2(line);
            mem.prewarm_dram(line);
        }
        for &line in &warm.dram_resident {
            mem.prewarm_dram(line);
        }
        let mut cores: Vec<Core> = (0..traces.len())
            .map(|i| Core::new(self.cfg.core, i))
            .collect();
        let total_uops: u64 = traces.iter().map(|t| t.len() as u64).sum();
        let limit = 1_000_000 + total_uops * 2_000;
        let mut now = 0;
        loop {
            let mut all_done = true;
            for (core, trace) in cores.iter_mut().zip(traces) {
                core.step(trace, &mut mem, now);
                all_done &= core.is_finished();
            }
            mem.tick(now);
            now += 1;
            if all_done {
                break;
            }
            assert!(now < limit, "machine deadlocked after {now} cycles");
        }
        let cycles = cores
            .iter()
            .map(|c| c.finished_at().expect("all cores finished"))
            .max()
            .unwrap_or(0);
        let committed = cores.iter().map(Core::committed).sum();
        let consistent = mem.nvm_image().diff(mem.arch_mem()).is_empty();
        // Once-per-run telemetry (never per-cycle): total simulated
        // work, from which `repro` derives `sim.cycles_per_sec`.
        ppa_obs::registry::counter("sim.machine.runs").inc();
        ppa_obs::registry::counter("sim.cycles.total").add(cycles);
        ppa_obs::registry::counter("sim.uops.committed").add(committed);
        SimReport {
            cycles,
            committed,
            core_stats: cores.into_iter().map(|c| c.stats().clone()).collect(),
            mem_stats: mem.stats(),
            consistent,
        }
    }

    /// Generates the application's traces (one per configured thread),
    /// applies the mode's compiler pass, and runs. `len` is micro-ops per
    /// thread of the *raw* program, so every scheme executes the same
    /// program (the software schemes' inserted `clwb`s/barriers make
    /// their dynamic instruction count larger, as in reality).
    pub fn run_app(&self, app: &AppDescriptor, len: usize, seed: u64) -> SimReport {
        let threads = self.cfg.threads.min(app.threads.max(1));
        let traces: Vec<Trace> = (0..threads)
            .map(|tid| self.prepare_trace(&app.generate_thread(len, seed, tid)))
            .collect();
        let (hot, dram_resident) = classify_lines(&traces, app);
        self.run_inner(&traces, &Prewarm { hot, dram_resident })
    }

    /// Runs the application with its default thread count under this
    /// configuration (SPEC apps stay single-threaded even on an 8-core
    /// config).
    pub fn run_app_parallel(&self, app: &AppDescriptor, len: usize, seed: u64) -> SimReport {
        let cfg = SystemConfig {
            threads: app.threads,
            ..self.cfg
        };
        Machine::new(cfg).run_app(app, len, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::SystemConfig;
    use ppa_workloads::registry;

    #[test]
    fn baseline_and_ppa_commit_the_same_program() {
        let app = registry::by_name("sjeng").unwrap();
        let base = Machine::new(SystemConfig::baseline()).run_app(&app, 3_000, 9);
        let ppa = Machine::new(SystemConfig::ppa()).run_app(&app, 3_000, 9);
        assert_eq!(base.committed, 3_000);
        assert_eq!(ppa.committed, 3_000);
        assert!(ppa.consistent);
    }

    #[test]
    fn replaycache_trace_is_longer_than_raw() {
        let app = registry::by_name("bzip2").unwrap();
        let m = Machine::new(SystemConfig::replay_cache());
        let raw = app.generate(2_000, 1);
        let prepared = m.prepare_trace(&raw);
        assert!(prepared.len() > raw.len(), "clwbs and barriers added");
    }

    #[test]
    fn multicore_run_is_consistent_and_deterministic() {
        let app = registry::by_name("radix").unwrap();
        let m = Machine::new(SystemConfig::ppa().with_threads(4));
        let r1 = m.run_app(&app, 2_000, 5);
        let r2 = m.run_app(&app, 2_000, 5);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.committed, 4 * 2_000);
        assert!(r1.consistent);
    }

    #[test]
    fn dram_only_is_fastest_on_memory_bound_apps() {
        let app = registry::by_name("lbm").unwrap();
        let dram = Machine::new(SystemConfig::dram_only()).run_app(&app, 30_000, 3);
        let mem_mode = Machine::new(SystemConfig::baseline()).run_app(&app, 30_000, 3);
        assert!(
            dram.cycles < mem_mode.cycles,
            "DRAM-only ({}) must beat memory mode ({})",
            dram.cycles,
            mem_mode.cycles
        );
    }

    #[test]
    fn app_direct_is_slower_than_memory_mode_for_missy_apps() {
        let app = registry::by_name("libquantum").unwrap();
        let psp = Machine::new(SystemConfig::eadr_bbb()).run_app(&app, 10_000, 3);
        let mem_mode = Machine::new(SystemConfig::baseline()).run_app(&app, 10_000, 3);
        assert!(
            psp.cycles > mem_mode.cycles,
            "app-direct ({}) must trail memory mode ({})",
            psp.cycles,
            mem_mode.cycles
        );
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_trace_list_panics() {
        Machine::new(SystemConfig::baseline()).run_threads(&[]);
    }
}
