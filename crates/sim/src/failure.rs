use crate::presets::SystemConfig;
use ppa_core::{
    deserialize_images, replay_stores, serialize_images, CheckpointController, Core,
    PersistenceMode,
};
use ppa_isa::Trace;
use ppa_mem::MemorySystem;

/// How the injected failure interacts with the JIT-checkpoint flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushMode {
    /// The flush completes within the residual-energy window, as §4.5
    /// guarantees by construction (the pre-existing model).
    Complete,
    /// Power is lost again `interrupt_cycles` into the checkpoint
    /// controller's FSM. The words durable at that instant form a torn
    /// stream which recovery must detect and reject; the residual-energy
    /// window then finishes the flush, and recovery proceeds from the
    /// *deserialized* full stream — exercising the detection path, not
    /// just the happy path.
    InterruptedAt {
        /// Controller cycles before the interruption.
        interrupt_cycles: u64,
    },
}

/// Outcome of one injected power failure plus recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureOutcome {
    /// Cycle at which power was cut.
    pub fail_cycle: u64,
    /// Micro-ops committed before the failure (across all cores).
    pub committed_before: u64,
    /// Whether the raw NVM image already matched architectural memory at
    /// the failure point (usually not — that is the crash inconsistency).
    pub consistent_before_recovery: bool,
    /// Stores replayed from the checkpointed CSQs.
    pub replayed_stores: usize,
    /// Bytes the JIT checkpoint moved to NVM (summed over cores).
    pub checkpoint_bytes: u64,
    /// Controller cycles the checkpoint flush consumed (including a
    /// mid-flush interruption, if any).
    pub flush_cycles: u64,
    /// Words of the serialized stream durable at the mid-flush
    /// interruption (zero for [`FlushMode::Complete`]).
    pub torn_words: u64,
    /// Whether the torn prefix was rejected by deserialization — a torn
    /// image accepted as complete would be a silent-corruption recovery.
    /// Vacuously `true` when the flush was not interrupted.
    pub torn_prefix_rejected: bool,
    /// Whether the full serialized stream round-tripped and recovery ran
    /// from the deserialized images rather than the in-memory ones.
    pub stream_recovered: bool,
    /// Whether NVM matched architectural memory right after replay.
    pub consistent_after_recovery: bool,
    /// Whether the recovered machine resumed and completed the program
    /// with a consistent final NVM image.
    pub completed_after_resume: bool,
}

/// Runs a PPA machine until `fail_cycle`, cuts power, JIT-checkpoints,
/// recovers per §4.5–4.6, resumes, and reports every verification step.
///
/// # Panics
///
/// Panics if the configuration's persistence mode is not
/// [`PersistenceMode::Ppa`] — only PPA defines this recovery protocol.
///
/// # Examples
///
/// ```
/// use ppa_sim::{inject_failure, SystemConfig};
/// use ppa_workloads::registry;
///
/// let app = registry::by_name("hmmer").unwrap();
/// let trace = app.generate(3_000, 2);
/// let out = inject_failure(&SystemConfig::ppa(), &trace, 1_000);
/// assert!(out.consistent_after_recovery);
/// assert!(out.completed_after_resume);
/// ```
pub fn inject_failure(cfg: &SystemConfig, trace: &Trace, fail_cycle: u64) -> FailureOutcome {
    inject_failure_multicore(cfg, std::slice::from_ref(trace), fail_cycle)
}

/// Multi-core version of [`inject_failure`]: every core is checkpointed
/// and recovered individually, and the CSQs are replayed in arbitrary
/// (here: core-index) order — §6 argues DRF makes any order correct.
pub fn inject_failure_multicore(
    cfg: &SystemConfig,
    traces: &[Trace],
    fail_cycle: u64,
) -> FailureOutcome {
    inject_failure_with_flush(cfg, traces, fail_cycle, FlushMode::Complete)
}

/// Like [`inject_failure_multicore`], but the failure point sits *inside*
/// the JIT-checkpoint FSM: the flush is interrupted `interrupt_cycles`
/// in, the torn word stream is shown to be rejected, and recovery runs
/// from the deserialized full stream (see [`FlushMode::InterruptedAt`]).
pub fn inject_failure_mid_flush(
    cfg: &SystemConfig,
    traces: &[Trace],
    fail_cycle: u64,
    interrupt_cycles: u64,
) -> FailureOutcome {
    inject_failure_with_flush(
        cfg,
        traces,
        fail_cycle,
        FlushMode::InterruptedAt { interrupt_cycles },
    )
}

/// The full failure model: run, checkpoint (optionally tearing the flush),
/// recover, resume.
pub fn inject_failure_with_flush(
    cfg: &SystemConfig,
    traces: &[Trace],
    fail_cycle: u64,
    flush: FlushMode,
) -> FailureOutcome {
    assert_eq!(
        cfg.core.mode,
        PersistenceMode::Ppa,
        "failure injection drives PPA's recovery protocol"
    );
    assert!(!traces.is_empty(), "need at least one trace");

    let mut mem = MemorySystem::new(cfg.mem, traces.len());
    let mut cores: Vec<Core> = (0..traces.len()).map(|i| Core::new(cfg.core, i)).collect();

    // Phase 1: run until the power failure.
    for now in 0..fail_cycle {
        for (core, trace) in cores.iter_mut().zip(traces) {
            core.step(trace, &mut mem, now);
        }
        mem.tick(now);
    }

    let committed_before: u64 = cores.iter().map(Core::committed).sum();
    let consistent_before_recovery = mem.nvm_image().diff(mem.arch_mem()).is_empty();

    // Phase 2: power failure — JIT checkpoint through the controller FSM,
    // then all volatile state dies. The images travel to NVM as a word
    // stream whose completion marker is written last.
    let images: Vec<_> = cores.iter().map(Core::jit_checkpoint).collect();
    let checkpoint_bytes: u64 = images
        .iter()
        .map(|i| i.checkpoint_bytes(cfg.core.total_prf()))
        .sum();
    let stream = serialize_images(&images);
    let mut fsm = CheckpointController::new();
    fsm.power_fail(stream.len() as u64 * 8);
    let (flush_cycles, torn_words, torn_prefix_rejected) = match flush {
        FlushMode::Complete => (fsm.run_to_completion(), 0, true),
        FlushMode::InterruptedAt { interrupt_cycles } => {
            let mut used = 0;
            for _ in 0..interrupt_cycles {
                if !fsm.step() {
                    break;
                }
                used += 1;
            }
            let torn = fsm.words_done();
            // A torn stream must never deserialize to anything; only a
            // fully flushed stream may.
            let rejected = torn >= stream.len() as u64
                || deserialize_images(&stream[..torn as usize]).is_none();
            // The residual-energy window finishes the flush.
            (used + fsm.run_to_completion(), torn, rejected)
        }
    };
    mem.power_failure();

    // Phase 3: recovery — deserialize the durable stream (recovery must
    // trust nothing else), replay each core's CSQ (any order), and verify
    // consistency at the last commit point.
    let recovered_images = deserialize_images(&stream).expect("a completed flush must deserialize");
    let stream_recovered = recovered_images == images;
    let mut replayed_stores = 0;
    for image in &recovered_images {
        replayed_stores += replay_stores(image, mem.nvm_image_mut()).replayed_stores;
    }
    let consistent_after_recovery = mem.nvm_image().diff(mem.arch_mem()).is_empty();

    // Phase 4: resume after the LCPC and run to completion.
    let mut recovered: Vec<Core> = recovered_images
        .iter()
        .enumerate()
        .map(|(i, img)| Core::recover(cfg.core, i, img))
        .collect();
    let total_uops: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let limit = fail_cycle + 1_000_000 + total_uops * 2_000;
    let mut now = fail_cycle;
    loop {
        let mut all_done = true;
        for (core, trace) in recovered.iter_mut().zip(traces) {
            core.step(trace, &mut mem, now);
            all_done &= core.is_finished();
        }
        mem.tick(now);
        now += 1;
        if all_done {
            break;
        }
        assert!(now < limit, "recovered machine deadlocked");
    }
    let completed = recovered
        .iter()
        .zip(traces)
        .all(|(c, t)| c.committed() == t.len() as u64)
        && mem.nvm_image().diff(mem.arch_mem()).is_empty();

    FailureOutcome {
        fail_cycle,
        committed_before,
        consistent_before_recovery,
        replayed_stores,
        checkpoint_bytes,
        flush_cycles,
        torn_words,
        torn_prefix_rejected,
        stream_recovered,
        consistent_after_recovery,
        completed_after_resume: completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_workloads::registry;

    #[test]
    fn recovery_restores_consistency_at_many_failure_points() {
        let app = registry::by_name("tpcc").unwrap();
        let trace = app.generate(2_000, 11);
        for fail_cycle in [1, 50, 333, 1_000, 2_500] {
            let out = inject_failure(&SystemConfig::ppa(), &trace, fail_cycle);
            assert!(
                out.consistent_after_recovery,
                "inconsistent after recovery at cycle {fail_cycle}"
            );
            assert!(
                out.completed_after_resume,
                "did not complete after resume at cycle {fail_cycle}"
            );
        }
    }

    #[test]
    fn mid_run_failures_exhibit_the_inconsistency_ppa_repairs() {
        // At some failure point the raw NVM image must differ from the
        // architectural memory — otherwise the experiment proves nothing.
        let app = registry::by_name("rb").unwrap();
        let trace = app.generate(3_000, 7);
        let mut saw_inconsistency = false;
        for i in 1..25 {
            let fail_cycle = i * 211;
            let out = inject_failure(&SystemConfig::ppa(), &trace, fail_cycle);
            saw_inconsistency |= !out.consistent_before_recovery;
            assert!(out.consistent_after_recovery);
        }
        assert!(saw_inconsistency, "no failure point was inconsistent");
    }

    #[test]
    fn checkpoint_bytes_within_paper_worst_case() {
        let app = registry::by_name("lulesh").unwrap();
        let trace = app.generate(2_000, 3);
        let out = inject_failure(&SystemConfig::ppa(), &trace, 1_200);
        assert!(out.checkpoint_bytes > 0);
        // One core's checkpoint can never exceed §7.13's 1838-byte bound
        // (40 CSQ entries, 88 registers, CRT, MaskReg, LCPC).
        assert!(
            out.checkpoint_bytes <= 1838,
            "checkpoint was {} bytes",
            out.checkpoint_bytes
        );
    }

    #[test]
    fn multicore_recovery_in_arbitrary_order_is_consistent() {
        let app = registry::by_name("water-ns").unwrap();
        let traces: Vec<_> = (0..4).map(|t| app.generate_thread(1_500, 5, t)).collect();
        let cfg = SystemConfig::ppa().with_threads(4);
        let out = inject_failure_multicore(&cfg, &traces, 900);
        assert!(out.consistent_after_recovery);
        assert!(out.completed_after_resume);
    }

    #[test]
    fn failure_before_any_commit_is_trivially_recoverable() {
        let app = registry::by_name("gcc").unwrap();
        let trace = app.generate(500, 1);
        let out = inject_failure(&SystemConfig::ppa(), &trace, 0);
        assert_eq!(out.committed_before, 0);
        assert_eq!(out.replayed_stores, 0);
        assert!(out.completed_after_resume);
    }

    #[test]
    fn mid_flush_tearing_is_detected_and_recovery_still_succeeds() {
        let app = registry::by_name("tpcc").unwrap();
        let trace = app.generate(2_000, 11);
        for interrupt in [0, 1, 2, 3, 10, 40, 100, 1_000_000] {
            let out = inject_failure_mid_flush(
                &SystemConfig::ppa(),
                std::slice::from_ref(&trace),
                1_000,
                interrupt,
            );
            assert!(
                out.torn_prefix_rejected,
                "torn prefix after {interrupt} controller cycles was accepted"
            );
            assert!(out.stream_recovered, "stream did not round-trip");
            assert!(out.consistent_after_recovery);
            assert!(out.completed_after_resume);
        }
    }

    #[test]
    fn complete_flush_reports_no_tearing() {
        let app = registry::by_name("hmmer").unwrap();
        let trace = app.generate(1_500, 2);
        let out = inject_failure(&SystemConfig::ppa(), &trace, 700);
        assert_eq!(out.torn_words, 0);
        assert!(out.torn_prefix_rejected);
        assert!(out.stream_recovered);
        assert!(out.flush_cycles > 0, "the flush FSM must consume cycles");
    }

    #[test]
    #[should_panic(expected = "recovery protocol")]
    fn non_ppa_mode_panics() {
        let app = registry::by_name("gcc").unwrap();
        let trace = app.generate(100, 1);
        inject_failure(&SystemConfig::baseline(), &trace, 10);
    }
}
