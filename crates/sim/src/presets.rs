use ppa_core::{CoreConfig, PersistenceMode};
use ppa_mem::MemConfig;

/// A complete machine configuration: core + memory + thread count.
///
/// The preset constructors pair the core's persistence mode with the
/// memory organisation the paper evaluates it on; sweep helpers adjust
/// single parameters for the sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Per-core configuration.
    pub core: CoreConfig,
    /// Memory-system configuration.
    pub mem: MemConfig,
    /// Number of cores (threads) simulated.
    pub threads: usize,
}

impl SystemConfig {
    /// The paper's baseline: original binaries on PMEM's memory mode, no
    /// persistence support. Every figure normalises against this.
    pub fn baseline() -> Self {
        SystemConfig {
            core: CoreConfig::paper_default(PersistenceMode::Baseline),
            mem: MemConfig::memory_mode(),
            threads: 1,
        }
    }

    /// PPA on memory mode (Table 2 defaults, 40-entry CSQ).
    pub fn ppa() -> Self {
        SystemConfig {
            core: CoreConfig::paper_default(PersistenceMode::Ppa),
            ..SystemConfig::baseline()
        }
    }

    /// ReplayCache: store-integrity binaries (apply
    /// [`ppa_isa::transform::ReplayCachePass`] to the trace) with a `clwb`
    /// per store. `clwb` tracks single stores, so persist coalescing is
    /// off (Table 1).
    pub fn replay_cache() -> Self {
        SystemConfig {
            core: CoreConfig::paper_default(PersistenceMode::ReplayCache),
            mem: MemConfig {
                persist_coalescing: false,
                ..MemConfig::memory_mode()
            },
            threads: 1,
        }
    }

    /// Capri with its practical 4 GB/s persist path (§7.1); traces must be
    /// pre-processed with [`ppa_isa::transform::CapriPass`].
    pub fn capri() -> Self {
        SystemConfig {
            core: CoreConfig::paper_default(PersistenceMode::Capri),
            ..SystemConfig::baseline()
        }
    }

    /// The Figure 10 ideal-PSP comparator (eADR/BBB): batteries make the
    /// SRAM caches persistent, so the core needs no support — but the
    /// PMEM is used app-direct, with no DRAM cache to hide its latency.
    pub fn eadr_bbb() -> Self {
        SystemConfig {
            mem: MemConfig::app_direct(),
            ..SystemConfig::baseline()
        }
    }

    /// A CXL-attached far persistent memory (the introduction's claim:
    /// PPA "treats the underlying cache hierarchy as a black box, thus
    /// being suitable for ... CXL-based far persistent memory"): the same
    /// memory-mode system with the NVM an extra ~300 ns away.
    pub fn with_cxl_far_memory(mut self) -> Self {
        if let Some(nvm) = self.mem.nvm() {
            let far = ppa_mem::NvmConfig {
                read_latency: nvm.read_latency + ppa_mem::ns_to_cycles(300.0),
                write_latency: nvm.write_latency + ppa_mem::ns_to_cycles(300.0),
                ..*nvm
            };
            self.mem = self.mem.with_nvm(far);
        }
        self
    }

    /// The Figure 9 comparison system: 32 GB of volatile DRAM only.
    pub fn dram_only() -> Self {
        SystemConfig {
            mem: MemConfig::dram_only(),
            ..SystemConfig::baseline()
        }
    }

    /// The Figure 14 deeper hierarchy (private 1 MB L2 + shared 16 MB L3
    /// atop the DRAM cache), for `ppa` or `baseline` cores.
    pub fn with_deep_hierarchy(mut self) -> Self {
        self.mem = MemConfig {
            backing: self.mem.backing,
            ..MemConfig::deep_hierarchy()
        };
        self
    }

    /// Runs on `threads` cores; synchronisation contention grows mildly
    /// with the core count (Figure 19's thread study also scales the
    /// shared L2 and WPQ proportionally, which this mirrors).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self.core.sync_extra_latency = 16 + 2 * threads as u64;
        if threads > 8 {
            // §7.11: the study scales the shared L2 and the NVM WPQ with
            // the thread count (more DIMMs behind more controllers, so
            // aggregate write bandwidth scales too).
            let scale = (threads / 8) as u64;
            self.mem.l2.size_bytes *= scale;
            if let Some(nvm) = self.mem.nvm() {
                let mut scaled = nvm.with_wpq_entries(nvm.wpq_entries * scale as usize);
                scaled.write_bytes_per_cycle *= scale as f64;
                self.mem = self.mem.with_nvm(scaled);
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_pair_modes_with_memories() {
        assert_eq!(
            SystemConfig::baseline().core.mode,
            PersistenceMode::Baseline
        );
        assert_eq!(SystemConfig::ppa().core.mode, PersistenceMode::Ppa);
        assert!(SystemConfig::eadr_bbb().mem.dram_cache.is_none());
        assert!(SystemConfig::eadr_bbb().mem.nvm().is_some());
        assert!(SystemConfig::dram_only().mem.nvm().is_none());
        assert!(!SystemConfig::replay_cache().mem.persist_coalescing);
    }

    #[test]
    fn deep_hierarchy_keeps_the_backing() {
        let c = SystemConfig::ppa().with_deep_hierarchy();
        assert!(c.mem.l3.is_some());
        assert!(!c.mem.l2_shared);
        assert!(c.mem.nvm().is_some());
    }

    #[test]
    fn thread_scaling_grows_shared_resources() {
        let c8 = SystemConfig::ppa().with_threads(8);
        let c32 = SystemConfig::ppa().with_threads(32);
        assert_eq!(c32.threads, 32);
        assert!(c32.core.sync_extra_latency > c8.core.sync_extra_latency);
        assert_eq!(c32.mem.l2.size_bytes, 4 * c8.mem.l2.size_bytes);
        assert_eq!(c32.mem.nvm().unwrap().wpq_entries, 64);
    }

    #[test]
    fn cxl_far_memory_raises_nvm_latency_only() {
        let near = SystemConfig::ppa();
        let far = SystemConfig::ppa().with_cxl_far_memory();
        let n = near.mem.nvm().unwrap();
        let f = far.mem.nvm().unwrap();
        assert_eq!(f.read_latency, n.read_latency + 600);
        assert_eq!(f.write_latency, n.write_latency + 600);
        assert_eq!(f.wpq_entries, n.wpq_entries);
        // DRAM-only systems are unaffected.
        let d = SystemConfig::dram_only().with_cxl_far_memory();
        assert!(d.mem.nvm().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        SystemConfig::ppa().with_threads(0);
    }
}
