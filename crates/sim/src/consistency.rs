//! Crash-consistency diagnostics: a detailed comparison of the NVM image
//! against the golden architectural memory, distinguishing words that are
//! *missing* from the persistence domain from words that are *stale*
//! (an old value persisted, then overwritten architecturally but never
//! re-persisted — the exact hazard §2.4 describes).

use ppa_mem::MemorySystem;

/// One inconsistent word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadWord {
    /// Word address (8-byte aligned).
    pub addr: u64,
    /// The committed (expected) value.
    pub expected: u64,
    /// What the NVM holds, if anything.
    pub found: Option<u64>,
}

/// Outcome of a consistency check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Committed words absent from the NVM image entirely.
    pub missing: Vec<BadWord>,
    /// Committed words present with an out-of-date value.
    pub stale: Vec<BadWord>,
    /// Committed words checked in total.
    pub checked: usize,
}

impl ConsistencyReport {
    /// Whether the NVM image matches committed state exactly.
    pub fn is_consistent(&self) -> bool {
        self.missing.is_empty() && self.stale.is_empty()
    }

    /// Total inconsistent words.
    pub fn bad_words(&self) -> usize {
        self.missing.len() + self.stale.len()
    }

    /// Panics with a readable summary when inconsistent — for tests and
    /// examples that want a hard guarantee.
    ///
    /// # Panics
    ///
    /// Panics if the report shows any missing or stale word.
    pub fn assert_consistent(&self) {
        assert!(
            self.is_consistent(),
            "NVM inconsistent with committed state: {} missing, {} stale (first: {:?})",
            self.missing.len(),
            self.stale.len(),
            self.missing.first().or_else(|| self.stale.first())
        );
    }
}

/// Compares the NVM image against architectural memory word by word.
///
/// # Examples
///
/// ```
/// use ppa_sim::{check_consistency, Machine, SystemConfig};
/// use ppa_workloads::registry;
///
/// let app = registry::by_name("gcc").unwrap();
/// let trace = app.generate(2_000, 1);
/// // Run under PPA and inspect the machine state directly.
/// let mut mem = ppa_mem::MemorySystem::new(SystemConfig::ppa().mem, 1);
/// let mut core = ppa_core::Core::new(SystemConfig::ppa().core, 0);
/// core.run(&trace, &mut mem);
/// let report = check_consistency(&mem);
/// assert!(report.is_consistent());
/// assert!(report.checked > 0);
/// ```
pub fn check_consistency(mem: &MemorySystem) -> ConsistencyReport {
    let mut report = ConsistencyReport::default();
    for (addr, expected) in mem.arch_mem().iter() {
        report.checked += 1;
        match mem.nvm_image().read(addr) {
            Some(found) if found == expected => {}
            Some(found) => report.stale.push(BadWord {
                addr,
                expected,
                found: Some(found),
            }),
            None => report.missing.push(BadWord {
                addr,
                expected,
                found: None,
            }),
        }
    }
    report.missing.sort_unstable_by_key(|w| w.addr);
    report.stale.sort_unstable_by_key(|w| w.addr);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::SystemConfig;
    use ppa_core::{Core, PersistenceMode};
    use ppa_isa::{ArchReg, TraceBuilder};

    fn run_mode(mode: PersistenceMode, drain: bool) -> MemorySystem {
        let mut b = TraceBuilder::new("t");
        for i in 0..32u64 {
            let r = ArchReg::int((i % 4) as u8);
            b.alu(r, &[]);
            b.store(r, 0x1000 + (i % 4) * 64, i + 1);
        }
        let trace = b.build();
        let cfg = match mode {
            PersistenceMode::Ppa => SystemConfig::ppa(),
            _ => SystemConfig::baseline(),
        };
        let mut mem = MemorySystem::new(cfg.mem, 1);
        let mut core = Core::new(cfg.core, 0);
        if drain {
            core.run(&trace, &mut mem);
        } else {
            for now in 0..40 {
                core.step(&trace, &mut mem, now);
                mem.tick(now);
            }
        }
        mem
    }

    #[test]
    fn ppa_run_is_reported_consistent() {
        let mem = run_mode(PersistenceMode::Ppa, true);
        let report = check_consistency(&mem);
        assert!(report.is_consistent());
        assert_eq!(report.bad_words(), 0);
        report.assert_consistent();
    }

    #[test]
    fn baseline_run_reports_missing_words() {
        let mem = run_mode(PersistenceMode::Baseline, true);
        let report = check_consistency(&mem);
        assert!(!report.is_consistent());
        assert!(!report.missing.is_empty(), "dirty lines never persisted");
        assert!(report.checked >= report.bad_words());
    }

    #[test]
    fn stale_words_are_distinguished_from_missing() {
        // Persist a line, then overwrite it architecturally without
        // re-persisting: the word must be reported stale with both values.
        let mut mem = MemorySystem::new(SystemConfig::ppa().mem, 1);
        mem.commit_store_value(0x40, 1);
        mem.persist_enqueue(0, 0x40, 0);
        let mut t = 0;
        while mem.persist_outstanding(0) > 0 {
            mem.tick(t);
            t += 1;
        }
        mem.commit_store_value(0x40, 2);
        mem.commit_store_value(0x80, 3); // never persisted at all
        let report = check_consistency(&mem);
        assert_eq!(report.stale.len(), 1);
        assert_eq!(report.stale[0].expected, 2);
        assert_eq!(report.stale[0].found, Some(1));
        assert_eq!(report.missing.len(), 1);
        assert_eq!(report.missing[0].addr, 0x80);
    }

    #[test]
    #[should_panic(expected = "NVM inconsistent")]
    fn assert_consistent_panics_with_detail() {
        let mem = run_mode(PersistenceMode::Baseline, true);
        check_consistency(&mem).assert_consistent();
    }
}
