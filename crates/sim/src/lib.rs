//! System-level simulation for the PPA reproduction.
//!
//! This crate assembles cores ([`ppa_core::Core`]) and the memory system
//! ([`ppa_mem::MemorySystem`]) into runnable machines, provides the
//! configuration presets of the paper's evaluation (Table 2 and the
//! Figure 9/10/14 variants), injects power failures and drives the
//! checkpoint/recovery protocol, and verifies crash consistency against
//! the golden architectural memory.
//!
//! # Examples
//!
//! ```
//! use ppa_sim::{Machine, SystemConfig};
//! use ppa_workloads::registry;
//!
//! let app = registry::by_name("sjeng").unwrap();
//! let trace = app.generate(5_000, 1);
//! let base = Machine::new(SystemConfig::baseline()).run(&trace);
//! let ppa = Machine::new(SystemConfig::ppa()).run(&trace);
//! assert!(ppa.cycles >= base.cycles, "persistence is never free");
//! assert!(ppa.consistent, "PPA must leave NVM crash-consistent");
//! ```

mod consistency;
mod failure;
mod machine;
mod presets;
mod report;

pub use consistency::{check_consistency, BadWord, ConsistencyReport};
pub use failure::{
    inject_failure, inject_failure_mid_flush, inject_failure_multicore, inject_failure_with_flush,
    FailureOutcome, FlushMode,
};
pub use machine::Machine;
pub use presets::SystemConfig;
pub use report::SimReport;
