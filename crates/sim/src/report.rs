use ppa_core::CoreStats;
use ppa_mem::MemStats;
use ppa_stats::Summary;
use std::fmt;

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Wall-clock cycles until the last core finished (and drained).
    pub cycles: u64,
    /// Micro-ops committed across all cores.
    pub committed: u64,
    /// Per-core execution statistics.
    pub core_stats: Vec<CoreStats>,
    /// Memory-system statistics.
    pub mem_stats: MemStats,
    /// Whether the NVM image matched architectural memory at completion.
    /// Always `true` for a drained WSP scheme; typically `false` for the
    /// baseline (its dirty lines die in the caches).
    pub consistent: bool,
}

impl SimReport {
    /// Instructions per cycle across all cores.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Average instructions per PPA region across cores (Figure 13).
    pub fn region_insts(&self) -> Summary {
        let mut s = Summary::new();
        for c in &self.core_stats {
            s.merge(&c.region_insts);
        }
        s
    }

    /// Average stores per PPA region across cores (Figure 13).
    pub fn region_stores(&self) -> Summary {
        let mut s = Summary::new();
        for c in &self.core_stats {
            s.merge(&c.region_stores);
        }
        s
    }

    /// Fraction of cycles stalled at region ends, averaged over cores
    /// (Figure 11).
    pub fn region_end_stall_fraction(&self) -> f64 {
        if self.core_stats.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .core_stats
            .iter()
            .map(CoreStats::region_end_stall_fraction)
            .sum();
        sum / self.core_stats.len() as f64
    }

    /// Fraction of cycles the rename stage was out of registers, averaged
    /// over cores (Figure 12).
    pub fn rename_noreg_stall_fraction(&self) -> f64 {
        if self.core_stats.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .core_stats
            .iter()
            .map(CoreStats::rename_noreg_stall_fraction)
            .sum();
        sum / self.core_stats.len() as f64
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} cycles, {} uops (IPC {:.2}), {} core(s), consistent: {}",
            self.cycles,
            self.committed,
            self.ipc(),
            self.core_stats.len(),
            self.consistent
        )?;
        let regions: u64 = self.core_stats.iter().map(|c| c.regions).sum();
        if regions > 0 {
            writeln!(
                f,
                "regions: {} (avg {:.0} insts / {:.1} stores), region-end stall {:.2}%",
                regions,
                self.region_insts().mean(),
                self.region_stores().mean(),
                self.region_end_stall_fraction() * 100.0
            )?;
        }
        write!(
            f,
            "mem: L1D miss {:.1}%, L2 miss {:.1}%, NVM {} reads / {} writes ({} combined)",
            self.mem_stats.l1d.miss_rate() * 100.0,
            self.mem_stats.l2.miss_rate() * 100.0,
            self.mem_stats.nvm.reads,
            self.mem_stats.nvm.writes,
            self.mem_stats.nvm.combined_writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_core::{CoreConfig, PersistenceMode};

    fn empty_report() -> SimReport {
        SimReport {
            cycles: 0,
            committed: 0,
            core_stats: vec![],
            mem_stats: MemStats::default(),
            consistent: true,
        }
    }

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(empty_report().ipc(), 0.0);
    }

    #[test]
    fn fractions_average_over_cores() {
        let cfg = CoreConfig::paper_default(PersistenceMode::Ppa);
        let mut a = CoreStats::new(&cfg);
        a.cycles = 100;
        a.region_end_stall_cycles = 10;
        let mut b = CoreStats::new(&cfg);
        b.cycles = 100;
        b.region_end_stall_cycles = 30;
        let r = SimReport {
            cycles: 100,
            committed: 0,
            core_stats: vec![a, b],
            mem_stats: MemStats::default(),
            consistent: true,
        };
        assert!((r.region_end_stall_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(empty_report().region_end_stall_fraction(), 0.0);
    }

    #[test]
    fn display_is_single_screen_and_nonempty() {
        let cfg = CoreConfig::paper_default(PersistenceMode::Ppa);
        let mut c = CoreStats::new(&cfg);
        c.cycles = 100;
        c.record_region(300, 18, ppa_core::RegionEndCause::PrfExhausted);
        let r = SimReport {
            cycles: 100,
            committed: 250,
            core_stats: vec![c],
            mem_stats: MemStats::default(),
            consistent: true,
        };
        let s = r.to_string();
        assert!(s.contains("IPC 2.50"));
        assert!(s.contains("regions: 1"));
        assert!(s.lines().count() <= 4);
    }

    #[test]
    fn region_summaries_merge_cores() {
        let cfg = CoreConfig::paper_default(PersistenceMode::Ppa);
        let mut a = CoreStats::new(&cfg);
        a.record_region(100, 5, ppa_core::RegionEndCause::PrfExhausted);
        let mut b = CoreStats::new(&cfg);
        b.record_region(300, 15, ppa_core::RegionEndCause::PrfExhausted);
        let r = SimReport {
            cycles: 1,
            committed: 0,
            core_stats: vec![a, b],
            mem_stats: MemStats::default(),
            consistent: true,
        };
        assert_eq!(r.region_insts().count(), 2);
        assert!((r.region_insts().mean() - 200.0).abs() < 1e-12);
        assert!((r.region_stores().mean() - 10.0).abs() < 1e-12);
    }
}
