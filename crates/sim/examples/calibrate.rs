//! Auto-calibration: adjusts each application model's locality knobs so
//! the measured scheme ratios land on the paper's reported shapes, then
//! prints the final knob values for the registry tables.

use ppa_sim::{Machine, SystemConfig};
use ppa_workloads::{registry, AppDescriptor};

struct Target {
    psp: f64,
    bd: f64,
    ppa: f64,
}

fn targets(name: &str) -> Target {
    let (psp, bd, ppa) = match name {
        "libquantum" => (2.40, 1.20, 1.01),
        "lbm" => (1.50, 1.44, 1.01),
        "pc" => (1.35, 1.58, 1.02),
        "mcf" => (1.80, 1.15, 1.01),
        "xsbench" => (1.90, 1.30, 1.01),
        "sps" => (1.50, 1.20, 1.02),
        "rb" => (1.04, 1.05, 1.12),
        "water-ns" => (1.30, 1.06, 1.035),
        "water-sp" => (1.30, 1.06, 1.06),
        "r20w80" => (1.30, 1.10, 1.04),
        "radix" => (1.45, 1.18, 1.02),
        _ => (1.35, 1.10, 1.015),
    };
    Target { psp, bd, ppa }
}

fn measure(app: &AppDescriptor, len: usize) -> (f64, f64, f64) {
    // Applications run with their paper thread count (8 for the parallel
    // suites), sharing the WPQ and write bandwidth as in the evaluation.
    let len = if app.threads > 1 { len / 3 } else { len };
    let base = Machine::new(SystemConfig::baseline())
        .run_app_parallel(app, len, 1)
        .cycles as f64;
    let ppa = Machine::new(SystemConfig::ppa())
        .run_app_parallel(app, len, 1)
        .cycles as f64;
    let psp = Machine::new(SystemConfig::eadr_bbb())
        .run_app_parallel(app, len, 1)
        .cycles as f64;
    let dram = Machine::new(SystemConfig::dram_only())
        .run_app_parallel(app, len, 1)
        .cycles as f64;
    (psp / base, base / dram, ppa / base)
}

fn main() {
    let len = 36_000;
    for mut app in registry::all() {
        let t = targets(app.name);
        for _round in 0..10 {
            let (psp_m, bd_m, ppa_m) = measure(&app, len);
            // Cold fraction drives the PSP gap (damped multiplicative
            // update).
            let f = ((t.psp - 1.0) / (psp_m - 1.0).max(0.01)).clamp(0.3, 3.0);
            app.load_cold_frac = (app.load_cold_frac * f.powf(0.7)).clamp(0.001, 0.5);
            // Non-residency drives the memory-mode-vs-DRAM gap.
            let g = ((t.bd - 1.0) / (bd_m - 1.0).max(0.01)).clamp(0.3, 3.0);
            let nonres = ((1.0 - app.dram_resident_frac) * g.powf(0.7)).clamp(0.0005, 0.6);
            app.dram_resident_frac = 1.0 - nonres;
            // Store-run length drives PPA's write-bandwidth pressure; only
            // ever lengthen runs (pressure sits on a saturation cliff, so
            // pushing toward it oscillates).
            if ppa_m > t.ppa + 0.005 {
                let h = ((ppa_m - 1.0) / (t.ppa - 1.0)).clamp(1.0, 2.0);
                app.store_run_len = (app.store_run_len * h.powf(0.7)).clamp(3.0, 64.0);
                // Once runs max out, shed store density itself.
                if app.store_run_len >= 63.0 {
                    app.store_frac = (app.store_frac / h.powf(0.5)).max(0.012);
                }
            }
        }
        let (psp_m, bd_m, ppa_m) = measure(&app, len);
        println!(
            "{}|{:.4}|{:.4}|{:.1}|{:.4}|psp {:.2}->{:.2}|bd {:.2}->{:.2}|ppa {:.3}->{:.3}",
            app.name,
            app.load_cold_frac,
            app.dram_resident_frac,
            app.store_run_len,
            app.store_frac,
            t.psp,
            psp_m,
            t.bd,
            bd_m,
            t.ppa,
            ppa_m
        );
    }
}
