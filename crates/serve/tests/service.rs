//! End-to-end service tests: an in-process daemon round trip with
//! cache hits, two concurrent clients, and the crash-injection test —
//! SIGKILL the daemon process mid-queue, restart it on the same port
//! and checkpoint, and require the client to receive byte-identical,
//! submission-ordered results with the pre-crash prefix served from
//! the restored cache.

use ppa_serve::{Daemon, DaemonOptions, ServeClient};

use ppa_grid::{run_worker, Executor, UnitRunner, UnitSpec, WorkerOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The deterministic unit transform the test workers apply: the tag,
/// a NUL, the payload, and an FNV-64 of all three. Any divergence
/// between a cached and a recomputed result is visible in the bytes.
fn transform(tag: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(tag.len() + 1 + payload.len() + 8);
    out.extend_from_slice(tag.as_bytes());
    out.push(0);
    out.extend_from_slice(payload);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &out {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    out.extend_from_slice(&h.to_le_bytes());
    out
}

/// Test executor: deterministic output, configurable per-unit latency
/// (so a kill lands mid-queue), and an error vocabulary.
struct SlowEcho(Duration);

impl Executor for SlowEcho {
    fn execute(&self, tag: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        if !self.0.is_zero() {
            thread::sleep(self.0);
        }
        if tag.starts_with("t.fail:") {
            return Err(format!("unit '{tag}' always fails"));
        }
        Ok(transform(tag, payload))
    }
}

fn units(n: usize) -> Vec<UnitSpec> {
    (0..n)
        .map(|i| UnitSpec {
            tag: format!("t.unit:{i}"),
            payload: vec![i as u8; 16],
        })
        .collect()
}

/// Keeps one worker attached to `addr` until `done`, reconnecting
/// across daemon restarts.
fn worker_loop(addr: String, delay: Duration, done: Arc<AtomicBool>) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        while !done.load(Ordering::SeqCst) {
            let _ = run_worker(
                addr.as_str(),
                WorkerOptions {
                    jobs: 2,
                    ..WorkerOptions::default()
                },
                Arc::new(SlowEcho(delay)),
            );
            thread::sleep(Duration::from_millis(100));
        }
    })
}

#[test]
fn daemon_serves_results_and_second_submission_hits_the_cache() {
    let daemon = Arc::new(Daemon::start(DaemonOptions::default()).expect("daemon starts"));
    let addr = daemon.local_addr().to_string();
    let run_thread = {
        let d = Arc::clone(&daemon);
        thread::spawn(move || d.run())
    };
    let done = Arc::new(AtomicBool::new(false));
    let worker = worker_loop(addr.clone(), Duration::ZERO, Arc::clone(&done));

    let client = ServeClient::connect(&addr).expect("client connects");
    let batch = units(6);
    let first = client.run_units(batch.clone());
    assert_eq!(first.len(), batch.len());
    for (u, res) in batch.iter().zip(&first) {
        let outcome = res.as_ref().expect("unit succeeds");
        assert_eq!(outcome.payload, transform(&u.tag, &u.payload), "{}", u.tag);
    }
    let s1 = client.stats().expect("stats");
    assert!(s1.misses >= batch.len() as u64, "all first-pass units miss");
    assert_eq!(s1.entries, batch.len() as u64);

    // Second submission of the same units: byte-identical, all hits.
    let second = client.run_units(batch.clone());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a.as_ref().unwrap().payload,
            b.as_ref().unwrap().payload,
            "cache hit must be byte-identical to the fresh result"
        );
    }
    let s2 = client.stats().expect("stats");
    assert!(
        s2.hits >= s1.hits + batch.len() as u64,
        "second pass is served from the cache (hits {} -> {})",
        s1.hits,
        s2.hits
    );

    // A failing unit surfaces as an error naming the unit, and does
    // not poison the cache.
    let mixed = vec![
        UnitSpec {
            tag: "t.unit:0".into(),
            payload: vec![0u8; 16],
        },
        UnitSpec {
            tag: "t.fail:0".into(),
            payload: Vec::new(),
        },
    ];
    let res = client.run_units(mixed);
    assert!(res[0].is_ok());
    let err = res[1].as_ref().expect_err("failing unit reports an error");
    assert!(err.to_string().contains("t.fail:0"), "{err}");

    client.stop().expect("stop");
    run_thread.join().unwrap();
    done.store(true, Ordering::SeqCst);
    worker.join().unwrap();
}

#[test]
fn concurrent_clients_share_the_daemon_and_its_cache() {
    let daemon = Arc::new(Daemon::start(DaemonOptions::default()).expect("daemon starts"));
    let addr = daemon.local_addr().to_string();
    let run_thread = {
        let d = Arc::clone(&daemon);
        thread::spawn(move || d.run())
    };
    let done = Arc::new(AtomicBool::new(false));
    let worker = worker_loop(addr.clone(), Duration::from_millis(1), Arc::clone(&done));

    // Two clients submit the same batch concurrently; both must see
    // the same bytes regardless of which one's units computed first.
    let batch = units(12);
    let mut handles = Vec::new();
    for _ in 0..2 {
        let addr = addr.clone();
        let batch = batch.clone();
        handles.push(thread::spawn(move || {
            let client = ServeClient::connect(&addr).expect("client connects");
            client.run_units(batch)
        }));
    }
    let outputs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for results in &outputs {
        for (u, res) in batch.iter().zip(results) {
            assert_eq!(
                res.as_ref().expect("unit succeeds").payload,
                transform(&u.tag, &u.payload)
            );
        }
    }

    let client = ServeClient::connect(&addr).expect("client connects");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.entries,
        batch.len() as u64,
        "shared cache, one entry per unit"
    );
    client.stop().expect("stop");
    run_thread.join().unwrap();
    done.store(true, Ordering::SeqCst);
    worker.join().unwrap();
}

/// Reserves a port by binding to 0 and releasing it: the daemon must
/// come back on the *same* address for the client's reconnect loop.
fn reserve_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("bind")
        .local_addr()
        .unwrap()
        .port()
}

fn spawn_daemon(addr: &str, checkpoint: &std::path::Path) -> std::process::Child {
    std::process::Command::new(env!("CARGO_BIN_EXE_ppa-serve"))
        .args([
            "daemon",
            "--listen",
            addr,
            "--checkpoint",
            checkpoint.to_str().unwrap(),
            "--checkpoint-interval",
            "1",
            "-q",
        ])
        .spawn()
        .expect("spawn ppa-serve daemon")
}

#[test]
fn killing_the_daemon_mid_queue_preserves_order_and_bytes() {
    let addr = format!("127.0.0.1:{}", reserve_port());
    let checkpoint =
        std::env::temp_dir().join(format!("ppa_serve_crash_{}.ppsc", std::process::id()));
    let _ = std::fs::remove_file(&checkpoint);

    let mut child = spawn_daemon(&addr, &checkpoint);
    let done = Arc::new(AtomicBool::new(false));
    // 50ms per unit over 2 job slots: 120 units take ~3s, so both the
    // 1s checkpoint cadence and the kill land mid-queue.
    let worker = worker_loop(addr.clone(), Duration::from_millis(50), Arc::clone(&done));

    let batch = units(120);
    let expected: Vec<Vec<u8>> = batch
        .iter()
        .map(|u| transform(&u.tag, &u.payload))
        .collect();
    let client_thread = {
        let addr = addr.clone();
        let batch = batch.clone();
        thread::spawn(move || {
            let mut client = ServeClient::with_addr(&addr);
            client.set_reconnect_window(Duration::from_secs(60));
            client.run_units(batch)
        })
    };

    // Wait until the daemon has computed a decent prefix *and* a
    // cadence tick has made part of it durable, then kill it cold.
    let probe = ServeClient::with_addr(&addr);
    let t0 = Instant::now();
    loop {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "daemon never made progress"
        );
        if let Ok(s) = probe.stats() {
            if s.entries >= 20 {
                break;
            }
        }
        thread::sleep(Duration::from_millis(50));
    }
    thread::sleep(Duration::from_millis(1200)); // one full checkpoint cadence
    assert!(
        !client_thread.is_finished(),
        "the batch completed before the kill; the crash did not land mid-queue"
    );
    child.kill().expect("SIGKILL the daemon");
    let _ = child.wait();

    // Restart on the same address and checkpoint. The restored cache
    // must complete every pre-crash cell instantly; the remainder is
    // recomputed by the (reconnecting) worker.
    let mut child2 = spawn_daemon(&addr, &checkpoint);

    let results = client_thread.join().unwrap();
    assert_eq!(results.len(), batch.len());
    for (i, (res, exp)) in results.iter().zip(&expected).enumerate() {
        let outcome = res.as_ref().unwrap_or_else(|e| {
            panic!("unit {i} failed across the restart: {e}");
        });
        assert_eq!(
            &outcome.payload, exp,
            "unit {i} must be byte-identical across the restart"
        );
    }

    let stats = probe.stats().expect("restarted daemon answers");
    assert!(
        stats.hits > 0,
        "the restored cache must have served the pre-crash prefix"
    );
    assert_eq!(stats.entries, batch.len() as u64);

    probe.stop().expect("stop the restarted daemon");
    let _ = child2.wait();
    done.store(true, Ordering::SeqCst);
    worker.join().unwrap();
    let _ = std::fs::remove_file(&checkpoint);
}
