//! The content-addressed result cache.
//!
//! Every work unit on the grid is a pure function of its `(tag,
//! payload)` pair: the tag embeds the unit kind and workload identity
//! (`repro.app:{exp}/{app}`, `oracle.cell:...`, `litmus.test:...`) and
//! the payload embeds the configuration, seed, and trace length. The
//! cache keys on the 64-bit FNV-1a hash of that pair, but stores the
//! full request alongside each result and verifies it on lookup, so a
//! hash collision degrades to a miss rather than serving a wrong
//! result. A cache hit is therefore always byte-identical to a fresh
//! simulation of the same unit — the property the daemon's stdout
//! guarantees rest on.

use ppa_grid::UnitSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// 64-bit FNV-1a over `bytes`, continued from `state`. Seed with
/// [`FNV64_OFFSET`].
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

pub fn fnv64(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV64_PRIME);
    }
    state
}

/// The content address of a work unit: FNV-1a over the tag, a zero
/// separator (tags never contain NUL), then the payload. Deterministic
/// across processes, job counts, and worker counts — it reads only the
/// unit's own bytes.
pub fn unit_key(tag: &str, payload: &[u8]) -> u64 {
    let state = fnv64(FNV64_OFFSET, tag.as_bytes());
    let state = fnv64(state, &[0]);
    fnv64(state, payload)
}

/// One cached result, with the full request kept for collision checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    pub tag: String,
    pub request: Vec<u8>,
    pub result: Vec<u8>,
}

/// The daemon-wide result cache. Hit/miss counters mirror to the
/// `serve.cache.*` metrics family.
#[derive(Debug, Default)]
pub struct ResultCache {
    map: Mutex<HashMap<u64, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Looks up a unit's cached result; counts a hit or a miss.
    pub fn lookup(&self, spec: &UnitSpec) -> Option<Vec<u8>> {
        let key = unit_key(&spec.tag, &spec.payload);
        let map = self.map.lock().unwrap();
        match map.get(&key) {
            Some(e) if e.tag == spec.tag && e.request == spec.payload => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                ppa_obs::registry::counter("serve.cache.hits").inc();
                Some(e.result.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                ppa_obs::registry::counter("serve.cache.misses").inc();
                None
            }
        }
    }

    /// Records a computed result. On a key collision with a *different*
    /// request the existing entry wins — colliding units simply stay
    /// uncached.
    pub fn insert(&self, spec: &UnitSpec, result: &[u8]) {
        let key = unit_key(&spec.tag, &spec.payload);
        let mut map = self.map.lock().unwrap();
        map.entry(key).or_insert_with(|| CacheEntry {
            tag: spec.tag.clone(),
            request: spec.payload.clone(),
            result: result.to_vec(),
        });
        ppa_obs::registry::gauge("serve.cache.entries").set(map.len() as f64);
    }

    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) since start.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// All entries in key order — the checkpoint's cache section.
    pub fn export(&self) -> Vec<CacheEntry> {
        let map = self.map.lock().unwrap();
        let mut keys: Vec<&u64> = map.keys().collect();
        keys.sort();
        keys.iter().map(|k| map[k].clone()).collect()
    }

    /// Restores checkpointed entries (existing entries win).
    pub fn restore(&self, entries: Vec<CacheEntry>) {
        let mut map = self.map.lock().unwrap();
        for e in entries {
            let key = unit_key(&e.tag, &e.request);
            map.entry(key).or_insert(e);
        }
        ppa_obs::registry::gauge("serve.cache.entries").set(map.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(tag: &str, payload: &[u8]) -> UnitSpec {
        UnitSpec {
            tag: tag.into(),
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn lookup_after_insert_returns_the_result() {
        let c = ResultCache::new();
        let s = spec("repro.app:fig1/gcc", &[1, 2, 3]);
        assert_eq!(c.lookup(&s), None);
        c.insert(&s, &[9, 9]);
        assert_eq!(c.lookup(&s), Some(vec![9, 9]));
        assert_eq!(c.counters(), (1, 1));
    }

    #[test]
    fn tag_and_payload_both_address_content() {
        let c = ResultCache::new();
        c.insert(&spec("a", &[1]), &[10]);
        assert_eq!(c.lookup(&spec("a", &[2])), None);
        assert_eq!(c.lookup(&spec("b", &[1])), None);
        assert_eq!(c.lookup(&spec("a", &[1])), Some(vec![10]));
    }

    #[test]
    fn tag_payload_boundary_is_unambiguous() {
        // ("ab", "c") and ("a", "bc") must hash differently: the NUL
        // separator sits where no tag byte can.
        assert_ne!(unit_key("ab", b"c"), unit_key("a", b"bc"));
    }

    #[test]
    fn export_restore_round_trips() {
        let c = ResultCache::new();
        c.insert(&spec("x", &[1]), &[2]);
        c.insert(&spec("y", &[3]), &[4]);
        let d = ResultCache::new();
        d.restore(c.export());
        assert_eq!(d.lookup(&spec("x", &[1])), Some(vec![2]));
        assert_eq!(d.lookup(&spec("y", &[3])), Some(vec![4]));
    }
}
