//! `ppa-serve` — the persistent simulation service CLI.
//!
//! ```text
//! # start a daemon (workers and clients share the one port)
//! ppa-serve daemon --listen 127.0.0.1:7171 --checkpoint /var/tmp/ppa.ppsc
//! ppa-grid work --connect 127.0.0.1:7171 --jobs 8
//!
//! # any number of concurrent clients
//! repro --grid serve:127.0.0.1:7171 fig1
//! ppa-verify oracle --grid serve:127.0.0.1:7171
//! ppa-litmus run --grid serve:127.0.0.1:7171
//!
//! # observe / stop
//! ppa-serve stats --connect 127.0.0.1:7171
//! ppa-serve stop  --connect 127.0.0.1:7171
//! ```
//!
//! The daemon prints nothing on stdout; telemetry goes to stderr and
//! `--metrics-json`.

use ppa_serve::{Daemon, DaemonOptions, ServeClient};
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: ppa-serve <daemon|stats|stop> [options]");
    eprintln!();
    eprintln!("  daemon --listen HOST:PORT [--checkpoint FILE]");
    eprintln!("         [--checkpoint-interval SECS] [--metrics-json FILE]");
    eprintln!("         [--port-file FILE]");
    eprintln!("      run the persistent coordinator: workers (ppa-grid work)");
    eprintln!("      and clients (repro/ppa-verify/ppa-litmus --grid serve:...)");
    eprintln!("      dial the same port; results are served from the");
    eprintln!("      content-addressed cache when available. With --checkpoint");
    eprintln!("      the queue and cache survive restarts. --port-file writes");
    eprintln!("      the resolved HOST:PORT (useful with port 0).");
    eprintln!();
    eprintln!("  stats --connect HOST:PORT");
    eprintln!("      print the daemon's cache/queue/client counters");
    eprintln!();
    eprintln!("  stop --connect HOST:PORT");
    eprintln!("      checkpoint and shut the daemon down");
    eprintln!();
    eprintln!("  verbosity: -q (errors only), -v (info), -vv (debug);");
    eprintln!("      PPA_LOG=LEVEL is equivalent (the flag wins).");
    std::process::exit(2)
}

fn verbosity_flag(a: &str) -> bool {
    let level = match a {
        "-q" | "--quiet" => ppa_obs::Level::Error,
        "-v" | "--verbose" => ppa_obs::Level::Info,
        "-vv" => ppa_obs::Level::Debug,
        _ => return false,
    };
    ppa_obs::log::set_level(level);
    true
}

fn cmd_daemon(args: &[String]) -> ExitCode {
    let mut opts = DaemonOptions::default();
    let mut listen: Option<String> = None;
    let mut port_file: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => listen = it.next().cloned(),
            "--checkpoint" => {
                opts.checkpoint = Some(std::path::PathBuf::from(
                    it.next().cloned().unwrap_or_else(|| usage()),
                ))
            }
            "--checkpoint-interval" => {
                let secs: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.checkpoint_interval = Duration::from_secs(secs.max(1));
            }
            "--metrics-json" => {
                opts.metrics_json = Some(std::path::PathBuf::from(
                    it.next().cloned().unwrap_or_else(|| usage()),
                ))
            }
            "--port-file" => {
                port_file = Some(std::path::PathBuf::from(
                    it.next().cloned().unwrap_or_else(|| usage()),
                ))
            }
            a if verbosity_flag(a) => {}
            _ => usage(),
        }
    }
    opts.addr = listen.unwrap_or_else(|| usage());
    let daemon = match Daemon::start(opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ppa-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = daemon.local_addr();
    ppa_obs::info!("serve", "daemon listening on {addr}");
    if let Some(path) = &port_file {
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(path)?;
            writeln!(f, "{addr}")
        };
        if let Err(e) = write() {
            eprintln!("ppa-serve: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    daemon.run();
    ppa_obs::info!("serve", "daemon stopped");
    ExitCode::SUCCESS
}

fn parse_connect(args: &[String]) -> String {
    let mut connect: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--connect" => connect = it.next().cloned(),
            a if verbosity_flag(a) => {}
            _ => usage(),
        }
    }
    connect.unwrap_or_else(|| usage())
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let addr = parse_connect(args);
    match ServeClient::with_addr(&addr).stats() {
        Ok(s) => {
            println!(
                "serve {addr}: cache hits={} misses={} entries={} queue={} inflight={} clients={} submissions={} workers={}",
                s.hits, s.misses, s.entries, s.queue_depth, s.inflight, s.clients, s.submissions, s.workers
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ppa-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_stop(args: &[String]) -> ExitCode {
    let addr = parse_connect(args);
    match ServeClient::with_addr(&addr).stop() {
        Ok(s) => {
            ppa_obs::info!(
                "serve",
                "stopped {addr} (hits={} misses={} entries={})",
                s.hits,
                s.misses,
                s.entries
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ppa-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("daemon") => cmd_daemon(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("stop") => cmd_stop(&args[1..]),
        _ => usage(),
    }
}
