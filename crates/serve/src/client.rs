//! The `ppa-serve` client: what `repro --grid serve:HOST:PORT`,
//! `ppa-verify oracle --grid serve:...`, and `ppa-litmus run --grid
//! serve:...` actually talk through.
//!
//! [`ServeClient`] implements [`UnitRunner`], so front-ends use it
//! exactly like a local coordinator: submit a batch, receive outcomes
//! in submission order. Under the hood each batch becomes a v3
//! `Submit` and the daemon streams `Result` frames back in index
//! order. The client is resilient to the daemon restarting mid-batch:
//! on a broken connection it reconnects and sends `Subscribe` from the
//! first index it has not received; if the restarted daemon no longer
//! knows the submission it answers `RESULT_NO_SUCH_SUBMISSION` and the
//! client re-`Submit`s only the remaining units under a fresh id — the
//! daemon's cache makes already-computed cells complete instantly, so
//! the stitched result stream stays byte-identical and
//! submission-ordered.

use ppa_grid::coord::{UnitRunner, DEFAULT_PRIORITY};
use ppa_grid::proto::{self, Msg, QUERY_STATS, QUERY_STOP, RESULT_NO_SUCH_SUBMISSION};
use ppa_grid::{GridError, UnitOutcome, UnitSpec};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A daemon's service-level counters, as answered to `Query(STATS)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: u64,
    pub queue_depth: u64,
    pub inflight: u64,
    pub clients: u64,
    pub submissions: u64,
    pub workers: u64,
}

/// A connected client of a `ppa-serve` daemon.
pub struct ServeClient {
    addr: String,
    client_id: u64,
    priority: u8,
    next_submission: AtomicU64,
    /// How long to keep retrying an unreachable daemon before giving
    /// up on the remaining units.
    reconnect_window: Duration,
}

fn dial(addr: &str) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

impl ServeClient {
    /// Connects to a daemon at `addr` (`HOST:PORT`), verifying it
    /// answers a stats query.
    pub fn connect(addr: &str) -> Result<ServeClient, String> {
        let client = ServeClient::with_addr(addr);
        client
            .stats()
            .map_err(|e| format!("no ppa-serve daemon at {addr}: {e}"))?;
        Ok(client)
    }

    /// Builds a client without probing the daemon (it may not be up
    /// yet); the first submission will retry within the reconnect
    /// window.
    pub fn with_addr(addr: &str) -> ServeClient {
        // Client ids only need to be unique among concurrently
        // connected clients; wall-clock + pid entropy is plenty and
        // keeps the wire deterministic per session.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        let client_id = (u64::from(std::process::id())) << 32 | (nanos & 0xffff_ffff);
        ServeClient {
            addr: addr.to_string(),
            client_id,
            priority: DEFAULT_PRIORITY,
            next_submission: AtomicU64::new(1),
            reconnect_window: Duration::from_secs(600),
        }
    }

    /// Overrides the submission priority (higher is sooner).
    pub fn set_priority(&mut self, priority: u8) {
        self.priority = priority;
    }

    /// Shrinks/extends how long a broken daemon is retried (tests).
    pub fn set_reconnect_window(&mut self, window: Duration) {
        self.reconnect_window = window;
    }

    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Queries the daemon's service counters.
    pub fn stats(&self) -> Result<ServeStats, String> {
        let mut stream = dial(&self.addr).map_err(|e| e.to_string())?;
        proto::write_msg(&mut stream, &Msg::Query { what: QUERY_STATS })
            .map_err(|e| e.to_string())?;
        match proto::read_msg(&mut stream) {
            Ok(Msg::CacheStats {
                hits,
                misses,
                entries,
                queue_depth,
                inflight,
                clients,
                submissions,
                workers,
            }) => Ok(ServeStats {
                hits,
                misses,
                entries,
                queue_depth,
                inflight,
                clients,
                submissions,
                workers,
            }),
            Ok(other) => Err(format!("unexpected reply to stats query: {other:?}")),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Asks the daemon to checkpoint and exit; returns its final
    /// counters.
    pub fn stop(&self) -> Result<ServeStats, String> {
        let mut stream = dial(&self.addr).map_err(|e| e.to_string())?;
        proto::write_msg(&mut stream, &Msg::Query { what: QUERY_STOP })
            .map_err(|e| e.to_string())?;
        match proto::read_msg(&mut stream) {
            Ok(Msg::CacheStats {
                hits,
                misses,
                entries,
                queue_depth,
                inflight,
                clients,
                submissions,
                workers,
            }) => Ok(ServeStats {
                hits,
                misses,
                entries,
                queue_depth,
                inflight,
                clients,
                submissions,
                workers,
            }),
            Ok(other) => Err(format!("unexpected reply to stop query: {other:?}")),
            Err(e) => Err(e.to_string()),
        }
    }
}

impl UnitRunner for ServeClient {
    fn run_units(&self, units: Vec<UnitSpec>) -> Vec<Result<UnitOutcome, GridError>> {
        let n = units.len();
        if n == 0 {
            return Vec::new();
        }
        let mut results: Vec<Result<UnitOutcome, GridError>> = Vec::with_capacity(n);
        // `base` is the results index the current submission's index 0
        // maps to: after a NO_SUCH_SUBMISSION recovery only the
        // remaining units are re-submitted, so daemon indices restart
        // at 0 while ours continue from `base`.
        let mut base = 0usize;
        let mut submission = self.next_submission.fetch_add(1, Ordering::Relaxed);
        let mut need_submit = true;
        let deadline = Instant::now() + self.reconnect_window;
        let mut backoff = Duration::from_millis(50);

        'outer: while results.len() < n {
            if Instant::now() > deadline {
                // The daemon never came back: fail the remaining slots.
                while results.len() < n {
                    results.push(Err(GridError::Aborted));
                }
                break;
            }
            let mut stream = match dial(&self.addr) {
                Ok(s) => s,
                Err(_) => {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(500));
                    continue;
                }
            };
            backoff = Duration::from_millis(50);
            let request = if need_submit {
                Msg::Submit {
                    client: self.client_id,
                    submission,
                    priority: self.priority,
                    units: units[base..]
                        .iter()
                        .map(|u| (u.tag.clone(), u.payload.clone()))
                        .collect(),
                }
            } else {
                Msg::Subscribe {
                    client: self.client_id,
                    submission,
                    from_index: (results.len() - base) as u32,
                }
            };
            if proto::write_msg(&mut stream, &request).is_err() {
                std::thread::sleep(backoff);
                continue;
            }
            need_submit = false;

            while results.len() < n {
                match proto::read_msg(&mut stream) {
                    Ok(Msg::Result {
                        submission: s,
                        index,
                        ok,
                        cached,
                        attempts,
                        elapsed_ns,
                        payload,
                    }) => {
                        if index == RESULT_NO_SUCH_SUBMISSION {
                            // The daemon restarted without our
                            // submission: re-submit the remainder
                            // under a fresh id.
                            base = results.len();
                            submission = self.next_submission.fetch_add(1, Ordering::Relaxed);
                            need_submit = true;
                            continue 'outer;
                        }
                        let expected = (results.len() - base) as u32;
                        if s != submission || index != expected {
                            // Out-of-order or stale stream: resync.
                            std::thread::sleep(backoff);
                            continue 'outer;
                        }
                        if cached {
                            ppa_obs::registry::counter("serve.client.results.cached").inc();
                        } else {
                            ppa_obs::registry::counter("serve.client.results.fresh").inc();
                        }
                        results.push(if ok {
                            Ok(UnitOutcome {
                                payload,
                                elapsed_ns,
                                attempts,
                            })
                        } else {
                            Err(GridError::UnitFailed {
                                tag: units[results.len()].tag.clone(),
                                attempts,
                                message: String::from_utf8_lossy(&payload).into_owned(),
                            })
                        });
                    }
                    Ok(_) | Err(_) => {
                        // Daemon died or misbehaved mid-stream:
                        // reconnect and subscribe from where we are.
                        std::thread::sleep(backoff);
                        continue 'outer;
                    }
                }
            }
        }
        results
    }
}
