//! The `ppa-serve` daemon: a long-lived coordinator that accepts many
//! concurrent client submissions on the same port its workers dial.
//!
//! Connections are demultiplexed by their first frame: `Hello` marks a
//! v2 worker (handled entirely inside `ppa-grid`), while `Submit`,
//! `Subscribe`, and `Query` mark v3 client sessions routed here through
//! the [`ppa_grid::ConnDispatch`] hook. Each submission is fronted by
//! the content-addressed [`ResultCache`]: cached cells complete
//! instantly without touching the queue, misses go to the prioritized
//! coordinator queue, and every fresh result is inserted on completion.
//!
//! Results stream back to the client strictly in submission-index
//! order, and their slots stay readable until the whole submission has
//! been delivered — a client whose connection died mid-stream can
//! `Subscribe` from the first index it is missing and receive the
//! byte-identical remainder.

use crate::cache::ResultCache;
use crate::checkpoint::{Checkpoint, PendingSubmission};
use ppa_grid::coord::{ConnDispatch, Coordinator, GridConfig};
use ppa_grid::proto::{self, Msg, QUERY_STATS, QUERY_STOP, RESULT_NO_SUCH_SUBMISSION};
use ppa_grid::UnitSpec;
use std::collections::HashMap;
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Listen address, e.g. `127.0.0.1:7171` (port 0 for OS-assigned).
    pub addr: String,
    /// Checkpoint file; `None` disables persistence.
    pub checkpoint: Option<PathBuf>,
    /// Cadence for periodic checkpoints and metrics exports.
    pub checkpoint_interval: Duration,
    /// Metrics snapshot file, rewritten on every cadence tick and stop.
    pub metrics_json: Option<PathBuf>,
    /// Scheduler tuning, forwarded to the embedded coordinator.
    pub grid: GridConfig,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            addr: "127.0.0.1:0".into(),
            checkpoint: None,
            checkpoint_interval: Duration::from_secs(5),
            metrics_json: None,
            grid: GridConfig::default(),
        }
    }
}

/// One slot of a submission, kept until the submission is retired so
/// re-subscribing clients can re-read delivered results.
#[derive(Debug, Clone)]
struct SlotResult {
    ok: bool,
    cached: bool,
    attempts: u32,
    elapsed_ns: u64,
    payload: Vec<u8>,
}

struct SubInner {
    slots: Vec<Option<SlotResult>>,
    remaining: usize,
}

struct SubmissionState {
    client: u64,
    id: u64,
    priority: u8,
    units: Vec<UnitSpec>,
    inner: Mutex<SubInner>,
    cv: Condvar,
}

impl SubmissionState {
    fn is_complete(&self) -> bool {
        self.inner.lock().unwrap().remaining == 0
    }

    fn fill(&self, index: usize, result: SlotResult) {
        let mut inner = self.inner.lock().unwrap();
        if inner.slots[index].is_none() {
            inner.slots[index] = Some(result);
            inner.remaining -= 1;
        }
        self.cv.notify_all();
    }

    /// Blocks until slot `index` is filled; `None` once `stopped`.
    fn wait_slot(&self, index: usize, stopped: &dyn Fn() -> bool) -> Option<SlotResult> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(r) = &inner.slots[index] {
                return Some(r.clone());
            }
            if stopped() {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(inner, Duration::from_millis(100))
                .unwrap();
            inner = guard;
        }
    }
}

struct DaemonState {
    submissions: HashMap<(u64, u64), Arc<SubmissionState>>,
    clients: u64,
    submissions_total: u64,
    stop: bool,
}

struct Inner {
    coord: Coordinator,
    cache: ResultCache,
    state: Mutex<DaemonState>,
    cv: Condvar,
    opts: DaemonOptions,
}

/// The [`ConnDispatch`] hook installed on the coordinator; holds the
/// `Arc` the session loop and collector threads clone from.
struct Dispatch(Arc<Inner>);

impl ConnDispatch for Dispatch {
    fn handle(&self, first: Msg, stream: TcpStream) {
        session(&self.0, first, stream);
    }
}

/// A running daemon. [`Daemon::run`] blocks until a client sends
/// `Query(QUERY_STOP)` (or [`Daemon::request_stop`] is called), then
/// checkpoints and shuts the coordinator down.
pub struct Daemon {
    inner: Arc<Inner>,
    ticker: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Binds and restores. An `AddrInUse` bind is retried for a few
    /// seconds: a restarting daemon races the kernel's release of its
    /// own previous listening socket.
    pub fn start(opts: DaemonOptions) -> Result<Daemon, String> {
        let mut last_err = String::new();
        let mut coord = None;
        for _ in 0..40 {
            match Coordinator::bind(opts.addr.as_str(), opts.grid.clone()) {
                Ok(c) => {
                    coord = Some(c);
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                    last_err = e.to_string();
                    std::thread::sleep(Duration::from_millis(250));
                }
                Err(e) => return Err(format!("failed to bind {}: {e}", opts.addr)),
            }
        }
        let coord = coord.ok_or_else(|| format!("failed to bind {}: {last_err}", opts.addr))?;
        let inner = Arc::new(Inner {
            coord,
            cache: ResultCache::new(),
            state: Mutex::new(DaemonState {
                submissions: HashMap::new(),
                clients: 0,
                submissions_total: 0,
                stop: false,
            }),
            cv: Condvar::new(),
            opts,
        });

        // Recover: cached results come back verbatim; incomplete
        // submissions re-enter the queue, where the restored cache
        // instantly completes every cell that finished pre-crash.
        if let Some(path) = inner.opts.checkpoint.clone() {
            match Checkpoint::load(&path) {
                Ok(Some(ck)) => {
                    let n_cache = ck.cache.len();
                    let n_pending = ck.pending.len();
                    inner.cache.restore(ck.cache);
                    for p in ck.pending {
                        ensure_submission(&inner, p.client, p.submission, p.priority, p.units);
                    }
                    ppa_obs::info!(
                        "serve",
                        "restored checkpoint: {n_cache} cache entries, {n_pending} pending submission(s)"
                    );
                }
                Ok(None) => {}
                Err(e) => ppa_obs::warn!("serve", "ignoring checkpoint {}: {e}", path.display()),
            }
        }

        inner
            .coord
            .set_dispatch(Arc::new(Dispatch(Arc::clone(&inner))));

        // Cadence thread: gauges, checkpoint, metrics export.
        let ticker = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-ticker".into())
                .spawn(move || loop {
                    {
                        let state = inner.state.lock().unwrap();
                        if state.stop {
                            return;
                        }
                        let _ = inner
                            .cv
                            .wait_timeout(state, inner.opts.checkpoint_interval)
                            .unwrap();
                    }
                    inner.publish_gauges();
                    inner.persist();
                })
                .expect("spawning the serve ticker thread")
        };
        Ok(Daemon {
            inner,
            ticker: Some(ticker),
        })
    }

    /// The bound address (OS-assigned port resolved).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.inner.coord.local_addr()
    }

    /// Blocks until stop is requested, then checkpoints and shuts down.
    pub fn run(&self) {
        let mut state = self.inner.state.lock().unwrap();
        while !state.stop {
            state = self.inner.cv.wait(state).unwrap();
        }
        drop(state);
        self.inner.publish_gauges();
        self.inner.persist();
        self.inner.coord.shutdown();
    }

    /// Asks [`Daemon::run`] to return (same path as `QUERY_STOP`).
    pub fn request_stop(&self) {
        self.inner.request_stop();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.inner.request_stop();
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
    }
}

impl Inner {
    fn stopped(&self) -> bool {
        self.state.lock().unwrap().stop
    }

    fn request_stop(&self) {
        let mut state = self.state.lock().unwrap();
        state.stop = true;
        self.cv.notify_all();
    }

    fn publish_gauges(&self) {
        let (queued, inflight) = self.coord.queue_depth();
        ppa_obs::registry::gauge("serve.queue.depth").set(queued as f64);
        ppa_obs::registry::gauge("serve.queue.inflight").set(inflight as f64);
        let state = self.state.lock().unwrap();
        ppa_obs::registry::gauge("serve.clients.connected").set(state.clients as f64);
    }

    /// Writes the checkpoint and the metrics snapshot, if configured.
    fn persist(&self) {
        if let Some(path) = &self.opts.checkpoint {
            let pending: Vec<PendingSubmission> = {
                let state = self.state.lock().unwrap();
                state
                    .submissions
                    .values()
                    .filter(|s| !s.is_complete())
                    .map(|s| PendingSubmission {
                        client: s.client,
                        submission: s.id,
                        priority: s.priority,
                        units: s.units.clone(),
                    })
                    .collect()
            };
            let ck = Checkpoint {
                cache: self.cache.export(),
                pending,
            };
            if let Err(e) = ck.save(path) {
                ppa_obs::warn!("serve", "checkpoint write failed: {e}");
            }
        }
        if let Some(path) = &self.opts.metrics_json {
            if let Err(e) = ppa_obs::snapshot().write_json_file(path, false) {
                ppa_obs::warn!("serve", "metrics write failed: {e}");
            }
        }
    }

    fn lookup_submission(&self, client: u64, id: u64) -> Option<Arc<SubmissionState>> {
        self.state
            .lock()
            .unwrap()
            .submissions
            .get(&(client, id))
            .cloned()
    }

    /// Drops a fully-delivered submission: its results live on in the
    /// cache, so a late re-subscribe degrades to a re-submit that
    /// completes instantly.
    fn retire(&self, client: u64, id: u64) {
        let mut state = self.state.lock().unwrap();
        if let Some(sub) = state.submissions.get(&(client, id)) {
            if sub.is_complete() {
                state.submissions.remove(&(client, id));
            }
        }
    }

    /// Streams `sub`'s results from `from` in index order. Returns
    /// whether the socket survived.
    fn stream_results(&self, sub: &SubmissionState, from: usize, stream: &mut TcpStream) -> bool {
        let n = sub.units.len();
        for index in from..n {
            let Some(slot) = sub.wait_slot(index, &|| self.stopped()) else {
                return false; // daemon stopping
            };
            let msg = Msg::Result {
                submission: sub.id,
                index: index as u32,
                ok: slot.ok,
                cached: slot.cached,
                attempts: slot.attempts,
                elapsed_ns: slot.elapsed_ns,
                payload: slot.payload,
            };
            if proto::write_msg(stream, &msg).is_err() {
                return false;
            }
        }
        true
    }

    fn cache_stats_msg(&self) -> Msg {
        let (hits, misses) = self.cache.counters();
        let (queued, inflight) = self.coord.queue_depth();
        let state = self.state.lock().unwrap();
        Msg::CacheStats {
            hits,
            misses,
            entries: self.cache.len() as u64,
            queue_depth: queued as u64,
            inflight: inflight as u64,
            clients: state.clients,
            submissions: state.submissions_total,
            workers: self.coord.live_workers() as u64,
        }
    }
}

/// Finds or creates a submission. Creation consults the cache per
/// unit; misses are submitted to the coordinator queue at the
/// submission's priority, and a collector thread folds their outcomes
/// (and cache inserts) back into the submission's slots.
fn ensure_submission(
    inner: &Arc<Inner>,
    client: u64,
    id: u64,
    priority: u8,
    units: Vec<UnitSpec>,
) -> Arc<SubmissionState> {
    {
        let state = inner.state.lock().unwrap();
        if let Some(sub) = state.submissions.get(&(client, id)) {
            return Arc::clone(sub);
        }
    }
    let n = units.len();
    let sub = Arc::new(SubmissionState {
        client,
        id,
        priority,
        units,
        inner: Mutex::new(SubInner {
            slots: (0..n).map(|_| None).collect(),
            remaining: n,
        }),
        cv: Condvar::new(),
    });
    {
        let mut state = inner.state.lock().unwrap();
        // A racing session may have registered it meanwhile.
        if let Some(existing) = state.submissions.get(&(client, id)) {
            return Arc::clone(existing);
        }
        state.submissions.insert((client, id), Arc::clone(&sub));
        state.submissions_total += 1;
        ppa_obs::registry::counter("serve.clients.submissions").inc();
    }
    // Cache pass: hits complete instantly, misses go to the queue.
    let mut miss_indices = Vec::new();
    let mut miss_units = Vec::new();
    for (i, u) in sub.units.iter().enumerate() {
        if let Some(result) = inner.cache.lookup(u) {
            ppa_obs::registry::counter("serve.results.cached").inc();
            sub.fill(
                i,
                SlotResult {
                    ok: true,
                    cached: true,
                    attempts: 0,
                    elapsed_ns: 0,
                    payload: result,
                },
            );
        } else {
            miss_indices.push(i);
            miss_units.push(u.clone());
        }
    }
    if miss_units.is_empty() {
        // All-cache submission: nothing will tick persist for it.
        inner.persist();
    } else {
        let batch = inner.coord.submit_batch(miss_units, priority);
        let inner = Arc::clone(inner);
        let sub_c = Arc::clone(&sub);
        let _ = std::thread::Builder::new()
            .name("serve-collect".into())
            .spawn(move || {
                for (k, &i) in miss_indices.iter().enumerate() {
                    let result = match inner.coord.wait_slot(batch, k) {
                        Ok(outcome) => {
                            inner.cache.insert(&sub_c.units[i], &outcome.payload);
                            ppa_obs::registry::counter("serve.results.fresh").inc();
                            SlotResult {
                                ok: true,
                                cached: false,
                                attempts: outcome.attempts,
                                elapsed_ns: outcome.elapsed_ns,
                                payload: outcome.payload,
                            }
                        }
                        Err(e) => SlotResult {
                            ok: false,
                            cached: false,
                            attempts: 0,
                            elapsed_ns: 0,
                            payload: e.to_string().into_bytes(),
                        },
                    };
                    sub_c.fill(i, result);
                }
                inner.coord.drop_batch(batch);
                // The submission just completed; make that durable.
                inner.persist();
            });
    }
    sub
}

/// One client session: a request/stream loop over a single connection.
fn session(inner: &Arc<Inner>, first: Msg, mut stream: TcpStream) {
    // Client sessions idle between submissions; workers' short read
    // timeout does not apply to them.
    let _ = stream.set_read_timeout(None);
    {
        let mut state = inner.state.lock().unwrap();
        state.clients += 1;
        ppa_obs::registry::counter("serve.clients.sessions").inc();
        ppa_obs::registry::gauge("serve.clients.connected").set(state.clients as f64);
    }
    let mut pending = Some(first);
    loop {
        let msg = match pending.take() {
            Some(m) => m,
            None => match proto::read_msg(&mut stream) {
                Ok(m) => m,
                Err(_) => break,
            },
        };
        match msg {
            Msg::Submit {
                client,
                submission,
                priority,
                units,
            } => {
                let units: Vec<UnitSpec> = units
                    .into_iter()
                    .map(|(tag, payload)| UnitSpec { tag, payload })
                    .collect();
                ppa_obs::info!(
                    "serve",
                    "client {client:#x} submitted {} unit(s) as submission {submission}",
                    units.len()
                );
                let sub = ensure_submission(inner, client, submission, priority, units);
                if !inner.stream_results(&sub, 0, &mut stream) {
                    break;
                }
                inner.retire(client, submission);
            }
            Msg::Subscribe {
                client,
                submission,
                from_index,
            } => match inner.lookup_submission(client, submission) {
                Some(sub) => {
                    if !inner.stream_results(&sub, from_index as usize, &mut stream) {
                        break;
                    }
                    inner.retire(client, submission);
                }
                None => {
                    let nack = Msg::Result {
                        submission,
                        index: RESULT_NO_SUCH_SUBMISSION,
                        ok: false,
                        cached: false,
                        attempts: 0,
                        elapsed_ns: 0,
                        payload: Vec::new(),
                    };
                    if proto::write_msg(&mut stream, &nack).is_err() {
                        break;
                    }
                }
            },
            Msg::Query { what } if what == QUERY_STATS => {
                if proto::write_msg(&mut stream, &inner.cache_stats_msg()).is_err() {
                    break;
                }
            }
            Msg::Query { what } if what == QUERY_STOP => {
                let _ = proto::write_msg(&mut stream, &inner.cache_stats_msg());
                ppa_obs::info!("serve", "stop requested by client");
                inner.request_stop();
                break;
            }
            // Anything else on a client session is protocol misuse.
            _ => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    let mut state = inner.state.lock().unwrap();
    state.clients -= 1;
    ppa_obs::registry::gauge("serve.clients.connected").set(state.clients as f64);
}
