//! Coordinator checkpoint/restore.
//!
//! The daemon persists its recoverable state — the cache index and
//! every submission that has not yet fully completed — to a named file
//! on a cadence, after every submission completes, and on graceful
//! stop. The format is a single self-checking record:
//!
//! ```text
//! [magic "PPSC"] [version u32 = 1]
//! [cache count u32]  { tag str, request bytes, result bytes } ...
//! [submission count u32]
//!     { client u64, submission u64, priority u8,
//!       unit count u32, { tag str, payload bytes } ... } ...
//! [FNV-1a-64 checksum over everything above]
//! ```
//!
//! Writes are atomic (tmp file + rename), so a crash mid-checkpoint
//! leaves the previous checkpoint intact. Leases are deliberately NOT
//! persisted: after a restart no worker connections exist, so a leased
//! unit is indistinguishable from a queued one — restore simply
//! re-submits every incomplete submission and lets the cache instantly
//! complete the cells that finished before the crash (the same
//! re-execute-from-the-last-image discipline as the paper's JIT
//! checkpointing).

use crate::cache::{fnv64, CacheEntry, FNV64_OFFSET};
use ppa_grid::proto::{ByteReader, ByteWriter};
use ppa_grid::UnitSpec;
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 4] = b"PPSC";
const VERSION: u32 = 1;

/// A submission that still owes its client results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingSubmission {
    pub client: u64,
    pub submission: u64,
    pub priority: u8,
    pub units: Vec<UnitSpec>,
}

/// Everything a restarted daemon needs to resume.
#[derive(Debug, Default)]
pub struct Checkpoint {
    pub cache: Vec<CacheEntry>,
    pub pending: Vec<PendingSubmission>,
}

impl Checkpoint {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.cache.len() as u32);
        for e in &self.cache {
            w.put_str(&e.tag);
            w.put_bytes(&e.request);
            w.put_bytes(&e.result);
        }
        w.put_u32(self.pending.len() as u32);
        for s in &self.pending {
            w.put_u64(s.client);
            w.put_u64(s.submission);
            w.put_u8(s.priority);
            w.put_u32(s.units.len() as u32);
            for u in &s.units {
                w.put_str(&u.tag);
                w.put_bytes(&u.payload);
            }
        }
        let body = w.into_bytes();
        let mut out = Vec::with_capacity(body.len() + 16);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&body);
        let ck = fnv64(FNV64_OFFSET, &out);
        out.extend_from_slice(&ck.to_le_bytes());
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, String> {
        if bytes.len() < 16 {
            return Err("checkpoint truncated".into());
        }
        if &bytes[0..4] != MAGIC {
            return Err("checkpoint has a bad magic".into());
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(format!("checkpoint version {version} is unknown"));
        }
        let body_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
        let computed = fnv64(FNV64_OFFSET, &bytes[..body_end]);
        if stored != computed {
            return Err("checkpoint checksum mismatch".into());
        }
        let e = |e: ppa_grid::ProtoError| format!("checkpoint malformed: {e}");
        let mut r = ByteReader::new(&bytes[8..body_end]);
        let n_cache = r.u32().map_err(e)?;
        // Counts come from disk; push without preallocating so a
        // corrupt file fails at the element reads, not with an OOM.
        let mut cache = Vec::new();
        for _ in 0..n_cache {
            cache.push(CacheEntry {
                tag: r.str().map_err(e)?,
                request: r.bytes().map_err(e)?.to_vec(),
                result: r.bytes().map_err(e)?.to_vec(),
            });
        }
        let n_pending = r.u32().map_err(e)?;
        let mut pending = Vec::new();
        for _ in 0..n_pending {
            let client = r.u64().map_err(e)?;
            let submission = r.u64().map_err(e)?;
            let priority = r.u8().map_err(e)?;
            let n_units = r.u32().map_err(e)?;
            let mut units = Vec::new();
            for _ in 0..n_units {
                units.push(UnitSpec {
                    tag: r.str().map_err(e)?,
                    payload: r.bytes().map_err(e)?.to_vec(),
                });
            }
            pending.push(PendingSubmission {
                client,
                submission,
                priority,
                units,
            });
        }
        r.finish().map_err(e)?;
        Ok(Checkpoint { cache, pending })
    }

    /// Atomically writes the checkpoint: a crash mid-write leaves the
    /// previous file intact.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads a checkpoint; `Ok(None)` when the file does not exist.
    pub fn load(path: &Path) -> Result<Option<Checkpoint>, String> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("reading {}: {e}", path.display())),
        };
        Checkpoint::decode(&bytes).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            cache: vec![CacheEntry {
                tag: "repro.app:fig1/gcc".into(),
                request: vec![1, 2],
                result: vec![3, 4, 5],
            }],
            pending: vec![PendingSubmission {
                client: 7,
                submission: 1,
                priority: 200,
                units: vec![UnitSpec {
                    tag: "oracle.cell:mcf".into(),
                    payload: vec![9],
                }],
            }],
        }
    }

    #[test]
    fn round_trips() {
        let ck = sample();
        let back = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back.cache, ck.cache);
        assert_eq!(back.pending, ck.pending);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(Checkpoint::decode(&bytes).unwrap_err().contains("checksum"));
        assert!(Checkpoint::decode(&bytes[..10]).is_err());
        assert!(Checkpoint::decode(b"XXXXxxxxxxxxxxxxxxxx").is_err());
    }

    #[test]
    fn save_load_round_trips_and_missing_is_none() {
        let dir = std::env::temp_dir().join(format!("ppsc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ppsc");
        assert!(Checkpoint::load(&path).unwrap().is_none());
        sample().save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap().unwrap();
        assert_eq!(back.pending, sample().pending);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
