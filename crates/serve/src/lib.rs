//! `ppa-serve` — persistent simulation-as-a-service.
//!
//! A long-lived grid coordinator daemon ([`daemon::Daemon`]) that
//! accepts many concurrent client submissions over the v3 extension of
//! the `ppa-grid` wire protocol, fronted by a content-addressed result
//! cache ([`cache::ResultCache`]) and persisted across restarts by
//! checkpoint/restore ([`checkpoint::Checkpoint`]). Front-ends dial it
//! through [`client::ServeClient`], an ordinary
//! [`ppa_grid::UnitRunner`].
//!
//! The daemon is the paper's persistence discipline applied to the
//! infrastructure itself: it checkpoints its own queue and cache the
//! way the Persistent Processor checkpoints a core, and recovery is
//! re-execution from the last image with already-durable work (cached
//! cells) skipped.

pub mod cache;
pub mod checkpoint;
pub mod client;
pub mod daemon;

pub use cache::{unit_key, ResultCache};
pub use checkpoint::Checkpoint;
pub use client::{ServeClient, ServeStats};
pub use daemon::{Daemon, DaemonOptions};
